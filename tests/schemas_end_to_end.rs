//! Cross-crate integration: every schema, end to end, on LOCAL-model
//! networks with adversarial (sparse, shuffled) identifier assignments.

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::delta_coloring::DeltaColoringSchema;
use local_advice::core::lcl_subexp::LclSubexpSchema;
use local_advice::core::onebit::OneBitSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::core::splitting::{
    is_proper_edge_coloring, is_valid_splitting, EdgeColoringSchema, SplittingSchema,
};
use local_advice::core::three_coloring::ThreeColoringSchema;
use local_advice::graph::{coloring, generators, IdAssignment};
use local_advice::lcl::problems::ProperColoring;
use local_advice::lcl::{verify, Labeling};
use local_advice::runtime::Network;

/// Networks with identifiers drawn sparsely from a poly(n) space, as the
/// LOCAL model allows.
fn sparse_ids(g: local_advice::graph::Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

#[test]
fn balanced_orientation_across_families_and_ids() {
    let schema = BalancedOrientationSchema::default();
    let graphs = vec![
        generators::cycle(150),
        generators::path(101),
        generators::grid2d(9, 9, false),
        generators::grid2d(7, 7, true),
        generators::random_bounded_degree(120, 6, 260, 3),
        generators::random_even_degree(80, 10, 12, 4),
        generators::hypercube(5),
        generators::caterpillar(30, 2),
    ];
    for (i, g) in graphs.into_iter().enumerate() {
        let net = sparse_ids(g, 1000 + i as u64);
        let advice = schema.encode(&net).expect("encode");
        let (o, stats) = schema.decode(&net, &advice).expect("decode");
        assert!(o.is_almost_balanced(net.graph()), "graph #{i}");
        assert!(stats.rounds() <= schema.decode_radius());
    }
}

#[test]
fn one_bit_wrapper_preserves_output() {
    let net = sparse_ids(generators::cycle(360), 5);
    let base = BalancedOrientationSchema::new(16, 90);
    let wrapped = OneBitSchema::new(base, 2);
    let advice = wrapped.encode(&net).expect("encode");
    assert_eq!(advice.max_bits(), 1);
    let (o, _) = wrapped.decode(&net, &advice).expect("decode");
    assert!(o.is_almost_balanced(net.graph()));
    // The wrapped decoder agrees with the base decoder edge for edge.
    let base_advice = base.encode(&net).unwrap();
    let (base_o, _) = base.decode(&net, &base_advice).unwrap();
    assert_eq!(o, base_o);
}

#[test]
fn decompression_composes_with_orientation_advice() {
    let g = generators::random_bounded_degree(150, 7, 350, 9);
    let m = g.m();
    let net = sparse_ids(g, 6);
    let subset: Vec<bool> = (0..m).map(|i| i % 5 < 2).collect();
    let codec = EdgeSubsetCodec::default();
    let (decoded, advice, stats) = codec.round_trip(&net, &subset).expect("round trip");
    assert_eq!(decoded, subset);
    assert!(stats.rounds() <= codec.orientation.decode_radius() + 1);
    // The embedded orientation is itself almost balanced.
    let o = codec.orientation_of(&net, &advice).unwrap();
    assert!(o.is_almost_balanced(net.graph()));
}

#[test]
fn coloring_pipeline_stacks() {
    // cluster (Δ+1) → Δ, then independently the 3-coloring schema, on the
    // same 3-colorable instance.
    let (g, _) = generators::random_tripartite([30, 30, 30], 5, 170, 12);
    let delta = g.max_degree();
    let net = sparse_ids(g, 8);

    let cluster = ClusterColoringSchema::default();
    let advice = cluster.encode(&net).unwrap();
    let (chi1, _) = cluster.decode(&net, &advice).unwrap();
    assert!(coloring::is_proper_k_coloring(
        net.graph(),
        &chi1,
        delta + 1
    ));

    let full = DeltaColoringSchema::default();
    let advice = full.encode(&net).unwrap();
    let (chi, _) = full.decode(&net, &advice).unwrap();
    assert!(coloring::is_proper_k_coloring(net.graph(), &chi, delta));

    let three = ThreeColoringSchema::default();
    let advice = three.encode(&net).unwrap();
    let (chi3, _) = three.decode(&net, &advice).unwrap();
    assert!(coloring::is_proper_k_coloring(net.graph(), &chi3, 3));
}

#[test]
fn splitting_then_edge_coloring() {
    let g = generators::random_bipartite_regular(20, 4, 31);
    let net = sparse_ids(g, 10);
    let split = SplittingSchema::default();
    let advice = split.encode(&net).unwrap();
    let (labels, _) = split.decode(&net, &advice).unwrap();
    assert!(is_valid_splitting(net.graph(), &labels));

    let ec = EdgeColoringSchema::default();
    let advice = ec.encode(&net).unwrap();
    let (colors, _) = ec.decode(&net, &advice).unwrap();
    assert!(is_proper_edge_coloring(net.graph(), &colors, 4));
}

#[test]
fn lcl_subexp_with_sparse_ids() {
    let lcl = ProperColoring::new(3);
    let net = sparse_ids(generators::cycle(200), 77);
    let schema = LclSubexpSchema::new(&lcl, 25, 50_000_000);
    let advice = schema.encode(&net).expect("encode");
    let (labels, _) = schema.decode(&net, &advice).expect("decode");
    let labeling = Labeling::from_node_labels(labels, net.graph().m());
    assert!(verify::verify_centralized(&net, &lcl, &labeling).is_empty());
}

#[test]
fn decoded_outputs_pass_distributed_verification() {
    // The full LOCAL loop: schema decode, then the distributed checker.
    let net = sparse_ids(generators::cycle(120), 13);
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (o, _) = schema.decode(&net, &advice).unwrap();
    let labels = local_advice::lcl::witness::orientation_labels(net.graph(), net.uids(), &o);
    let labeling = Labeling::from_edge_labels(labels, net.graph().n());
    let (violations, stats) = verify::verify_distributed(
        &net,
        &local_advice::lcl::problems::AlmostBalancedOrientation,
        &labeling,
    );
    assert!(violations.is_empty());
    assert_eq!(stats.rounds(), 1);
}

#[test]
fn identifier_assignment_changes_advice_but_not_validity() {
    // The paper stresses that advice may depend on identifiers: different
    // id assignments give different advice, both decode correctly.
    let g = generators::cycle(100);
    let schema = BalancedOrientationSchema::default();
    let net_a = Network::with_ids(g.clone(), IdAssignment::random_permutation(100, 1));
    let net_b = Network::with_ids(g, IdAssignment::random_permutation(100, 2));
    let advice_a = schema.encode(&net_a).unwrap();
    let advice_b = schema.encode(&net_b).unwrap();
    assert_ne!(advice_a, advice_b, "advice should depend on identifiers");
    assert!(schema
        .decode(&net_a, &advice_a)
        .unwrap()
        .0
        .is_almost_balanced(net_a.graph()));
    assert!(schema
        .decode(&net_b, &advice_b)
        .unwrap()
        .0
        .is_almost_balanced(net_b.graph()));
    // Swapping the advice across assignments must NOT decode silently into
    // a wrong orientation: either an error, or (by luck) still balanced.
    if let Ok((o, _)) = schema.decode(&net_a, &advice_b) {
        assert!(o.is_almost_balanced(net_a.graph()));
    }
}

#[test]
fn three_coloring_on_disconnected_graph() {
    let g = generators::disjoint_union(&[
        generators::cycle(40),
        generators::cycle(31),
        generators::path(17),
    ]);
    let net = sparse_ids(g, 21);
    let schema = ThreeColoringSchema::default();
    let advice = schema.encode(&net).expect("encode");
    let (colors, _) = schema.decode(&net, &advice).expect("decode");
    assert!(coloring::is_proper_k_coloring(net.graph(), &colors, 3));
}

#[test]
fn delta_coloring_on_disconnected_graph() {
    let g = generators::disjoint_union(&[generators::grid2d(5, 5, false), generators::cycle(24)]);
    let delta = g.max_degree();
    let net = sparse_ids(g, 22);
    let schema = DeltaColoringSchema::default();
    let advice = schema.encode(&net).expect("encode");
    let (colors, _) = schema.decode(&net, &advice).expect("decode");
    assert!(coloring::is_proper_k_coloring(net.graph(), &colors, delta));
}

#[test]
fn lcl_subexp_on_disconnected_graph() {
    let lcl = ProperColoring::new(3);
    let g = generators::disjoint_union(&[generators::cycle(90), generators::path(61)]);
    let net = sparse_ids(g, 23);
    let schema = LclSubexpSchema::new(&lcl, 30, 50_000_000);
    let advice = schema.encode(&net).expect("encode");
    let (labels, _) = schema.decode(&net, &advice).expect("decode");
    let labeling = Labeling::from_node_labels(labels, net.graph().m());
    assert!(verify::verify_centralized(&net, &lcl, &labeling).is_empty());
}
