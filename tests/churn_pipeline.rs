//! Churn differential oracle for the balanced-orientation pipeline.
//!
//! A [`BalancedChurnSession`] claims that after every edit batch its
//! advice is **bit-identical** to a from-scratch
//! [`AdviceSchema::encode`] of the mutated graph and its orientation
//! matches a from-scratch decode. This harness pins both, across graph
//! families, identifier assignments, schema parameters, and deterministic
//! and proptest-shrinkable edit scripts — and additionally runs the
//! distributed LCL checker on every released orientation, so no batch can
//! ship an unverified output.

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::churn::BalancedChurnSession;
use local_advice::core::schema::AdviceSchema;
use local_advice::graph::mutate::Edit;
use local_advice::graph::{generators, Graph, IdAssignment, NodeId};
use local_advice::lcl::problems::AlmostBalancedOrientation;
use local_advice::lcl::{verify, witness, Labeling};
use local_advice::runtime::Network;
use proptest::prelude::*;

fn sparse_ids(g: Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn script_for(n: usize, mut seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<Edit>> {
    seed |= 1;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .filter_map(|_| {
                    let u = (xorshift(&mut seed) % n as u64) as u32;
                    let v = (xorshift(&mut seed) % n as u64) as u32;
                    if u == v {
                        return None;
                    }
                    Some(if xorshift(&mut seed).is_multiple_of(2) {
                        Edit::Insert(NodeId(u), NodeId(v))
                    } else {
                        Edit::Remove(NodeId(u), NodeId(v))
                    })
                })
                .collect()
        })
        .collect()
}

/// The oracle: repaired advice must equal a from-scratch encode bit for
/// bit, the repaired orientation must equal a from-scratch decode, and
/// the distributed checker must accept the released orientation.
fn assert_matches_scratch(tag: &str, session: &BalancedChurnSession) {
    let schema = *session.schema();
    let net = Network::new(
        session.graph().clone(),
        session.network().ids().clone(),
        vec![(); session.graph().n()],
    );
    let fresh = schema.encode(&net).expect("scratch encode");
    assert_eq!(
        session.advice().strings(),
        fresh.strings(),
        "{tag}: repaired advice differs from a from-scratch encode"
    );
    let (o, stats) = schema.decode(&net, &fresh).expect("scratch decode");
    assert_eq!(
        session.orientation(),
        &o,
        "{tag}: repaired orientation differs from a from-scratch decode"
    );
    assert!(stats.rounds() <= schema.decode_radius(), "{tag}: locality");
    assert!(
        o.is_almost_balanced(net.graph()),
        "{tag}: orientation not almost balanced"
    );
    // Distributed LCL checker: every released output is verified.
    let labels = witness::orientation_labels(net.graph(), net.uids(), session.orientation());
    let labeling = Labeling::from_edge_labels(labels, net.graph().n());
    let (violations, check_stats) =
        verify::verify_distributed(&net, &AlmostBalancedOrientation, &labeling);
    assert!(
        violations.is_empty(),
        "{tag}: distributed checker rejected the repaired orientation: {violations:?}"
    );
    assert_eq!(check_stats.rounds(), 1, "{tag}: checker is 1-round");
}

#[test]
fn balanced_churn_matches_scratch_across_families() {
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", generators::cycle(150)),
        ("path", generators::path(101)),
        ("grid", generators::grid2d(9, 9, false)),
        ("torus", generators::grid2d(7, 7, true)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(120, 6, 260, 3),
        ),
        (
            "random-even-degree",
            generators::random_even_degree(80, 10, 12, 4),
        ),
        ("caterpillar", generators::caterpillar(30, 2)),
        (
            "disconnected",
            generators::disjoint_union(&[generators::cycle(40), generators::path(25)]),
        ),
    ];
    // Default parameters and a tight-anchor variant: the latter forces
    // anchors on far more trails, exercising the splice heavily.
    let schemas = [
        BalancedOrientationSchema::default(),
        BalancedOrientationSchema::new(4, 3),
    ];
    for (fi, (tag, g)) in families.into_iter().enumerate() {
        let n = g.n();
        for (si, schema) in schemas.iter().enumerate() {
            let net = sparse_ids(g.clone(), 1000 + fi as u64);
            let mut session = BalancedChurnSession::new(net, *schema).expect("initial build");
            assert_matches_scratch(&format!("{tag}/s{si}/init"), &session);
            for (b, batch) in script_for(n, 0xC0DE * (fi as u64 + 1) + si as u64, 5, 4)
                .into_iter()
                .enumerate()
            {
                let report = session.apply(&batch).expect("repair");
                assert_eq!(
                    report.applied + report.skipped,
                    batch.len(),
                    "{tag}/s{si}/batch{b}: edits unaccounted for"
                );
                assert_matches_scratch(&format!("{tag}/s{si}/batch{b}"), &session);
            }
        }
    }
}

#[test]
fn repair_is_local_on_disjoint_components() {
    // Churn confined to one component must never re-decode the other:
    // affected trails are walked, not ball-grown, so the second cycle's
    // 60 nodes stay untouched.
    let g = generators::disjoint_union(&[generators::cycle(40), generators::cycle(60)]);
    let net = sparse_ids(g, 99);
    let mut session = BalancedChurnSession::new(net, BalancedOrientationSchema::new(4, 3)).unwrap();
    let report = session
        .apply(&[Edit::Remove(NodeId(5), NodeId(6))])
        .unwrap();
    assert!(
        report.redecoded <= 40,
        "repair leaked into the untouched component: {report:?}"
    );
    assert_matches_scratch("disjoint-local", &session);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn balanced_churn_matches_scratch_on_random_scripts(
        family in 0usize..4,
        n in 12usize..60,
        seed in 0u64..1_000,
        raw in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..6),
            1..4,
        ),
    ) {
        let g = match family {
            0 => generators::cycle(n.max(3)),
            1 => generators::path(n.max(2)),
            2 => generators::random_bounded_degree(n, 5, 2 * n, seed),
            _ => {
                let w = (n as f64).sqrt().ceil() as usize;
                generators::grid2d(w.max(2), w.max(2), seed.is_multiple_of(2))
            }
        };
        let nn = g.n();
        let net = sparse_ids(g, seed);
        let mut session =
            BalancedChurnSession::new(net, BalancedOrientationSchema::new(4, 3)).unwrap();
        for batch_raw in raw {
            let batch: Vec<Edit> = batch_raw
                .into_iter()
                .filter_map(|(u, v, insert)| {
                    let (u, v) = (u as usize % nn, v as usize % nn);
                    if u == v {
                        return None;
                    }
                    let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                    Some(if insert { Edit::Insert(u, v) } else { Edit::Remove(u, v) })
                })
                .collect();
            session.apply(&batch).expect("repair");
            assert_matches_scratch("proptest", &session);
        }
    }
}
