//! Cross-crate property tests: the LOCAL-model contract (outputs are
//! functions of views), locality of the decoders, and the advice/no-advice
//! separation.

use local_advice::baselines::no_advice;
use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::graph::{generators, GraphBuilder, IdAssignment, NodeId};
use local_advice::runtime::canonical::canonicalize;
use local_advice::runtime::messaging::{run_rounds, FloodDistance};
use local_advice::runtime::{
    run_gathered, run_gathered_robust, run_local, Ball, FaultPlan, GatherError, Network,
};
use proptest::prelude::*;

fn arb_connected_network() -> impl Strategy<Value = Network> {
    (5usize..35, 0u64..300).prop_flat_map(|(n, seed)| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..2 * n).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for i in 1..n {
                b.add_edge(NodeId((i - 1) as u32), NodeId(i as u32));
            }
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v));
                }
            }
            Network::with_ids(b.build(), IdAssignment::random_permutation(n, seed))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ball-view executor and the explicit message-passing simulator
    /// agree on BFS distances — two independent realizations of the LOCAL
    /// model computing the same thing.
    #[test]
    fn ball_views_and_messaging_agree(net in arb_connected_network()) {
        let n = net.graph().n();
        let sources: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let msg_net = net.with_inputs(sources.clone());
        let (via_messages, _) = run_rounds(&msg_net, &FloodDistance, 4 * n).expect("terminates");
        let (via_balls, _) = run_local(&msg_net, |ctx| {
            // Expand until the source is visible, then report the distance.
            let mut r = 0;
            loop {
                let ball = ctx.ball(r);
                if let Some(v) = ball.graph().nodes().find(|&v| *ball.input(v)) {
                    return Some(ball.dist(v));
                }
                if ball.n() == ctx.n() {
                    return None;
                }
                r += 1;
            }
        });
        for v in 0..n {
            prop_assert_eq!(via_messages[v], via_balls[v]);
        }
    }

    /// Decoder locality: rounds never exceed the schema's published radius,
    /// on any graph, under any identifier assignment.
    #[test]
    fn decoder_locality_contract(net in arb_connected_network()) {
        let schema = BalancedOrientationSchema::new(10, 7);
        let advice = schema.encode(&net).expect("encode");
        let (o, stats) = schema.decode(&net, &advice).expect("decode");
        prop_assert!(o.is_almost_balanced(net.graph()));
        prop_assert!(stats.rounds() <= schema.decode_radius());
    }

    /// Gathering views by message flooding ([`run_gathered`]) equals direct
    /// ball collection ([`Ball::collect`]) — for any connected topology,
    /// any permuted identifier assignment, any radius. The two paths share
    /// no code above the graph layer, so agreement pins the LOCAL-model
    /// contract from both sides.
    #[test]
    fn gathered_views_equal_collected_balls(net in arb_connected_network(), r in 0usize..4) {
        let (gathered, rounds) =
            run_gathered(&net, r, |ball| canonicalize(ball, |_| 0)).expect("terminates");
        prop_assert_eq!(rounds, r);
        for v in net.graph().nodes() {
            let direct = canonicalize(&Ball::collect(&net, v, r), |_| 0);
            prop_assert_eq!(&gathered[v.index()], &direct, "node {:?} radius {}", v, r);
        }
    }

    /// The fault-tolerant gather agrees with [`Ball::collect`] too, even
    /// while healing a seeded drop plan — and fails loudly (never wrongly)
    /// when it cannot heal in time.
    #[test]
    fn robust_gather_equals_collected_balls_or_fails_loudly(
        net in arb_connected_network(),
        r in 0usize..3,
        seed in 0u64..64,
    ) {
        let plan = FaultPlan::new(seed).drop_rate(0.2);
        let mut transport = plan.start();
        match run_gathered_robust(&net, r, r + 20, &mut transport, |ball| {
            canonicalize(ball, |_| 0)
        }) {
            Ok((gathered, report)) => {
                prop_assert!(report.rounds_used <= r + 20);
                for v in net.graph().nodes() {
                    let direct = canonicalize(&Ball::collect(&net, v, r), |_| 0);
                    prop_assert_eq!(&gathered[v.index()], &direct);
                }
            }
            Err(e) => {
                // Typed degradation is allowed; silence is not. (With a
                // 20-round slack this branch is rare but legitimate.)
                prop_assert!(matches!(e, GatherError::PartialView { .. }));
            }
        }
    }

    /// The no-advice baseline pays (at least) the graph radius on cycles;
    /// the advice decoder does not.
    #[test]
    fn advice_separation_on_cycles(k in 18usize..60) {
        let n = 2 * k; // even so both baseline and schema apply
        let net = Network::with_ids(
            generators::cycle(n),
            IdAssignment::random_permutation(n, k as u64),
        );
        let (o, base_stats) = no_advice::balanced_orientation_no_advice(&net);
        prop_assert!(o.is_almost_balanced(net.graph()));
        prop_assert!(base_stats.rounds() >= n / 2);
        let schema = BalancedOrientationSchema::default();
        let advice = schema.encode(&net).unwrap();
        let (_, stats) = schema.decode(&net, &advice).unwrap();
        prop_assert!(stats.rounds() <= schema.decode_radius());
        prop_assert!(stats.rounds() < base_stats.rounds());
    }
}
