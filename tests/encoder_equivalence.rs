//! Encoder-level differential equivalence: the parallel encoders
//! (balanced orientation, cluster coloring, Δ-coloring, lookup-table
//! training) must be **bit-identical** to the sequential algorithms they
//! replaced, under every worker-thread count.
//!
//! Two independent oracles are used:
//!
//! 1. **Sequential reference encoders** — the cluster-coloring seed
//!    algorithm reimplemented verbatim against the public API (full-graph
//!    Voronoi over all centers), and a sequential balanced-orientation
//!    reference that mirrors the canonical trail-record placement
//!    introduced with churn repair (anchors are a pure function of trail
//!    structure; see `trail_records`) through an independent
//!    implementation — brute-force smallest-rotation search, explicit
//!    reversal. Any algorithmic drift in the shipped encoders — trail
//!    merge order, rotation indexing, the bounded-BFS cluster
//!    assignment — shows up as a bit difference.
//! 2. **Thread-count invariance** — encoding under overrides {1, 2, 5,
//!    auto} must produce identical [`AdviceMap`]s and [`AdviceStats`];
//!    one worker *is* the sequential composition, so invariance extends
//!    the seed proof to every thread count.
//!
//! The suite runs under both feature configurations in CI (`parallel` on
//! and off); with the feature off the overrides are inert and the tests
//! degenerate to seed-equality, which must still hold.
//!
//! `set_thread_override` is process-global, so tests serialize on a mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use local_advice::core::advice::AdviceMap;
use local_advice::core::balanced::{
    cycle_canonical_forward, encode_records, open_canonical_forward, AnchorRecord,
    BalancedOrientationSchema,
};
use local_advice::core::bits::BitString;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::delta_coloring::DeltaColoringSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::graph::orientation::{slot_edges, slot_of};
use local_advice::graph::{
    coloring, generators, ruling, traversal, EdgeId, EulerPartition, Graph, GraphBuilder,
    IdAssignment, NodeId,
};
use local_advice::runtime::{set_thread_override, Ball, LookupTable, Network};

/// Serializes tests that mutate the process-global thread override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn sparse_ids(g: Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

/// Generator grid: connected families with distinct trail/cluster shapes.
fn grid_of_networks(seed: u64) -> Vec<(String, Network)> {
    vec![
        ("cycle-96".into(), sparse_ids(generators::cycle(96), seed)),
        ("path-97".into(), sparse_ids(generators::path(97), seed)),
        (
            "grid-8x8".into(),
            sparse_ids(generators::grid2d(8, 8, true), seed),
        ),
        (
            "rr-64-4".into(),
            sparse_ids(generators::random_regular(64, 4, seed), seed ^ 0x9e37),
        ),
        (
            "tree-3-3".into(),
            sparse_ids(generators::balanced_tree(3, 3), seed),
        ),
    ]
}

const THREAD_GRID: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];
const SEEDS: [u64; 3] = [7, 1234, 987654321];

// ---------------------------------------------------------------------------
// Sequential reference encoders.
// ---------------------------------------------------------------------------

/// Sequential balanced-orientation reference: one pass over the Euler
/// partition's trails, each trail's anchors derived from its structure
/// alone — the decoder's canonical direction rule, then (for closed
/// trails) a start at the smallest rotation of the directed uid word,
/// found here by comparing every rotation outright rather than via the
/// production `least_rotation_index`. Drift anywhere in the shipped
/// canonicalization — rotation indexing, tie handling, reversal, slot
/// lookups — shows up as a bit difference.
fn seed_balanced_encode(schema: &BalancedOrientationSchema, net: &Network) -> AdviceMap {
    let g = net.graph();
    let uids = net.uids();
    let uid = |v: NodeId| uids[v.index()];
    let ep = EulerPartition::new(g, uids);
    let mut records: Vec<Vec<AnchorRecord>> = vec![Vec::new(); g.n()];
    for trail in ep.trails() {
        let len = trail.len();
        // Canonical direction; a tied closed trail anchors regardless of
        // length and runs lo→hi across its smallest-uid edge.
        let (forward, force_anchor) = if trail.closed {
            let seq: Vec<u64> = trail.nodes[..len].iter().map(|&v| uid(v)).collect();
            match cycle_canonical_forward(&seq) {
                Some(f) => (f, false),
                None => {
                    let j = (0..len)
                        .min_by_key(|&i| {
                            let (x, y) = (uid(trail.nodes[i]), uid(trail.nodes[i + 1]));
                            (x.min(y), x.max(y))
                        })
                        .expect("closed trails have at least one edge");
                    (uid(trail.nodes[j]) < uid(trail.nodes[j + 1]), true)
                }
            }
        } else {
            let seq: Vec<u64> = trail.nodes.iter().map(|&v| uid(v)).collect();
            match open_canonical_forward(&seq) {
                Some(f) => (f, false),
                None => (true, true),
            }
        };
        if len <= schema.short_threshold && !force_anchor {
            continue;
        }
        // Directed sequences: edge i runs dnodes[i] -> dnodes[i + 1]
        // (cyclically for closed trails).
        let (dnodes, dedges): (Vec<NodeId>, Vec<EdgeId>) = if trail.closed {
            if forward {
                (trail.nodes[..len].to_vec(), trail.edges.clone())
            } else {
                let mut dn = vec![trail.nodes[0]];
                dn.extend(trail.nodes[1..len].iter().rev());
                (dn, trail.edges.iter().rev().copied().collect())
            }
        } else if forward {
            (trail.nodes.clone(), trail.edges.clone())
        } else {
            (
                trail.nodes.iter().rev().copied().collect(),
                trail.edges.iter().rev().copied().collect(),
            )
        };
        let positions: Vec<usize> = if trail.closed {
            let word: Vec<u64> = dnodes.iter().map(|&v| uid(v)).collect();
            let mut r0 = 0;
            for r in 1..len {
                for j in 0..len {
                    let (a, b) = (word[(r + j) % len], word[(r0 + j) % len]);
                    if a != b {
                        if a < b {
                            r0 = r;
                        }
                        break;
                    }
                }
            }
            (0..len.div_ceil(schema.anchor_spacing))
                .map(|j| (r0 + j * schema.anchor_spacing) % len)
                .collect()
        } else {
            (1..len).step_by(schema.anchor_spacing).collect()
        };
        for p in positions {
            let w = dnodes[p];
            let arrive = dedges[(p + len - 1) % len];
            let slot = slot_of(g, uids, w, arrive).expect("consecutive trail edges share a slot");
            let (first, _second) = slot_edges(g, uids, w, slot);
            records[w.index()].push(AnchorRecord {
                slot,
                enters_first: arrive == first,
            });
        }
    }
    let mut advice = AdviceMap::empty(g.n());
    for v in g.nodes() {
        if !records[v.index()].is_empty() {
            let bits = encode_records(&mut records[v.index()], g.degree(v));
            advice.set(v, bits);
        }
    }
    advice
}

/// The seed cluster-coloring encoder: full-graph BFS Voronoi over all
/// centers, then greedy coloring of the cluster graph by center-uid order.
fn seed_cluster_encode(schema: &ClusterColoringSchema, net: &Network) -> AdviceMap {
    let g = net.graph();
    let uids = net.uids();
    let centers = ruling::ruling_set(g, schema.cluster_spacing);
    let mut best: Vec<Option<(usize, u64, NodeId)>> = vec![None; g.n()];
    for &c in &centers {
        let dist = traversal::bfs_distances(g, c);
        for v in g.nodes() {
            if let Some(d) = dist[v.index()] {
                let cand = (d, uids[c.index()], c);
                if best[v.index()].is_none_or(|(bd, bu, _)| (cand.0, cand.1) < (bd, bu)) {
                    best[v.index()] = Some(cand);
                }
            }
        }
    }
    let cluster_of: Vec<NodeId> = best
        .into_iter()
        .map(|b| b.expect("ruling set dominates every node").2)
        .collect();
    let mut center_index = vec![usize::MAX; g.n()];
    for (i, &c) in centers.iter().enumerate() {
        center_index[c.index()] = i;
    }
    let mut cb = GraphBuilder::new(centers.len());
    for (_, (u, v)) in g.edges() {
        let cu = center_index[cluster_of[u.index()].index()];
        let cv = center_index[cluster_of[v.index()].index()];
        if cu != cv {
            cb.add_edge(NodeId::from_index(cu), NodeId::from_index(cv));
        }
    }
    let cluster_graph = cb.build();
    let mut order: Vec<NodeId> = cluster_graph.nodes().collect();
    order.sort_by_key(|&i| uids[centers[i.index()].index()]);
    let cluster_colors = coloring::greedy_coloring(&cluster_graph, &order);
    let used = cluster_colors.iter().max().map_or(0, |&c| c + 1);
    assert!(
        used <= schema.max_cluster_colors,
        "grid instance exceeds the color budget"
    );
    let width = schema.color_width();
    let mut advice = AdviceMap::empty(g.n());
    for (i, &c) in centers.iter().enumerate() {
        let mut bits = BitString::new();
        bits.push_uint(cluster_colors[i] as u64, width);
        advice.set(c, bits);
    }
    advice
}

/// Encodes `schema` under every thread override and asserts each result —
/// map and stats — is bit-identical to `reference`.
fn assert_encode_matches<S: AdviceSchema>(
    schema: &S,
    net: &Network,
    reference: &AdviceMap,
    label: &str,
) {
    for threads in THREAD_GRID {
        set_thread_override(threads);
        let got = schema
            .encode(net)
            .unwrap_or_else(|e| panic!("{label}: encode failed ({threads:?} threads): {e}"));
        assert_eq!(
            &got, reference,
            "{label}: advice differs from reference at {threads:?} threads"
        );
        assert_eq!(
            got.stats(),
            reference.stats(),
            "{label}: stats differ from reference at {threads:?} threads"
        );
    }
    set_thread_override(None);
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

#[test]
fn balanced_encoder_matches_frozen_seed_across_grid() {
    let _guard = override_lock();
    let schema = BalancedOrientationSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            let reference = seed_balanced_encode(&schema, &net);
            assert_encode_matches(
                &schema,
                &net,
                &reference,
                &format!("balanced/{name}/{seed}"),
            );
        }
    }
}

#[test]
fn balanced_encoder_matches_seed_on_nondefault_parameters() {
    let _guard = override_lock();
    // Tight spacing exercises multi-anchor trails; threshold 1 anchors
    // even short trails.
    let schema = BalancedOrientationSchema::new(1, 3);
    for (name, net) in grid_of_networks(42) {
        let reference = seed_balanced_encode(&schema, &net);
        assert_encode_matches(&schema, &net, &reference, &format!("balanced-tight/{name}"));
    }
}

#[test]
fn cluster_encoder_matches_frozen_seed_across_grid() {
    let _guard = override_lock();
    let schema = ClusterColoringSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            let reference = seed_cluster_encode(&schema, &net);
            assert_encode_matches(&schema, &net, &reference, &format!("cluster/{name}/{seed}"));
        }
    }
}

#[test]
fn cluster_encoder_matches_seed_on_nondefault_spacing() {
    let _guard = override_lock();
    for spacing in [2usize, 3, 6] {
        let schema = ClusterColoringSchema::new(spacing, 64);
        for (name, net) in grid_of_networks(5) {
            let reference = seed_cluster_encode(&schema, &net);
            assert_encode_matches(
                &schema,
                &net,
                &reference,
                &format!("cluster-s{spacing}/{name}"),
            );
        }
    }
}

#[test]
fn delta_encoder_is_thread_invariant_and_decodes_properly() {
    let _guard = override_lock();
    let schema = DeltaColoringSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            // Δ-colorability: skip Brooks exceptions the repair search
            // correctly rejects (none in this grid, but keep the guard
            // honest if the grid grows).
            set_thread_override(Some(1));
            let reference = match schema.encode(&net) {
                Ok(a) => a,
                Err(e) => panic!("delta/{name}/{seed}: encode failed sequentially: {e}"),
            };
            assert_encode_matches(&schema, &net, &reference, &format!("delta/{name}/{seed}"));
            let delta = net.graph().max_degree();
            let (chi, _) = schema
                .decode(&net, &reference)
                .unwrap_or_else(|e| panic!("delta/{name}/{seed}: decode failed: {e}"));
            assert!(
                coloring::is_proper_k_coloring(net.graph(), &chi, delta),
                "delta/{name}/{seed}: decoded coloring is not a proper Δ-coloring"
            );
        }
    }
}

#[test]
fn lookup_training_is_thread_invariant() {
    let _guard = override_lock();
    let radius = 1usize;
    let training: Vec<Network> = vec![
        sparse_ids(generators::cycle(24), 1),
        sparse_ids(generators::cycle(30), 2),
        sparse_ids(generators::path(25), 3),
    ];
    let algo = |ball: &Ball| ball.global_degree(ball.center()) % 2;
    let probe = sparse_ids(generators::cycle(36), 9);
    let mut reference: Option<(usize, Vec<Option<usize>>)> = None;
    for threads in THREAD_GRID {
        set_thread_override(threads);
        let table: LookupTable<usize> =
            LookupTable::train(radius, &training, |_| 0, algo).expect("order-invariant algo");
        let evals: Vec<Option<usize>> = probe
            .graph()
            .nodes()
            .map(|v| table.eval(&Ball::collect(&probe, v, radius), |_| 0))
            .collect();
        let snapshot = (table.len(), evals);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => assert_eq!(
                r, &snapshot,
                "lookup training differs at {threads:?} threads"
            ),
        }
    }
    set_thread_override(None);
}
