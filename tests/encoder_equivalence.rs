//! Encoder-level differential equivalence: the parallel encoders
//! (balanced orientation, cluster coloring, Δ-coloring, lookup-table
//! training) must be **bit-identical** to the sequential algorithms they
//! replaced, under every worker-thread count.
//!
//! Two independent oracles are used:
//!
//! 1. **Frozen seed encoders** — the pre-parallelization algorithms for
//!    the balanced-orientation and cluster-coloring schemas, reimplemented
//!    here verbatim against the public API (sequential trail loop;
//!    full-graph Voronoi over all centers). Any algorithmic drift in the
//!    shipped encoders — trail merge order, the bounded-BFS cluster
//!    assignment — shows up as a bit difference.
//! 2. **Thread-count invariance** — encoding under overrides {1, 2, 5,
//!    auto} must produce identical [`AdviceMap`]s and [`AdviceStats`];
//!    one worker *is* the sequential composition, so invariance extends
//!    the seed proof to every thread count.
//!
//! The suite runs under both feature configurations in CI (`parallel` on
//! and off); with the feature off the overrides are inert and the tests
//! degenerate to seed-equality, which must still hold.
//!
//! `set_thread_override` is process-global, so tests serialize on a mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use local_advice::core::advice::AdviceMap;
use local_advice::core::balanced::{
    cycle_canonical_forward, encode_records, open_canonical_forward, AnchorRecord,
    BalancedOrientationSchema,
};
use local_advice::core::bits::BitString;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::delta_coloring::DeltaColoringSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::graph::orientation::{slot_edges, slot_of};
use local_advice::graph::{
    coloring, generators, ruling, traversal, EulerPartition, Graph, GraphBuilder, IdAssignment,
    NodeId, Trail,
};
use local_advice::runtime::{set_thread_override, Ball, LookupTable, Network};

/// Serializes tests that mutate the process-global thread override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn sparse_ids(g: Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

/// Generator grid: connected families with distinct trail/cluster shapes.
fn grid_of_networks(seed: u64) -> Vec<(String, Network)> {
    vec![
        ("cycle-96".into(), sparse_ids(generators::cycle(96), seed)),
        ("path-97".into(), sparse_ids(generators::path(97), seed)),
        (
            "grid-8x8".into(),
            sparse_ids(generators::grid2d(8, 8, true), seed),
        ),
        (
            "rr-64-4".into(),
            sparse_ids(generators::random_regular(64, 4, seed), seed ^ 0x9e37),
        ),
        (
            "tree-3-3".into(),
            sparse_ids(generators::balanced_tree(3, 3), seed),
        ),
    ]
}

const THREAD_GRID: [Option<usize>; 4] = [Some(1), Some(2), Some(5), None];
const SEEDS: [u64; 3] = [7, 1234, 987654321];

// ---------------------------------------------------------------------------
// Frozen seed encoders (pre-parallelization algorithms, verbatim).
// ---------------------------------------------------------------------------

fn anchor_positions(trail: &Trail, spacing: usize) -> Vec<usize> {
    let len = trail.len();
    if trail.closed {
        (0..len).step_by(spacing).collect()
    } else {
        (1..len).step_by(spacing).collect()
    }
}

fn position_info(
    trail: &Trail,
    i: usize,
) -> (
    NodeId,
    local_advice::graph::EdgeId,
    local_advice::graph::EdgeId,
) {
    let len = trail.len();
    if i == 0 {
        assert!(trail.closed, "open trails have no slot at position 0");
        (trail.nodes[0], trail.edges[len - 1], trail.edges[0])
    } else {
        (trail.nodes[i], trail.edges[i - 1], trail.edges[i])
    }
}

fn choose_direction(trail: &Trail, uids: &[u64]) -> (bool, bool) {
    if trail.closed {
        let seq: Vec<u64> = trail.nodes[..trail.len()]
            .iter()
            .map(|v| uids[v.index()])
            .collect();
        match cycle_canonical_forward(&seq) {
            Some(forward) => (forward, false),
            None => (true, true),
        }
    } else {
        let seq: Vec<u64> = trail.nodes.iter().map(|v| uids[v.index()]).collect();
        match open_canonical_forward(&seq) {
            Some(forward) => (forward, false),
            None => (true, true),
        }
    }
}

/// The seed balanced-orientation encoder: one sequential pass over the
/// Euler partition's trails, records pushed in trail order.
fn seed_balanced_encode(schema: &BalancedOrientationSchema, net: &Network) -> AdviceMap {
    let g = net.graph();
    let uids = net.uids();
    let ep = EulerPartition::new(g, uids);
    let mut records: Vec<Vec<AnchorRecord>> = vec![Vec::new(); g.n()];
    for trail in ep.trails() {
        let (forward, force_anchor) = choose_direction(trail, uids);
        if trail.len() <= schema.short_threshold && !force_anchor {
            continue;
        }
        for i in anchor_positions(trail, schema.anchor_spacing) {
            let (w, arrive, leave) = position_info(trail, i);
            let slot = slot_of(g, uids, w, arrive).expect("consecutive trail edges share a slot");
            let (first, _second) = slot_edges(g, uids, w, slot);
            let enters_via = if forward { arrive } else { leave };
            records[w.index()].push(AnchorRecord {
                slot,
                enters_first: enters_via == first,
            });
        }
    }
    let mut advice = AdviceMap::empty(g.n());
    for v in g.nodes() {
        if !records[v.index()].is_empty() {
            let bits = encode_records(&mut records[v.index()], g.degree(v));
            advice.set(v, bits);
        }
    }
    advice
}

/// The seed cluster-coloring encoder: full-graph BFS Voronoi over all
/// centers, then greedy coloring of the cluster graph by center-uid order.
fn seed_cluster_encode(schema: &ClusterColoringSchema, net: &Network) -> AdviceMap {
    let g = net.graph();
    let uids = net.uids();
    let centers = ruling::ruling_set(g, schema.cluster_spacing);
    let mut best: Vec<Option<(usize, u64, NodeId)>> = vec![None; g.n()];
    for &c in &centers {
        let dist = traversal::bfs_distances(g, c);
        for v in g.nodes() {
            if let Some(d) = dist[v.index()] {
                let cand = (d, uids[c.index()], c);
                if best[v.index()].is_none_or(|(bd, bu, _)| (cand.0, cand.1) < (bd, bu)) {
                    best[v.index()] = Some(cand);
                }
            }
        }
    }
    let cluster_of: Vec<NodeId> = best
        .into_iter()
        .map(|b| b.expect("ruling set dominates every node").2)
        .collect();
    let mut center_index = vec![usize::MAX; g.n()];
    for (i, &c) in centers.iter().enumerate() {
        center_index[c.index()] = i;
    }
    let mut cb = GraphBuilder::new(centers.len());
    for (_, (u, v)) in g.edges() {
        let cu = center_index[cluster_of[u.index()].index()];
        let cv = center_index[cluster_of[v.index()].index()];
        if cu != cv {
            cb.add_edge(NodeId::from_index(cu), NodeId::from_index(cv));
        }
    }
    let cluster_graph = cb.build();
    let mut order: Vec<NodeId> = cluster_graph.nodes().collect();
    order.sort_by_key(|&i| uids[centers[i.index()].index()]);
    let cluster_colors = coloring::greedy_coloring(&cluster_graph, &order);
    let used = cluster_colors.iter().max().map_or(0, |&c| c + 1);
    assert!(
        used <= schema.max_cluster_colors,
        "grid instance exceeds the color budget"
    );
    let width = schema.color_width();
    let mut advice = AdviceMap::empty(g.n());
    for (i, &c) in centers.iter().enumerate() {
        let mut bits = BitString::new();
        bits.push_uint(cluster_colors[i] as u64, width);
        advice.set(c, bits);
    }
    advice
}

/// Encodes `schema` under every thread override and asserts each result —
/// map and stats — is bit-identical to `reference`.
fn assert_encode_matches<S: AdviceSchema>(
    schema: &S,
    net: &Network,
    reference: &AdviceMap,
    label: &str,
) {
    for threads in THREAD_GRID {
        set_thread_override(threads);
        let got = schema
            .encode(net)
            .unwrap_or_else(|e| panic!("{label}: encode failed ({threads:?} threads): {e}"));
        assert_eq!(
            &got, reference,
            "{label}: advice differs from reference at {threads:?} threads"
        );
        assert_eq!(
            got.stats(),
            reference.stats(),
            "{label}: stats differ from reference at {threads:?} threads"
        );
    }
    set_thread_override(None);
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

#[test]
fn balanced_encoder_matches_frozen_seed_across_grid() {
    let _guard = override_lock();
    let schema = BalancedOrientationSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            let reference = seed_balanced_encode(&schema, &net);
            assert_encode_matches(
                &schema,
                &net,
                &reference,
                &format!("balanced/{name}/{seed}"),
            );
        }
    }
}

#[test]
fn balanced_encoder_matches_seed_on_nondefault_parameters() {
    let _guard = override_lock();
    // Tight spacing exercises multi-anchor trails; threshold 1 anchors
    // even short trails.
    let schema = BalancedOrientationSchema::new(1, 3);
    for (name, net) in grid_of_networks(42) {
        let reference = seed_balanced_encode(&schema, &net);
        assert_encode_matches(&schema, &net, &reference, &format!("balanced-tight/{name}"));
    }
}

#[test]
fn cluster_encoder_matches_frozen_seed_across_grid() {
    let _guard = override_lock();
    let schema = ClusterColoringSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            let reference = seed_cluster_encode(&schema, &net);
            assert_encode_matches(&schema, &net, &reference, &format!("cluster/{name}/{seed}"));
        }
    }
}

#[test]
fn cluster_encoder_matches_seed_on_nondefault_spacing() {
    let _guard = override_lock();
    for spacing in [2usize, 3, 6] {
        let schema = ClusterColoringSchema::new(spacing, 64);
        for (name, net) in grid_of_networks(5) {
            let reference = seed_cluster_encode(&schema, &net);
            assert_encode_matches(
                &schema,
                &net,
                &reference,
                &format!("cluster-s{spacing}/{name}"),
            );
        }
    }
}

#[test]
fn delta_encoder_is_thread_invariant_and_decodes_properly() {
    let _guard = override_lock();
    let schema = DeltaColoringSchema::default();
    for seed in SEEDS {
        for (name, net) in grid_of_networks(seed) {
            // Δ-colorability: skip Brooks exceptions the repair search
            // correctly rejects (none in this grid, but keep the guard
            // honest if the grid grows).
            set_thread_override(Some(1));
            let reference = match schema.encode(&net) {
                Ok(a) => a,
                Err(e) => panic!("delta/{name}/{seed}: encode failed sequentially: {e}"),
            };
            assert_encode_matches(&schema, &net, &reference, &format!("delta/{name}/{seed}"));
            let delta = net.graph().max_degree();
            let (chi, _) = schema
                .decode(&net, &reference)
                .unwrap_or_else(|e| panic!("delta/{name}/{seed}: decode failed: {e}"));
            assert!(
                coloring::is_proper_k_coloring(net.graph(), &chi, delta),
                "delta/{name}/{seed}: decoded coloring is not a proper Δ-coloring"
            );
        }
    }
}

#[test]
fn lookup_training_is_thread_invariant() {
    let _guard = override_lock();
    let radius = 1usize;
    let training: Vec<Network> = vec![
        sparse_ids(generators::cycle(24), 1),
        sparse_ids(generators::cycle(30), 2),
        sparse_ids(generators::path(25), 3),
    ];
    let algo = |ball: &Ball| ball.global_degree(ball.center()) % 2;
    let probe = sparse_ids(generators::cycle(36), 9);
    let mut reference: Option<(usize, Vec<Option<usize>>)> = None;
    for threads in THREAD_GRID {
        set_thread_override(threads);
        let table: LookupTable<usize> =
            LookupTable::train(radius, &training, |_| 0, algo).expect("order-invariant algo");
        let evals: Vec<Option<usize>> = probe
            .graph()
            .nodes()
            .map(|v| table.eval(&Ball::collect(&probe, v, radius), |_| 0))
            .collect();
        let snapshot = (table.len(), evals);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => assert_eq!(
                r, &snapshot,
                "lookup training differs at {threads:?} threads"
            ),
        }
    }
    set_thread_override(None);
}
