//! Schema-level parallel equivalence: every advice schema's decoder runs
//! through the parallel executor, so its decoded output and round
//! statistics must be **identical** under any worker-thread count.
//!
//! The runtime-level differential harness
//! (`crates/runtime/tests/equivalence.rs`) proves the executors equivalent
//! on arbitrary algorithms; these tests close the loop at the public API:
//! encode once, decode under thread overrides {1, 2, 5, auto}, and compare
//! outputs and stats bitwise.
//!
//! `set_thread_override` is process-global, so every test serializes on one
//! mutex.

use std::fmt::Debug;
use std::sync::{Mutex, MutexGuard, OnceLock};

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::delta_coloring::DeltaColoringSchema;
use local_advice::core::lcl_subexp::LclSubexpSchema;
use local_advice::core::onebit::OneBitSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::core::splitting::{EdgeColoringSchema, SplittingSchema};
use local_advice::core::three_coloring::ThreeColoringSchema;
use local_advice::graph::{generators, IdAssignment};
use local_advice::lcl::problems::ProperColoring;
use local_advice::runtime::{set_thread_override, Network, RoundStats};

/// Serializes tests that mutate the process-global thread override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn sparse_ids(g: local_advice::graph::Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

/// Decodes `schema` on `net` under each thread override and asserts the
/// results are bitwise identical. The caller must hold [`override_lock`].
fn assert_decode_thread_invariant<S>(schema: &S, net: &Network)
where
    S: AdviceSchema,
    S::Output: PartialEq + Debug,
{
    let advice = schema
        .encode(net)
        .unwrap_or_else(|e| panic!("{}: encode failed: {e}", schema.name()));
    let mut reference: Option<(S::Output, RoundStats)> = None;
    for threads in [Some(1), Some(2), Some(5), None] {
        set_thread_override(threads);
        let got = schema.decode(net, &advice).unwrap_or_else(|e| {
            panic!(
                "{}: decode failed ({threads:?} threads): {e}",
                schema.name()
            )
        });
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                &got,
                want,
                "{}: decode differs with thread override {threads:?}",
                schema.name()
            ),
        }
    }
    set_thread_override(None);
}

#[test]
fn balanced_orientation_decode_is_thread_invariant() {
    let _guard = override_lock();
    let schema = BalancedOrientationSchema::default();
    for (i, g) in [
        generators::cycle(150),
        generators::grid2d(9, 9, true),
        generators::random_bounded_degree(120, 6, 260, 3),
    ]
    .into_iter()
    .enumerate()
    {
        assert_decode_thread_invariant(&schema, &sparse_ids(g, 300 + i as u64));
    }
}

#[test]
fn one_bit_decode_is_thread_invariant() {
    let _guard = override_lock();
    let schema = OneBitSchema::new(BalancedOrientationSchema::new(16, 90), 2);
    assert_decode_thread_invariant(&schema, &sparse_ids(generators::cycle(360), 5));
}

#[test]
fn coloring_decoders_are_thread_invariant() {
    let _guard = override_lock();
    let (g, _) = generators::random_tripartite([30, 30, 30], 5, 170, 12);
    let net = sparse_ids(g, 8);
    assert_decode_thread_invariant(&ClusterColoringSchema::default(), &net);
    assert_decode_thread_invariant(&DeltaColoringSchema::default(), &net);
    assert_decode_thread_invariant(&ThreeColoringSchema::default(), &net);
}

#[test]
fn splitting_and_edge_coloring_decoders_are_thread_invariant() {
    let _guard = override_lock();
    let net = sparse_ids(generators::random_bipartite_regular(20, 4, 31), 10);
    assert_decode_thread_invariant(&SplittingSchema::default(), &net);
    assert_decode_thread_invariant(&EdgeColoringSchema::default(), &net);
}

#[test]
fn lcl_subexp_decode_is_thread_invariant() {
    let _guard = override_lock();
    let lcl = ProperColoring::new(3);
    let schema = LclSubexpSchema::new(&lcl, 25, 50_000_000);
    assert_decode_thread_invariant(&schema, &sparse_ids(generators::cycle(200), 77));
}

#[test]
fn decompression_round_trip_is_thread_invariant() {
    let _guard = override_lock();
    let g = generators::random_bounded_degree(150, 7, 350, 9);
    let m = g.m();
    let net = sparse_ids(g, 6);
    let subset: Vec<bool> = (0..m).map(|i| i % 5 < 2).collect();
    let codec = EdgeSubsetCodec::default();
    let mut reference = None;
    for threads in [Some(1), Some(3), None] {
        set_thread_override(threads);
        let got = codec.round_trip(&net, &subset).expect("round trip");
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "thread override {threads:?}"),
        }
    }
    set_thread_override(None);
}
