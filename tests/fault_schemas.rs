//! The fault matrix, part 2: advice schemas are never silently wrong under
//! *transport* tampering.
//!
//! `tests/tamper.rs` corrupts advice at rest; this suite corrupts it in
//! transit, using the same seeded [`FaultPlan`] machinery the runtime's
//! transport uses (`crates/runtime/tests/faults.rs` is part 1, at the
//! gather layer). Advice crosses a faulty last hop via
//! [`deliver_advice`] — drops, duplication, delays, bit corruption, and
//! crash-stopped nodes — and then each schema decoder runs on what was
//! *actually delivered*. The invariants, per cell of the
//! plan × schema × graph grid:
//!
//! 1. **Fault-free ⇒ bit-identical.** Delivery is the identity and every
//!    decode matches the direct (un-transported) decode exactly.
//! 2. **Recoverable ⇒ heals.** Content-preserving plans with a
//!    retransmission budget deliver the advice intact, so decodes stay
//!    bit-identical.
//! 3. **Hostile ⇒ loud.** Corrupting or crashing plans end in a typed
//!    error ([`RobustDecodeError`]) or an output the schema's *checker*
//!    accepts — never a silently invalid output.
//!
//! The balanced schema is additionally exercised end-to-end over the
//! fault-injecting transport itself ([`decode_gathered`]), where the
//! flooded views — structure *and* advice — are what gets tampered.

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::checked::{
    decode_gathered, decode_gathered_checked, deliver_advice, CheckedSchema, RobustDecodeError,
};
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::onebit::OneBitSchema;
use local_advice::core::proofs::orientation_labeling;
use local_advice::core::schema::AdviceSchema;
use local_advice::core::three_coloring::ThreeColoringSchema;
use local_advice::graph::{coloring, generators, IdAssignment, NodeId};
use local_advice::lcl::problems::{AlmostBalancedOrientation, ProperColoring};
use local_advice::lcl::Labeling;
use local_advice::runtime::Network;
use local_advice::runtime::{FaultPlan, PerfectLink};

const DELIVERY_BUDGET: usize = 30;

fn fault_free_plans() -> Vec<FaultPlan> {
    [3u64, 41, 271].into_iter().map(FaultPlan::new).collect()
}

fn recoverable_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop20", FaultPlan::new(seed).drop_rate(0.20)),
        ("drop40", FaultPlan::new(seed).drop_rate(0.40)),
        (
            "drop+delay",
            FaultPlan::new(seed).drop_rate(0.10).delay(0.4, 2),
        ),
        ("dup30", FaultPlan::new(seed).duplicate_rate(0.30)),
    ]
}

fn hostile_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        // Light enough that some seeded runs deliver every string intact
        // (the grid must exercise acceptance too), heavy enough that
        // others don't.
        ("corrupt-light", FaultPlan::new(seed).corrupt_rate(0.005)),
        ("corrupt8", FaultPlan::new(seed).corrupt_rate(0.08)),
        (
            "corrupt+drop",
            FaultPlan::new(seed).corrupt_rate(0.03).drop_rate(0.10),
        ),
        (
            "corrupt-heavy",
            FaultPlan::new(seed).corrupt_rate(0.30).duplicate_rate(0.20),
        ),
    ]
}

/// Total cell count of the hostile grid ([`hostile_plans`] × seeds).
const HOSTILE_CELLS: u32 = 10 * 4;

// ---------------------------------------------------------------------------
// Invariants 1 + 2: delivery itself is exact under benign plans.
// ---------------------------------------------------------------------------

#[test]
fn benign_delivery_is_the_identity_for_every_schema_advice() {
    // One advice map per schema family, delivered under the benign grid:
    // the delivered map must equal the original bit for bit.
    let net = Network::with_identity_ids(generators::cycle(90));
    let balanced = BalancedOrientationSchema::default();
    let three_net = {
        let (g, _) = generators::random_tripartite([18, 18, 18], 4, 85, 4);
        Network::with_identity_ids(g)
    };
    let three = ThreeColoringSchema::default();
    let maps = vec![
        ("balanced", &net, balanced.encode(&net).unwrap()),
        (
            "three_coloring",
            &three_net,
            three.encode(&three_net).unwrap(),
        ),
    ];
    for (name, net, advice) in &maps {
        for plan in fault_free_plans() {
            let (delivered, stats) = deliver_advice(net, advice, &plan, 1).unwrap();
            assert_eq!(&delivered, advice, "{name}: fault-free delivery mutated");
            assert_eq!(stats.total_faults(), 0, "{name}: phantom faults");
        }
        for seed in [5u64, 6] {
            for (plan_name, plan) in recoverable_plans(seed) {
                assert!(plan.is_content_preserving());
                let (delivered, _) = deliver_advice(net, advice, &plan, DELIVERY_BUDGET).unwrap();
                assert_eq!(&delivered, advice, "{name}/{plan_name} seed {seed}");
            }
        }
    }
}

#[test]
fn benign_delivery_keeps_decodes_bit_identical() {
    let net = Network::with_identity_ids(generators::cycle(80));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (direct, direct_stats) = schema.decode(&net, &advice).unwrap();
    for (plan_name, plan) in recoverable_plans(9) {
        let (delivered, _) = deliver_advice(&net, &advice, &plan, DELIVERY_BUDGET).unwrap();
        let (decoded, stats) = schema.decode(&net, &delivered).unwrap();
        assert_eq!(decoded, direct, "{plan_name}");
        assert_eq!(stats.rounds(), direct_stats.rounds(), "{plan_name}");
    }
}

#[test]
fn starvation_is_typed_not_silent() {
    let net = Network::with_identity_ids(generators::cycle(40));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();

    // Blackout: every node starves.
    match deliver_advice(&net, &advice, &FaultPlan::new(8).drop_rate(1.0), 10) {
        Err(RobustDecodeError::Undelivered { nodes }) => assert_eq!(nodes.len(), 40),
        other => panic!("expected Undelivered, got {other:?}"),
    }

    // Crash-stop: exactly the crashed node starves.
    let plan = FaultPlan::new(8).crash(NodeId(7), 0);
    match deliver_advice(&net, &advice, &plan, 10) {
        Err(RobustDecodeError::Undelivered { nodes }) => {
            assert_eq!(nodes, vec![net.uid(NodeId(7))]);
        }
        other => panic!("expected Undelivered, got {other:?}"),
    }

    // A crash *after* delivery started is harmless.
    let plan = FaultPlan::new(8).crash(NodeId(7), 5);
    let (delivered, _) = deliver_advice(&net, &advice, &plan, 10).unwrap();
    assert_eq!(delivered, advice);
}

// ---------------------------------------------------------------------------
// Invariant 3, per schema: corrupted delivery ends typed or checker-valid.
// ---------------------------------------------------------------------------

/// Runs the hostile grid for one checked schema; every cell must end in a
/// typed error or an output that passed the schema's own checker. Returns
/// (accepted, rejected) so callers can assert both outcomes occur.
fn hostile_cells<S, F>(
    net: &Network,
    advice: &local_advice::core::AdviceMap,
    checked: &CheckedSchema<S, F>,
    extra_valid: impl Fn(&S::Output),
) -> (u32, u32)
where
    S: AdviceSchema,
    S::Output: Clone,
    F: Fn(&Network, S::Output) -> Labeling,
{
    let mut accepted = 0;
    let mut rejected = 0;
    for seed in 0..10u64 {
        for (plan_name, plan) in hostile_plans(seed) {
            let delivered = match deliver_advice(net, advice, &plan, DELIVERY_BUDGET) {
                Ok((map, _)) => map,
                Err(RobustDecodeError::Undelivered { .. }) => {
                    rejected += 1;
                    continue;
                }
                Err(other) => panic!("{plan_name}: unexpected delivery error {other:?}"),
            };
            match checked.decode_checked(net, &delivered) {
                Ok((out, _)) => {
                    extra_valid(&out);
                    accepted += 1;
                }
                Err(RobustDecodeError::Decode(_) | RobustDecodeError::Rejected { .. }) => {
                    rejected += 1
                }
                Err(other) => panic!("{plan_name}: unexpected error shape {other:?}"),
            }
        }
    }
    (accepted, rejected)
}

#[test]
fn balanced_schema_is_never_silently_wrong_under_corruption() {
    let net = Network::with_identity_ids(generators::cycle(60));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let lcl = AlmostBalancedOrientation;
    let checked = CheckedSchema::new(&schema, &lcl, orientation_labeling);
    let (accepted, rejected) = hostile_cells(&net, &advice, &checked, |o| {
        assert!(
            o.is_almost_balanced(net.graph()),
            "checker passed an unbalanced orientation"
        );
    });
    assert!(accepted > 0, "no corrupted cell ever recovered or passed");
    assert!(rejected > 0, "no corrupted cell was ever rejected");
}

#[test]
fn three_coloring_schema_is_never_silently_wrong_under_corruption() {
    let (g, _) = generators::random_tripartite([20, 20, 20], 4, 95, 14);
    let net = Network::with_identity_ids(g);
    let schema = ThreeColoringSchema::default();
    let advice = schema.encode(&net).unwrap();
    let lcl = ProperColoring::new(3);
    let checked = CheckedSchema::new(&schema, &lcl, |net: &Network, colors: Vec<usize>| {
        Labeling::from_node_labels(colors, net.graph().m())
    });
    let (accepted, rejected) = hostile_cells(&net, &advice, &checked, |colors| {
        assert!(
            coloring::is_proper_k_coloring(net.graph(), colors, 3),
            "checker passed an improper 3-coloring"
        );
    });
    assert!(accepted + rejected > 0);
    assert!(rejected > 0, "heavy corruption never rejected");
}

#[test]
fn onebit_schema_is_never_silently_wrong_under_corruption() {
    // One-bit placement needs the sparse poly(n) identifier space the
    // LOCAL model allows (identity ids make the walks collide).
    let g = generators::cycle(360);
    let n = g.n();
    let net = Network::with_ids(g, IdAssignment::random_sparse(n, (n as u64).pow(2), 5));
    let schema = OneBitSchema::new(BalancedOrientationSchema::new(16, 90), 2);
    let advice = schema.encode(&net).unwrap();
    let lcl = AlmostBalancedOrientation;
    let checked = CheckedSchema::new(&schema, &lcl, orientation_labeling);
    let (accepted, rejected) = hostile_cells(&net, &advice, &checked, |o| {
        assert!(o.is_almost_balanced(net.graph()));
    });
    assert_eq!(
        accepted + rejected,
        HOSTILE_CELLS,
        "a cell went unaccounted"
    );
    assert!(rejected > 0, "one-bit advice corruption never caught");
}

#[test]
fn decompression_under_corruption_never_panics_or_lies_about_shape() {
    let g = generators::grid2d(7, 7, true);
    let m = g.m();
    let net = Network::with_identity_ids(g);
    let subset: Vec<bool> = (0..m).map(|i| i % 3 == 0).collect();
    let codec = EdgeSubsetCodec::default();
    let advice = codec.compress(&net, &subset).unwrap();

    // Benign plans: the decompressed subset is bit-identical.
    for (plan_name, plan) in recoverable_plans(15) {
        let (delivered, _) = deliver_advice(&net, &advice, &plan, DELIVERY_BUDGET).unwrap();
        let (decoded, _) = codec.decompress(&net, &delivered).unwrap();
        assert_eq!(decoded, subset, "{plan_name}");
    }

    // Hostile plans: compression is not error-correcting, so a corrupted
    // payload may decode to a *different* subset — but it must never
    // panic and never return a wrong-length vector, and heavy corruption
    // must be caught at least sometimes.
    let mut errors = 0;
    for seed in 0..10u64 {
        for (_, plan) in hostile_plans(seed) {
            let delivered = match deliver_advice(&net, &advice, &plan, DELIVERY_BUDGET) {
                Ok((map, _)) => map,
                Err(_) => {
                    errors += 1;
                    continue;
                }
            };
            match codec.decompress(&net, &delivered) {
                Ok((decoded, _)) => assert_eq!(decoded.len(), m),
                Err(_) => errors += 1,
            }
        }
    }
    assert!(errors > 0, "corruption was never caught outright");
}

// ---------------------------------------------------------------------------
// Balanced, fully transported: decode over the fault-injecting transport.
// ---------------------------------------------------------------------------

#[test]
fn gathered_decode_fault_free_matches_direct_decode() {
    for g in [
        generators::cycle(48),
        generators::random_even_degree(40, 3, 10, 2),
    ] {
        let net = Network::with_identity_ids(g);
        let schema = BalancedOrientationSchema::default();
        let advice = schema.encode(&net).unwrap();
        let (direct, _) = schema.decode(&net, &advice).unwrap();
        let budget = schema.decode_radius() + 3;
        let (o, report) =
            decode_gathered(&schema, &net, &advice, &mut PerfectLink, budget).unwrap();
        assert_eq!(o, direct);
        assert_eq!(report.rounds_used, schema.decode_radius());
        assert_eq!(report.faults.total_faults(), 0);

        // A fault-free FaultRun behaves exactly like PerfectLink.
        let plan = FaultPlan::new(99);
        let mut run = plan.start();
        let (o2, report2) = decode_gathered(&schema, &net, &advice, &mut run, budget).unwrap();
        assert_eq!(o2, direct);
        assert_eq!(report2.rounds_used, report.rounds_used);
    }
}

#[test]
fn gathered_decode_heals_drops_within_budget() {
    let net = Network::with_identity_ids(generators::cycle(44));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (direct, _) = schema.decode(&net, &advice).unwrap();
    let budget = schema.decode_radius() + 15;
    for seed in [61u64, 62] {
        let plan = FaultPlan::new(seed).drop_rate(0.10);
        let mut run = plan.start();
        let (o, report) = decode_gathered(&schema, &net, &advice, &mut run, budget)
            .unwrap_or_else(|e| panic!("seed {seed}: did not heal: {e}"));
        assert_eq!(o, direct, "seed {seed}");
        assert!(report.rounds_used <= budget);
        assert!(report.faults.dropped > 0, "seed {seed}: inert plan");
    }
}

#[test]
fn gathered_decode_under_corruption_is_loud_or_checker_valid() {
    let net = Network::with_identity_ids(generators::cycle(40));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let lcl = AlmostBalancedOrientation;
    let budget = schema.decode_radius() + 6;
    let mut rejected = 0;
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed).corrupt_rate(0.04);
        let mut run = plan.start();
        match decode_gathered_checked(&schema, &net, &advice, &mut run, budget, &lcl) {
            Ok((o, _)) => assert!(o.is_almost_balanced(net.graph())),
            Err(
                RobustDecodeError::Gather(_)
                | RobustDecodeError::Decode(_)
                | RobustDecodeError::Rejected { .. },
            ) => rejected += 1,
            Err(other) => panic!("seed {seed}: unexpected error shape {other:?}"),
        }
    }
    assert!(rejected > 0, "transport corruption never surfaced");
}

#[test]
fn gathered_decode_replays_identically() {
    let net = Network::with_identity_ids(generators::cycle(36));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let budget = schema.decode_radius() + 8;
    for (plan_name, plan) in [
        ("drop", FaultPlan::new(7).drop_rate(0.2)),
        ("corrupt", FaultPlan::new(7).corrupt_rate(0.05)),
        (
            "mixed",
            FaultPlan::new(7)
                .drop_rate(0.1)
                .corrupt_rate(0.02)
                .delay(0.2, 2),
        ),
    ] {
        let mut run_a = plan.start();
        let res_a = decode_gathered(&schema, &net, &advice, &mut run_a, budget);
        let mut run_b = plan.start();
        let res_b = decode_gathered(&schema, &net, &advice, &mut run_b, budget);
        assert_eq!(
            format!("{res_a:?}"),
            format!("{res_b:?}"),
            "{plan_name}: outcome not reproducible"
        );
        use local_advice::runtime::Transport;
        assert_eq!(
            run_a.fault_stats(),
            run_b.fault_stats(),
            "{plan_name}: fault tally drifted"
        );
    }
}
