//! Schema-level differential tests for the memoized decode path.
//!
//! The runtime-level harness (`crates/runtime/tests/memo.rs`) proves
//! `run_local_memo*` ≡ `run_local` on arbitrary order-invariant steps;
//! these tests close the loop at the public schema API: for every schema
//! that declares [`AdviceSchema::decoder_order_invariant`], the production
//! `decode` (which memoizes) must match the schema's `decode_reference`
//! oracle (which runs the unshared per-node reference executor) — outputs
//! *and* round statistics, on honest advice and on tampered advice (same
//! rejection, same node), under every thread override.
//!
//! `set_thread_override` is process-global, so tests that use it serialize
//! on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::bits::BitString;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::delta_coloring::DeltaColoringSchema;
use local_advice::core::schema::AdviceSchema;
use local_advice::graph::{generators, Graph, IdAssignment};
use local_advice::runtime::{set_thread_override, Network};

/// Serializes tests that mutate the process-global thread override.
fn override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn sparse_ids(g: Graph, seed: u64) -> Network {
    let n = g.n();
    let space = (n as u64).pow(2).max(16);
    Network::with_ids(g, IdAssignment::random_sparse(n, space, seed))
}

/// Families with shared structure (memo hits), scrambled-uid randomness
/// (memo misses), and wrap-around tori (every ball overlaps itself).
fn family_grid() -> Vec<Network> {
    vec![
        sparse_ids(generators::cycle(150), 41),
        sparse_ids(generators::path(150), 42),
        sparse_ids(generators::grid2d(9, 9, true), 43),
        sparse_ids(generators::grid2d(14, 14, true), 44),
        sparse_ids(generators::random_bounded_degree(120, 6, 260, 3), 45),
        Network::with_identity_ids(generators::grid2d(12, 12, true)),
    ]
}

#[test]
fn schemas_declare_order_invariance() {
    assert!(ClusterColoringSchema::default().decoder_order_invariant());
    assert!(BalancedOrientationSchema::default().decoder_order_invariant());
    assert!(DeltaColoringSchema::default().decoder_order_invariant());
}

#[test]
fn cluster_memo_decode_matches_reference_oracle() {
    let _guard = override_lock();
    let schema = ClusterColoringSchema::default();
    for net in family_grid() {
        let advice = schema.encode(&net).expect("encode");
        let expected = schema.decode_reference(&net, &advice).expect("reference");
        for threads in [Some(1), Some(2), Some(5), None] {
            set_thread_override(threads);
            let got = schema.decode(&net, &advice).expect("memo decode");
            assert_eq!(got, expected, "thread override {threads:?}");
        }
        set_thread_override(None);
    }
}

#[test]
fn balanced_memo_decode_matches_reference_oracle() {
    let _guard = override_lock();
    let schema = BalancedOrientationSchema::default();
    for net in family_grid() {
        let advice = schema.encode(&net).expect("encode");
        let expected = schema.decode_reference(&net, &advice).expect("reference");
        for threads in [Some(1), Some(2), Some(5), None] {
            set_thread_override(threads);
            let got = schema.decode(&net, &advice).expect("memo decode");
            assert_eq!(got, expected, "thread override {threads:?}");
        }
        set_thread_override(None);
    }
}

#[test]
fn tampered_advice_rejected_identically_on_both_paths() {
    // Tampering must be detected by the memoized path with *exactly* the
    // error the reference path reports — same variant, same node — because
    // the memo replays the smallest failing node rather than sharing a
    // stored error across its class.
    let schema = ClusterColoringSchema::default();
    for net in family_grid() {
        let advice = schema.encode(&net).expect("encode");
        for victim in [0usize, net.graph().n() / 2] {
            let mut tampered = advice.clone();
            // A 1-bit string has the wrong width wherever a decoder treats
            // the victim as a cluster center.
            tampered.set(lad_runtime_node(victim), BitString::one_bit(true));
            let want = schema.decode_reference(&net, &tampered);
            let got = schema.decode(&net, &tampered);
            assert_eq!(got.is_ok(), want.is_ok(), "victim {victim}");
            if let (Err(g), Err(w)) = (&got, &want) {
                assert_eq!(g, w, "victim {victim}: different rejections");
            }
        }
    }
}

fn lad_runtime_node(i: usize) -> local_advice::graph::NodeId {
    local_advice::graph::NodeId(u32::try_from(i).expect("test sizes fit u32"))
}

#[test]
fn delta_and_codec_ride_the_memo_path() {
    // Δ-coloring decodes through the memoized cluster decoder and the edge
    // codec through the memoized orientation decoder; both must still
    // produce verified outputs end to end.
    let net = Network::with_identity_ids(generators::grid2d(12, 12, true));
    let delta = net.graph().max_degree();
    let schema = DeltaColoringSchema::default();
    let advice = schema.encode(&net).expect("encode");
    let (colors, _) = schema.decode(&net, &advice).expect("decode");
    assert!(local_advice::graph::coloring::is_proper_k_coloring(
        net.graph(),
        &colors,
        delta
    ));

    let codec = EdgeSubsetCodec::default();
    let subset: Vec<bool> = (0..net.graph().m()).map(|e| e % 3 == 0).collect();
    let (decoded, _, _) = codec.round_trip(&net, &subset).expect("round trip");
    assert_eq!(decoded, subset);
}
