//! Failure-injection suite: systematically corrupt advice and assert the
//! library never *silently* returns an invalid output — every decode
//! either errors, or its output still validates. This is the operational
//! form of the soundness the locally-checkable-proof corollary
//! (Section 1.2) needs from the decoders.

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::bits::BitString;
use local_advice::core::checked::{CheckedSchema, RobustDecodeError};
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::proofs::orientation_labeling;
use local_advice::core::schema::AdviceSchema;
use local_advice::core::splitting::{is_valid_splitting, SplittingSchema};
use local_advice::core::three_coloring::ThreeColoringSchema;
use local_advice::core::AdviceMap;
use local_advice::graph::mutate::{Edit, MutableGraph};
use local_advice::graph::{coloring, generators, NodeId};
use local_advice::lcl::problems::AlmostBalancedOrientation;
use local_advice::runtime::Network;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Applies one random mutation to the advice map: flip a bit, truncate a
/// string, extend a string, or clear a holder.
fn mutate(advice: &AdviceMap, rng: &mut ChaCha8Rng) -> AdviceMap {
    let mut out = advice.clone();
    let n = advice.n();
    let v = NodeId::from_index(rng.random_range(0..n));
    let s = out.get(v).clone();
    let mutated = match rng.random_range(0..4) {
        0 => {
            // Flip a bit (or set a fresh 1 on an empty string).
            if s.is_empty() {
                BitString::one_bit(true)
            } else {
                let i = rng.random_range(0..s.len());
                s.iter()
                    .enumerate()
                    .map(|(j, b)| if j == i { !b } else { b })
                    .collect()
            }
        }
        1 => {
            // Truncate.
            s.iter().take(s.len().saturating_sub(1)).collect()
        }
        2 => {
            // Extend with a random bit.
            let mut t = s.clone();
            t.push(rng.random_range(0..2) == 1);
            t
        }
        _ => BitString::new(), // clear
    };
    out.set(v, mutated);
    out
}

/// Runs `trials` mutations against a schema; `validate` decides whether a
/// decoded output is acceptable. Returns (errors, valid outputs) — their
/// sum must equal the number of trials (no third outcome exists, which is
/// the point: panics or silently-invalid outputs fail the test).
fn tamper_trials<S: AdviceSchema>(
    schema: &S,
    net: &Network,
    advice: &AdviceMap,
    trials: usize,
    seed: u64,
    validate: impl Fn(&S::Output) -> bool,
) -> (usize, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut errors = 0;
    let mut valid = 0;
    for _ in 0..trials {
        let bad = mutate(advice, &mut rng);
        match schema.decode(net, &bad) {
            Err(_) => errors += 1,
            Ok((out, _)) => {
                assert!(
                    validate(&out),
                    "schema {} produced a silently invalid output",
                    schema.name()
                );
                valid += 1;
            }
        }
    }
    (errors, valid)
}

#[test]
fn balanced_orientation_tamper() {
    let net = Network::with_identity_ids(generators::cycle(140));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 40, 1, |o| {
        o.is_almost_balanced(net.graph())
    });
    assert_eq!(errors + valid, 40);
    assert!(errors > 0, "some corruption must be caught outright");
}

#[test]
fn cluster_coloring_tamper() {
    let g = generators::random_bounded_degree(90, 5, 190, 2);
    let net = Network::with_identity_ids(g);
    let schema = ClusterColoringSchema::default();
    let advice = schema.encode(&net).unwrap();
    // The decoder validates properness itself, so any accepted output is
    // proper (it may use more than Δ+1 colors under corrupted cluster
    // colors, which the paper's verifier would also tolerate only if the
    // final check allows it — we check bare properness here).
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 3, |colors| {
        coloring::is_proper_coloring(net.graph(), colors)
    });
    assert_eq!(errors + valid, 30);
}

#[test]
fn three_coloring_tamper() {
    let (g, _) = generators::random_tripartite([20, 20, 20], 4, 95, 4);
    let net = Network::with_identity_ids(g);
    let schema = ThreeColoringSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 5, |colors| {
        // Soundness bar for 3-coloring: whatever decodes must be proper
        // with 3 colors OR be caught by the re-checking verifier — here we
        // accept any output whose labels are in range; properness is the
        // proof-system layer's job (covered in proofs.rs). What must NOT
        // happen is a panic or an out-of-range label.
        colors.iter().all(|&c| c < 3)
    });
    assert_eq!(errors + valid, 30);
}

#[test]
fn splitting_tamper() {
    let g = generators::random_bipartite_regular(18, 4, 6);
    let net = Network::with_identity_ids(g);
    let schema = SplittingSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 7, |labels| {
        // Corrupted parity anchors can only swap red/blue *consistently*
        // (the orientation stays balanced), so outputs either fail decode
        // or remain valid splittings.
        is_valid_splitting(net.graph(), labels)
    });
    assert_eq!(errors + valid, 30);
}

// ---------------------------------------------------------------------------
// Stale advice under churn: advice encoded for one graph, decoded against a
// mutated one. The churn session (`core::churn`) repairs advice in lockstep
// with edits; these tests pin what happens when that repair is *skipped* —
// the checked decoder must reject the stale map, never silently release an
// unverified orientation.
// ---------------------------------------------------------------------------

/// Runs `decode_checked` with stale advice against a mutated network and
/// classifies the outcome. Returns `true` when the decode was rejected
/// outright; panics on a silently invalid acceptance or an unexpected
/// error shape.
fn stale_decode_is_rejected(
    schema: &BalancedOrientationSchema,
    net: &Network,
    stale: &AdviceMap,
    tag: &str,
) -> bool {
    let lcl = AlmostBalancedOrientation;
    let checked = CheckedSchema::new(schema, &lcl, orientation_labeling);
    match checked.decode_checked(net, stale) {
        Err(RobustDecodeError::Decode(_) | RobustDecodeError::Rejected { .. }) => true,
        Err(other) => panic!("{tag}: unexpected error shape: {other:?}"),
        Ok((o, _)) => {
            // Sound by construction — the checker verified it — but it must
            // really be valid, or the checker layer is broken.
            assert!(
                o.is_almost_balanced(net.graph()),
                "{tag}: checker released an invalid orientation"
            );
            false
        }
    }
}

#[test]
fn advice_stranded_on_deleted_edges_is_rejected() {
    // Degree-4 torus: deleting any edge drops its endpoints to degree 3,
    // which re-pairs their slots and shrinks the record width their stale
    // strings were encoded at. Any walk consulting such a holder hits a
    // typed malformed-advice error. (The handful of deletions whose
    // walks never consult a stale holder decode to the *restriction* of
    // the original orientation, which is genuinely still almost balanced
    // — acceptance there is sound, not a miss.)
    let g = generators::grid2d(6, 6, true);
    let net = Network::with_identity_ids(g.clone());
    let schema = BalancedOrientationSchema::new(4, 3);
    let advice = schema.encode(&net).unwrap();
    let mut rejected = 0;
    let edges: Vec<_> = g.edges().map(|(_, e)| e).collect();
    let m = edges.len();
    for (u, v) in edges {
        let mut mg = MutableGraph::new(g.clone());
        mg.apply(&[Edit::Remove(u, v)]);
        let net_b = Network::with_identity_ids(mg.graph().clone());
        if stale_decode_is_rejected(&schema, &net_b, &advice, "deleted-edge") {
            rejected += 1;
        }
    }
    assert!(
        rejected > m / 2,
        "only {rejected}/{m} deletions were caught: stale records on re-paired \
         slots must not decode cleanly"
    );
}

#[test]
fn advice_stale_after_insertion_leaves_new_edges_unclaimed() {
    // Inserting a chord without repairing advice either leaves the new
    // edge outside every walk (aggregation then fails typed: an almost
    // balanced orientation must orient *every* edge), or re-pairs the
    // endpoints' slots so stale walks reroute across the chord — which
    // must still end in a typed rejection or a checker-verified output,
    // never a silently invalid one.
    let g = generators::cycle(40);
    let net = Network::with_identity_ids(g.clone());
    let schema = BalancedOrientationSchema::new(4, 3);
    let advice = schema.encode(&net).unwrap();
    let mut rejected = 0;
    for i in 0..8usize {
        let (u, v) = (NodeId((i * 5) as u32), NodeId(((i * 5 + 13) % 40) as u32));
        let mut mg = MutableGraph::new(g.clone());
        mg.apply(&[Edit::Insert(u, v)]);
        let net_b = Network::with_identity_ids(mg.graph().clone());
        if stale_decode_is_rejected(&schema, &net_b, &advice, "inserted-chord") {
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "no chord insertion was caught — an unclaimed chord must fail aggregation"
    );
}

#[test]
fn advice_held_by_stale_holders_is_rejected() {
    // Simulates holders going stale without any graph change: every string
    // sits one node away from where the encoder put it (as if a repair
    // relocated anchors but the old map was served). Degrees are uniform,
    // so each string still *parses* — rejection has to come from the walk
    // semantics (conflicting or missing claims) or the checker, not from a
    // length mismatch.
    let g = generators::cycle(48);
    let net = Network::with_identity_ids(g);
    let schema = BalancedOrientationSchema::new(4, 3);
    let advice = schema.encode(&net).unwrap();
    let n = advice.n();
    let mut shifted = AdviceMap::empty(n);
    for i in 0..n {
        let from = NodeId::from_index(i);
        let to = NodeId::from_index((i + 1) % n);
        let s = advice.get(from).clone();
        if !s.is_empty() {
            shifted.set(to, s);
        }
    }
    assert!(
        stale_decode_is_rejected(&schema, &net, &shifted, "shifted-holders"),
        "advice shifted to stale holders decoded cleanly"
    );
}

#[test]
fn repaired_advice_after_churn_passes_decode_checked() {
    // The positive control: the same mutations with the repair actually
    // applied (via the churn session) must sail through `decode_checked`.
    // Rejection above is meaningful only if repair restores acceptance.
    use local_advice::core::churn::BalancedChurnSession;
    let g = generators::cycle(36);
    let net = Network::with_identity_ids(g);
    let schema = BalancedOrientationSchema::new(4, 3);
    let mut session = BalancedChurnSession::new(net, schema).unwrap();
    session
        .apply(&[
            Edit::Remove(NodeId(5), NodeId(6)),
            Edit::Insert(NodeId(2), NodeId(20)),
        ])
        .unwrap();
    let net_b = Network::new(
        session.graph().clone(),
        session.network().ids().clone(),
        vec![(); session.graph().n()],
    );
    let lcl = AlmostBalancedOrientation;
    let checked = CheckedSchema::new(&schema, &lcl, orientation_labeling);
    let (o, _) = checked
        .decode_checked(&net_b, session.advice())
        .expect("repaired advice must decode and verify");
    assert_eq!(&o, session.orientation());
}

#[test]
fn decompress_tamper_never_panics() {
    let g = generators::grid2d(8, 8, true);
    let m = g.m();
    let net = Network::with_identity_ids(g);
    let subset: Vec<bool> = (0..m).map(|i| i % 4 == 0).collect();
    let codec = EdgeSubsetCodec::default();
    let advice = codec.compress(&net, &subset).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut errors = 0;
    for _ in 0..40 {
        let bad = mutate(&advice, &mut rng);
        if codec.decompress(&net, &bad).is_err() {
            errors += 1;
        }
        // A successful decode of corrupted data may return a different
        // subset — compression is not error-correcting — but it must
        // never panic or return a wrong-length vector.
        if let Ok((decoded, _)) = codec.decompress(&net, &bad) {
            assert_eq!(decoded.len(), m);
        }
    }
    assert!(errors > 0);
}
