//! Failure-injection suite: systematically corrupt advice and assert the
//! library never *silently* returns an invalid output — every decode
//! either errors, or its output still validates. This is the operational
//! form of the soundness the locally-checkable-proof corollary
//! (Section 1.2) needs from the decoders.

use local_advice::core::balanced::BalancedOrientationSchema;
use local_advice::core::bits::BitString;
use local_advice::core::cluster_coloring::ClusterColoringSchema;
use local_advice::core::decompress::EdgeSubsetCodec;
use local_advice::core::schema::AdviceSchema;
use local_advice::core::splitting::{is_valid_splitting, SplittingSchema};
use local_advice::core::three_coloring::ThreeColoringSchema;
use local_advice::core::AdviceMap;
use local_advice::graph::{coloring, generators, NodeId};
use local_advice::runtime::Network;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Applies one random mutation to the advice map: flip a bit, truncate a
/// string, extend a string, or clear a holder.
fn mutate(advice: &AdviceMap, rng: &mut ChaCha8Rng) -> AdviceMap {
    let mut out = advice.clone();
    let n = advice.n();
    let v = NodeId::from_index(rng.random_range(0..n));
    let s = out.get(v).clone();
    let mutated = match rng.random_range(0..4) {
        0 => {
            // Flip a bit (or set a fresh 1 on an empty string).
            if s.is_empty() {
                BitString::one_bit(true)
            } else {
                let i = rng.random_range(0..s.len());
                s.iter()
                    .enumerate()
                    .map(|(j, b)| if j == i { !b } else { b })
                    .collect()
            }
        }
        1 => {
            // Truncate.
            s.iter().take(s.len().saturating_sub(1)).collect()
        }
        2 => {
            // Extend with a random bit.
            let mut t = s.clone();
            t.push(rng.random_range(0..2) == 1);
            t
        }
        _ => BitString::new(), // clear
    };
    out.set(v, mutated);
    out
}

/// Runs `trials` mutations against a schema; `validate` decides whether a
/// decoded output is acceptable. Returns (errors, valid outputs) — their
/// sum must equal the number of trials (no third outcome exists, which is
/// the point: panics or silently-invalid outputs fail the test).
fn tamper_trials<S: AdviceSchema>(
    schema: &S,
    net: &Network,
    advice: &AdviceMap,
    trials: usize,
    seed: u64,
    validate: impl Fn(&S::Output) -> bool,
) -> (usize, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut errors = 0;
    let mut valid = 0;
    for _ in 0..trials {
        let bad = mutate(advice, &mut rng);
        match schema.decode(net, &bad) {
            Err(_) => errors += 1,
            Ok((out, _)) => {
                assert!(
                    validate(&out),
                    "schema {} produced a silently invalid output",
                    schema.name()
                );
                valid += 1;
            }
        }
    }
    (errors, valid)
}

#[test]
fn balanced_orientation_tamper() {
    let net = Network::with_identity_ids(generators::cycle(140));
    let schema = BalancedOrientationSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 40, 1, |o| {
        o.is_almost_balanced(net.graph())
    });
    assert_eq!(errors + valid, 40);
    assert!(errors > 0, "some corruption must be caught outright");
}

#[test]
fn cluster_coloring_tamper() {
    let g = generators::random_bounded_degree(90, 5, 190, 2);
    let net = Network::with_identity_ids(g);
    let schema = ClusterColoringSchema::default();
    let advice = schema.encode(&net).unwrap();
    // The decoder validates properness itself, so any accepted output is
    // proper (it may use more than Δ+1 colors under corrupted cluster
    // colors, which the paper's verifier would also tolerate only if the
    // final check allows it — we check bare properness here).
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 3, |colors| {
        coloring::is_proper_coloring(net.graph(), colors)
    });
    assert_eq!(errors + valid, 30);
}

#[test]
fn three_coloring_tamper() {
    let (g, _) = generators::random_tripartite([20, 20, 20], 4, 95, 4);
    let net = Network::with_identity_ids(g);
    let schema = ThreeColoringSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 5, |colors| {
        // Soundness bar for 3-coloring: whatever decodes must be proper
        // with 3 colors OR be caught by the re-checking verifier — here we
        // accept any output whose labels are in range; properness is the
        // proof-system layer's job (covered in proofs.rs). What must NOT
        // happen is a panic or an out-of-range label.
        colors.iter().all(|&c| c < 3)
    });
    assert_eq!(errors + valid, 30);
}

#[test]
fn splitting_tamper() {
    let g = generators::random_bipartite_regular(18, 4, 6);
    let net = Network::with_identity_ids(g);
    let schema = SplittingSchema::default();
    let advice = schema.encode(&net).unwrap();
    let (errors, valid) = tamper_trials(&schema, &net, &advice, 30, 7, |labels| {
        // Corrupted parity anchors can only swap red/blue *consistently*
        // (the orientation stays balanced), so outputs either fail decode
        // or remain valid splittings.
        is_valid_splitting(net.graph(), labels)
    });
    assert_eq!(errors + valid, 30);
}

#[test]
fn decompress_tamper_never_panics() {
    let g = generators::grid2d(8, 8, true);
    let m = g.m();
    let net = Network::with_identity_ids(g);
    let subset: Vec<bool> = (0..m).map(|i| i % 4 == 0).collect();
    let codec = EdgeSubsetCodec::default();
    let advice = codec.compress(&net, &subset).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut errors = 0;
    for _ in 0..40 {
        let bad = mutate(&advice, &mut rng);
        if codec.decompress(&net, &bad).is_err() {
            errors += 1;
        }
        // A successful decode of corrupted data may return a different
        // subset — compression is not error-correcting — but it must
        // never panic or return a wrong-length vector.
        if let Ok((decoded, _)) = codec.decompress(&net, &bad) {
            assert_eq!(decoded.len(), m);
        }
    }
    assert!(errors > 0);
}
