//! Views and labelings for LCL checking.

use lad_graph::{EdgeId, Graph, NodeId};

/// The outcome of evaluating an LCL constraint on a partial labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every completion satisfies the constraint.
    Satisfied,
    /// No completion satisfies the constraint.
    Violated,
    /// Not enough labels to decide.
    Undetermined,
}

impl Verdict {
    /// Whether the verdict rules out the labeling.
    pub fn is_violated(self) -> bool {
        self == Verdict::Violated
    }
}

/// A complete labeling of a graph: one node label per node and one edge
/// label per edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labeling {
    /// Node labels indexed by node.
    pub nodes: Vec<usize>,
    /// Edge labels indexed by edge.
    pub edges: Vec<usize>,
}

impl Labeling {
    /// A labeling with the given node labels and all-zero edge labels.
    pub fn from_node_labels(nodes: Vec<usize>, m: usize) -> Self {
        Labeling {
            nodes,
            edges: vec![0; m],
        }
    }

    /// A labeling with the given edge labels and all-zero node labels.
    pub fn from_edge_labels(edges: Vec<usize>, n: usize) -> Self {
        Labeling {
            nodes: vec![0; n],
            edges,
        }
    }
}

/// A (possibly partially labeled) local view handed to
/// [`crate::Lcl::verdict`].
///
/// The `graph` is either a ball-local graph (distributed verification) or a
/// region graph (brute-force completion); in both cases the constraint at
/// `center` must be fully determined by the view when all its labels are
/// `Some`.
#[derive(Debug, Clone, Copy)]
pub struct LclView<'a> {
    /// The view's graph.
    pub graph: &'a Graph,
    /// The node whose constraint is being evaluated.
    pub center: NodeId,
    /// Unique identifiers, indexed by `graph` node (orientation-style edge
    /// labels are interpreted relative to these).
    pub uids: &'a [u64],
    /// True degrees in the underlying network (a view may clip edges).
    pub true_degree: &'a [usize],
    /// Input labels (`Σ_in` of the LCL definition), indexed by `graph`
    /// node. Problems without inputs see all-zeros.
    pub node_inputs: &'a [usize],
    /// Node labels (`None` = not yet assigned), indexed by `graph` node.
    pub node_labels: &'a [Option<usize>],
    /// Edge labels (`None` = not yet assigned), indexed by `graph` edge.
    pub edge_labels: &'a [Option<usize>],
}

impl<'a> LclView<'a> {
    /// Whether the view contains all edges of `v` (its view degree matches
    /// its true degree).
    pub fn sees_all_edges_of(&self, v: NodeId) -> bool {
        self.graph.degree(v) == self.true_degree[v.index()]
    }

    /// The label of `v`, if assigned.
    pub fn node_label(&self, v: NodeId) -> Option<usize> {
        self.node_labels[v.index()]
    }

    /// The input label of `v`.
    pub fn node_input(&self, v: NodeId) -> usize {
        self.node_inputs[v.index()]
    }

    /// The label of `e`, if assigned.
    pub fn edge_label(&self, e: EdgeId) -> Option<usize> {
        self.edge_labels[e.index()]
    }

    /// For an orientation-style edge label (0 = smaller UID → larger UID),
    /// whether `e` is oriented *out of* `v`, if labeled.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn oriented_out_of(&self, e: EdgeId, v: NodeId) -> Option<bool> {
        let label = self.edge_label(e)?;
        let u = self.graph.other_endpoint(e, v);
        let v_is_smaller = self.uids[v.index()] < self.uids[u.index()];
        Some(if v_is_smaller { label == 0 } else { label == 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn oriented_out_of_respects_uids() {
        let g = generators::path(2);
        let uids = [10u64, 5];
        let deg = [1usize, 1];
        let nl = [None, None];
        // Label 0: from smaller uid (node 1) to larger (node 0).
        let el = [Some(0usize)];
        let inputs = [0u64 as usize; 2];
        let view = LclView {
            graph: &g,
            center: NodeId(0),
            uids: &uids,
            true_degree: &deg,
            node_inputs: &inputs,
            node_labels: &nl,
            edge_labels: &el,
        };
        let e = EdgeId(0);
        assert_eq!(view.oriented_out_of(e, NodeId(1)), Some(true));
        assert_eq!(view.oriented_out_of(e, NodeId(0)), Some(false));
    }

    #[test]
    fn sees_all_edges() {
        let g = generators::path(3);
        let uids = [1u64, 2, 3];
        let deg = [1usize, 5, 2]; // node 1 pretends to have degree 5
        let view = LclView {
            graph: &g,
            center: NodeId(1),
            uids: &uids,
            true_degree: &deg,
            node_inputs: &[0, 0, 0],
            node_labels: &[None, None, None],
            edge_labels: &[None, None],
        };
        assert!(view.sees_all_edges_of(NodeId(0)));
        assert!(!view.sees_all_edges_of(NodeId(1)));
    }

    #[test]
    fn labeling_constructors() {
        let l = Labeling::from_node_labels(vec![1, 2], 3);
        assert_eq!(l.edges, vec![0, 0, 0]);
        let l = Labeling::from_edge_labels(vec![1], 2);
        assert_eq!(l.nodes, vec![0, 0]);
    }
}
