//! Centralized witness solvers.
//!
//! Advice encoders are centralized and computationally unbounded (the
//! "prover" side of the paper), so they may compute a full solution first
//! and then encode just enough of it. These helpers produce witness
//! solutions efficiently where a polynomial algorithm exists, falling back
//! to [`crate::brute::solve`] otherwise.

use crate::brute::{self, CompleteError};
use crate::problems::ProperColoring;
use crate::view::Labeling;
use lad_graph::{coloring, ruling, EdgeId, Graph, NodeId};

/// A maximal matching computed greedily over edges in id order, as edge
/// labels (1 = matched).
pub fn greedy_maximal_matching(g: &Graph) -> Vec<usize> {
    let mut matched_node = vec![false; g.n()];
    let mut labels = vec![0usize; g.m()];
    for (e, (u, v)) in g.edges() {
        if !matched_node[u.index()] && !matched_node[v.index()] {
            labels[e.index()] = 1;
            matched_node[u.index()] = true;
            matched_node[v.index()] = true;
        }
    }
    labels
}

/// A maximal independent set as node labels (1 = in the set), greedily in
/// UID order.
pub fn greedy_mis_labels(g: &Graph, uids: &[u64]) -> Vec<usize> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| uids[v.index()]);
    let mis = ruling::greedy_mis(g, &order);
    let mut labels = vec![0usize; g.n()];
    for v in mis {
        labels[v.index()] = 1;
    }
    labels
}

/// A proper `k`-coloring witness: greedy in UID order if it happens to fit
/// in `k` colors, otherwise exhaustive search (subject to `cap` steps).
///
/// # Errors
///
/// Propagates [`CompleteError`] when no `k`-coloring exists or the search
/// budget is exhausted.
pub fn proper_coloring_witness(
    g: &Graph,
    uids: &[u64],
    k: usize,
    cap: u64,
) -> Result<Vec<usize>, CompleteError> {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| uids[v.index()]);
    let greedy = coloring::greedy_coloring(g, &order);
    if greedy.iter().all(|&c| c < k) {
        return Ok(greedy);
    }
    let (nl, _) = brute::solve(g, uids, &ProperColoring::new(k), cap)?;
    Ok(nl)
}

/// Converts a node-label vector into a [`Labeling`] for a graph with `m`
/// edges.
pub fn node_labeling(nodes: Vec<usize>, m: usize) -> Labeling {
    Labeling::from_node_labels(nodes, m)
}

/// Edge labels encoding an orientation relative to UIDs: label 0 on edge
/// `{u, v}` means "oriented from the smaller-UID endpoint to the larger".
pub fn orientation_labels(
    g: &Graph,
    uids: &[u64],
    orientation: &lad_graph::Orientation,
) -> Vec<usize> {
    g.edge_ids()
        .map(|e: EdgeId| {
            let tail = orientation.tail(g, e);
            let head = orientation.head(g, e);
            if uids[tail.index()] < uids[head.index()] {
                0
            } else {
                1
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{AlmostBalancedOrientation, MaximalMatching, Mis};
    use crate::verify::verify_centralized;
    use lad_graph::{generators, EulerPartition};
    use lad_runtime::Network;

    #[test]
    fn greedy_matching_is_maximal() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(60, 6, 120, seed);
            let labels = greedy_maximal_matching(&g);
            let net = Network::with_identity_ids(g);
            let l = Labeling::from_edge_labels(labels, net.graph().n());
            assert!(verify_centralized(&net, &MaximalMatching, &l).is_empty());
        }
    }

    #[test]
    fn greedy_mis_labels_valid() {
        let g = generators::grid2d(5, 5, false);
        let uids: Vec<u64> = (1..=25).collect();
        let labels = greedy_mis_labels(&g, &uids);
        let net = Network::with_identity_ids(g);
        let l = Labeling::from_node_labels(labels, net.graph().m());
        assert!(verify_centralized(&net, &Mis, &l).is_empty());
    }

    #[test]
    fn coloring_witness_greedy_path() {
        let g = generators::cycle(10);
        let uids: Vec<u64> = (1..=10).collect();
        let c = proper_coloring_witness(&g, &uids, 3, 1000).unwrap();
        assert!(coloring::is_proper_k_coloring(&g, &c, 3));
    }

    #[test]
    fn coloring_witness_needs_brute_force() {
        // Odd cycle needs 3 colors but greedy in adversarial uid order can
        // use 3 anyway; force k = 3 exact on a graph where greedy uses 4:
        // the 5-wheel (cycle of 5 + hub) is 4-chromatic, so ask for 4.
        let mut b = lad_graph::GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 5));
            b.add_edge(NodeId::from_index(i), NodeId(5));
        }
        let g = b.build();
        let uids: Vec<u64> = (1..=6).collect();
        let c = proper_coloring_witness(&g, &uids, 4, 1_000_000).unwrap();
        assert!(coloring::is_proper_k_coloring(&g, &c, 4));
        assert!(proper_coloring_witness(&g, &uids, 3, 1_000_000).is_err());
    }

    #[test]
    fn orientation_labels_roundtrip() {
        let g = generators::random_even_degree(30, 5, 6, 2);
        let uids: Vec<u64> = (1..=30).collect();
        let o = EulerPartition::new(&g, &uids).orient_all_forward(&g);
        let labels = orientation_labels(&g, &uids, &o);
        let net = Network::with_identity_ids(g);
        let l = Labeling::from_edge_labels(labels, net.graph().n());
        assert!(verify_centralized(&net, &AlmostBalancedOrientation, &l).is_empty());
    }
}
