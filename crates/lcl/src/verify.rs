//! Verifying labelings against an LCL, both distributedly (ball views, the
//! honest LOCAL way) and centrally (fast path for encoders and tests).

use crate::view::{Labeling, LclView, Verdict};
use crate::Lcl;
use lad_graph::NodeId;
use lad_runtime::{run_local, Network, RoundStats};

/// Distributed verification: every node gathers its radius-`r` view and
/// evaluates the constraint. Returns the violating nodes (a conservative
/// check: `Undetermined` on a complete labeling counts as a violation) and
/// the measured locality.
pub fn verify_distributed<In: Clone>(
    net: &Network<In>,
    lcl: &dyn Lcl,
    labeling: &Labeling,
) -> (Vec<NodeId>, RoundStats) {
    verify_distributed_in(net, lcl, &vec![0; net.graph().n()], labeling)
}

/// [`verify_distributed`] with explicit `Σ_in` input labels.
pub fn verify_distributed_in<In: Clone>(
    net: &Network<In>,
    lcl: &dyn Lcl,
    inputs: &[usize],
    labeling: &Labeling,
) -> (Vec<NodeId>, RoundStats) {
    assert_eq!(labeling.nodes.len(), net.graph().n());
    assert_eq!(labeling.edges.len(), net.graph().m());
    assert_eq!(inputs.len(), net.graph().n());
    let (oks, stats) = run_local(net, |ctx| {
        let ball = ctx.ball(lcl.radius());
        let g = ball.graph();
        let node_labels: Vec<Option<usize>> = g
            .nodes()
            .map(|v| Some(labeling.nodes[ball.global_node(v).index()]))
            .collect();
        let edge_labels: Vec<Option<usize>> = g
            .edge_ids()
            .map(|e| Some(labeling.edges[ball.global_edge(e).index()]))
            .collect();
        let true_degree: Vec<usize> = g.nodes().map(|v| ball.global_degree(v)).collect();
        let node_inputs: Vec<usize> = g
            .nodes()
            .map(|v| inputs[ball.global_node(v).index()])
            .collect();
        let view = LclView {
            graph: g,
            center: ball.center(),
            uids: ball.uids(),
            true_degree: &true_degree,
            node_inputs: &node_inputs,
            node_labels: &node_labels,
            edge_labels: &edge_labels,
        };
        lcl.verdict(&view) == Verdict::Satisfied
    });
    let violations = net.graph().nodes().filter(|v| !oks[v.index()]).collect();
    (violations, stats)
}

/// Centralized verification: evaluates every node's constraint against the
/// full graph directly. Returns the violating nodes.
pub fn verify_centralized<In>(
    net: &Network<In>,
    lcl: &dyn Lcl,
    labeling: &Labeling,
) -> Vec<NodeId> {
    verify_centralized_in(net, lcl, &vec![0; net.graph().n()], labeling)
}

/// [`verify_centralized`] with explicit `Σ_in` input labels.
pub fn verify_centralized_in<In>(
    net: &Network<In>,
    lcl: &dyn Lcl,
    inputs: &[usize],
    labeling: &Labeling,
) -> Vec<NodeId> {
    let g = net.graph();
    assert_eq!(inputs.len(), g.n());
    assert_eq!(labeling.nodes.len(), g.n());
    assert_eq!(labeling.edges.len(), g.m());
    let node_labels: Vec<Option<usize>> = labeling.nodes.iter().map(|&l| Some(l)).collect();
    let edge_labels: Vec<Option<usize>> = labeling.edges.iter().map(|&l| Some(l)).collect();
    let true_degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    g.nodes()
        .filter(|&v| {
            let view = LclView {
                graph: g,
                center: v,
                uids: net.uids(),
                true_degree: &true_degree,
                node_inputs: inputs,
                node_labels: &node_labels,
                edge_labels: &edge_labels,
            };
            lcl.verdict(&view) != Verdict::Satisfied
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Mis, ProperColoring};
    use lad_graph::generators;

    #[test]
    fn distributed_and_centralized_agree() {
        let net = Network::with_identity_ids(generators::cycle(8));
        let lcl = ProperColoring::new(2);
        let good = Labeling::from_node_labels(vec![0, 1, 0, 1, 0, 1, 0, 1], 8);
        let bad = Labeling::from_node_labels(vec![0, 1, 0, 1, 0, 1, 1, 1], 8);
        let (v1, stats) = verify_distributed(&net, &lcl, &good);
        assert!(v1.is_empty());
        assert_eq!(stats.rounds(), 1);
        assert!(verify_centralized(&net, &lcl, &good).is_empty());
        let (v2, _) = verify_distributed(&net, &lcl, &bad);
        let v3 = verify_centralized(&net, &lcl, &bad);
        assert_eq!(v2, v3);
        assert!(!v2.is_empty());
    }

    #[test]
    fn mis_verification() {
        let net = Network::with_identity_ids(generators::path(5));
        let good = Labeling::from_node_labels(vec![1, 0, 1, 0, 1], 4);
        assert!(verify_centralized(&net, &Mis, &good).is_empty());
        let not_maximal = Labeling::from_node_labels(vec![1, 0, 0, 0, 1], 4);
        let viols = verify_centralized(&net, &Mis, &not_maximal);
        assert_eq!(viols, vec![NodeId(2)]);
    }
}
