#![warn(missing_docs)]

//! Locally checkable labelings (LCLs): problem definitions, concrete
//! problems, distributed verification, and brute-force completion.
//!
//! An LCL (Naor–Stockmeyer; Section 3.3 of the paper) is a constant-radius
//! constraint on constant-size labels: a labeling is a solution iff every
//! node's radius-`r` view is valid. This crate provides:
//!
//! - [`Lcl`]: the problem trait — finite node/edge alphabets, a checkability
//!   radius, and a *verdict* function over partially labeled views,
//! - [`problems`]: proper coloring, maximal independent set, maximal
//!   matching, sinkless orientation, almost-balanced orientation, splitting,
//!   proper edge coloring, weak 2-coloring, and a deliberately "hard"
//!   forbidden-pattern problem for the ETH experiments,
//! - [`verify`]: distributed (ball-view) and centralized checking,
//! - [`brute`]: deterministic backtracking completion of partial labelings
//!   — the "complete the solution inside the cluster by brute force" step
//!   of Contribution 1,
//! - [`witness`]: centralized witness solvers used by encoders.
//!
//! # Example
//!
//! ```
//! use lad_graph::generators;
//! use lad_lcl::problems::ProperColoring;
//! use lad_lcl::{verify, Labeling};
//! use lad_runtime::Network;
//!
//! let net = Network::with_identity_ids(generators::cycle(6));
//! let lcl = ProperColoring::new(2);
//! let labeling = Labeling::from_node_labels(vec![0, 1, 0, 1, 0, 1], net.graph().m());
//! assert!(verify::verify_centralized(&net, &lcl, &labeling).is_empty());
//! ```

pub mod brute;
pub mod problems;
pub mod verify;
pub mod view;
pub mod witness;

pub use view::{Labeling, LclView, Verdict};

/// A locally checkable labeling problem.
///
/// Labels are `usize` values below the problem's alphabet sizes. Problems
/// without edge labels use an edge alphabet of size 1 (the all-zeros
/// labeling). Orientation-like edge labels must be defined relative to
/// endpoint *unique identifiers* (label `0` = oriented from the
/// smaller-UID endpoint to the larger) so that they survive the local
/// re-indexing of ball views.
pub trait Lcl: Sync {
    /// Human-readable problem name.
    fn name(&self) -> String;

    /// Checkability radius `r`.
    fn radius(&self) -> usize;

    /// Size of the node-label alphabet `Σ_out` (node part).
    fn node_alphabet(&self) -> usize;

    /// Size of the edge-label alphabet `Σ_out` (edge part).
    fn edge_alphabet(&self) -> usize;

    /// The deterministic order in which completion searches should try
    /// node labels (a permutation of `0..node_alphabet()`). Problems where
    /// a particular label is "greedy-good" (e.g., joining an independent
    /// set) override this to make [`brute::complete`] fast; the default is
    /// ascending. Both encoder and decoder use the same order, so any
    /// permutation keeps the completion deterministic.
    fn label_preference(&self) -> Vec<usize> {
        (0..self.node_alphabet()).collect()
    }

    /// Evaluates the constraint at the center of a (possibly partially
    /// labeled) radius-`r` view.
    ///
    /// Must be *monotone*: a [`Verdict::Violated`] may only be returned if
    /// every completion of the partial labeling violates the constraint,
    /// and [`Verdict::Satisfied`] only if every completion satisfies it.
    /// Otherwise return [`Verdict::Undetermined`].
    fn verdict(&self, view: &LclView<'_>) -> Verdict;
}
