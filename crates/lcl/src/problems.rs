//! Concrete LCL problems.
//!
//! Each implements [`Lcl`] with a *monotone* verdict: `Violated` /
//! `Satisfied` are only reported when every completion of the partial
//! labeling agrees, which is what makes the brute-force completion of
//! [`crate::brute`] sound.

use crate::view::{LclView, Verdict};
use crate::Lcl;
use lad_graph::NodeId;

/// Proper vertex `k`-coloring (node labels `0..k`; radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProperColoring {
    k: usize,
}

impl ProperColoring {
    /// A proper coloring problem with `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one color");
        ProperColoring { k }
    }

    /// The number of colors.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Lcl for ProperColoring {
    fn name(&self) -> String {
        format!("proper {}-coloring", self.k)
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        self.k
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let labeled: Vec<Option<usize>> = view
            .graph
            .neighbors(c)
            .iter()
            .map(|&u| view.node_label(u))
            .collect();
        match view.node_label(c) {
            Some(cc) if cc >= self.k => Verdict::Violated,
            Some(cc) => {
                if labeled.iter().flatten().any(|&lu| lu == cc) {
                    Verdict::Violated
                } else if view.sees_all_edges_of(c) && labeled.iter().all(Option::is_some) {
                    Verdict::Satisfied
                } else {
                    Verdict::Undetermined
                }
            }
            None => {
                // Violated only if every color is blocked by a labeled neighbor.
                if view.sees_all_edges_of(c) {
                    let mut blocked = vec![false; self.k];
                    for &l in labeled.iter().flatten() {
                        if l < self.k {
                            blocked[l] = true;
                        }
                    }
                    if blocked.iter().all(|&b| b) {
                        return Verdict::Violated;
                    }
                }
                Verdict::Undetermined
            }
        }
    }
}

/// Maximal independent set (node labels: 1 = in the set; radius 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mis;

impl Lcl for Mis {
    fn name(&self) -> String {
        "maximal independent set".into()
    }

    fn label_preference(&self) -> Vec<usize> {
        vec![1, 0] // try joining the set first: completion behaves greedily
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        2
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let nbr_labels: Vec<Option<usize>> = view
            .graph
            .neighbors(c)
            .iter()
            .map(|&u| view.node_label(u))
            .collect();
        match view.node_label(c) {
            Some(1) => {
                if nbr_labels.iter().flatten().any(|&l| l == 1) {
                    Verdict::Violated
                } else if view.sees_all_edges_of(c) && nbr_labels.iter().all(Option::is_some) {
                    Verdict::Satisfied
                } else {
                    Verdict::Undetermined
                }
            }
            Some(0) => {
                if nbr_labels.iter().flatten().any(|&l| l == 1) {
                    Verdict::Satisfied
                } else if view.sees_all_edges_of(c) && nbr_labels.iter().all(Option::is_some) {
                    Verdict::Violated // isolated-in-set-free: no 1-neighbor at all
                } else {
                    Verdict::Undetermined
                }
            }
            Some(_) => Verdict::Violated,
            None => Verdict::Undetermined,
        }
    }
}

/// Maximal matching (edge labels: 1 = matched; radius 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalMatching;

impl MaximalMatching {
    /// Incident matched count of `v`, plus whether all incident edges are
    /// visible and labeled.
    fn matched_info(view: &LclView<'_>, v: NodeId) -> (usize, bool) {
        let mut matched = 0;
        let mut complete = view.sees_all_edges_of(v);
        for &e in view.graph.incident_edges(v) {
            match view.edge_label(e) {
                Some(1) => matched += 1,
                Some(_) => {}
                None => complete = false,
            }
        }
        (matched, complete)
    }
}

impl Lcl for MaximalMatching {
    fn name(&self) -> String {
        "maximal matching".into()
    }

    fn radius(&self) -> usize {
        2
    }

    fn node_alphabet(&self) -> usize {
        1
    }

    fn edge_alphabet(&self) -> usize {
        2
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let (c_matched, c_complete) = Self::matched_info(view, c);
        if c_matched >= 2 {
            return Verdict::Violated;
        }
        if c_matched == 1 {
            return if c_complete {
                Verdict::Satisfied
            } else {
                Verdict::Undetermined
            };
        }
        // No matched incident edge seen yet.
        if !c_complete {
            return Verdict::Undetermined;
        }
        // Center definitively unmatched: every neighbor must be matched.
        // (A neighbor exceeding one matched edge is *its own* violation,
        // checked at that neighbor — policing it here would break verdict
        // monotonicity.)
        let mut all_nbrs_matched = true;
        for &u in view.graph.neighbors(c) {
            let (u_matched, u_complete) = Self::matched_info(view, u);
            if u_matched == 0 {
                if u_complete {
                    return Verdict::Violated; // unmatched neighbor of an unmatched node
                }
                all_nbrs_matched = false;
            }
        }
        if all_nbrs_matched {
            Verdict::Satisfied
        } else {
            Verdict::Undetermined
        }
    }
}

/// Sinkless orientation (edge labels encode orientation relative to UIDs;
/// every node of degree ≥ 3 needs an outgoing edge; radius 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinklessOrientation;

impl Lcl for SinklessOrientation {
    fn name(&self) -> String {
        "sinkless orientation".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        1
    }

    fn edge_alphabet(&self) -> usize {
        2
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        if view.true_degree[c.index()] < 3 {
            return Verdict::Satisfied;
        }
        let mut unlabeled = !view.sees_all_edges_of(c);
        for &e in view.graph.incident_edges(c) {
            match view.oriented_out_of(e, c) {
                Some(true) => return Verdict::Satisfied,
                Some(false) => {}
                None => unlabeled = true,
            }
        }
        if unlabeled {
            Verdict::Undetermined
        } else {
            Verdict::Violated
        }
    }
}

/// Almost-balanced orientation: `|indeg − outdeg| ≤ 1` at every node
/// (edge labels encode orientation relative to UIDs; radius 1).
/// This is the LCL form of the paper's Contribution 3 output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlmostBalancedOrientation;

impl Lcl for AlmostBalancedOrientation {
    fn name(&self) -> String {
        "almost-balanced orientation".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        1
    }

    fn edge_alphabet(&self) -> usize {
        2
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let d = view.true_degree[c.index()];
        if !view.sees_all_edges_of(c) {
            return Verdict::Undetermined;
        }
        let mut out = 0usize;
        let mut free = 0usize;
        for &e in view.graph.incident_edges(c) {
            match view.oriented_out_of(e, c) {
                Some(true) => out += 1,
                Some(false) => {}
                None => free += 1,
            }
        }
        // Feasible out-degrees are [out, out + free]; balanced needs
        // |2·out' − d| ≤ 1 for some out' in that range.
        let lo = 2 * out;
        let hi = 2 * (out + free);
        let feasible = lo <= d + 1 && hi + 1 >= d;
        if !feasible {
            Verdict::Violated
        } else if free == 0 {
            Verdict::Satisfied
        } else {
            Verdict::Undetermined
        }
    }
}

/// Splitting (Section 5): a red/blue edge coloring with equally many red
/// and blue edges at every node (requires even degrees; radius 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Splitting;

impl Lcl for Splitting {
    fn name(&self) -> String {
        "splitting (balanced red/blue edge coloring)".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        1
    }

    fn edge_alphabet(&self) -> usize {
        2
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let d = view.true_degree[c.index()];
        if !d.is_multiple_of(2) {
            return Verdict::Violated; // problem only defined on even degrees
        }
        if !view.sees_all_edges_of(c) {
            return Verdict::Undetermined;
        }
        let mut red = 0usize;
        let mut free = 0usize;
        for &e in view.graph.incident_edges(c) {
            match view.edge_label(e) {
                Some(0) => red += 1,
                Some(_) => {}
                None => free += 1,
            }
        }
        // Need red' = d/2 for some red' in [red, red + free].
        if red > d / 2 || red + free < d / 2 {
            Verdict::Violated
        } else if free == 0 {
            Verdict::Satisfied
        } else {
            Verdict::Undetermined
        }
    }
}

/// Proper edge `k`-coloring (edge labels `0..k`; radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProperEdgeColoring {
    k: usize,
}

impl ProperEdgeColoring {
    /// A proper edge-coloring problem with `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one color");
        ProperEdgeColoring { k }
    }

    /// The number of colors.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Lcl for ProperEdgeColoring {
    fn name(&self) -> String {
        format!("proper {}-edge-coloring", self.k)
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        1
    }

    fn edge_alphabet(&self) -> usize {
        self.k
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let mut seen = vec![false; self.k];
        let mut free = !view.sees_all_edges_of(c);
        for &e in view.graph.incident_edges(c) {
            match view.edge_label(e) {
                Some(l) if l >= self.k => return Verdict::Violated,
                Some(l) => {
                    if seen[l] {
                        return Verdict::Violated;
                    }
                    seen[l] = true;
                }
                None => free = true,
            }
        }
        if free {
            Verdict::Undetermined
        } else {
            Verdict::Satisfied
        }
    }
}

/// Weak coloring: every non-isolated node has at least one neighbor of a
/// different color (node labels `0..k`; radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeakColoring {
    k: usize,
}

impl WeakColoring {
    /// A weak coloring problem with `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "weak coloring needs at least two colors");
        WeakColoring { k }
    }
}

impl Lcl for WeakColoring {
    fn name(&self) -> String {
        format!("weak {}-coloring", self.k)
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        self.k
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        if view.true_degree[c.index()] == 0 {
            return Verdict::Satisfied;
        }
        let Some(cc) = view.node_label(c) else {
            return Verdict::Undetermined;
        };
        if cc >= self.k {
            return Verdict::Violated;
        }
        let mut any_unlabeled = !view.sees_all_edges_of(c);
        for &u in view.graph.neighbors(c) {
            match view.node_label(u) {
                Some(l) if l != cc => return Verdict::Satisfied,
                Some(_) => {}
                None => any_unlabeled = true,
            }
        }
        if any_unlabeled {
            Verdict::Undetermined
        } else {
            Verdict::Violated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::{generators, Graph};

    fn full_view<'a>(
        g: &'a Graph,
        center: NodeId,
        uids: &'a [u64],
        deg: &'a [usize],
        nl: &'a [Option<usize>],
        el: &'a [Option<usize>],
    ) -> LclView<'a> {
        LclView {
            graph: g,
            center,
            uids,
            true_degree: deg,
            node_inputs: ZERO_INPUTS,
            node_labels: nl,
            edge_labels: el,
        }
    }

    const ZERO_INPUTS: &[usize] = &[0; 16];

    fn setup(g: &Graph) -> (Vec<u64>, Vec<usize>) {
        let uids: Vec<u64> = (1..=g.n() as u64).collect();
        let deg: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        (uids, deg)
    }

    #[test]
    fn proper_coloring_verdicts() {
        let g = generators::path(3);
        let (uids, deg) = setup(&g);
        let pc = ProperColoring::new(2);
        let el = vec![None, None];
        let ok = vec![Some(0), Some(1), Some(0)];
        assert_eq!(
            pc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &ok, &el)),
            Verdict::Satisfied
        );
        let bad = vec![Some(0), Some(0), Some(0)];
        assert_eq!(
            pc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &bad, &el)),
            Verdict::Violated
        );
        let partial = vec![Some(0), Some(1), None];
        assert_eq!(
            pc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &partial, &el)),
            Verdict::Undetermined
        );
        // Unlabeled center with both colors blocked.
        let blocked = vec![Some(0), None, Some(1)];
        assert_eq!(
            pc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &blocked, &el)),
            Verdict::Violated
        );
    }

    #[test]
    fn mis_verdicts() {
        let g = generators::path(3);
        let (uids, deg) = setup(&g);
        let el = vec![None, None];
        let ok = vec![Some(1), Some(0), Some(1)];
        assert_eq!(
            Mis.verdict(&full_view(&g, NodeId(1), &uids, &deg, &ok, &el)),
            Verdict::Satisfied
        );
        let adjacent_ones = vec![Some(1), Some(1), Some(0)];
        assert_eq!(
            Mis.verdict(&full_view(&g, NodeId(0), &uids, &deg, &adjacent_ones, &el)),
            Verdict::Violated
        );
        let not_maximal = vec![Some(0), Some(0), Some(0)];
        assert_eq!(
            Mis.verdict(&full_view(&g, NodeId(1), &uids, &deg, &not_maximal, &el)),
            Verdict::Violated
        );
    }

    #[test]
    fn matching_verdicts() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
        let (uids, deg) = setup(&g);
        let nl = vec![None; 4];
        let ok = vec![Some(1), Some(0), Some(1)];
        for v in g.nodes() {
            assert_eq!(
                MaximalMatching.verdict(&full_view(&g, v, &uids, &deg, &nl, &ok)),
                Verdict::Satisfied,
                "node {v:?}"
            );
        }
        let double = vec![Some(1), Some(1), Some(0)];
        assert_eq!(
            MaximalMatching.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &double)),
            Verdict::Violated
        );
        // Middle edge only: 0 and 3 unmatched but their neighbors matched — valid.
        let middle = vec![Some(0), Some(1), Some(0)];
        assert_eq!(
            MaximalMatching.verdict(&full_view(&g, NodeId(0), &uids, &deg, &nl, &middle)),
            Verdict::Satisfied
        );
        // Nothing matched: not maximal.
        let none = vec![Some(0), Some(0), Some(0)];
        assert_eq!(
            MaximalMatching.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &none)),
            Verdict::Violated
        );
    }

    #[test]
    fn sinkless_verdicts() {
        let g = generators::star(3); // center has degree 3
        let (uids, deg) = setup(&g);
        let nl = vec![None; 4];
        // All edges oriented toward the center (uid of center = 1, smallest,
        // so center→leaf is label 0; leaf→center is label 1).
        let all_in = vec![Some(1), Some(1), Some(1)];
        assert_eq!(
            SinklessOrientation.verdict(&full_view(&g, NodeId(0), &uids, &deg, &nl, &all_in)),
            Verdict::Violated
        );
        let one_out = vec![Some(0), Some(1), Some(1)];
        assert_eq!(
            SinklessOrientation.verdict(&full_view(&g, NodeId(0), &uids, &deg, &nl, &one_out)),
            Verdict::Satisfied
        );
        // Leaves have degree < 3: always satisfied.
        assert_eq!(
            SinklessOrientation.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &all_in)),
            Verdict::Satisfied
        );
    }

    #[test]
    fn almost_balanced_verdicts() {
        let g = generators::star(4);
        let (uids, deg) = setup(&g);
        let nl = vec![None; 5];
        // Center uid 1 smallest: label 0 = center→leaf (outgoing for center).
        let two_two = vec![Some(0), Some(0), Some(1), Some(1)];
        assert_eq!(
            AlmostBalancedOrientation.verdict(&full_view(
                &g,
                NodeId(0),
                &uids,
                &deg,
                &nl,
                &two_two
            )),
            Verdict::Satisfied
        );
        let all_out = vec![Some(0); 4];
        assert_eq!(
            AlmostBalancedOrientation.verdict(&full_view(
                &g,
                NodeId(0),
                &uids,
                &deg,
                &nl,
                &all_out
            )),
            Verdict::Violated
        );
        // Three assigned outgoing, one free: best case 3-1 — violated.
        let three_out = vec![Some(0), Some(0), Some(0), None];
        assert_eq!(
            AlmostBalancedOrientation.verdict(&full_view(
                &g,
                NodeId(0),
                &uids,
                &deg,
                &nl,
                &three_out
            )),
            Verdict::Violated
        );
        let two_free = vec![Some(0), Some(0), None, None];
        assert_eq!(
            AlmostBalancedOrientation.verdict(&full_view(
                &g,
                NodeId(0),
                &uids,
                &deg,
                &nl,
                &two_free
            )),
            Verdict::Undetermined
        );
    }

    #[test]
    fn splitting_verdicts() {
        let g = generators::star(4);
        let (uids, deg) = setup(&g);
        let nl = vec![None; 5];
        let balanced = vec![Some(0), Some(0), Some(1), Some(1)];
        assert_eq!(
            Splitting.verdict(&full_view(&g, NodeId(0), &uids, &deg, &nl, &balanced)),
            Verdict::Satisfied
        );
        let all_red = vec![Some(0); 4];
        assert_eq!(
            Splitting.verdict(&full_view(&g, NodeId(0), &uids, &deg, &nl, &all_red)),
            Verdict::Violated
        );
        // Odd degree is outright invalid for splitting.
        let g3 = generators::star(3);
        let (u3, d3) = setup(&g3);
        let e3 = vec![None; 3];
        let n3 = vec![None; 4];
        assert_eq!(
            Splitting.verdict(&full_view(&g3, NodeId(0), &u3, &d3, &n3, &e3)),
            Verdict::Violated
        );
    }

    #[test]
    fn edge_coloring_verdicts() {
        let g = generators::path(3);
        let (uids, deg) = setup(&g);
        let nl = vec![None; 3];
        let ec = ProperEdgeColoring::new(2);
        let ok = vec![Some(0), Some(1)];
        assert_eq!(
            ec.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &ok)),
            Verdict::Satisfied
        );
        let clash = vec![Some(0), Some(0)];
        assert_eq!(
            ec.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &clash)),
            Verdict::Violated
        );
        let oob = vec![Some(5), Some(1)];
        assert_eq!(
            ec.verdict(&full_view(&g, NodeId(1), &uids, &deg, &nl, &oob)),
            Verdict::Violated
        );
    }

    #[test]
    fn weak_coloring_verdicts() {
        let g = generators::path(3);
        let (uids, deg) = setup(&g);
        let el = vec![None, None];
        let wc = WeakColoring::new(2);
        let ok = vec![Some(0), Some(1), Some(1)];
        assert_eq!(
            wc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &ok, &el)),
            Verdict::Satisfied
        );
        let mono = vec![Some(0), Some(0), Some(0)];
        assert_eq!(
            wc.verdict(&full_view(&g, NodeId(1), &uids, &deg, &mono, &el)),
            Verdict::Violated
        );
    }
}

/// Minimal dominating set: every node is dominated (has a set member in
/// its closed neighborhood) and every set member has a *private* dominated
/// node (radius 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimalDominatingSet;

impl MinimalDominatingSet {
    /// `Some(true)` if `u`'s closed neighborhood certainly contains a set
    /// member, `Some(false)` if certainly not, `None` if undetermined.
    fn dominated(view: &LclView<'_>, u: NodeId) -> Option<bool> {
        let mut unknown = false;
        if view.node_label(u) == Some(1) {
            return Some(true);
        }
        if view.node_label(u).is_none() {
            unknown = true;
        }
        for &w in view.graph.neighbors(u) {
            match view.node_label(w) {
                Some(1) => return Some(true),
                Some(_) => {}
                None => unknown = true,
            }
        }
        if unknown || !view.sees_all_edges_of(u) {
            None
        } else {
            Some(false)
        }
    }

    /// Whether `u` is dominated *only* by `v` (certainly / certainly-not /
    /// unknown).
    fn privately_dominated_by(view: &LclView<'_>, u: NodeId, v: NodeId) -> Option<bool> {
        let mut unknown = !view.sees_all_edges_of(u);
        let in_closed = |w: NodeId| -> Option<bool> {
            match view.node_label(w) {
                Some(1) => Some(true),
                Some(_) => Some(false),
                None => None,
            }
        };
        // v itself must be in the set (caller guarantees) and in N[u].
        let mut other_dominator = false;
        if u != v {
            match in_closed(u) {
                Some(true) => other_dominator = true,
                Some(false) => {}
                None => unknown = true,
            }
        }
        for &w in view.graph.neighbors(u) {
            if w == v {
                continue;
            }
            match in_closed(w) {
                Some(true) => other_dominator = true,
                Some(false) => {}
                None => unknown = true,
            }
        }
        if other_dominator {
            Some(false)
        } else if unknown {
            None
        } else {
            Some(true)
        }
    }
}

impl Lcl for MinimalDominatingSet {
    fn name(&self) -> String {
        "minimal dominating set".into()
    }

    fn label_preference(&self) -> Vec<usize> {
        vec![0, 1] // prefer staying out; domination forces members
    }

    fn radius(&self) -> usize {
        2
    }

    fn node_alphabet(&self) -> usize {
        2
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        // Domination at the center.
        match Self::dominated(view, c) {
            Some(false) => return Verdict::Violated,
            Some(true) => {}
            None => return Verdict::Undetermined,
        }
        match view.node_label(c) {
            Some(0) => Verdict::Satisfied,
            Some(1) => {
                // Minimality: some u in N[c] privately dominated by c.
                let mut candidates: Vec<NodeId> = vec![c];
                candidates.extend(view.graph.neighbors(c));
                let mut any_unknown = !view.sees_all_edges_of(c);
                for u in candidates {
                    match Self::privately_dominated_by(view, u, c) {
                        Some(true) => return Verdict::Satisfied,
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    Verdict::Undetermined
                } else {
                    Verdict::Violated
                }
            }
            Some(_) => Verdict::Violated,
            None => Verdict::Undetermined,
        }
    }
}

/// Minimal vertex cover: every edge is covered, and every cover member has
/// an incident edge it covers alone (radius 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimalVertexCover;

impl Lcl for MinimalVertexCover {
    fn name(&self) -> String {
        "minimal vertex cover".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        2
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let labels: Vec<Option<usize>> = view
            .graph
            .neighbors(c)
            .iter()
            .map(|&u| view.node_label(u))
            .collect();
        match view.node_label(c) {
            Some(0) => {
                // All incident edges must be covered by the other side.
                if labels.iter().flatten().any(|&l| l == 0) {
                    return Verdict::Violated;
                }
                if view.sees_all_edges_of(c) && labels.iter().all(Option::is_some) {
                    Verdict::Satisfied
                } else {
                    Verdict::Undetermined
                }
            }
            Some(1) => {
                // Minimality witness: some neighbor outside the cover.
                // Isolated cover nodes are never minimal.
                if labels.iter().flatten().any(|&l| l == 0) {
                    return Verdict::Satisfied;
                }
                if view.sees_all_edges_of(c) && labels.iter().all(Option::is_some) {
                    Verdict::Violated
                } else {
                    Verdict::Undetermined
                }
            }
            Some(_) => Verdict::Violated,
            None => Verdict::Undetermined,
        }
    }
}

/// Distance-2 proper `k`-coloring: nodes within distance 2 get different
/// colors (radius 2) — the classic ingredient of CONGEST/LOCAL coloring
/// pipelines and of the paper's distance-`(5x)` clustering colorings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceTwoColoring {
    k: usize,
}

impl DistanceTwoColoring {
    /// A distance-2 coloring problem with `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        DistanceTwoColoring { k }
    }
}

impl Lcl for DistanceTwoColoring {
    fn name(&self) -> String {
        format!("distance-2 {}-coloring", self.k)
    }

    fn radius(&self) -> usize {
        2
    }

    fn node_alphabet(&self) -> usize {
        self.k
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        let Some(cc) = view.node_label(c) else {
            return Verdict::Undetermined;
        };
        if cc >= self.k {
            return Verdict::Violated;
        }
        // Collect everything within distance 2 of the center.
        let mut within = Vec::new();
        let mut complete = view.sees_all_edges_of(c);
        for &u in view.graph.neighbors(c) {
            within.push(u);
            if view.sees_all_edges_of(u) {
                for &w in view.graph.neighbors(u) {
                    if w != c {
                        within.push(w);
                    }
                }
            } else {
                complete = false;
            }
        }
        within.sort_unstable();
        within.dedup();
        let mut unknown = !complete;
        for u in within {
            if u == c {
                continue;
            }
            match view.node_label(u) {
                Some(l) if l == cc => return Verdict::Violated,
                Some(_) => {}
                None => unknown = true,
            }
        }
        if unknown {
            Verdict::Undetermined
        } else {
            Verdict::Satisfied
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::brute;
    use crate::verify::verify_centralized;
    use crate::Labeling;
    use lad_graph::generators;
    use lad_runtime::Network;

    fn uids(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn minimal_dominating_set_solved_by_brute_force() {
        for g in [
            generators::path(7),
            generators::cycle(8),
            generators::star(4),
        ] {
            let n = g.n();
            let (nl, _) = brute::solve(&g, &uids(n), &MinimalDominatingSet, 5_000_000)
                .expect("dominating sets always exist");
            let net = Network::with_identity_ids(g);
            let l = Labeling::from_node_labels(nl, net.graph().m());
            assert!(
                verify_centralized(&net, &MinimalDominatingSet, &l).is_empty(),
                "invalid on {:?}",
                net.graph()
            );
        }
    }

    #[test]
    fn minimal_dominating_set_rejects_redundant_member() {
        // On a star, {center} dominates; {center, leaf} is not minimal.
        let g = generators::star(3);
        let net = Network::with_identity_ids(g);
        let good = Labeling::from_node_labels(vec![1, 0, 0, 0], net.graph().m());
        assert!(verify_centralized(&net, &MinimalDominatingSet, &good).is_empty());
        let redundant = Labeling::from_node_labels(vec![1, 1, 0, 0], net.graph().m());
        assert!(!verify_centralized(&net, &MinimalDominatingSet, &redundant).is_empty());
        let undominated = Labeling::from_node_labels(vec![0, 1, 1, 1], net.graph().m());
        // Leaves dominate themselves and the center; this IS a valid
        // minimal dominating set on a star? Each leaf privately dominates
        // itself, and the center is dominated — valid.
        assert!(verify_centralized(&net, &MinimalDominatingSet, &undominated).is_empty());
        let empty = Labeling::from_node_labels(vec![0, 0, 0, 0], net.graph().m());
        assert!(!verify_centralized(&net, &MinimalDominatingSet, &empty).is_empty());
    }

    #[test]
    fn minimal_vertex_cover_on_path() {
        let g = generators::path(4); // edges 0-1,1-2,2-3
        let net = Network::with_identity_ids(g);
        let good = Labeling::from_node_labels(vec![0, 1, 1, 0], net.graph().m());
        assert!(verify_centralized(&net, &MinimalVertexCover, &good).is_empty());
        // Uncovered edge 2-3.
        let bad = Labeling::from_node_labels(vec![0, 1, 0, 0], net.graph().m());
        assert!(!verify_centralized(&net, &MinimalVertexCover, &bad).is_empty());
        // Not minimal: node 0 has no uncovered-side witness.
        let fat = Labeling::from_node_labels(vec![1, 1, 1, 0], net.graph().m());
        assert!(!verify_centralized(&net, &MinimalVertexCover, &fat).is_empty());
    }

    #[test]
    fn minimal_vertex_cover_brute_force() {
        let g = generators::cycle(7);
        let (nl, _) = brute::solve(&g, &uids(7), &MinimalVertexCover, 5_000_000).unwrap();
        let net = Network::with_identity_ids(g);
        let l = Labeling::from_node_labels(nl, net.graph().m());
        assert!(verify_centralized(&net, &MinimalVertexCover, &l).is_empty());
    }

    #[test]
    fn distance_two_coloring() {
        let g = generators::cycle(9);
        // Distance-2 coloring of C9 with 3 colors: 0,1,2 repeating.
        let net = Network::with_identity_ids(g);
        let good = Labeling::from_node_labels(vec![0, 1, 2, 0, 1, 2, 0, 1, 2], net.graph().m());
        let lcl = DistanceTwoColoring::new(3);
        assert!(verify_centralized(&net, &lcl, &good).is_empty());
        // A proper-but-not-distance-2 coloring fails.
        let bad = Labeling::from_node_labels(vec![0, 1, 0, 1, 0, 1, 0, 1, 2], net.graph().m());
        assert!(!verify_centralized(&net, &lcl, &bad).is_empty());
    }

    #[test]
    fn distance_two_brute_force_matches_power_graph_coloring() {
        let g = generators::path(8);
        let (nl, _) = brute::solve(&g, &uids(8), &DistanceTwoColoring::new(3), 5_000_000).unwrap();
        // Validate against the power graph directly.
        let g2 = lad_graph::power::power_graph(&g, 2);
        assert!(lad_graph::coloring::is_proper_k_coloring(&g2, &nl, 3));
    }
}

/// Precolored proper `k`-coloring — an *input-labeled* LCL (`Σ_in`
/// nontrivial, as in the paper's formal Definition of LCLs): input `0`
/// means free, input `i ≥ 1` forces output color `i − 1`; outputs must be
/// a proper `k`-coloring (radius 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecoloredColoring {
    k: usize,
}

impl PrecoloredColoring {
    /// A precolored-extension problem with `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        PrecoloredColoring { k }
    }

    /// Size of the input alphabet (`k + 1`: free plus one tag per color).
    pub fn input_alphabet(&self) -> usize {
        self.k + 1
    }
}

impl Lcl for PrecoloredColoring {
    fn name(&self) -> String {
        format!("precolored {}-coloring", self.k)
    }

    fn radius(&self) -> usize {
        1
    }

    fn node_alphabet(&self) -> usize {
        self.k
    }

    fn edge_alphabet(&self) -> usize {
        1
    }

    fn verdict(&self, view: &LclView<'_>) -> Verdict {
        let c = view.center;
        // The pin constraint at the center.
        let pin = view.node_input(c);
        if let Some(cc) = view.node_label(c) {
            if cc >= self.k {
                return Verdict::Violated;
            }
            if pin >= 1 && cc != pin - 1 {
                return Verdict::Violated;
            }
        }
        // Plus ordinary properness.
        ProperColoring::new(self.k).verdict(view)
    }
}

#[cfg(test)]
mod precolored_tests {
    use super::*;
    use crate::brute::{complete, Region};
    use crate::verify::verify_centralized_in;
    use crate::Labeling;
    use lad_graph::generators;
    use lad_runtime::Network;

    #[test]
    fn precolored_extension_respects_pins() {
        // A path with both endpoints pinned to color 0: solvable iff the
        // endpoint distance is even.
        for (n, solvable) in [(5usize, true), (6, false)] {
            let g = generators::path(n);
            let uids: Vec<u64> = (1..=n as u64).collect();
            let true_degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
            let mut inputs = vec![0usize; n];
            inputs[0] = 1; // pin color 0
            inputs[n - 1] = 1; // pin color 0
            let lcl = PrecoloredColoring::new(2);
            let all: Vec<NodeId> = g.nodes().collect();
            let result = complete(
                Region {
                    graph: &g,
                    uids: &uids,
                    true_degree: &true_degree,
                    node_inputs: &inputs,
                },
                &lcl,
                &vec![None; n],
                &vec![None; g.m()],
                &all,
                1_000_000,
            );
            assert_eq!(result.is_ok(), solvable, "n = {n}");
            if let Ok((labels, _)) = result {
                assert_eq!(labels[0], 0);
                assert_eq!(labels[n - 1], 0);
                let net = Network::with_identity_ids(g.clone());
                let l = Labeling::from_node_labels(labels, g.m());
                assert!(verify_centralized_in(&net, &lcl, &inputs, &l).is_empty());
            }
        }
    }

    #[test]
    fn verifier_rejects_pin_violations() {
        let g = generators::path(3);
        let net = Network::with_identity_ids(g);
        let lcl = PrecoloredColoring::new(3);
        let inputs = vec![2, 0, 0]; // node 0 pinned to color 1
        let ok = Labeling::from_node_labels(vec![1, 0, 1], net.graph().m());
        assert!(verify_centralized_in(&net, &lcl, &inputs, &ok).is_empty());
        let bad = Labeling::from_node_labels(vec![0, 1, 0], net.graph().m());
        assert!(!verify_centralized_in(&net, &lcl, &inputs, &bad).is_empty());
    }
}
