//! Deterministic backtracking completion of partial LCL labelings.
//!
//! This is the "complete the solution inside the cluster by brute force"
//! step of Contribution 1 — and because it always returns the
//! *lexicographically first* valid completion, an encoder and a decoder
//! running it on the same region with the same pins obtain the same answer,
//! which is exactly the consistency the paper's schemas rely on.

use crate::view::{LclView, Verdict};
use crate::Lcl;
use lad_graph::{EdgeId, Graph, NodeId};
use std::fmt;

/// Why a completion attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompleteError {
    /// The search space was exhausted: no completion satisfies the LCL on
    /// the checked nodes.
    NoSolution,
    /// The step budget ran out before the search finished.
    CapExceeded {
        /// The budget that was exhausted.
        cap: u64,
    },
}

impl fmt::Display for CompleteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompleteError::NoSolution => write!(f, "no completion satisfies the constraints"),
            CompleteError::CapExceeded { cap } => {
                write!(f, "backtracking exceeded its budget of {cap} steps")
            }
        }
    }
}

impl std::error::Error for CompleteError {}

/// A region to complete: a graph with identifiers and true degrees
/// (the graph may be a subgraph of a larger network, in which case
/// `true_degree` records the original degrees).
#[derive(Debug, Clone, Copy)]
pub struct Region<'a> {
    /// The region's graph.
    pub graph: &'a Graph,
    /// Unique identifiers per node.
    pub uids: &'a [u64],
    /// True degrees in the enclosing network.
    pub true_degree: &'a [usize],
    /// `Σ_in` input labels per node (`&[]` for input-free problems, which
    /// is treated as all-zeros).
    pub node_inputs: &'a [usize],
}

/// Finds the lexicographically first completion of a partial labeling such
/// that no node in `check_nodes` is violated (nodes are assigned in index
/// order, then edges; labels are tried in ascending order).
///
/// `check_nodes` should contain exactly the nodes whose constraint is fully
/// determined inside the region (e.g., cluster-interior nodes); constraints
/// that remain `Undetermined` at the end are accepted.
///
/// Returns the completed `(node_labels, edge_labels)`.
///
/// # Errors
///
/// - [`CompleteError::NoSolution`] if the constraints are unsatisfiable.
/// - [`CompleteError::CapExceeded`] if more than `cap` assignments were
///   attempted.
pub fn complete(
    region: Region<'_>,
    lcl: &dyn Lcl,
    pinned_nodes: &[Option<usize>],
    pinned_edges: &[Option<usize>],
    check_nodes: &[NodeId],
    cap: u64,
) -> Result<(Vec<usize>, Vec<usize>), CompleteError> {
    let g = region.graph;
    assert_eq!(pinned_nodes.len(), g.n());
    assert_eq!(pinned_edges.len(), g.m());
    let r = lcl.radius();

    // Precompute, for each variable, the check-nodes whose constraint can
    // involve it: centers within distance r (nodes) or within distance r of
    // an endpoint (edges).
    let mut is_check = vec![false; g.n()];
    for &v in check_nodes {
        is_check[v.index()] = true;
    }
    // One epoch-stamped scratch shared by every per-node BFS: `ball` would
    // allocate (and zero) an O(n) distance array per call, turning this
    // precompute quadratic on large regions — the visit order below is the
    // same FIFO order `traversal::ball` produces, so the lists are
    // identical.
    let affected_by_node: Vec<Vec<NodeId>> = {
        let mut stamp = vec![0u32; g.n()];
        let mut epoch = 0u32;
        let mut queue: Vec<(NodeId, usize)> = Vec::new();
        g.nodes()
            .map(|v| {
                epoch += 1;
                queue.clear();
                queue.push((v, 0));
                stamp[v.index()] = epoch;
                let mut out = Vec::new();
                let mut head = 0;
                while head < queue.len() {
                    let (u, d) = queue[head];
                    head += 1;
                    if is_check[u.index()] {
                        out.push(u);
                    }
                    if d == r {
                        continue;
                    }
                    for &w in g.neighbors(u) {
                        if stamp[w.index()] != epoch {
                            stamp[w.index()] = epoch;
                            queue.push((w, d + 1));
                        }
                    }
                }
                out
            })
            .collect()
    };
    let affected_by_edge: Vec<Vec<NodeId>> = g
        .edge_ids()
        .map(|e| {
            let (a, b) = g.endpoints(e);
            let mut centers: Vec<NodeId> = affected_by_node[a.index()]
                .iter()
                .chain(&affected_by_node[b.index()])
                .copied()
                .collect();
            centers.sort_unstable();
            centers.dedup();
            centers
        })
        .collect();

    // Variable order: free nodes (if the node alphabet is nontrivial),
    // then free edges (if the edge alphabet is nontrivial).
    #[derive(Clone, Copy)]
    enum Var {
        Node(NodeId),
        Edge(EdgeId),
    }
    let mut vars: Vec<(Var, usize)> = Vec::new();
    let mut node_labels = pinned_nodes.to_vec();
    let mut edge_labels = pinned_edges.to_vec();
    let node_pref = lcl.label_preference();
    assert_eq!(
        node_pref.len(),
        lcl.node_alphabet(),
        "preference must be a permutation"
    );
    if lcl.node_alphabet() > 1 {
        for v in g.nodes() {
            if node_labels[v.index()].is_none() {
                vars.push((Var::Node(v), lcl.node_alphabet()));
            }
        }
    } else {
        for l in node_labels.iter_mut() {
            l.get_or_insert(0);
        }
    }
    if lcl.edge_alphabet() > 1 {
        for e in g.edge_ids() {
            if edge_labels[e.index()].is_none() {
                vars.push((Var::Edge(e), lcl.edge_alphabet()));
            }
        }
    } else {
        for l in edge_labels.iter_mut() {
            l.get_or_insert(0);
        }
    }

    let zero_inputs;
    let node_inputs: &[usize] = if region.node_inputs.is_empty() {
        zero_inputs = vec![0usize; g.n()];
        &zero_inputs
    } else {
        region.node_inputs
    };
    let verdict_at = |center: NodeId, nl: &[Option<usize>], el: &[Option<usize>]| {
        let view = LclView {
            graph: g,
            center,
            uids: region.uids,
            true_degree: region.true_degree,
            node_inputs,
            node_labels: nl,
            edge_labels: el,
        };
        lcl.verdict(&view)
    };

    // Initial consistency of the pins.
    for &v in check_nodes {
        if verdict_at(v, &node_labels, &edge_labels) == Verdict::Violated {
            return Err(CompleteError::NoSolution);
        }
    }

    // Depth-first search with chronological backtracking.
    let mut steps: u64 = 0;
    let mut choice: Vec<usize> = Vec::with_capacity(vars.len());
    let mut depth = 0usize;
    let mut next_label = 0usize;
    loop {
        if depth == vars.len() {
            return Ok((
                node_labels.into_iter().map(|l| l.unwrap()).collect(),
                edge_labels.into_iter().map(|l| l.unwrap()).collect(),
            ));
        }
        let (var, alphabet) = vars[depth];
        let mut assigned = false;
        // `next_label = 0` below resets the *next* descent, not this range.
        #[allow(clippy::needless_range_loop, clippy::mut_range_bound)]
        for label_rank in next_label..alphabet {
            steps += 1;
            if steps > cap {
                return Err(CompleteError::CapExceeded { cap });
            }
            // Node labels follow the problem's preference order; edge
            // labels stay ascending.
            let label = match var {
                Var::Node(_) => node_pref[label_rank],
                Var::Edge(_) => label_rank,
            };
            let affected = match var {
                Var::Node(v) => {
                    node_labels[v.index()] = Some(label);
                    &affected_by_node[v.index()]
                }
                Var::Edge(e) => {
                    edge_labels[e.index()] = Some(label);
                    &affected_by_edge[e.index()]
                }
            };
            let violated = affected
                .iter()
                .any(|&c| verdict_at(c, &node_labels, &edge_labels) == Verdict::Violated);
            if !violated {
                choice.push(label_rank);
                depth += 1;
                next_label = 0;
                assigned = true;
                break;
            }
        }
        if assigned {
            continue;
        }
        // Exhausted labels here: undo and backtrack.
        match var {
            Var::Node(v) => node_labels[v.index()] = None,
            Var::Edge(e) => edge_labels[e.index()] = None,
        }
        loop {
            if depth == 0 {
                return Err(CompleteError::NoSolution);
            }
            depth -= 1;
            let tried = choice.pop().expect("choice stack in sync");
            let (var, alphabet) = vars[depth];
            match var {
                Var::Node(v) => node_labels[v.index()] = None,
                Var::Edge(e) => edge_labels[e.index()] = None,
            }
            if tried + 1 < alphabet {
                next_label = tried + 1;
                break;
            }
        }
    }
}

/// Solves an LCL from scratch on a whole (small) graph: the
/// lexicographically first solution valid at every node.
///
/// # Errors
///
/// See [`complete`].
pub fn solve(
    g: &Graph,
    uids: &[u64],
    lcl: &dyn Lcl,
    cap: u64,
) -> Result<(Vec<usize>, Vec<usize>), CompleteError> {
    let true_degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let all: Vec<NodeId> = g.nodes().collect();
    complete(
        Region {
            graph: g,
            uids,
            true_degree: &true_degree,
            node_inputs: &[],
        },
        lcl,
        &vec![None; g.n()],
        &vec![None; g.m()],
        &all,
        cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{MaximalMatching, Mis, ProperColoring, Splitting};
    use crate::verify::verify_centralized;
    use crate::Labeling;
    use lad_graph::generators;
    use lad_runtime::Network;

    fn uids(n: usize) -> Vec<u64> {
        (1..=n as u64).collect()
    }

    #[test]
    fn solve_two_coloring_of_even_cycle() {
        let g = generators::cycle(8);
        let (nl, _) = solve(&g, &uids(8), &ProperColoring::new(2), 10_000).unwrap();
        assert_eq!(nl, vec![0, 1, 0, 1, 0, 1, 0, 1]); // lexicographically first
    }

    #[test]
    fn two_coloring_of_odd_cycle_has_no_solution() {
        let g = generators::cycle(7);
        let err = solve(&g, &uids(7), &ProperColoring::new(2), 100_000).unwrap_err();
        assert_eq!(err, CompleteError::NoSolution);
    }

    #[test]
    fn cap_is_enforced() {
        let g = generators::cycle(15);
        let err = solve(&g, &uids(15), &ProperColoring::new(2), 10).unwrap_err();
        assert_eq!(err, CompleteError::CapExceeded { cap: 10 });
    }

    #[test]
    fn solve_mis_on_path() {
        let g = generators::path(6);
        let (nl, _) = solve(&g, &uids(6), &Mis, 100_000).unwrap();
        let net = Network::with_identity_ids(g);
        let labeling = Labeling::from_node_labels(nl, net.graph().m());
        assert!(verify_centralized(&net, &Mis, &labeling).is_empty());
    }

    #[test]
    fn solve_matching_on_cycle() {
        let g = generators::cycle(6);
        let (_, el) = solve(&g, &uids(6), &MaximalMatching, 1_000_000).unwrap();
        let net = Network::with_identity_ids(g);
        let labeling = Labeling::from_edge_labels(el, 6);
        assert!(verify_centralized(&net, &MaximalMatching, &labeling).is_empty());
    }

    #[test]
    fn completion_respects_pins() {
        let g = generators::path(5);
        let pins = vec![Some(1), None, None, None, Some(1)];
        let true_degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let all: Vec<NodeId> = g.nodes().collect();
        let (nl, _) = complete(
            Region {
                graph: &g,
                uids: &uids(5),
                true_degree: &true_degree,
                node_inputs: &[],
            },
            &ProperColoring::new(2),
            &pins,
            &[None; 4],
            &all,
            10_000,
        )
        .unwrap();
        assert_eq!(nl[0], 1);
        assert_eq!(nl[4], 1);
        assert_eq!(nl, vec![1, 0, 1, 0, 1]);
    }

    #[test]
    fn inconsistent_pins_fail_fast() {
        let g = generators::path(2);
        let pins = vec![Some(0), Some(0)];
        let true_degree = vec![1, 1];
        let all: Vec<NodeId> = g.nodes().collect();
        let err = complete(
            Region {
                graph: &g,
                uids: &uids(2),
                true_degree: &true_degree,
                node_inputs: &[],
            },
            &ProperColoring::new(2),
            &pins,
            &[None; 1],
            &all,
            1000,
        )
        .unwrap_err();
        assert_eq!(err, CompleteError::NoSolution);
    }

    #[test]
    fn splitting_on_even_cycle() {
        let g = generators::cycle(6);
        let (_, el) = solve(&g, &uids(6), &Splitting, 1_000_000).unwrap();
        let net = Network::with_identity_ids(g);
        let labeling = Labeling::from_edge_labels(el, 6);
        assert!(verify_centralized(&net, &Splitting, &labeling).is_empty());
    }

    #[test]
    fn determinism_of_completion() {
        let g = generators::grid2d(3, 3, false);
        let n = g.n();
        let (a, _) = solve(&g, &uids(n), &ProperColoring::new(3), 1_000_000).unwrap();
        let (b, _) = solve(&g, &uids(n), &ProperColoring::new(3), 1_000_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn partial_region_checks_only_requested_nodes() {
        // A path region cut out of a longer path: endpoint constraints are
        // not checked (their neighborhoods extend beyond the region).
        let g = generators::path(4);
        let true_degree = vec![2, 2, 2, 2]; // pretend all are interior
        let interior = vec![NodeId(1), NodeId(2)];
        let (nl, _) = complete(
            Region {
                graph: &g,
                uids: &uids(4),
                true_degree: &true_degree,
                node_inputs: &[],
            },
            &ProperColoring::new(2),
            &[None; 4],
            &[None; 3],
            &interior,
            10_000,
        )
        .unwrap();
        // Interior nodes properly colored relative to their neighbors.
        assert_ne!(nl[1], nl[0]);
        assert_ne!(nl[1], nl[2]);
        assert_ne!(nl[2], nl[3]);
    }
}
