//! Property tests for the LCL machinery, centered on the *monotonicity
//! contract* of [`lad_lcl::Lcl::verdict`]: erasing labels from a labeling
//! may only move verdicts toward `Undetermined` — a `Violated` partial
//! labeling can never be completed into a satisfied one, and a `Satisfied`
//! partial labeling can never be completed into a violated one. The
//! brute-force completion's soundness rests entirely on this.

use lad_graph::{builder, NodeId};
use lad_lcl::problems::{
    AlmostBalancedOrientation, DistanceTwoColoring, MaximalMatching, MinimalDominatingSet,
    MinimalVertexCover, Mis, ProperColoring, ProperEdgeColoring, SinklessOrientation, Splitting,
    WeakColoring,
};
use lad_lcl::{Lcl, LclView, Verdict};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = lad_graph::Graph> {
    (3usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n).prop_map(move |pairs| {
            let mut b = builder::GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v));
                }
            }
            b.build()
        })
    })
}

/// Evaluates the verdict of `lcl` at every node of `g` under the given
/// (possibly partial) labels, with the whole graph as the view.
fn verdicts(
    g: &lad_graph::Graph,
    lcl: &dyn Lcl,
    node_labels: &[Option<usize>],
    edge_labels: &[Option<usize>],
) -> Vec<Verdict> {
    let uids: Vec<u64> = (1..=g.n() as u64).collect();
    let true_degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    g.nodes()
        .map(|v| {
            lcl.verdict(&LclView {
                graph: g,
                center: v,
                uids: &uids,
                true_degree: &true_degree,
                node_inputs: &vec![0; g.n()][..],
                node_labels,
                edge_labels,
            })
        })
        .collect()
}

/// Checks monotonicity of one problem on one graph, for one random full
/// labeling and one random erasure mask.
fn check_monotone(
    g: &lad_graph::Graph,
    lcl: &dyn Lcl,
    full_nodes: &[usize],
    full_edges: &[usize],
    node_mask: &[bool],
    edge_mask: &[bool],
) -> Result<(), TestCaseError> {
    let full_n: Vec<Option<usize>> = full_nodes.iter().map(|&l| Some(l)).collect();
    let full_e: Vec<Option<usize>> = full_edges.iter().map(|&l| Some(l)).collect();
    let part_n: Vec<Option<usize>> = full_nodes
        .iter()
        .zip(node_mask)
        .map(|(&l, &keep)| keep.then_some(l))
        .collect();
    let part_e: Vec<Option<usize>> = full_edges
        .iter()
        .zip(edge_mask)
        .map(|(&l, &keep)| keep.then_some(l))
        .collect();
    let complete = verdicts(g, lcl, &full_n, &full_e);
    let partial = verdicts(g, lcl, &part_n, &part_e);
    for (v, (p, c)) in partial.iter().zip(&complete).enumerate() {
        match p {
            Verdict::Satisfied => prop_assert_eq!(
                *c,
                Verdict::Satisfied,
                "{}: node {} partial=Satisfied but complete={:?}",
                lcl.name(),
                v,
                c
            ),
            Verdict::Violated => prop_assert_eq!(
                *c,
                Verdict::Violated,
                "{}: node {} partial=Violated but complete={:?}",
                lcl.name(),
                v,
                c
            ),
            Verdict::Undetermined => {}
        }
        // Complete labelings must always be decided (never Undetermined).
        prop_assert_ne!(
            *c,
            Verdict::Undetermined,
            "{}: node {} undetermined on a complete labeling",
            lcl.name(),
            v
        );
    }
    Ok(())
}

fn problems() -> Vec<Box<dyn Lcl>> {
    vec![
        Box::new(ProperColoring::new(3)),
        Box::new(ProperColoring::new(2)),
        Box::new(Mis),
        Box::new(MaximalMatching),
        Box::new(SinklessOrientation),
        Box::new(AlmostBalancedOrientation),
        Box::new(Splitting),
        Box::new(ProperEdgeColoring::new(3)),
        Box::new(WeakColoring::new(2)),
        Box::new(MinimalDominatingSet),
        Box::new(MinimalVertexCover),
        Box::new(DistanceTwoColoring::new(4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn verdicts_are_monotone_under_erasure(
        g in arb_graph(),
        seed in 0u64..10_000,
    ) {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for lcl in problems() {
            let full_nodes: Vec<usize> = (0..g.n())
                .map(|_| rng.random_range(0..lcl.node_alphabet()))
                .collect();
            let full_edges: Vec<usize> = (0..g.m())
                .map(|_| rng.random_range(0..lcl.edge_alphabet()))
                .collect();
            let node_mask: Vec<bool> = (0..g.n()).map(|_| rng.random_range(0..2) == 1).collect();
            let edge_mask: Vec<bool> = (0..g.m()).map(|_| rng.random_range(0..2) == 1).collect();
            check_monotone(&g, lcl.as_ref(), &full_nodes, &full_edges, &node_mask, &edge_mask)?;
        }
    }

    #[test]
    fn label_preferences_are_permutations(_x in 0..1i32) {
        for lcl in problems() {
            let mut pref = lcl.label_preference();
            prop_assert_eq!(pref.len(), lcl.node_alphabet(), "{}", lcl.name());
            pref.sort_unstable();
            prop_assert_eq!(pref, (0..lcl.node_alphabet()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn brute_solutions_verify(g in arb_graph(), k in 2usize..4) {
        // Whenever the search finds a solution, the checker agrees.
        let uids: Vec<u64> = (1..=g.n() as u64).collect();
        let lcl = ProperColoring::new(k);
        if let Ok((nl, _)) = lad_lcl::brute::solve(&g, &uids, &lcl, 200_000) {
            let net = lad_runtime::Network::with_identity_ids(g.clone());
            let labeling = lad_lcl::Labeling::from_node_labels(nl, g.m());
            prop_assert!(lad_lcl::verify::verify_centralized(&net, &lcl, &labeling).is_empty());
        }
    }
}

#[test]
fn complete_labeling_decided_on_isolated_nodes() {
    // Degenerate case: isolated nodes must still get decided verdicts.
    let g = builder::GraphBuilder::new(3).build();
    for lcl in problems() {
        let nl: Vec<Option<usize>> = vec![Some(0); 3];
        let el: Vec<Option<usize>> = vec![];
        for v in verdicts(&g, lcl.as_ref(), &nl, &el) {
            assert_ne!(v, Verdict::Undetermined, "{}", lcl.name());
        }
    }
}
