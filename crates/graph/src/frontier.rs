//! Bitset frontier sweeps: one BFS that serves up to 64 centers at once.
//!
//! A radius-`T` ball gather is a bounded BFS; gathering the balls of many
//! *nearby* centers one at a time re-walks almost the same edges once per
//! center, because adjacent balls overlap in all but an `O(T·Δ)` frontier.
//! [`BitFrontier`] shares that work: each center of a *tile* (at most 64
//! centers) owns one bit of a `u64`, and a single sweep propagates all
//! bits simultaneously — every edge of the union of the balls is relaxed
//! once per round with a word-wide OR instead of once per center.
//!
//! The sweep records, for every round `d`, the list of `(node, mask)`
//! pairs where `mask` is the set of centers whose BFS first reaches `node`
//! at distance exactly `d` — the distance-`d` **shell**. A center's
//! radius-`r` ball membership is exactly its bits in shells `0..=r`, so
//! one sweep answers membership (and, in `lad-runtime`, canonical-key)
//! queries for the whole tile at every radius up to the sweep depth.
//!
//! Bookkeeping is epoch-stamped and sized to the *touched* region (the
//! union of the tile's balls), not the graph, so a `BitFrontier` is cheap
//! to reuse across tiles of a large graph.
//!
//! # Example
//!
//! ```
//! use lad_graph::{frontier::BitFrontier, generators, NodeId};
//!
//! let g = generators::cycle(12);
//! let mut f = BitFrontier::new(g.n());
//! f.start(&g, &[NodeId(0), NodeId(1)]);
//! f.extend(&g, 2);
//! // Shell 0 is the centers themselves; bit b belongs to centers[b].
//! let shell0: Vec<_> = f.shell(0).collect();
//! assert_eq!(shell0, vec![(NodeId(0), 0b01), (NodeId(1), 0b10)]);
//! // Node 2 is first reached at distance 2 by center 0, distance 1 by
//! // center 1.
//! assert_eq!(f.shell(1).find(|&(v, _)| v == NodeId(2)).unwrap().1, 0b10);
//! assert_eq!(f.shell(2).find(|&(v, _)| v == NodeId(2)).unwrap().1, 0b01);
//! ```

use crate::graph::{Graph, NodeId};

/// The maximum number of centers a single [`BitFrontier`] sweep serves —
/// one bit of a `u64` per center.
pub const TILE_WIDTH: usize = 64;

/// A multi-source bitset BFS over a tile of at most [`TILE_WIDTH`]
/// centers. See the [module docs](self) for the idea.
#[derive(Debug)]
pub struct BitFrontier {
    /// Packed `epoch << 32 | dense index` per graph node: a node is
    /// *touched* iff the high half equals the current epoch, and the dense
    /// index in the low half is valid exactly then. One word keeps the
    /// relax loop's membership test and dense lookup to a single random
    /// memory access per neighbor.
    slot: Vec<u64>,
    epoch: u32,
    /// Dense index → graph node, in first-touch order.
    touched: Vec<NodeId>,
    /// Dense index → centers that reached the node at ≤ the swept radius.
    mask: Vec<u64>,
    /// Dense index → bits arriving in the round currently being relaxed.
    pending: Vec<u64>,
    /// Dense indices with nonzero `pending`, for an O(frontier) reset.
    pending_touched: Vec<u32>,
    /// Concatenated shells: `(dense index, first-reach mask)` per round.
    /// Dense indices let consumers index their own per-touched-node tables
    /// without a node → dense lookup per shell entry.
    log: Vec<(u32, u64)>,
    /// `shell d = log[shell_bounds[d] .. shell_bounds[d + 1]]`.
    shell_bounds: Vec<usize>,
}

impl BitFrontier {
    /// A frontier for graphs of up to `n` nodes (grows on demand).
    pub fn new(n: usize) -> Self {
        BitFrontier {
            slot: vec![0; n],
            epoch: 0,
            touched: Vec::new(),
            mask: Vec::new(),
            pending: Vec::new(),
            pending_touched: Vec::new(),
            log: Vec::new(),
            shell_bounds: vec![0],
        }
    }

    /// Grows the per-node tables to cover an `n`-node graph. New entries
    /// carry stamp 0, which never equals a live epoch.
    pub fn ensure(&mut self, n: usize) {
        if self.slot.len() < n {
            self.slot.resize(n, 0);
        }
    }

    /// Begins a sweep for `centers` (shell 0): center `centers[b]` owns
    /// bit `b`. Previous sweep state is discarded in O(touched).
    ///
    /// # Panics
    ///
    /// Panics if `centers` exceeds [`TILE_WIDTH`] entries or repeats a
    /// node.
    pub fn start(&mut self, g: &Graph, centers: &[NodeId]) {
        assert!(
            centers.len() <= TILE_WIDTH,
            "a tile holds at most {TILE_WIDTH} centers"
        );
        self.ensure(g.n());
        if self.epoch == u32::MAX {
            self.slot.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
        self.mask.clear();
        self.pending.clear();
        self.pending_touched.clear();
        self.log.clear();
        self.shell_bounds.clear();
        self.shell_bounds.push(0);
        for (b, &c) in centers.iter().enumerate() {
            let d = self.touch(c);
            assert_eq!(self.mask[d], 0, "duplicate center {c:?}");
            self.mask[d] = 1u64 << b;
            self.log.push((d as u32, 1u64 << b));
        }
        self.shell_bounds.push(self.log.len());
    }

    /// Dense index of `v`, registering it on first touch.
    #[inline]
    fn touch(&mut self, v: NodeId) -> usize {
        let i = v.index();
        let s = self.slot[i];
        if (s >> 32) as u32 == self.epoch {
            return s as u32 as usize;
        }
        let dense = self.touched.len();
        self.slot[i] = (self.epoch as u64) << 32 | dense as u64;
        self.touched.push(v);
        self.mask.push(0);
        self.pending.push(0);
        dense
    }

    /// Continues the sweep until shells `0..=radius` exist. Rounds with an
    /// empty frontier still record (empty) shells, so `shell(d)` is valid
    /// for every `d ≤ radius` even past the graph's eccentricity.
    pub fn extend(&mut self, g: &Graph, radius: usize) {
        while self.radius() < radius {
            let d = self.radius();
            // Relax every edge out of shell `d`: only the bits that *first
            // arrived* at distance d propagate — earlier bits already
            // propagated from this node in their own arrival round.
            let (lo, hi) = (self.shell_bounds[d], self.shell_bounds[d + 1]);
            for i in lo..hi {
                let (dv, bits) = self.log[i];
                let v = self.touched[dv as usize];
                for &u in g.neighbors(v) {
                    let du = self.touch(u);
                    if self.pending[du] == 0 {
                        self.pending_touched.push(du as u32);
                    }
                    self.pending[du] |= bits;
                }
            }
            // Commit first arrivals: bits not already present become the
            // distance-(d+1) shell entry of their node.
            for pi in 0..self.pending_touched.len() {
                let du = self.pending_touched[pi] as usize;
                let new = self.pending[du] & !self.mask[du];
                self.pending[du] = 0;
                if new != 0 {
                    self.mask[du] |= new;
                    self.log.push((du as u32, new));
                }
            }
            self.pending_touched.clear();
            self.shell_bounds.push(self.log.len());
        }
    }

    /// The radius the sweep is complete to.
    #[inline]
    pub fn radius(&self) -> usize {
        self.shell_bounds.len() - 2
    }

    /// The distance-`d` shell: `(node, mask)` pairs where `mask` is the
    /// set of centers first reaching `node` at distance exactly `d`, in
    /// deterministic sweep order.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not reached `d` yet.
    #[inline]
    pub fn shell(&self, d: usize) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.shell_dense(d)
            .iter()
            .map(|&(dv, m)| (self.touched[dv as usize], m))
    }

    /// [`BitFrontier::shell`] as raw `(dense index, mask)` entries — the
    /// zero-lookup form consumers with their own dense-indexed tables want.
    #[inline]
    pub fn shell_dense(&self, d: usize) -> &[(u32, u64)] {
        &self.log[self.shell_bounds[d]..self.shell_bounds[d + 1]]
    }

    /// The nodes touched by the sweep so far (the union of all balls), in
    /// first-touch order; `dense_index` values index into this.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// The dense index of `v` within [`BitFrontier::touched`], if the
    /// sweep reached it.
    #[inline]
    pub fn dense_index(&self, v: NodeId) -> Option<usize> {
        let s = self.slot[v.index()];
        ((s >> 32) as u32 == self.epoch).then_some(s as u32 as usize)
    }

    /// The centers that reached `v` within the swept radius, as a bitmask.
    #[inline]
    pub fn reached_mask(&self, v: NodeId) -> u64 {
        self.dense_index(v).map_or(0, |d| self.mask[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    /// Reference: per-center BFS distances must equal first-reach shells.
    fn check_against_bfs(g: &Graph, centers: &[NodeId], radius: usize) {
        let mut f = BitFrontier::new(g.n());
        f.start(g, centers);
        f.extend(g, radius);
        for (b, &c) in centers.iter().enumerate() {
            let dist = traversal::bfs_distances(g, c);
            let mut seen = vec![false; g.n()];
            for d in 0..=radius {
                for (v, mask) in f.shell(d) {
                    if mask & (1 << b) != 0 {
                        assert_eq!(dist[v.index()], Some(d), "center {c:?} node {v:?}");
                        assert!(!seen[v.index()], "node {v:?} reported twice");
                        seen[v.index()] = true;
                    }
                }
            }
            for v in g.nodes() {
                let expect = dist[v.index()].is_some_and(|d| d <= radius);
                assert_eq!(seen[v.index()], expect, "center {c:?} membership {v:?}");
            }
        }
    }

    #[test]
    fn shells_match_per_center_bfs() {
        for g in [
            generators::cycle(16),
            generators::path(11),
            generators::grid2d(5, 6, true),
            generators::star(7),
            generators::complete(6),
            generators::disjoint_union(&[generators::cycle(4), generators::path(3)]),
        ] {
            let centers: Vec<NodeId> = g.nodes().take(TILE_WIDTH).collect();
            for radius in 0..5 {
                check_against_bfs(&g, &centers, radius);
            }
        }
    }

    #[test]
    fn sparse_tiles_and_reuse() {
        let g = generators::grid2d(8, 8, false);
        let mut f = BitFrontier::new(g.n());
        // Two sweeps on the same frontier: the second must not see state
        // from the first.
        f.start(&g, &[NodeId(0)]);
        f.extend(&g, 6);
        let first_touched = f.touched().len();
        assert!(first_touched > 1);
        f.start(&g, &[NodeId(63)]);
        f.extend(&g, 1);
        assert_eq!(f.shell(0).collect::<Vec<_>>(), vec![(NodeId(63), 1)]);
        assert_eq!(f.shell_dense(1).len(), 2); // corner of the open grid
        assert!(f.reached_mask(NodeId(0)) == 0);
    }

    #[test]
    fn empty_frontier_keeps_extending() {
        let g = generators::path(3);
        let mut f = BitFrontier::new(g.n());
        f.start(&g, &[NodeId(1)]);
        f.extend(&g, 5);
        assert_eq!(f.radius(), 5);
        assert_eq!(f.shell_dense(1).len(), 2);
        for d in 2..=5 {
            assert!(f.shell_dense(d).is_empty(), "shell {d}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate center")]
    fn duplicate_centers_rejected() {
        let g = generators::cycle(4);
        let mut f = BitFrontier::new(g.n());
        f.start(&g, &[NodeId(2), NodeId(2)]);
    }

    #[test]
    fn grows_for_larger_graphs() {
        let small = generators::path(4);
        let big = generators::cycle(32);
        let mut f = BitFrontier::new(small.n());
        f.start(&small, &[NodeId(0)]);
        f.extend(&small, 2);
        f.start(&big, &[NodeId(20), NodeId(21)]);
        f.extend(&big, 3);
        assert_eq!(f.reached_mask(NodeId(24)), 0b10);
        assert_eq!(f.reached_mask(NodeId(17)), 0b01);
    }
}
