//! Graph partitions and halo-extended shard views for out-of-core runs.
//!
//! A `T`-round LOCAL algorithm reads nothing outside each node's
//! radius-`T` ball, so an `n`-node run decomposes into `K` independent
//! slices: partition the nodes, and give each shard its *interior*
//! (the nodes it owns) plus a read-only *halo* — every node within
//! distance `T` of the interior. The shard's induced subgraph then
//! contains every ball of radius `≤ T − 1` around an interior node
//! **bit-identically** (see the soundness note below), so decoding the
//! interior of each shard in isolation reproduces the global run exactly.
//!
//! # Halo soundness
//!
//! Let `M ⊇ N_{≤T}[interior]` be a shard's member set and take any
//! interior center `c` and radius `r ≤ T − 1`:
//!
//! * **Distances are exact.** A global shortest path to a node at
//!   distance `d ≤ r` stays within distance `d ≤ T − 1` of `c`, hence
//!   inside `M`; induced-subgraph distances can only exceed global ones,
//!   so they agree on the whole ball.
//! * **Degrees are exact.** A ball records the host graph's degree of
//!   every member, including those at distance exactly `r`. Such a
//!   member's neighbors sit at distance `≤ r + 1 ≤ T`, all inside `M`,
//!   so the induced degree equals the global degree.
//!
//! Together the local ball has the same members, distances, edges,
//! degrees, identifiers, and inputs as the global one — only the
//! *global node names* differ, and those never influence an
//! order-invariant step. Radius `T` itself is **not** safe: a member at
//! distance `T` may be missing edges to nodes outside `M`, so its
//! recorded degree would silently undercount. The runtime driver
//! therefore enforces `ladder radius ≤ halo_radius − 1` and fails
//! loudly instead of truncating.
//!
//! Any member **superset** of `N_{≤T}[interior]` keeps both properties,
//! which is what makes the single-pass streaming membership
//! ([`halo_masks`]) sound: it may over-propagate within a pass, but it
//! never under-approximates the halo.

use crate::builder::from_sorted_edges;
use crate::frontier::{BitFrontier, TILE_WIDTH};
use crate::graph::{Graph, NodeId};

/// A disjoint assignment of every node to one of `k` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    owner: Vec<u32>,
    k: usize,
}

impl Partition {
    /// Contiguous index ranges: shard `s` owns nodes
    /// `[s·⌈n/k⌉, (s+1)·⌈n/k⌉)`. The only rule that also works when the
    /// graph is never materialized (the streaming builders use it).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn contiguous(n: usize, k: usize) -> Self {
        assert!(k >= 1, "a partition needs at least one shard");
        let slab = n.div_ceil(k).max(1);
        Partition {
            owner: (0..n).map(|i| ((i / slab).min(k - 1)) as u32).collect(),
            k,
        }
    }

    /// BFS-grown shards: nodes are laid out in network-wide BFS order
    /// (restarting at the smallest unvisited node per component) and that
    /// order is cut into `k` equal slabs, so each shard is a union of
    /// spatially coherent BFS runs and its boundary — hence its halo —
    /// stays near the slab seams instead of scaling with the shard size.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn bfs_grown(g: &Graph, k: usize) -> Self {
        assert!(k >= 1, "a partition needs at least one shard");
        let n = g.n();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut head = 0usize;
        let mut next_seed = 0usize;
        while order.len() < n {
            if head == order.len() {
                while seen[next_seed] {
                    next_seed += 1;
                }
                seen[next_seed] = true;
                order.push(NodeId::from_index(next_seed));
            }
            let v = order[head];
            head += 1;
            for &u in g.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    order.push(u);
                }
            }
        }
        let slab = n.div_ceil(k).max(1);
        let mut owner = vec![0u32; n];
        for (pos, v) in order.into_iter().enumerate() {
            owner[v.index()] = ((pos / slab).min(k - 1)) as u32;
        }
        Partition { owner, k }
    }

    /// A partition from an explicit owner array.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any owner is out of range.
    pub fn from_owners(owner: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1, "a partition needs at least one shard");
        assert!(
            owner.iter().all(|&s| (s as usize) < k),
            "owner out of range"
        );
        Partition { owner, k }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> usize {
        self.owner[v.index()] as usize
    }

    /// The nodes shard `s` owns, in ascending index order.
    pub fn shard_nodes(&self, s: usize) -> Vec<NodeId> {
        (0..self.owner.len())
            .filter(|&i| self.owner[i] as usize == s)
            .map(NodeId::from_index)
            .collect()
    }

    /// Per-shard node counts.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &s in &self.owner {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

/// One shard's slice of the graph: its interior nodes plus a radius-`T`
/// halo, with the induced subgraph rebuilt as a compact local CSR
/// (local id = rank of the global id among `members`).
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Which shard of the partition this is.
    pub shard: usize,
    /// Halo depth `T` the members were grown to.
    pub halo_radius: usize,
    /// Global ids of every member (interior ∪ halo), ascending; the local
    /// id of `members[i]` is `i`.
    pub members: Vec<NodeId>,
    /// Per member: owned by this shard (true) or halo (false).
    pub interior: Vec<bool>,
    /// The induced subgraph on `members`, in local ids.
    pub graph: Graph,
}

impl ShardView {
    /// Builds the view of `shard` under `part` with a halo of depth
    /// `halo_radius`, sharing `frontier` across calls (it is reused, not
    /// consumed). The halo is exactly `N_{≤T}[interior] \ interior`,
    /// computed by sweeping 64-center [`BitFrontier`] tiles from the
    /// shard's *boundary* interior nodes (an interior node with a
    /// non-interior neighbor) — every halo node is within `T` of one of
    /// those.
    ///
    /// # Panics
    ///
    /// Panics if `shard ≥ part.k()` or the partition does not match `g`.
    pub fn build(
        g: &Graph,
        part: &Partition,
        shard: usize,
        halo_radius: usize,
        frontier: &mut BitFrontier,
    ) -> ShardView {
        assert!(shard < part.k(), "shard index out of range");
        assert_eq!(part.n(), g.n(), "partition does not match the graph");
        let n = g.n();
        let mut member = vec![false; n];
        let mut boundary: Vec<NodeId> = Vec::new();
        for (i, m) in member.iter_mut().enumerate() {
            let v = NodeId::from_index(i);
            if part.owner(v) != shard {
                continue;
            }
            *m = true;
            if g.neighbors(v).iter().any(|&u| part.owner(u) != shard) {
                boundary.push(v);
            }
        }
        if halo_radius > 0 {
            for tile in boundary.chunks(TILE_WIDTH) {
                frontier.start(g, tile);
                frontier.extend(g, halo_radius);
                for &v in frontier.touched() {
                    member[v.index()] = true;
                }
            }
        }
        let members: Vec<NodeId> = (0..n)
            .filter(|&i| member[i])
            .map(NodeId::from_index)
            .collect();
        let mut local = vec![u32::MAX; n];
        for (li, &v) in members.iter().enumerate() {
            local[v.index()] = li as u32;
        }
        // Ascending members × ascending larger member-neighbors emits the
        // induced edges already lex-sorted in local ids (local order is
        // global order), so the CSR builds with no sort pass.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (li, &v) in members.iter().enumerate() {
            for &u in g.neighbors(v) {
                if u > v && member[u.index()] {
                    edges.push((
                        NodeId::from_index(li),
                        NodeId::from_index(local[u.index()] as usize),
                    ));
                }
            }
        }
        let graph = from_sorted_edges(members.len(), edges);
        let interior = members.iter().map(|&v| part.owner(v) == shard).collect();
        ShardView {
            shard,
            halo_radius,
            members,
            interior,
            graph,
        }
    }

    /// The local id of global node `v`, if it is a member.
    pub fn local_of(&self, v: NodeId) -> Option<usize> {
        self.members.binary_search(&v).ok()
    }

    /// Number of interior (owned) members.
    pub fn interior_count(&self) -> usize {
        self.interior.iter().filter(|&&b| b).count()
    }
}

/// Streaming shard membership for graphs too large to materialize:
/// per-node `u64` masks whose bit `s` means "node is a member of shard
/// `s`" (interior or halo), computed with `halo` passes over the edge
/// stream and **no** adjacency structure.
///
/// `replay` must emit the same edge set on every call (any order). Each
/// pass relaxes `mask[u] |= mask[v]` both ways; updates made earlier in a
/// pass may cascade within it, so after `p` passes a node's mask covers
/// *at least* `N_{≤p}` — a superset of the true halo, which the
/// [soundness argument](self) shows is harmless. Passes stop early once a
/// full sweep changes nothing.
///
/// # Panics
///
/// Panics if `part.k() > 64` (one mask bit per shard).
pub fn halo_masks(
    part: &Partition,
    halo: usize,
    mut replay: impl FnMut(&mut dyn FnMut(NodeId, NodeId)),
) -> Vec<u64> {
    assert!(
        part.k() <= 64,
        "streaming membership holds one bit per shard"
    );
    let n = part.n();
    let mut mask: Vec<u64> = (0..n)
        .map(|i| 1u64 << part.owner(NodeId::from_index(i)))
        .collect();
    for _ in 0..halo {
        let mut changed = false;
        replay(&mut |u: NodeId, v: NodeId| {
            let joined = mask[u.index()] | mask[v.index()];
            if mask[u.index()] != joined || mask[v.index()] != joined {
                mask[u.index()] = joined;
                mask[v.index()] = joined;
                changed = true;
            }
        });
        if !changed {
            break;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    #[test]
    fn contiguous_covers_and_balances() {
        let p = Partition::contiguous(10, 3);
        assert_eq!(p.k(), 3);
        assert_eq!(p.sizes(), vec![4, 4, 2]);
        assert_eq!(p.owner(NodeId(0)), 0);
        assert_eq!(p.owner(NodeId(9)), 2);
        // k > n still covers every node with in-range owners.
        let p = Partition::contiguous(2, 8);
        assert_eq!(p.sizes().iter().sum::<usize>(), 2);
    }

    #[test]
    fn bfs_grown_is_a_partition_of_coherent_runs() {
        let g = generators::grid2d(8, 8, false);
        let p = Partition::bfs_grown(&g, 4);
        assert_eq!(p.sizes().iter().sum::<usize>(), 64);
        assert!(p.sizes().iter().all(|&s| s == 16));
        // Each shard should be far more internally connected than a
        // random 16-node subset of the grid: at least half its nodes have
        // a same-shard neighbor.
        for s in 0..4 {
            let nodes = p.shard_nodes(s);
            let internal = nodes
                .iter()
                .filter(|&&v| g.neighbors(v).iter().any(|&u| p.owner(u) == s))
                .count();
            assert!(internal * 2 >= nodes.len(), "shard {s} is scattered");
        }
    }

    #[test]
    fn view_members_are_exactly_the_halo_closure() {
        let g = generators::grid2d(6, 6, true);
        let part = Partition::contiguous(g.n(), 3);
        let mut f = BitFrontier::new(g.n());
        for shard in 0..3 {
            for t in 0..3usize {
                let view = ShardView::build(&g, &part, shard, t, &mut f);
                // Oracle: BFS distance from the interior set.
                let interior: Vec<NodeId> = part.shard_nodes(shard);
                let mut expect = vec![false; g.n()];
                for &c in &interior {
                    let dist = traversal::bfs_distances(&g, c);
                    for v in g.nodes() {
                        if dist[v.index()].is_some_and(|d| d <= t) {
                            expect[v.index()] = true;
                        }
                    }
                }
                let got: Vec<bool> = {
                    let mut m = vec![false; g.n()];
                    for &v in &view.members {
                        m[v.index()] = true;
                    }
                    m
                };
                assert_eq!(got, expect, "shard {shard} halo {t}");
                assert_eq!(view.interior_count(), interior.len());
            }
        }
    }

    #[test]
    fn view_graph_is_the_induced_subgraph() {
        let g = generators::random_bounded_degree(60, 4, 100, 9);
        let part = Partition::bfs_grown(&g, 4);
        let mut f = BitFrontier::new(g.n());
        for shard in 0..4 {
            let view = ShardView::build(&g, &part, shard, 2, &mut f);
            // Every induced edge present, with ports implied by sorted
            // adjacency in both graphs.
            let mut m = 0usize;
            for (li, &v) in view.members.iter().enumerate() {
                let locals: Vec<NodeId> = g
                    .neighbors(v)
                    .iter()
                    .filter_map(|&u| view.local_of(u).map(NodeId::from_index))
                    .collect();
                assert_eq!(
                    view.graph.neighbors(NodeId::from_index(li)),
                    &locals[..],
                    "adjacency of member {v:?}"
                );
                m += locals.len();
            }
            assert_eq!(view.graph.m() * 2, m);
        }
    }

    #[test]
    fn interior_nodes_cover_the_graph_once() {
        let g = generators::cycle(17);
        let part = Partition::contiguous(g.n(), 5);
        let mut f = BitFrontier::new(g.n());
        let mut owned = vec![0usize; g.n()];
        for shard in 0..5 {
            let view = ShardView::build(&g, &part, shard, 3, &mut f);
            for (li, &v) in view.members.iter().enumerate() {
                if view.interior[li] {
                    owned[v.index()] += 1;
                }
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn halo_masks_superset_of_views() {
        let g = generators::grid2d(7, 5, false);
        let part = Partition::contiguous(g.n(), 4);
        let halo = 2;
        let masks = halo_masks(&part, halo, |emit| {
            for (_, (u, v)) in g.edges() {
                emit(u, v);
            }
        });
        let mut f = BitFrontier::new(g.n());
        for shard in 0..4 {
            let view = ShardView::build(&g, &part, shard, halo, &mut f);
            for &v in &view.members {
                assert!(
                    masks[v.index()] & (1 << shard) != 0,
                    "mask misses member {v:?} of shard {shard}"
                );
            }
        }
        // And never a member of a shard it is farther than `halo` from.
        for v in g.nodes() {
            for shard in 0..4 {
                if masks[v.index()] & (1 << shard) == 0 {
                    let view = ShardView::build(&g, &part, shard, halo, &mut f);
                    assert!(view.local_of(v).is_none());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_owners_validates() {
        Partition::from_owners(vec![0, 3], 3);
    }
}
