//! Centralized coloring utilities: greedy colorings, distance-`k`
//! colorings, proper-coloring checks, bipartition, and the "greedy-ification"
//! fix-up used by the 3-coloring schema (Section 7).

use crate::graph::{Graph, NodeId};
use crate::power::power_graph;

/// A proper vertex coloring with colors `0 ..` computed greedily in the
/// given node order; each node takes the smallest color unused by its
/// already-colored neighbors. Uses at most `Δ + 1` colors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the nodes.
pub fn greedy_coloring(g: &Graph, order: &[NodeId]) -> Vec<usize> {
    assert_eq!(order.len(), g.n(), "order must cover all nodes");
    let mut color = vec![usize::MAX; g.n()];
    for &v in order {
        assert!(
            color[v.index()] == usize::MAX,
            "order must not repeat nodes"
        );
        let mut used: Vec<usize> = g
            .neighbors(v)
            .iter()
            .map(|&u| color[u.index()])
            .filter(|&c| c != usize::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0;
        for u in used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        color[v.index()] = c;
    }
    color
}

/// Greedy coloring in node-index order.
pub fn greedy_coloring_default(g: &Graph) -> Vec<usize> {
    let order: Vec<NodeId> = g.nodes().collect();
    greedy_coloring(g, &order)
}

/// A *distance-`k`* coloring: nodes at distance `≤ k` receive different
/// colors (i.e., a proper coloring of `G^k`). Greedy, so it uses at most
/// `Δ(G^k) + 1` colors.
pub fn distance_k_coloring(g: &Graph, k: usize) -> Vec<usize> {
    let gp = power_graph(g, k);
    greedy_coloring_default(&gp)
}

/// Whether `color` is a proper vertex coloring of `g`.
pub fn is_proper_coloring(g: &Graph, color: &[usize]) -> bool {
    color.len() == g.n()
        && g.edges()
            .all(|(_, (u, v))| color[u.index()] != color[v.index()])
}

/// Whether `color` is a proper coloring with all colors `< k`.
pub fn is_proper_k_coloring(g: &Graph, color: &[usize], k: usize) -> bool {
    is_proper_coloring(g, color) && color.iter().all(|&c| c < k)
}

/// Number of distinct colors used.
pub fn color_count(color: &[usize]) -> usize {
    let mut cs: Vec<usize> = color.to_vec();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

/// A 2-coloring (bipartition) of each connected component, or `None` if the
/// graph has an odd cycle. Colors are `0`/`1`; in each component the
/// smallest-index node gets color `0`.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut color = vec![u8::MAX; g.n()];
    for s in g.nodes() {
        if color[s.index()] != u8::MAX {
            continue;
        }
        color[s.index()] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if color[u.index()] == u8::MAX {
                    color[u.index()] = 1 - color[v.index()];
                    queue.push_back(u);
                } else if color[u.index()] == color[v.index()] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Turns a proper coloring with colors `{0, …, k-1}` into a *greedy* proper
/// coloring in the paper's sense (Section 7): every node of color `i` has,
/// for each `j < i`, at least one neighbor of color `j`.
///
/// Works by repeatedly demoting nodes whose color can be lowered; terminates
/// because the sum of colors strictly decreases.
///
/// # Panics
///
/// Panics if `color` is not a proper coloring of `g`.
pub fn make_greedy(g: &Graph, color: &[usize]) -> Vec<usize> {
    assert!(is_proper_coloring(g, color), "input must be proper");
    let mut color = color.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        for v in g.nodes() {
            let mut used = vec![false; color[v.index()] + 1];
            for &u in g.neighbors(v) {
                let cu = color[u.index()];
                if cu < used.len() {
                    used[cu] = true;
                }
            }
            let lowest_free = (0..color[v.index()]).find(|&c| !used[c]);
            if let Some(c) = lowest_free {
                color[v.index()] = c;
                changed = true;
            }
        }
    }
    debug_assert!(is_greedy_coloring(g, &color));
    color
}

/// Whether the coloring is greedy in the paper's sense: each node of color
/// `i` has neighbors of all colors `< i`.
pub fn is_greedy_coloring(g: &Graph, color: &[usize]) -> bool {
    if !is_proper_coloring(g, color) {
        return false;
    }
    g.nodes().all(|v| {
        let cv = color[v.index()];
        (0..cv).all(|j| g.neighbors(v).iter().any(|&u| color[u.index()] == j))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_is_proper_and_bounded() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(100, 6, 200, seed);
            let c = greedy_coloring_default(&g);
            assert!(is_proper_coloring(&g, &c));
            assert!(c.iter().all(|&x| x <= g.max_degree()));
        }
    }

    #[test]
    fn distance_k_coloring_separates_balls() {
        let g = generators::cycle(12);
        let c = distance_k_coloring(&g, 3);
        for v in g.nodes() {
            for (u, d) in crate::traversal::ball(&g, v, 3) {
                if d >= 1 {
                    assert_ne!(c[v.index()], c[u.index()]);
                }
            }
        }
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let g = generators::cycle(8);
        let c = bipartition(&g).unwrap();
        for (_, (u, v)) in g.edges() {
            assert_ne!(c[u.index()], c[v.index()]);
        }
        assert_eq!(c[0], 0);
    }

    #[test]
    fn bipartition_rejects_odd_cycle() {
        assert!(bipartition(&generators::cycle(7)).is_none());
    }

    #[test]
    fn make_greedy_properties() {
        let (g, witness) = generators::random_tripartite([20, 20, 20], 6, 120, 5);
        let color: Vec<usize> = witness.iter().map(|&c| c as usize).collect();
        let greedy = make_greedy(&g, &color);
        assert!(is_greedy_coloring(&g, &greedy));
        assert!(greedy.iter().all(|&c| c < 3));
    }

    #[test]
    fn is_greedy_detects_violations() {
        let g = generators::path(3);
        // Proper but not greedy: middle node colored 2 with no 1-neighbor...
        // path 0-1-2 colored [0, 2, 0]: node 1 has color 2 but no neighbor of color 1.
        assert!(!is_greedy_coloring(&g, &[0, 2, 0]));
        assert!(is_greedy_coloring(&g, &[0, 1, 0]));
    }

    #[test]
    fn color_count_works() {
        assert_eq!(color_count(&[0, 2, 2, 5]), 3);
        assert_eq!(color_count(&[]), 0);
    }

    #[test]
    fn k_coloring_check() {
        let g = generators::cycle(6);
        assert!(is_proper_k_coloring(&g, &[0, 1, 0, 1, 0, 1], 2));
        assert!(!is_proper_k_coloring(&g, &[0, 1, 0, 1, 0, 1], 1));
        assert!(!is_proper_k_coloring(&g, &[0, 0, 0, 1, 0, 1], 2));
    }
}
