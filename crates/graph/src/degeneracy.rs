//! Degeneracy orderings and bounded-out-degree orientations.
//!
//! The paper's Open Question 4 notes that deleting one edge per connected
//! component of a 3-regular graph leaves a 2-degenerate graph, from which
//! a 2-bits-per-node edge-subset encoding "follows from 2-degeneracy" —
//! the underlying primitive being an acyclic orientation with out-degree
//! at most the degeneracy. This module provides that primitive (plus the
//! standard peeling computation of the degeneracy itself), as a substrate
//! for experimenting with the open question.

use crate::graph::{Graph, NodeId};
use crate::orientation::Orientation;

/// The degeneracy ordering (smallest-degree-last peeling) and the
/// degeneracy `d`: every node has at most `d` neighbors *later* in the
/// returned order.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.n();
    let mut degree: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    for _ in 0..n {
        // Smallest current degree, ties by node index (deterministic).
        let v = g
            .nodes()
            .filter(|&v| !removed[v.index()])
            .min_by_key(|&v| (degree[v.index()], v))
            .expect("nodes remain");
        degeneracy = degeneracy.max(degree[v.index()]);
        removed[v.index()] = true;
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u.index()] {
                degree[u.index()] -= 1;
            }
        }
    }
    // `order` currently lists peeled nodes first; the conventional
    // statement orients each node toward later (higher-coreness) nodes,
    // which is exactly this order.
    (order, degeneracy)
}

/// The degeneracy (coreness) of the graph.
pub fn degeneracy(g: &Graph) -> usize {
    degeneracy_ordering(g).1
}

/// An acyclic orientation with out-degree at most the degeneracy: every
/// edge points from the earlier node of the peeling order to the later.
pub fn degeneracy_orientation(g: &Graph) -> Orientation {
    let (order, _) = degeneracy_ordering(g);
    let mut position = vec![0usize; g.n()];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut o = Orientation::new(g.m());
    for (e, (u, v)) in g.edges() {
        if position[u.index()] < position[v.index()] {
            o.set(g, e, u, v);
        } else {
            o.set(g, e, v, u);
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn trees_are_one_degenerate() {
        assert_eq!(degeneracy(&generators::random_tree(40, 1)), 1);
        assert_eq!(degeneracy(&generators::path(10)), 1);
        assert_eq!(degeneracy(&generators::star(6)), 1);
    }

    #[test]
    fn cycles_are_two_degenerate() {
        assert_eq!(degeneracy(&generators::cycle(11)), 2);
        assert_eq!(degeneracy(&generators::grid2d(5, 5, false)), 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        assert_eq!(degeneracy(&generators::complete(6)), 5);
    }

    #[test]
    fn orientation_out_degree_bounded_by_degeneracy() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(60, 7, 140, seed);
            let d = degeneracy(&g);
            let o = degeneracy_orientation(&g);
            for v in g.nodes() {
                assert!(o.out_degree(&g, v) <= d, "node {v} exceeds degeneracy {d}");
            }
        }
    }

    #[test]
    fn open_question_4_setup() {
        // A 3-regular graph minus one edge per component is 2-degenerate —
        // the premise of the paper's Open Question 4.
        let g = generators::random_bipartite_regular(12, 3, 3);
        assert_eq!(degeneracy(&g), 3);
        let (comp, count) = crate::traversal::connected_components(&g);
        let mut b = crate::builder::GraphBuilder::new(g.n());
        let mut deleted = vec![false; count];
        for (_, (u, v)) in g.edges() {
            let c = comp[u.index()];
            if !deleted[c] {
                deleted[c] = true; // drop the first edge of each component
                continue;
            }
            b.add_edge(u, v);
        }
        let pruned = b.build();
        assert!(degeneracy(&pruned) <= 2);
        let o = degeneracy_orientation(&pruned);
        assert!(pruned.nodes().all(|v| o.out_degree(&pruned, v) <= 2));
    }
}
