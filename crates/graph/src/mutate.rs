//! Edge churn over the immutable CSR: an edit-log layer that rebuilds
//! [`Graph`]s batch-by-batch and answers *what a batch invalidated*.
//!
//! # Why a rebuild layer instead of in-place surgery
//!
//! Two of the CSR's identities are global, so no edit is ever local to it:
//!
//! * **Edge ids** index the lex-sorted `(min, max)` edge list. Inserting or
//!   removing `{u, v}` shifts the id of every edge at or after its sorted
//!   position.
//! * **Ports** are positions in a node's neighbor list sorted by index.
//!   Inserting `{u, v}` shifts by one the port of every neighbor of `u`
//!   larger than `v` (and symmetrically at `v`).
//!
//! [`MutableGraph::apply`] therefore renumbers wholesale: it merges the
//! batch into the sorted edge list and rebuilds through
//! [`crate::builder::from_sorted_edges`] — `O(n + m + k log k)` for a
//! `k`-edit batch, and **bit-identical** to what [`crate::GraphBuilder`]
//! would produce from the same edge set (pinned by a property test).
//! Callers that must survive renumbering key their state by stable data —
//! `(uid, uid)` endpoint pairs — never by [`EdgeId`](crate::EdgeId) or port.
//!
//! # What stays local: invalidation
//!
//! The paper's locality guarantee is exactly what makes churn cheap at the
//! *semantic* layer: a node's radius-`r` view is a function of its ball, so
//! an edit to `{a, b}` can change the view of `v` only if an endpoint lies
//! within distance `r` of `v` — in the old graph (deletions push members
//! out, so old routes matter) or in the new one (insertions pull members
//! in). [`MutableGraph::dirty_within`] returns that set by multi-source BFS
//! from every touched endpoint in *both* graphs: `O(Δ^r)` nodes per touched
//! endpoint, independent of `n`. Soundness (every node whose ball changed
//! is dirty) is enforced by brute-force ball diffs in
//! `crates/runtime/tests/churn.rs`.
//!
//! The node set is fixed: churn is about edges. Batches may freely insert
//! and remove, including cancelling pairs; cancelled edits still mark their
//! endpoints touched (a sound over-approximation).

use crate::builder::from_sorted_edges;
use crate::graph::{Graph, NodeId};

/// One edge edit. Endpoints are unordered; `Insert(u, v)` and
/// `Insert(v, u)` are the same edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edit {
    /// Insert the edge `{u, v}`. A no-op (skipped, not applied) if the
    /// edge is already present at that point of the batch.
    Insert(NodeId, NodeId),
    /// Remove the edge `{u, v}`. A no-op if the edge is absent at that
    /// point of the batch.
    Remove(NodeId, NodeId),
}

impl Edit {
    /// The edit's endpoints as a normalized `(min, max)` pair.
    ///
    /// # Panics
    ///
    /// Panics on self-loops.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        let (u, v) = match *self {
            Edit::Insert(u, v) | Edit::Remove(u, v) => (u, v),
        };
        assert_ne!(u, v, "self-loops are not allowed");
        (u.min(v), u.max(v))
    }
}

/// What one [`MutableGraph::apply`] batch did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditReport {
    /// Edits that changed the (intermediate) edge set.
    pub applied: usize,
    /// No-op edits: inserting a present edge, removing an absent one.
    pub skipped: usize,
    /// Endpoints of applied edits, sorted and deduplicated. These are the
    /// nodes whose incident edge lists (and hence ports, slot pairings)
    /// changed.
    pub touched: Vec<NodeId>,
}

/// An edit-log mutation layer over the immutable [`Graph`].
///
/// Holds the current graph, the snapshot the current *dirty epoch* started
/// from, and the set of touched endpoints accumulated since. Typical loop:
///
/// ```
/// use lad_graph::{generators, mutate::{Edit, MutableGraph}, NodeId};
///
/// let mut mg = MutableGraph::new(generators::cycle(8));
/// let report = mg.apply(&[Edit::Remove(NodeId(0), NodeId(1)), Edit::Insert(NodeId(0), NodeId(4))]);
/// assert_eq!(report.applied, 2);
/// assert!(mg.graph().has_edge(NodeId(0), NodeId(4)));
/// let dirty = mg.dirty_within(2); // invalidated radius-2 views
/// assert!(dirty.contains(&NodeId(1)) && dirty.contains(&NodeId(4)));
/// mg.clear_dirty(); // start the next epoch
/// assert!(mg.dirty_within(2).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MutableGraph {
    /// The current graph.
    graph: Graph,
    /// The graph as of the last [`MutableGraph::clear_dirty`] (or
    /// construction) — the "old routes" side of [`Self::dirty_within`].
    base: Graph,
    /// Nodes whose incident edge set changed since `base`, as flags.
    touched: Vec<bool>,
    /// Count of set flags, so `touched_nodes` can size exactly.
    touched_count: usize,
}

impl MutableGraph {
    /// Starts an edit log over `graph` with an empty dirty epoch.
    pub fn new(graph: Graph) -> Self {
        let n = graph.n();
        MutableGraph {
            base: graph.clone(),
            graph,
            touched: vec![false; n],
            touched_count: 0,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The snapshot the current dirty epoch started from.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Nodes whose incident edge set changed since the epoch started,
    /// sorted.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.touched_count);
        out.extend(
            self.touched
                .iter()
                .enumerate()
                .filter(|(_, &t)| t)
                .map(|(i, _)| NodeId::from_index(i)),
        );
        out
    }

    /// Whether any edit has been applied since the epoch started.
    pub fn is_dirty(&self) -> bool {
        self.touched_count > 0
    }

    /// Inserts `{u, v}`; returns whether the graph changed.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.apply(&[Edit::Insert(u, v)]).applied == 1
    }

    /// Removes `{u, v}`; returns whether the graph changed.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.apply(&[Edit::Remove(u, v)]).applied == 1
    }

    /// Applies a batch of edits in order (later edits see earlier ones),
    /// rebuilds the CSR once, and extends the dirty epoch with every
    /// applied edit's endpoints.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn apply(&mut self, edits: &[Edit]) -> EditReport {
        use std::collections::BTreeSet;
        let n = self.graph.n();
        let mut add: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut del: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut report = EditReport::default();
        let mut touched_now: BTreeSet<NodeId> = BTreeSet::new();
        for edit in edits {
            let (u, v) = edit.endpoints();
            assert!(
                v.index() < n,
                "endpoint out of range: {u:?}, {v:?} with n = {n}"
            );
            let in_graph = self.graph.has_edge(u, v);
            let present = (in_graph && !del.contains(&(u, v))) || add.contains(&(u, v));
            let applied = match edit {
                Edit::Insert(..) if present => false,
                Edit::Insert(..) => {
                    if in_graph {
                        del.remove(&(u, v));
                    } else {
                        add.insert((u, v));
                    }
                    true
                }
                Edit::Remove(..) if !present => false,
                Edit::Remove(..) => {
                    if add.contains(&(u, v)) {
                        add.remove(&(u, v));
                    } else {
                        del.insert((u, v));
                    }
                    true
                }
            };
            if applied {
                report.applied += 1;
                touched_now.insert(u);
                touched_now.insert(v);
            } else {
                report.skipped += 1;
            }
        }
        report.touched = touched_now.into_iter().collect();
        for &w in &report.touched {
            if !self.touched[w.index()] {
                self.touched[w.index()] = true;
                self.touched_count += 1;
            }
        }
        if !add.is_empty() || !del.is_empty() {
            // Merge the sorted current edge list with the sorted delta:
            // one linear pass keeps `from_sorted_edges`'s invariant
            // (lex-sorted, deduplicated) by construction.
            let mut merged: Vec<(NodeId, NodeId)> =
                Vec::with_capacity(self.graph.m() + add.len() - del.len());
            let mut ins = add.into_iter().peekable();
            for (_, e) in self.graph.edges() {
                while ins.peek().is_some_and(|&a| a < e) {
                    merged.push(ins.next().expect("peeked"));
                }
                if !del.contains(&e) {
                    merged.push(e);
                }
            }
            merged.extend(ins);
            self.graph = from_sorted_edges(n, merged);
        }
        report
    }

    /// The nodes whose radius-`radius` views the current dirty epoch may
    /// have changed: everything within distance `radius` of a touched
    /// endpoint in the epoch's base graph *or* the current graph, sorted.
    ///
    /// This is a sound over-approximation of "ball changed" (deletions are
    /// witnessed by old routes, insertions by new ones); the differential
    /// churn harness checks soundness against brute-force ball diffs.
    pub fn dirty_within(&self, radius: usize) -> Vec<NodeId> {
        let sources = self.touched_nodes();
        let mut dirty = vec![false; self.graph.n()];
        for g in [&self.base, &self.graph] {
            let mut seen = vec![false; g.n()];
            let mut frontier: Vec<NodeId> = sources.clone();
            for &s in &frontier {
                seen[s.index()] = true;
                dirty[s.index()] = true;
            }
            let mut next = Vec::new();
            for _ in 0..radius {
                for &v in &frontier {
                    for &u in g.neighbors(v) {
                        if !seen[u.index()] {
                            seen[u.index()] = true;
                            dirty[u.index()] = true;
                            next.push(u);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                next.clear();
            }
        }
        dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Ends the dirty epoch: the current graph becomes the new base and the
    /// touched set empties. Call after consumers have repaired everything
    /// [`Self::dirty_within`] reported.
    pub fn clear_dirty(&mut self) {
        if self.touched_count > 0 {
            self.base = self.graph.clone();
            self.touched.fill(false);
            self.touched_count = 0;
        }
    }

    /// Consumes the log, returning the current graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators;

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut mg = MutableGraph::new(generators::path(4));
        assert!(mg.insert_edge(NodeId(0), NodeId(3)));
        assert!(!mg.insert_edge(NodeId(3), NodeId(0)), "duplicate");
        assert!(mg.graph().has_edge(NodeId(0), NodeId(3)));
        assert!(mg.remove_edge(NodeId(0), NodeId(3)));
        assert!(!mg.remove_edge(NodeId(0), NodeId(3)), "already gone");
        assert_eq!(mg.graph().m(), 3);
    }

    #[test]
    fn batch_sees_earlier_edits() {
        let mut mg = MutableGraph::new(generators::path(3));
        let report = mg.apply(&[
            Edit::Insert(NodeId(0), NodeId(2)),
            Edit::Remove(NodeId(0), NodeId(2)),
            Edit::Insert(NodeId(0), NodeId(2)),
        ]);
        assert_eq!(report.applied, 3);
        assert_eq!(report.skipped, 0);
        assert!(mg.graph().has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn cancelling_pair_still_touches() {
        let mut mg = MutableGraph::new(generators::cycle(6));
        let report = mg.apply(&[
            Edit::Insert(NodeId(0), NodeId(3)),
            Edit::Remove(NodeId(0), NodeId(3)),
        ]);
        assert_eq!(report.applied, 2);
        assert_eq!(*mg.graph(), *mg.base(), "net no-op rebuilds identically");
        assert_eq!(report.touched, vec![NodeId(0), NodeId(3)]);
        assert!(mg.is_dirty());
    }

    #[test]
    fn rebuild_matches_builder() {
        let mut mg = MutableGraph::new(generators::cycle(7));
        mg.apply(&[
            Edit::Remove(NodeId(2), NodeId(3)),
            Edit::Insert(NodeId(2), NodeId(5)),
            Edit::Insert(NodeId(0), NodeId(3)),
        ]);
        let expect = from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 5),
                (5, 6),
                (0, 6),
                (2, 5),
                (0, 3),
            ],
        );
        assert_eq!(*mg.graph(), expect);
    }

    #[test]
    fn dirty_within_covers_both_graphs() {
        // Remove an edge: its endpoints' old neighbors are dirty via the
        // base graph even though the new graph no longer routes there.
        let mut mg = MutableGraph::new(generators::path(9));
        mg.remove_edge(NodeId(4), NodeId(5));
        let dirty = mg.dirty_within(2);
        assert_eq!(
            dirty,
            vec![
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(5),
                NodeId(6),
                NodeId(7)
            ]
        );
    }

    #[test]
    fn dirty_epoch_accumulates_and_clears() {
        let mut mg = MutableGraph::new(generators::cycle(10));
        mg.remove_edge(NodeId(0), NodeId(1));
        mg.insert_edge(NodeId(4), NodeId(7));
        let dirty = mg.dirty_within(0);
        assert_eq!(dirty, vec![NodeId(0), NodeId(1), NodeId(4), NodeId(7)]);
        mg.clear_dirty();
        assert!(!mg.is_dirty());
        assert!(mg.dirty_within(3).is_empty());
        assert_eq!(*mg.base(), *mg.graph());
    }

    #[test]
    fn skipped_edits_do_not_touch() {
        let mut mg = MutableGraph::new(generators::path(5));
        let report = mg.apply(&[
            Edit::Insert(NodeId(0), NodeId(1)), // already present
            Edit::Remove(NodeId(0), NodeId(4)), // absent
        ]);
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 2);
        assert!(!mg.is_dirty());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        MutableGraph::new(generators::path(3)).insert_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        MutableGraph::new(generators::path(3)).insert_edge(NodeId(0), NodeId(9));
    }
}
