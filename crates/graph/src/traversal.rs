//! Breadth-first traversals: distances, balls, components, diameter.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source`; `None` for unreachable nodes.
///
/// # Example
///
/// ```
/// use lad_graph::{generators, traversal, NodeId};
/// let g = generators::path(5);
/// let d = traversal::bfs_distances(&g, NodeId(0));
/// assert_eq!(d[4], Some(4));
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    multi_source_distances(g, std::iter::once(source))
}

/// BFS distances from a set of sources (distance to the nearest source).
pub fn multi_source_distances(
    g: &Graph,
    sources: impl IntoIterator<Item = NodeId>,
) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.n()];
    let mut queue = VecDeque::new();
    for s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].unwrap();
        for &u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The nodes at distance at most `r` from `center` (`N_{≤r}(v)` in the
/// paper), in BFS order, paired with their distance.
pub fn ball(g: &Graph, center: NodeId, r: usize) -> Vec<(NodeId, usize)> {
    let mut dist: Vec<Option<usize>> = vec![None; g.n()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    dist[center.index()] = Some(0);
    queue.push_back(center);
    out.push((center, 0));
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].unwrap();
        if dv == r {
            continue;
        }
        for &u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                out.push((u, dv + 1));
                queue.push_back(u);
            }
        }
    }
    out
}

/// The nodes at distance *exactly* `r` from `center` (`N_{=r}(v)`).
pub fn sphere(g: &Graph, center: NodeId, r: usize) -> Vec<NodeId> {
    ball(g, center, r)
        .into_iter()
        .filter_map(|(v, d)| (d == r).then_some(v))
        .collect()
}

/// Connected components: returns `(component_index_per_node, count)`.
///
/// Component indices are assigned in order of the smallest node index they
/// contain, so the labeling is deterministic.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut comp = vec![usize::MAX; g.n()];
    let mut count = 0;
    for s in g.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[s.index()] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Eccentricity of `v` within its connected component.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Diameter of the graph: the maximum eccentricity over all nodes, taken
/// per connected component (`None` for the empty graph).
///
/// Runs a BFS from every node — `O(n·m)` — fine for evaluation-scale graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    g.nodes().map(|v| eccentricity(g, v)).max()
}

/// A shortest path from `a` to `b` (inclusive), or `None` if disconnected.
pub fn shortest_path(g: &Graph, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; g.n()];
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    seen[a.index()] = true;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        if v == b {
            break;
        }
        for &u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    if !seen[b.index()] {
        return None;
    }
    let mut path = vec![b];
    let mut cur = b;
    while let Some(p) = parent[cur.index()] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], a);
    Some(path)
}

/// Distance between two nodes, or `None` if disconnected.
pub fn distance(g: &Graph, a: NodeId, b: NodeId) -> Option<usize> {
    bfs_distances(g, a)[b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(10);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[5], Some(5));
        assert_eq!(d[9], Some(1));
        assert_eq!(d[3], Some(3));
    }

    #[test]
    fn ball_and_sphere() {
        let g = generators::path(7);
        let b = ball(&g, NodeId(3), 2);
        let nodes: Vec<_> = b.iter().map(|&(v, _)| v.index()).collect();
        assert_eq!(nodes.len(), 5);
        assert!(nodes.contains(&1) && nodes.contains(&5));
        let s = sphere(&g, NodeId(3), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(sphere(&g, NodeId(0), 6), vec![NodeId(6)]);
        assert!(sphere(&g, NodeId(0), 7).is_empty());
    }

    #[test]
    fn components_on_disjoint_union() {
        let g = generators::disjoint_union(&[generators::cycle(4), generators::path(3)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[6]);
        assert_ne!(comp[0], comp[4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_values() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(8)), Some(4));
        assert_eq!(diameter(&generators::cycle(9)), Some(4));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
    }

    #[test]
    fn shortest_path_on_grid() {
        let g = generators::grid2d(3, 3, false);
        let p = shortest_path(&g, NodeId(0), NodeId(8)).unwrap();
        assert_eq!(p.len(), 5); // 4 steps
        assert_eq!(p[0], NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId(8));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_disconnected() {
        let g = generators::disjoint_union(&[generators::path(2), generators::path(2)]);
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
        assert_eq!(distance(&g, NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn multi_source() {
        let g = generators::path(9);
        let d = multi_source_distances(&g, [NodeId(0), NodeId(8)]);
        assert_eq!(d[4], Some(4));
        assert_eq!(d[7], Some(1));
    }

    #[test]
    fn eccentricity_of_center() {
        let g = generators::path(9);
        assert_eq!(eccentricity(&g, NodeId(4)), 4);
        assert_eq!(eccentricity(&g, NodeId(0)), 8);
    }
}
