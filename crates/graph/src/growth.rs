//! Neighborhood growth measurement and the `α`-search of the paper's
//! Lemma 4.3 (Section 4).
//!
//! A family has *sub-exponential growth* (Definition 4.2) if for every
//! `c > 0` there is `x₀` with `|N_{≤x}(v)| ≤ 2^{c·x}` for all `x ≥ x₀`.
//! Lemma 4.3 then guarantees, for every node `v`, some `α ∈ {x, …, 2x}`
//! with `|N_{≤α}(v)| ≥ Δʳ · |N_{=α+r}(v)|` — a radius at which the ball
//! dwarfs its boundary sphere. The clustering of Contribution 1 is built
//! around these radii.

use crate::graph::{Graph, NodeId};
use crate::traversal;

/// The ball sizes `|N_{≤d}(v)|` for `d = 0, …, r`.
pub fn ball_sizes(g: &Graph, v: NodeId, r: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; r + 1];
    for (_, d) in traversal::ball(g, v, r) {
        sizes[d] += 1;
    }
    // Prefix sums: sizes[d] currently counts the sphere at distance d.
    for d in 1..=r {
        sizes[d] += sizes[d - 1];
    }
    sizes
}

/// The sphere sizes `|N_{=d}(v)|` for `d = 0, …, r`.
pub fn sphere_sizes(g: &Graph, v: NodeId, r: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; r + 1];
    for (_, d) in traversal::ball(g, v, r) {
        sizes[d] += 1;
    }
    sizes
}

/// Empirical growth rate: the maximum over nodes of
/// `log2(|N_{≤x}(v)|) / x` — the family is sub-exponential when this decays
/// with `x`.
pub fn growth_exponent(g: &Graph, x: usize) -> f64 {
    if x == 0 {
        return 0.0;
    }
    g.nodes()
        .map(|v| {
            let b = ball_sizes(g, v, x)[x] as f64;
            b.log2() / x as f64
        })
        .fold(0.0, f64::max)
}

/// The Lemma-4.3 search: the smallest `α ∈ {x, …, 2x}` satisfying
///
/// # Example
///
/// ```
/// use lad_graph::{generators, growth, NodeId};
/// let g = generators::cycle(100);
/// // On a cycle, |N_{≤α}| = 2α+1 vs a 2-node boundary sphere.
/// let alpha = growth::find_alpha(&g, NodeId(0), 8, 2, 4).unwrap();
/// assert!((8..=16).contains(&alpha));
/// ```
///
/// The inequality:
/// `|N_{≤α}(v)| ≥ threshold · |N_{=α+r}(v)|`, where the paper takes
/// `threshold = Δʳ`.
///
/// Returns `None` if no radius in range satisfies the inequality (which
/// Lemma 4.3 rules out for genuinely sub-exponential families with the
/// right constants, but can happen for aggressive `threshold` on small
/// instances).
pub fn find_alpha(g: &Graph, v: NodeId, x: usize, r: usize, threshold: usize) -> Option<usize> {
    let spheres = sphere_sizes(g, v, 2 * x + r);
    let mut ball = 0usize;
    let mut alpha_found = None;
    let mut prefix = vec![0usize; spheres.len() + 1];
    for (d, &s) in spheres.iter().enumerate() {
        ball += s;
        prefix[d + 1] = ball;
    }
    for alpha in x..=2 * x {
        let ball_a = prefix[alpha + 1];
        let boundary = spheres.get(alpha + r).copied().unwrap_or(0);
        if ball_a >= threshold * boundary {
            alpha_found = Some(alpha);
            break;
        }
    }
    alpha_found
}

/// Like [`find_alpha`] but never fails: falls back to the `α ∈ {x, …, 2x}`
/// maximizing the ratio `|N_{≤α}| / max(1, |N_{=α+r}|)`.
pub fn find_alpha_or_best(g: &Graph, v: NodeId, x: usize, r: usize, threshold: usize) -> usize {
    if let Some(a) = find_alpha(g, v, x, r, threshold) {
        return a;
    }
    let spheres = sphere_sizes(g, v, 2 * x + r);
    let mut prefix = vec![0usize; spheres.len() + 1];
    for (d, &s) in spheres.iter().enumerate() {
        prefix[d + 1] = prefix[d] + s;
    }
    (x..=2 * x)
        .max_by(|&a, &b| {
            let ra = prefix[a + 1] as f64 / spheres.get(a + r).copied().unwrap_or(0).max(1) as f64;
            let rb = prefix[b + 1] as f64 / spheres.get(b + r).copied().unwrap_or(0).max(1) as f64;
            ra.partial_cmp(&rb).unwrap()
        })
        .unwrap_or(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ball_sizes_on_path() {
        let g = generators::path(11);
        let b = ball_sizes(&g, NodeId(5), 3);
        assert_eq!(b, vec![1, 3, 5, 7]);
        let s = sphere_sizes(&g, NodeId(5), 3);
        assert_eq!(s, vec![1, 2, 2, 2]);
    }

    #[test]
    fn growth_exponent_decays_on_grid() {
        let g = generators::grid2d(25, 25, true);
        let g2 = growth_exponent(&g, 2);
        let g8 = growth_exponent(&g, 8);
        assert!(g8 < g2, "grid growth exponent should decay: {g8} < {g2}");
    }

    #[test]
    fn growth_exponent_on_tree_stays_high() {
        let g = generators::balanced_tree(2, 8);
        let e = growth_exponent(&g, 6);
        assert!(e > 0.5, "binary tree growth is exponential: {e}");
    }

    #[test]
    fn find_alpha_on_cycle() {
        // On a cycle, |N_{≤α}| = 2α + 1 and |N_{=α+r}| = 2, so the lemma
        // inequality holds as soon as 2α + 1 ≥ 2·threshold.
        let g = generators::cycle(200);
        let a = find_alpha(&g, NodeId(0), 10, 2, 4).unwrap();
        assert!((10..=20).contains(&a));
        assert!(2 * a + 1 >= 2 * 4);
    }

    #[test]
    fn find_alpha_fails_with_absurd_threshold() {
        let g = generators::cycle(200);
        assert_eq!(find_alpha(&g, NodeId(0), 3, 1, 1000), None);
        let fallback = find_alpha_or_best(&g, NodeId(0), 3, 1, 1000);
        assert!((3..=6).contains(&fallback));
    }

    #[test]
    fn find_alpha_near_graph_boundary() {
        // When the ball swallows the whole graph, the boundary sphere is
        // empty and the inequality holds trivially.
        let g = generators::cycle(12);
        let a = find_alpha(&g, NodeId(0), 6, 3, 1_000_000).unwrap();
        assert_eq!(a, 6);
    }
}
