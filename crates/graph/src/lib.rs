#![warn(missing_docs)]

//! Graph substrate for the `local-advice` workspace.
//!
//! This crate provides everything the advice schemas of
//! [the PODC 2024 paper] manipulate:
//!
//! - a compact immutable [`Graph`] (CSR adjacency, deterministic neighbor
//!   order) with a mutable [`GraphBuilder`],
//! - unique-identifier assignments ([`IdAssignment`]) as used by the LOCAL
//!   model (IDs from `{1, …, poly(n)}`),
//! - deterministic and randomized [`generators`] for every graph family the
//!   evaluation uses (cycles, paths, grids, tori, trees, hypercubes, random
//!   bounded-degree graphs, bipartite regular graphs, random 3-colorable
//!   graphs, even-degree graphs),
//! - traversal utilities (BFS [`distances`](traversal::bfs_distances),
//!   [balls](traversal::ball), components, diameter),
//! - power graphs, greedy and distance-`k` colorings, maximal independent
//!   sets and `(α, β)`-ruling sets,
//! - [`orientation`]: edge orientations, balance checks, and the Euler
//!   partition of the edge set into trails (cycles and paths) that drives
//!   the paper's balanced-orientation schema (Section 5),
//! - [`growth`]: neighborhood-growth measurement and the `α`-search of the
//!   paper's Lemma 4.3.
//!
//! # Example
//!
//! ```
//! use lad_graph::{generators, traversal};
//!
//! let g = generators::cycle(8);
//! assert_eq!(g.n(), 8);
//! assert_eq!(g.m(), 8);
//! assert_eq!(g.max_degree(), 2);
//! let d = traversal::bfs_distances(&g, lad_graph::NodeId(0));
//! assert_eq!(d[4], Some(4));
//! ```
//!
//! [the PODC 2024 paper]: https://doi.org/10.1145/3662158.3662796

pub mod builder;
pub mod coloring;
pub mod dot;
pub mod frontier;
pub mod generators;
pub mod graph;
pub mod growth;
pub mod ids;
pub mod mutate;
pub mod orientation;
pub mod power;
pub mod ruling;
pub mod shard;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use frontier::BitFrontier;
pub use graph::{EdgeId, Graph, NodeId};
pub use ids::IdAssignment;
pub use mutate::{Edit, EditReport, MutableGraph};
pub use orientation::{EulerPartition, Orientation, Trail};
pub use shard::{Partition, ShardView};
pub use subgraph::InducedSubgraph;
pub mod degeneracy;
