//! Power graphs `G^k` (Section 3.1 of the paper).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::traversal;

/// The power graph `G^k`: same nodes, an edge `{u, v}` whenever
/// `1 ≤ dist_G(u, v) ≤ k`.
///
/// Used for distance-`k` colorings (a proper coloring of `G^k`).
///
/// # Example
///
/// ```
/// use lad_graph::{generators, power::power_graph, NodeId};
/// let g = generators::path(4);
/// let g2 = power_graph(&g, 2);
/// assert!(g2.has_edge(NodeId(0), NodeId(2)));
/// assert!(!g2.has_edge(NodeId(0), NodeId(3)));
/// ```
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    let mut b = GraphBuilder::new(g.n());
    if k == 0 {
        return b.build();
    }
    for v in g.nodes() {
        for (u, d) in traversal::ball(g, v, k) {
            if d >= 1 && u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::NodeId;

    #[test]
    fn square_of_cycle() {
        let g = generators::cycle(8);
        let g2 = power_graph(&g, 2);
        assert!(g2.nodes().all(|v| g2.degree(v) == 4));
        assert!(g2.has_edge(NodeId(0), NodeId(6)));
        assert!(!g2.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn power_one_is_identity() {
        let g = generators::grid2d(3, 3, false);
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    fn power_zero_is_empty() {
        let g = generators::cycle(5);
        assert_eq!(power_graph(&g, 0).m(), 0);
    }

    #[test]
    fn large_power_is_complete_per_component() {
        let g = generators::path(5);
        let gp = power_graph(&g, 10);
        assert_eq!(gp.m(), 10); // K5
    }
}
