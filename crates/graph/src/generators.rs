//! Deterministic and randomized graph generators for every family the
//! evaluation suite uses.
//!
//! All randomized generators take an explicit `seed` and are fully
//! deterministic given it (they use ChaCha8).

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n));
    }
    b.build()
}

/// The path `P_n` on `n` nodes (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::from_index(i), NodeId::from_index(j));
        }
    }
    b.build()
}

/// The star `K_{1,k}`: node 0 is the center, `k` leaves.
pub fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::new(k + 1);
    for i in 1..=k {
        b.add_edge(NodeId(0), NodeId::from_index(i));
    }
    b.build()
}

/// The `w × h` grid; with `wrap` it becomes a torus (both dimensions wrap).
///
/// Node `(x, y)` has index `y * w + x`. Grids have polynomial growth, making
/// them the canonical sub-exponential-growth family for Contribution 1.
///
/// # Panics
///
/// Panics if `wrap` is set with a dimension smaller than 3 (would create
/// duplicate/self edges).
pub fn grid2d(w: usize, h: usize, wrap: bool) -> Graph {
    if wrap {
        assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    }
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| NodeId::from_index(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            } else if wrap {
                b.add_edge(id(x, y), id(0, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            } else if wrap {
                b.add_edge(id(x, y), id(x, 0));
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(NodeId::from_index(v), NodeId::from_index(u));
            }
        }
    }
    b.build()
}

/// The complete `arity`-ary tree of the given `depth` (depth 0 = single root).
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    let mut b = GraphBuilder::new(1);
    let mut frontier = vec![NodeId(0)];
    let mut next_index = 1usize;
    for _ in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..arity {
                b.ensure_nodes(next_index + 1);
                let child = NodeId::from_index(next_index);
                next_index += 1;
                b.add_edge(parent, child);
                next.push(child);
            }
        }
        frontier = next;
    }
    b.build()
}

/// A "caterpillar": a path of `spine` nodes with `legs` pendant leaves each.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut b = GraphBuilder::new(spine + spine * legs);
    for i in 1..spine {
        b.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
    let mut next = spine;
    for i in 0..spine {
        for _ in 0..legs {
            b.add_edge(NodeId::from_index(i), NodeId::from_index(next));
            next += 1;
        }
    }
    b.build()
}

/// Disjoint union of graphs, relabeling nodes consecutively.
pub fn disjoint_union(parts: &[Graph]) -> Graph {
    let n: usize = parts.iter().map(|g| g.n()).sum();
    let mut b = GraphBuilder::new(n);
    let mut base = 0usize;
    for g in parts {
        for (_, (u, v)) in g.edges() {
            b.add_edge(
                NodeId::from_index(base + u.index()),
                NodeId::from_index(base + v.index()),
            );
        }
        base += g.n();
    }
    b.build()
}

/// An Erdős–Rényi-style random graph conditioned on maximum degree ≤ `delta`:
/// `m_target` random edges are attempted, each kept only if it preserves the
/// degree bound and is not a duplicate.
pub fn random_bounded_degree(n: usize, delta: usize, m_target: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut deg = vec![0usize; n];
    let mut attempts = 0usize;
    let max_attempts = m_target.saturating_mul(20) + 100;
    while b.m() < m_target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || deg[u] >= delta || deg[v] >= delta {
            continue;
        }
        if b.add_edge(NodeId::from_index(u), NodeId::from_index(v)) {
            deg[u] += 1;
            deg[v] += 1;
        }
    }
    b.build()
}

/// A random graph in which every node has even degree: the union of
/// `cycle_count` random cycles (each a random permutation cycle over a random
/// subset of nodes), deduplicated. Node degrees stay even because overlapping
/// edges of distinct cycles are re-drawn.
pub fn random_even_degree(n: usize, cycle_count: usize, cycle_len: usize, seed: u64) -> Graph {
    assert!(cycle_len >= 3 && cycle_len <= n, "bad cycle length");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    'outer: while placed < cycle_count && attempts < cycle_count * 50 + 50 {
        attempts += 1;
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.shuffle(&mut rng);
        nodes.truncate(cycle_len);
        // Reject if any cycle edge already exists (would break even parity).
        for i in 0..cycle_len {
            let u = NodeId::from_index(nodes[i]);
            let v = NodeId::from_index(nodes[(i + 1) % cycle_len]);
            if b.has_edge(u, v) {
                continue 'outer;
            }
        }
        for i in 0..cycle_len {
            let u = NodeId::from_index(nodes[i]);
            let v = NodeId::from_index(nodes[(i + 1) % cycle_len]);
            b.add_edge(u, v);
        }
        placed += 1;
    }
    let g = b.build();
    debug_assert!(g.all_degrees_even());
    g
}

/// A random bipartite `d`-regular graph on `2 * side` nodes
/// (left nodes `0..side`, right nodes `side..2*side`), built from `d`
/// random perfect matchings with rejection on collisions.
///
/// # Panics
///
/// Panics if `d > side` (impossible) or if generation fails repeatedly
/// (astronomically unlikely for evaluation-scale parameters).
pub fn random_bipartite_regular(side: usize, d: usize, seed: u64) -> Graph {
    assert!(d <= side, "degree cannot exceed side size");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'retry: for _ in 0..50 {
        let mut b = GraphBuilder::new(2 * side);
        'matching: for _ in 0..d {
            // Draw a permutation, then repair collisions with existing
            // edges by random swaps.
            let mut perm: Vec<usize> = (0..side).collect();
            perm.shuffle(&mut rng);
            let collides = |b: &GraphBuilder, i: usize, p: usize| {
                b.has_edge(NodeId::from_index(i), NodeId::from_index(side + p))
            };
            for _ in 0..side * 200 {
                let bad: Vec<usize> = (0..side).filter(|&i| collides(&b, i, perm[i])).collect();
                if bad.is_empty() {
                    for (i, &p) in perm.iter().enumerate() {
                        b.add_edge(NodeId::from_index(i), NodeId::from_index(side + p));
                    }
                    continue 'matching;
                }
                let i = bad[rng.random_range(0..bad.len())];
                let j = rng.random_range(0..side);
                // Swap only if it does not break j.
                if !collides(&b, i, perm[j]) && !collides(&b, j, perm[i]) {
                    perm.swap(i, j);
                }
            }
            continue 'retry;
        }
        let g = b.build();
        debug_assert!(g.nodes().all(|v| g.degree(v) == d));
        return g;
    }
    panic!("failed to generate a random bipartite {d}-regular graph");
}

/// A random simple `d`-regular graph on `n` nodes, via the configuration
/// (stub-pairing) model: each node contributes `d` stubs, the stubs are
/// shuffled and paired in order, and a pair that would form a self-loop or
/// a duplicate edge is repaired by swapping its second stub with a random
/// not-yet-paired stub (restarting from a fresh shuffle when a pair cannot
/// be repaired).
///
/// # Panics
///
/// Panics if `d >= n`, if `n * d` is odd, or if generation fails
/// repeatedly (astronomically unlikely for evaluation-scale parameters).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be below the node count");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'retry: for _ in 0..200 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let pairs = stubs.len() / 2;
        let mut b = GraphBuilder::new(n);
        for i in 0..pairs {
            let mut tries = 0;
            loop {
                let (u, v) = (stubs[2 * i], stubs[2 * i + 1]);
                if u != v && !b.has_edge(NodeId::from_index(u), NodeId::from_index(v)) {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v));
                    break;
                }
                tries += 1;
                if tries > 200 || 2 * (i + 1) >= stubs.len() {
                    continue 'retry;
                }
                let j = rng.random_range(2 * (i + 1)..stubs.len());
                stubs.swap(2 * i + 1, j);
            }
        }
        let g = b.build();
        debug_assert!(g.nodes().all(|v| g.degree(v) == d));
        return g;
    }
    panic!("failed to generate a random {d}-regular graph on {n} nodes");
}

/// A random 3-colorable graph: nodes are split into three classes of the
/// given sizes and `m_target` random cross-class edges are added subject to
/// a maximum degree of `delta`. Returns the graph and the witness coloring
/// (values `0`, `1`, `2`).
pub fn random_tripartite(
    sizes: [usize; 3],
    delta: usize,
    m_target: usize,
    seed: u64,
) -> (Graph, Vec<u8>) {
    let n = sizes[0] + sizes[1] + sizes[2];
    let mut color = vec![0u8; n];
    color[sizes[0]..sizes[0] + sizes[1]].fill(1);
    color[sizes[0] + sizes[1]..].fill(2);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut deg = vec![0usize; n];
    let mut attempts = 0usize;
    while b.m() < m_target && attempts < m_target * 30 + 100 {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || color[u] == color[v] || deg[u] >= delta || deg[v] >= delta {
            continue;
        }
        if b.add_edge(NodeId::from_index(u), NodeId::from_index(v)) {
            deg[u] += 1;
            deg[v] += 1;
        }
    }
    (b.build(), color)
}

/// A random connected subgraph of a large torus — a convenient family with
/// sub-exponential growth and maximum degree 4 for Contribution 1.
pub fn random_torus_patch(w: usize, h: usize, keep: f64, seed: u64) -> Graph {
    let full = grid2d(w, h, true);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(full.n());
    for (_, (u, v)) in full.edges() {
        if rng.random_range(0.0..1.0) < keep {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left nodes `0..a`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(NodeId::from_index(i), NodeId::from_index(a + j));
        }
    }
    builder.build()
}

/// The ladder graph: two paths of length `rungs` joined by rungs
/// (3-regular in the interior).
pub fn ladder(rungs: usize) -> Graph {
    assert!(rungs >= 1, "a ladder needs at least one rung");
    let mut b = GraphBuilder::new(2 * rungs);
    for i in 0..rungs {
        b.add_edge(NodeId::from_index(i), NodeId::from_index(rungs + i));
        if i + 1 < rungs {
            b.add_edge(NodeId::from_index(i), NodeId::from_index(i + 1));
            b.add_edge(
                NodeId::from_index(rungs + i),
                NodeId::from_index(rungs + i + 1),
            );
        }
    }
    b.build()
}

/// Streams the edges of [`cycle`] in lex-sorted `(min, max)` order
/// without materializing the graph or an edge `Vec` — feed the callback
/// into `builder::from_sorted_edges` (or a per-shard filter) to build
/// instances too large for [`GraphBuilder`]'s edge set.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_edges(n: usize, mut emit: impl FnMut(NodeId, NodeId)) {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    emit(NodeId(0), NodeId(1));
    emit(NodeId(0), NodeId::from_index(n - 1));
    for i in 1..n - 1 {
        emit(NodeId::from_index(i), NodeId::from_index(i + 1));
    }
}

/// Streams the edges of [`path`] in lex-sorted `(min, max)` order.
pub fn path_edges(n: usize, mut emit: impl FnMut(NodeId, NodeId)) {
    for i in 1..n {
        emit(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
}

/// Streams the edges of [`grid2d`] in lex-sorted `(min, max)` order.
///
/// Every edge is emitted once, from its smaller endpoint: for node
/// `(x, y)` the larger neighbors are, in ascending index order, the right
/// neighbor `u + 1`, the row-wrap partner `u + w − 1` (at `x = 0`), the
/// down neighbor `u + w`, and the column-wrap partner `u + (h − 1)·w`
/// (at `y = 0`) — wrap requires both dimensions ≥ 3, so that order never
/// inverts.
///
/// # Panics
///
/// Panics if `wrap` is set with a dimension smaller than 3.
pub fn grid2d_edges(w: usize, h: usize, wrap: bool, mut emit: impl FnMut(NodeId, NodeId)) {
    if wrap {
        assert!(w >= 3 && h >= 3, "torus dimensions must be at least 3");
    }
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            if x + 1 < w {
                emit(NodeId::from_index(u), NodeId::from_index(u + 1));
            }
            if wrap && x == 0 {
                emit(NodeId::from_index(u), NodeId::from_index(u + w - 1));
            }
            if y + 1 < h {
                emit(NodeId::from_index(u), NodeId::from_index(u + w));
            }
            if wrap && y == 0 {
                emit(NodeId::from_index(u), NodeId::from_index(u + (h - 1) * w));
            }
        }
    }
}

/// Streams the edges of [`random_bounded_degree`] in lex-sorted
/// `(min, max)` order, holding only compact per-node adjacency (at most
/// `delta` entries per node) instead of [`GraphBuilder`]'s global edge
/// set. The RNG draws and accept/reject decisions replay the
/// materializing generator exactly — same `seed`, same graph.
pub fn random_bounded_degree_edges(
    n: usize,
    delta: usize,
    m_target: usize,
    seed: u64,
    mut emit: impl FnMut(NodeId, NodeId),
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut m = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m_target.saturating_mul(20) + 100;
    while m < m_target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || adj[u].len() >= delta || adj[v].len() >= delta {
            continue;
        }
        if adj[u].contains(&(v as u32)) {
            continue;
        }
        adj[u].push(v as u32);
        adj[v].push(u as u32);
        m += 1;
    }
    let mut larger: Vec<u32> = Vec::with_capacity(delta);
    for (u, nbrs) in adj.iter().enumerate() {
        larger.clear();
        larger.extend(nbrs.iter().copied().filter(|&v| v as usize > u));
        larger.sort_unstable();
        for &v in &larger {
            emit(NodeId::from_index(u), NodeId::from_index(v as usize));
        }
    }
}

/// A uniformly random labeled tree on `n` nodes via a Prüfer sequence —
/// the canonical *exponential-growth-free but unbounded-degree-prone*
/// family; degrees concentrate around O(log n / log log n).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    if n == 1 {
        return b.build();
    }
    if n == 2 {
        b.add_edge(NodeId(0), NodeId(1));
        return b.build();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut ptr = 0usize; // smallest index with degree 1 not yet used
    let mut leaf = usize::MAX;
    for &p in &prufer {
        let l = if leaf != usize::MAX {
            leaf
        } else {
            while degree[ptr] != 1 {
                ptr += 1;
            }
            ptr
        };
        b.add_edge(NodeId::from_index(l), NodeId::from_index(p));
        degree[l] -= 1;
        degree[p] -= 1;
        leaf = if degree[p] == 1 && p < ptr {
            p
        } else {
            usize::MAX
        };
    }
    // Join the final two degree-1 nodes.
    let remaining: Vec<usize> = (0..n).filter(|&v| degree[v] == 1).collect();
    debug_assert_eq!(remaining.len(), 2);
    b.add_edge(
        NodeId::from_index(remaining[0]),
        NodeId::from_index(remaining[1]),
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(12);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(traversal::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn path_endpoints() {
        let g = path(5);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(4)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(NodeId(0)), 7);
        assert_eq!(g.n(), 8);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid2d(4, 5, false);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5); // vertical + horizontal
        let t = grid2d(4, 5, true);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert_eq!(t.m(), 2 * 20);
    }

    #[test]
    fn hypercube_regular() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(traversal::diameter(&g), Some(4));
    }

    #[test]
    fn balanced_tree_sizes() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert_eq!(g.degree(NodeId(0)), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.degree(NodeId(1)), 4); // two spine neighbors + two legs
    }

    #[test]
    fn random_bounded_degree_respects_delta() {
        let g = random_bounded_degree(200, 5, 400, 42);
        assert!(g.max_degree() <= 5);
        assert!(g.m() > 300, "generator should reach most of its target");
        // Determinism.
        let g2 = random_bounded_degree(200, 5, 400, 42);
        assert_eq!(g, g2);
    }

    #[test]
    fn random_even_degree_is_even() {
        let g = random_even_degree(60, 8, 10, 7);
        assert!(g.all_degrees_even());
        assert!(g.m() > 0);
    }

    #[test]
    fn random_bipartite_regular_is_regular_and_bipartite() {
        let g = random_bipartite_regular(20, 4, 3);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        for (_, (u, v)) in g.edges() {
            assert!((u.index() < 20) != (v.index() < 20));
        }
    }

    #[test]
    fn random_regular_is_regular_simple_and_deterministic() {
        for (n, d) in [(10, 3), (25, 4), (60, 3), (16, 6)] {
            let g = random_regular(n, d, 7);
            assert_eq!(g.n(), n);
            assert!(g.nodes().all(|v| g.degree(v) == d), "n={n} d={d}");
            // Simplicity: the m() dedup plus degree check already rules out
            // duplicates; rule out self-loops explicitly.
            for (_, (u, v)) in g.edges() {
                assert_ne!(u, v);
            }
            assert_eq!(g.m(), n * d / 2);
        }
        let a = random_regular(40, 4, 123);
        let b = random_regular(40, 4, 123);
        let c = random_regular(40, 4, 124);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_stub_count() {
        let _ = random_regular(5, 3, 1);
    }

    #[test]
    fn random_tripartite_is_properly_colored() {
        let (g, color) = random_tripartite([30, 30, 30], 6, 150, 11);
        for (_, (u, v)) in g.edges() {
            assert_ne!(color[u.index()], color[v.index()]);
        }
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn torus_patch_bounded() {
        let g = random_torus_patch(10, 10, 0.8, 1);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn disjoint_union_preserves_structure() {
        let g = disjoint_union(&[complete(3), complete(4)]);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 3 + 6);
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(5)), 3);
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(5);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 5 + 2 * 4);
        assert_eq!(g.max_degree(), 3);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn streamed_edges_match_materializing_generators() {
        use crate::builder::from_sorted_edges;
        type EdgeSink<'a> = &'a mut dyn FnMut(NodeId, NodeId);
        let collect = |f: &mut dyn FnMut(EdgeSink)| {
            let mut edges = Vec::new();
            f(&mut |u, v| edges.push((u, v)));
            assert!(
                edges.windows(2).all(|w| w[0] < w[1]),
                "stream must be lex-sorted and deduplicated"
            );
            edges
        };
        for n in [3usize, 4, 5, 17, 30] {
            let edges = collect(&mut |emit| cycle_edges(n, emit));
            assert_eq!(from_sorted_edges(n, edges), cycle(n), "cycle {n}");
        }
        for n in [1usize, 2, 9, 24] {
            let edges = collect(&mut |emit| path_edges(n, emit));
            assert_eq!(from_sorted_edges(n, edges), path(n), "path {n}");
        }
        for (w, h, wrap) in [
            (1, 5, false),
            (5, 1, false),
            (2, 2, false),
            (4, 6, false),
            (3, 3, true),
            (3, 7, true),
            (6, 4, true),
            (5, 5, true),
        ] {
            let edges = collect(&mut |emit| grid2d_edges(w, h, wrap, emit));
            assert_eq!(
                from_sorted_edges(w * h, edges),
                grid2d(w, h, wrap),
                "grid {w}x{h} wrap={wrap}"
            );
        }
        for seed in 0..5u64 {
            let (n, delta, m_target) = (80, 4, 150);
            let edges =
                collect(&mut |emit| random_bounded_degree_edges(n, delta, m_target, seed, emit));
            assert_eq!(
                from_sorted_edges(n, edges),
                random_bounded_degree(n, delta, m_target, seed),
                "random_bounded_degree seed {seed}"
            );
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..10 {
            for n in [1usize, 2, 3, 10, 50] {
                let g = random_tree(n, seed);
                assert_eq!(g.n(), n);
                assert_eq!(g.m(), n.saturating_sub(1));
                assert!(traversal::is_connected(&g), "n={n} seed={seed}");
            }
        }
        // Determinism + variety.
        assert_eq!(random_tree(30, 4), random_tree(30, 4));
        assert_ne!(random_tree(30, 4), random_tree(30, 5));
    }
}
