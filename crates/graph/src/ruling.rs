//! Maximal independent sets and `(α, β)`-ruling sets (Section 3.1).

use crate::graph::{Graph, NodeId};
use crate::traversal;
use std::collections::VecDeque;

/// A maximal independent set computed greedily in the given order.
///
/// # Panics
///
/// Panics if `order` repeats nodes or is out of range.
pub fn greedy_mis(g: &Graph, order: &[NodeId]) -> Vec<NodeId> {
    let mut blocked = vec![false; g.n()];
    let mut seen = vec![false; g.n()];
    let mut mis = Vec::new();
    for &v in order {
        assert!(!seen[v.index()], "order must not repeat nodes");
        seen[v.index()] = true;
        if blocked[v.index()] {
            continue;
        }
        mis.push(v);
        blocked[v.index()] = true;
        for &u in g.neighbors(v) {
            blocked[u.index()] = true;
        }
    }
    mis
}

/// A maximal independent set in node-index order.
pub fn greedy_mis_default(g: &Graph) -> Vec<NodeId> {
    let order: Vec<NodeId> = g.nodes().collect();
    greedy_mis(g, &order)
}

/// A maximal independent subset of `candidates` (greedy, in the order given).
/// Nodes outside `candidates` are ignored entirely.
pub fn greedy_mis_within(g: &Graph, candidates: &[NodeId]) -> Vec<NodeId> {
    let mut blocked = vec![false; g.n()];
    let mut out = Vec::new();
    for &v in candidates {
        if blocked[v.index()] {
            continue;
        }
        out.push(v);
        blocked[v.index()] = true;
        for &u in g.neighbors(v) {
            blocked[u.index()] = true;
        }
    }
    out
}

/// Whether `set` is independent in `g`.
pub fn is_independent(g: &Graph, set: &[NodeId]) -> bool {
    let mut inset = vec![false; g.n()];
    for &v in set {
        inset[v.index()] = true;
    }
    set.iter()
        .all(|&v| g.neighbors(v).iter().all(|&u| !inset[u.index()]))
}

/// Whether `set` is a *maximal* independent set of `g`.
pub fn is_mis(g: &Graph, set: &[NodeId]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    let mut inset = vec![false; g.n()];
    for &v in set {
        inset[v.index()] = true;
    }
    g.nodes()
        .all(|v| inset[v.index()] || g.neighbors(v).iter().any(|&u| inset[u.index()]))
}

/// A greedy `(α, β)`-ruling set with `β = α - 1`: chosen nodes are pairwise
/// at distance `≥ α` and every node is within distance `α - 1` of a chosen
/// node. (A maximal "distance-(α-1) independent set".)
///
/// Equivalently a MIS of `G^{α-1}`, computed without materializing the power
/// graph.
///
/// # Panics
///
/// Panics if `alpha == 0`.
pub fn ruling_set(g: &Graph, alpha: usize) -> Vec<NodeId> {
    assert!(alpha >= 1, "alpha must be positive");
    let mut blocked = vec![false; g.n()];
    let mut out = Vec::new();
    for v in g.nodes() {
        if blocked[v.index()] {
            continue;
        }
        out.push(v);
        // Block everything within distance alpha - 1.
        let mut queue = VecDeque::from([(v, 0usize)]);
        let mut visited = vec![false; g.n()];
        visited[v.index()] = true;
        while let Some((u, d)) = queue.pop_front() {
            blocked[u.index()] = true;
            if d + 1 < alpha {
                for &w in g.neighbors(u) {
                    if !visited[w.index()] {
                        visited[w.index()] = true;
                        queue.push_back((w, d + 1));
                    }
                }
            }
        }
    }
    out
}

/// A ruling set restricted to a node subset: chosen nodes come from
/// `candidates`, are pairwise at distance `≥ alpha` *in `g`*, and every
/// candidate is within distance `alpha - 1` of a chosen node.
pub fn ruling_set_within(g: &Graph, candidates: &[NodeId], alpha: usize) -> Vec<NodeId> {
    assert!(alpha >= 1, "alpha must be positive");
    let mut blocked = vec![false; g.n()];
    let mut out = Vec::new();
    for &v in candidates {
        if blocked[v.index()] {
            continue;
        }
        out.push(v);
        for (u, _) in traversal::ball(g, v, alpha - 1) {
            blocked[u.index()] = true;
        }
    }
    out
}

/// Validates the `(α, β)`-ruling-set property for `set` over `domain`
/// (`domain = None` means all nodes): pairwise distance `≥ alpha`, and every
/// domain node within distance `≤ beta` of the set.
pub fn is_ruling_set(
    g: &Graph,
    set: &[NodeId],
    domain: Option<&[NodeId]>,
    alpha: usize,
    beta: usize,
) -> bool {
    // Pairwise distance.
    for (i, &a) in set.iter().enumerate() {
        let d = traversal::bfs_distances(g, a);
        for &b in &set[i + 1..] {
            if let Some(dist) = d[b.index()] {
                if dist < alpha {
                    return false;
                }
            }
        }
    }
    // Domination.
    let dist = traversal::multi_source_distances(g, set.iter().copied());
    let check = |v: NodeId| matches!(dist[v.index()], Some(d) if d <= beta);
    match domain {
        Some(dom) => dom.iter().all(|&v| check(v)),
        None => g.nodes().all(check),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn mis_on_cycle() {
        let g = generators::cycle(9);
        let mis = greedy_mis_default(&g);
        assert!(is_mis(&g, &mis));
        assert!(mis.len() >= 3);
    }

    #[test]
    fn mis_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(80, 5, 150, seed);
            let mis = greedy_mis_default(&g);
            assert!(is_mis(&g, &mis));
        }
    }

    #[test]
    fn mis_within_subset() {
        let g = generators::cycle(10);
        let cand: Vec<NodeId> = (0..6).map(NodeId::from_index).collect();
        let set = greedy_mis_within(&g, &cand);
        assert!(is_independent(&g, &set));
        assert!(set.iter().all(|v| v.index() < 6));
    }

    #[test]
    fn ruling_set_is_mis_of_power() {
        let g = generators::cycle(20);
        let rs = ruling_set(&g, 3);
        assert!(is_ruling_set(&g, &rs, None, 3, 2));
    }

    #[test]
    fn ruling_set_alpha_one_is_everything() {
        let g = generators::path(5);
        assert_eq!(ruling_set(&g, 1).len(), 5);
    }

    #[test]
    fn ruling_set_within_dominates_candidates() {
        let g = generators::grid2d(6, 6, false);
        let cand: Vec<NodeId> = g.nodes().filter(|v| v.index() % 3 == 0).collect();
        let rs = ruling_set_within(&g, &cand, 4);
        assert!(is_ruling_set(&g, &rs, Some(&cand), 4, 3));
    }

    #[test]
    fn is_independent_detects_edges() {
        let g = generators::path(3);
        assert!(is_independent(&g, &[NodeId(0), NodeId(2)]));
        assert!(!is_independent(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn is_mis_detects_non_maximal() {
        let g = generators::path(5);
        assert!(!is_mis(&g, &[NodeId(0)]));
        assert!(is_mis(&g, &[NodeId(0), NodeId(2), NodeId(4)]));
    }
}
