//! The immutable graph type used throughout the workspace.
//!
//! [`Graph`] is a simple undirected graph stored in compressed-sparse-row
//! form. Neighbor lists are sorted by node index, which gives every
//! algorithm in the workspace a deterministic iteration order — the
//! encoder/decoder pairs of the advice schemas rely on this determinism.

use std::fmt;

/// Index of a node in a [`Graph`] (`0 ..= n-1`).
///
/// This is a *topological* index, distinct from the LOCAL-model unique
/// identifier (see [`crate::ids::IdAssignment`]). Algorithms that must be
/// ID-based (as in the paper) should always go through an `IdAssignment`.
///
/// # Example
///
/// ```
/// use lad_graph::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node index as a `usize`, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an undirected edge in a [`Graph`] (`0 ..= m-1`).
///
/// # Example
///
/// ```
/// use lad_graph::{generators, EdgeId};
/// let g = generators::path(3);
/// let (u, v) = g.endpoints(EdgeId(0));
/// assert!(u < v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the edge index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable simple undirected graph in CSR form.
///
/// Construct one with [`crate::GraphBuilder`] or a function from
/// [`crate::generators`].
///
/// Neighbor lists are sorted by node index and parallel edges/self-loops are
/// rejected at build time, so iteration order is canonical.
///
/// # Example
///
/// ```
/// use lad_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.degree(NodeId(1)), 2);
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: `offsets[v] .. offsets[v+1]` is the adjacency range of `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<NodeId>,
    /// For each adjacency slot, the id of the undirected edge it belongs to.
    slot_edges: Vec<EdgeId>,
    /// Endpoint pairs, `(min, max)` by node index, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        slot_edges: Vec<EdgeId>,
        edges: Vec<(NodeId, NodeId)>,
    ) -> Self {
        Graph {
            offsets,
            neighbors,
            slot_edges,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node ids, `v0 ..= v(n-1)`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n()).map(NodeId::from_index)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.m()).map(EdgeId::from_index)
    }

    /// Iterates over all edges as `(EdgeId, (u, v))` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, (NodeId, NodeId))> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::from_index(i), e))
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The edge ids incident to `v`, parallel to [`Graph::neighbors`].
    ///
    /// `incident_edges(v)[i]` is the edge `{v, neighbors(v)[i]}`.
    #[inline]
    pub fn incident_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.slot_edges[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Endpoints `(u, v)` with `u < v` of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The endpoint of `e` that is not `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else {
            assert_eq!(b, v, "{v:?} is not an endpoint of {e:?}");
            a
        }
    }

    /// Whether `{u, v}` is an edge. `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// The edge id of `{u, v}` if present. `O(log deg)`.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u == v || u.index() >= self.n() || v.index() >= self.n() {
            return None;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let ns = self.neighbors(a);
        ns.binary_search(&b).ok().map(|i| self.incident_edges(a)[i])
    }

    /// The *port* of `u` towards `v`: the index of `v` in `u`'s sorted
    /// neighbor list, or `None` if they are not adjacent.
    ///
    /// Ports give nodes a canonical local numbering of their incident edges,
    /// as the LOCAL model assumes.
    pub fn port(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.neighbors(u).binary_search(&v).ok()
    }

    /// The index of edge `e` within `v`'s incident-edge list.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn slot_of_edge(&self, v: NodeId, e: EdgeId) -> usize {
        let u = self.other_endpoint(e, v);
        self.port(v, u).expect("endpoint must be adjacent")
    }

    /// Total number of adjacency slots (`2m`).
    #[inline]
    pub fn total_slots(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether every node has even degree.
    pub fn all_degrees_even(&self) -> bool {
        self.nodes().all(|v| self.degree(v).is_multiple_of(2))
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph {{ n: {}, m: {} }}", self.n(), self.m())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph on {} nodes, {} edges", self.n(), self.m())?;
        for v in self.nodes() {
            writeln!(f, "  {v}: {:?}", self.neighbors(v))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        b.build()
    }

    #[test]
    fn node_id_roundtrip() {
        assert_eq!(NodeId::from_index(7).index(), 7);
        assert_eq!(format!("{}", NodeId(5)), "v5");
        assert_eq!(format!("{:?}", EdgeId(2)), "e2");
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.all_degrees_even());
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(2), NodeId(0));
        b.add_edge(NodeId(2), NodeId(3));
        b.add_edge(NodeId(2), NodeId(1));
        let g = b.build();
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn edge_between_and_ports() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.endpoints(e), (NodeId(0), NodeId(2)));
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(2));
        assert_eq!(g.other_endpoint(e, NodeId(2)), NodeId(0));
        assert!(g.edge_between(NodeId(0), NodeId(0)).is_none());
        assert_eq!(g.port(NodeId(0), NodeId(2)), Some(1));
        assert_eq!(g.port(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(g.slot_of_edge(NodeId(0), e), 1);
    }

    #[test]
    fn incident_edges_parallel_to_neighbors() {
        let g = triangle();
        for v in g.nodes() {
            let ns = g.neighbors(v);
            let es = g.incident_edges(v);
            assert_eq!(ns.len(), es.len());
            for (i, &u) in ns.iter().enumerate() {
                assert_eq!(g.other_endpoint(es[i], v), u);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.all_degrees_even());
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        for v in g.nodes() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_panics_on_non_endpoint() {
        let g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        g.other_endpoint(e, NodeId(2));
    }
}
