//! Incremental construction of [`Graph`]s.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::BTreeSet;

/// A mutable builder producing an immutable [`Graph`].
///
/// Self-loops are rejected; duplicate edges are silently deduplicated
/// (see [`GraphBuilder::add_edge`]'s return value to detect duplicates).
///
/// # Example
///
/// ```
/// use lad_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(2);
/// assert!(b.add_edge(NodeId(0), NodeId(1)));
/// assert!(!b.add_edge(NodeId(1), NodeId(0))); // duplicate
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Grows the node count to at least `n`.
    pub fn ensure_nodes(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge is new.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop) or either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "endpoint out of range: {u:?}, {v:?} with n = {}",
            self.n
        );
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.insert(key)
    }

    /// Whether `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Removes the edge `{u, v}` if present; returns whether it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.remove(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let edges: Vec<(NodeId, NodeId)> = self.edges.into_iter().collect();
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let total = offsets[n];
        let mut neighbors = vec![NodeId(0); total];
        let mut slot_edges = vec![EdgeId(0); total];
        let mut fill = offsets.clone();
        // `edges` is sorted by (min, max); inserting in this order produces
        // sorted lists for the `min` endpoints but not for the `max`
        // endpoints, so we insert then sort each list with its edge ids.
        for (i, &(u, v)) in edges.iter().enumerate() {
            let e = EdgeId::from_index(i);
            neighbors[fill[u.index()]] = v;
            slot_edges[fill[u.index()]] = e;
            fill[u.index()] += 1;
            neighbors[fill[v.index()]] = u;
            slot_edges[fill[v.index()]] = e;
            fill[v.index()] += 1;
        }
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(NodeId, EdgeId)> = neighbors[range.clone()]
                .iter()
                .copied()
                .zip(slot_edges[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (k, (nb, e)) in pairs.into_iter().enumerate() {
                neighbors[range.start + k] = nb;
                slot_edges[range.start + k] = e;
            }
        }
        Graph::from_parts(offsets, neighbors, slot_edges, edges)
    }
}

/// Builds a graph directly from a deduplicated edge list already sorted
/// lexicographically by `(min, max)` endpoint pair — the exact order
/// [`GraphBuilder::build`] emits — producing an identical [`Graph`] while
/// allocating only the graph's own storage (no builder set, no per-node
/// sort buffers).
///
/// Inserting lex-sorted edges leaves every adjacency list already sorted:
/// a node's smaller neighbors arrive (as `min < v` pairs) in increasing
/// order before any of its larger neighbors (as `(v, max)` pairs, also
/// increasing), so no per-list sort pass is needed.
///
/// Debug builds assert the input is sorted, deduplicated, self-loop-free,
/// and in range.
pub fn from_sorted_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Graph {
    debug_assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edges must be lex-sorted and deduplicated"
    );
    debug_assert!(
        edges.iter().all(|&(u, v)| u < v && v.index() < n),
        "edges must be in-range (min, max) pairs without self-loops"
    );
    let mut offsets = vec![0usize; n + 1];
    for &(u, v) in &edges {
        offsets[u.index() + 1] += 1;
        offsets[v.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let total = offsets[n];
    let mut neighbors = vec![NodeId(0); total];
    let mut slot_edges = vec![EdgeId(0); total];
    // Use `offsets[v]` itself as the fill cursor for v's list, then shift
    // the array back down one slot instead of cloning a cursor array.
    for (i, &(u, v)) in edges.iter().enumerate() {
        let e = EdgeId::from_index(i);
        neighbors[offsets[u.index()]] = v;
        slot_edges[offsets[u.index()]] = e;
        offsets[u.index()] += 1;
        neighbors[offsets[v.index()]] = u;
        slot_edges[offsets[v.index()]] = e;
        offsets[v.index()] += 1;
    }
    for v in (1..=n).rev() {
        offsets[v] = offsets[v - 1];
    }
    offsets[0] = 0;
    Graph::from_parts(offsets, neighbors, slot_edges, edges)
}

/// Builds a graph directly from an edge list over `n` nodes.
///
/// # Panics
///
/// Panics on self-loops or out-of-range endpoints.
///
/// # Example
///
/// ```
/// use lad_graph::{builder::from_edges, NodeId};
/// let g = from_edges(3, [(0, 1), (1, 2)]);
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Graph {
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_remove() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId(0), NodeId(1)));
        assert!(!b.add_edge(NodeId(1), NodeId(0)));
        assert!(b.has_edge(NodeId(1), NodeId(0)));
        assert!(b.remove_edge(NodeId(0), NodeId(1)));
        assert!(!b.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(b.build().m(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn ensure_nodes_grows() {
        let mut b = GraphBuilder::new(1);
        b.ensure_nodes(4);
        b.add_edge(NodeId(0), NodeId(3));
        let g = b.build();
        assert_eq!(g.n(), 4);
        assert!(g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn from_edges_works() {
        let g = from_edges(4, [(0, 1), (2, 3), (1, 2)]);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn from_sorted_edges_matches_builder_exactly() {
        let cases: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (1, vec![]),
            (2, vec![(0, 1)]),
            (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
            (6, vec![(0, 3), (1, 4), (2, 5), (0, 1), (4, 5)]),
            // path + chords, deliberately added out of order
            (
                8,
                vec![
                    (6, 7),
                    (0, 7),
                    (2, 3),
                    (1, 2),
                    (0, 1),
                    (3, 6),
                    (5, 6),
                    (4, 5),
                    (3, 4),
                ],
            ),
        ];
        for (n, list) in cases {
            let via_builder = from_edges(n, list.iter().copied());
            let mut sorted: Vec<(NodeId, NodeId)> = list
                .iter()
                .map(|&(u, v)| (NodeId(u.min(v)), NodeId(u.max(v))))
                .collect();
            sorted.sort_unstable();
            let direct = from_sorted_edges(n, sorted);
            assert_eq!(via_builder, direct, "n = {n}");
        }
    }

    #[test]
    fn csr_consistency_on_star() {
        let g = from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.total_slots(), 8);
        // Every edge id appears exactly twice across slots.
        let mut counts = vec![0; g.m()];
        for v in g.nodes() {
            for &e in g.incident_edges(v) {
                counts[e.index()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2));
    }
}
