//! Graphviz DOT export — for eyeballing schemas: advice bits, colors, and
//! orientations render directly.

use crate::graph::{Graph, NodeId};
use crate::orientation::Orientation;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Per-node label (e.g., `uid` or advice bits); defaults to the index.
    pub node_labels: Vec<String>,
    /// Nodes to fill (e.g., advice `1`-holders).
    pub highlight: Vec<NodeId>,
    /// Optional orientation: renders a digraph instead of a graph.
    pub orientation: Option<Orientation>,
}

/// Renders the graph in Graphviz DOT format.
///
/// # Example
///
/// ```
/// use lad_graph::{dot, generators};
/// let g = generators::path(3);
/// let s = dot::to_dot(&g, &dot::DotOptions::default());
/// assert!(s.starts_with("graph {"));
/// assert!(s.contains("v0 -- v1"));
/// ```
pub fn to_dot(g: &Graph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let directed = opts.orientation.is_some();
    let (header, arrow) = if directed {
        ("digraph {", "->")
    } else {
        ("graph {", "--")
    };
    let mut highlighted = vec![false; g.n()];
    for &v in &opts.highlight {
        highlighted[v.index()] = true;
    }
    out.push_str(header);
    out.push('\n');
    for v in g.nodes() {
        let label = opts
            .node_labels
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| v.index().to_string());
        let style = if highlighted[v.index()] {
            ", style=filled, fillcolor=gold"
        } else {
            ""
        };
        writeln!(out, "  v{} [label=\"{}\"{}];", v.index(), label, style)
            .expect("writing to a String cannot fail");
    }
    for (e, (u, v)) in g.edges() {
        let (a, b) = match &opts.orientation {
            Some(o) => (o.tail(g, e), o.head(g, e)),
            None => (u, v),
        };
        writeln!(out, "  v{} {} v{};", a.index(), arrow, b.index())
            .expect("writing to a String cannot fail");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, EulerPartition};

    #[test]
    fn undirected_dot() {
        let g = generators::cycle(3);
        let s = to_dot(&g, &DotOptions::default());
        assert!(s.starts_with("graph {"));
        assert_eq!(s.matches("--").count(), 3);
        assert!(s.contains("v0 [label=\"0\"];"));
    }

    #[test]
    fn directed_dot_with_orientation() {
        let g = generators::cycle(4);
        let uids: Vec<u64> = (1..=4).collect();
        let o = EulerPartition::new(&g, &uids).orient_all_forward(&g);
        let s = to_dot(
            &g,
            &DotOptions {
                orientation: Some(o),
                ..Default::default()
            },
        );
        assert!(s.starts_with("digraph {"));
        assert_eq!(s.matches("->").count(), 4);
    }

    #[test]
    fn highlights_and_labels() {
        let g = generators::path(2);
        let s = to_dot(
            &g,
            &DotOptions {
                node_labels: vec!["a".into(), "b".into()],
                highlight: vec![NodeId(1)],
                orientation: None,
            },
        );
        assert!(s.contains("label=\"a\""));
        assert!(s.contains("fillcolor=gold"));
    }
}
