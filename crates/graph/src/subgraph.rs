//! Induced subgraphs with explicit node mappings.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};

/// The subgraph of a graph induced by a node subset, remembering the mapping
/// back to the original graph.
///
/// # Example
///
/// ```
/// use lad_graph::{generators, subgraph::InducedSubgraph, NodeId};
/// let g = generators::cycle(6);
/// let sub = InducedSubgraph::new(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
/// assert_eq!(sub.graph().m(), 2); // path 0-1-2
/// assert_eq!(sub.to_original(NodeId(2)), NodeId(2));
/// ```
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `original[local.index()]` is the original node.
    original: Vec<NodeId>,
    /// `local_of[orig.index()]` is the local node, if included.
    local_of: Vec<Option<NodeId>>,
}

impl InducedSubgraph {
    /// Builds the subgraph induced by `nodes` (duplicates ignored).
    ///
    /// Local indices follow the order of first appearance in `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range for `g`.
    pub fn new(g: &Graph, nodes: &[NodeId]) -> Self {
        let mut local_of: Vec<Option<NodeId>> = vec![None; g.n()];
        let mut original = Vec::new();
        for &v in nodes {
            assert!(v.index() < g.n(), "node {v:?} out of range");
            if local_of[v.index()].is_none() {
                local_of[v.index()] = Some(NodeId::from_index(original.len()));
                original.push(v);
            }
        }
        let mut b = GraphBuilder::new(original.len());
        for (li, &orig) in original.iter().enumerate() {
            for &u in g.neighbors(orig) {
                if let Some(lu) = local_of[u.index()] {
                    if lu.index() > li {
                        b.add_edge(NodeId::from_index(li), lu);
                    }
                }
            }
        }
        InducedSubgraph {
            graph: b.build(),
            original,
            local_of,
        }
    }

    /// Builds the subgraph induced by the nodes for which `keep` is true.
    pub fn filtered(g: &Graph, keep: impl Fn(NodeId) -> bool) -> Self {
        let nodes: Vec<NodeId> = g.nodes().filter(|&v| keep(v)).collect();
        Self::new(g, &nodes)
    }

    /// The induced graph (local indices).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Maps a local node back to the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn to_original(&self, local: NodeId) -> NodeId {
        self.original[local.index()]
    }

    /// Maps an original node into the subgraph, if present.
    pub fn to_local(&self, orig: NodeId) -> Option<NodeId> {
        self.local_of[orig.index()]
    }

    /// All original nodes in local order.
    pub fn original_nodes(&self) -> &[NodeId] {
        &self.original
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal};

    #[test]
    fn induced_cycle_segment() {
        let g = generators::cycle(8);
        let sub = InducedSubgraph::new(&g, &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(sub.graph().n(), 4);
        assert_eq!(sub.graph().m(), 3);
        assert!(traversal::is_connected(sub.graph()));
    }

    #[test]
    fn mapping_roundtrip() {
        let g = generators::grid2d(3, 3, false);
        let nodes = [NodeId(4), NodeId(0), NodeId(8)];
        let sub = InducedSubgraph::new(&g, &nodes);
        for &v in &nodes {
            assert_eq!(sub.to_original(sub.to_local(v).unwrap()), v);
        }
        assert_eq!(sub.to_local(NodeId(5)), None);
    }

    #[test]
    fn duplicates_ignored() {
        let g = generators::path(3);
        let sub = InducedSubgraph::new(&g, &[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(sub.graph().n(), 2);
        assert_eq!(sub.graph().m(), 1);
    }

    #[test]
    fn filtered_by_predicate() {
        let g = generators::cycle(10);
        let sub = InducedSubgraph::filtered(&g, |v| v.index() % 2 == 0);
        assert_eq!(sub.graph().n(), 5);
        assert_eq!(sub.graph().m(), 0); // even nodes of a cycle are independent
    }
}
