//! Edge orientations, balance checks, and the Euler partition into trails
//! that drives the paper's balanced-orientation schema (Section 5).
//!
//! The paper builds a virtual graph `G'` in which each node of degree `2d`
//! is split into `d` copies, each incident to a consecutive pair of its
//! edges "taken in some arbitrary fixed order (e.g., by sorting the
//! neighbors of `v` by their IDs)". The result is a disjoint union of
//! cycles (and paths once odd degrees are allowed). We realize `G'`
//! directly as an *Euler partition*: a pairing of the incident edges at
//! every node, plus the trails (closed or open) this pairing induces.
//!
//! Everything here is **purely local**: the pairing at a node depends only
//! on the node's incident edges sorted by the unique identifiers of its
//! neighbors. A LOCAL decoder with a radius-`r` view can therefore walk a
//! trail for up to `r` hops using exactly the same code as the centralized
//! encoder ([`next_along_trail`]).

use crate::graph::{EdgeId, Graph, NodeId};

/// An orientation of every edge of a graph.
///
/// Edge `e = {u, v}` with `u < v` (by node index) is stored as a single bit:
/// `true` means `u → v`.
///
/// # Example
///
/// ```
/// use lad_graph::{generators, Orientation};
/// let g = generators::cycle(4);
/// let o = Orientation::all_toward_higher(&g);
/// assert_eq!(o.out_degree(&g, lad_graph::NodeId(0)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    toward_higher: Vec<bool>,
}

impl Orientation {
    /// An orientation with every edge pointing from its lower-index to its
    /// higher-index endpoint.
    pub fn all_toward_higher(g: &Graph) -> Self {
        Orientation {
            toward_higher: vec![true; g.m()],
        }
    }

    /// An unoriented placeholder of the right size (all `lower → higher`);
    /// use [`Orientation::set`] to fill it in.
    pub fn new(m: usize) -> Self {
        Orientation {
            toward_higher: vec![true; m],
        }
    }

    /// Number of edges covered.
    pub fn m(&self) -> usize {
        self.toward_higher.len()
    }

    /// Orients edge `e` as `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` are not the endpoints of `e`.
    pub fn set(&mut self, g: &Graph, e: EdgeId, from: NodeId, to: NodeId) {
        let (lo, hi) = g.endpoints(e);
        if (from, to) == (lo, hi) {
            self.toward_higher[e.index()] = true;
        } else if (from, to) == (hi, lo) {
            self.toward_higher[e.index()] = false;
        } else {
            panic!("({from:?}, {to:?}) are not the endpoints of {e:?}");
        }
    }

    /// The head (target) of edge `e`.
    pub fn head(&self, g: &Graph, e: EdgeId) -> NodeId {
        let (lo, hi) = g.endpoints(e);
        if self.toward_higher[e.index()] {
            hi
        } else {
            lo
        }
    }

    /// The tail (source) of edge `e`.
    pub fn tail(&self, g: &Graph, e: EdgeId) -> NodeId {
        let (lo, hi) = g.endpoints(e);
        if self.toward_higher[e.index()] {
            lo
        } else {
            hi
        }
    }

    /// Whether `e` is oriented out of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn is_outgoing(&self, g: &Graph, e: EdgeId, v: NodeId) -> bool {
        let t = self.tail(g, e);
        let h = self.head(g, e);
        assert!(v == t || v == h, "{v:?} not an endpoint of {e:?}");
        v == t
    }

    /// Out-degree of `v` under this orientation.
    pub fn out_degree(&self, g: &Graph, v: NodeId) -> usize {
        self.outgoing_edges_iter(g, v).count()
    }

    /// In-degree of `v` under this orientation.
    pub fn in_degree(&self, g: &Graph, v: NodeId) -> usize {
        g.degree(v) - self.out_degree(g, v)
    }

    /// Iterates the outgoing edges of `v` in `v`'s incident-edge order,
    /// without allocating. [`outgoing_edges`](Self::outgoing_edges) is the
    /// collecting convenience wrapper.
    pub fn outgoing_edges_iter<'a>(
        &'a self,
        g: &'a Graph,
        v: NodeId,
    ) -> impl Iterator<Item = EdgeId> + 'a {
        g.incident_edges(v)
            .iter()
            .copied()
            .filter(move |&e| self.is_outgoing(g, e, v))
    }

    /// The outgoing edges of `v`, in `v`'s incident-edge order.
    pub fn outgoing_edges(&self, g: &Graph, v: NodeId) -> Vec<EdgeId> {
        self.outgoing_edges_iter(g, v).collect()
    }

    /// Whether every node satisfies `|indeg − outdeg| ≤ 1`
    /// (the paper's *almost-balanced* orientation).
    pub fn is_almost_balanced(&self, g: &Graph) -> bool {
        g.nodes().all(|v| {
            let out = self.out_degree(g, v);
            let inn = g.degree(v) - out;
            out.abs_diff(inn) <= 1
        })
    }

    /// Whether every node satisfies `indeg == outdeg` (requires all degrees
    /// even).
    pub fn is_balanced(&self, g: &Graph) -> bool {
        g.nodes().all(|v| {
            let out = self.out_degree(g, v);
            2 * out == g.degree(v)
        })
    }
}

/// A trail of the Euler partition: a sequence of edges where consecutive
/// edges share an endpoint, each node-visit consuming one slot pair.
///
/// `nodes.len() == edges.len() + 1`; for a closed trail
/// `nodes[0] == nodes[last]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trail {
    /// Visited nodes in order (first equals last iff `closed`).
    pub nodes: Vec<NodeId>,
    /// Traversed edges in order (`edges[i] = {nodes[i], nodes[i+1]}`).
    pub edges: Vec<EdgeId>,
    /// Whether the trail is a closed trail (cycle in `G'`).
    pub closed: bool,
}

impl Trail {
    /// Number of edges in the trail.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the trail has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The incident edges of `v` sorted by the unique identifier of the other
/// endpoint — the canonical local edge order every schema uses.
///
/// `uids[u.index()]` must be the unique identifier of node `u`.
pub fn sorted_incident_by_uid(g: &Graph, uids: &[u64], v: NodeId) -> Vec<EdgeId> {
    let mut es: Vec<EdgeId> = g.incident_edges(v).to_vec();
    es.sort_by_key(|&e| uids[g.other_endpoint(e, v).index()]);
    es
}

/// The slot pairing at `v`: incident edges (in UID order) are paired
/// `(0,1), (2,3), …`; for odd degree the last edge is unpaired.
///
/// Returns the partner edge of `e` at `v`, or `None` if `e` occupies the
/// unpaired slot.
///
/// # Panics
///
/// Panics if `v` is not an endpoint of `e`.
pub fn pair_partner(g: &Graph, uids: &[u64], v: NodeId, e: EdgeId) -> Option<EdgeId> {
    let order = sorted_incident_by_uid(g, uids, v);
    let slot = order
        .iter()
        .position(|&x| x == e)
        .expect("edge not incident to node");
    let paired = order.len() - (order.len() % 2);
    if slot >= paired {
        None
    } else {
        Some(order[slot ^ 1])
    }
}

/// One step of a trail walk: having traversed edge `via` *into* node
/// `arrived`, returns the edge the trail continues with (the pair partner
/// of `via` at `arrived`), or `None` if the trail ends there.
pub fn next_along_trail(g: &Graph, uids: &[u64], arrived: NodeId, via: EdgeId) -> Option<EdgeId> {
    pair_partner(g, uids, arrived, via)
}

/// The number of slot pairs at `v` (`⌊deg/2⌋`); slot `s` couples the
/// `2s`-th and `2s+1`-th incident edges in UID order.
pub fn slot_pairs(g: &Graph, v: NodeId) -> usize {
    g.degree(v) / 2
}

/// The pair of edges forming slot `s` at `v`.
///
/// # Panics
///
/// Panics if `s ≥ slot_pairs(g, v)`.
pub fn slot_edges(g: &Graph, uids: &[u64], v: NodeId, s: usize) -> (EdgeId, EdgeId) {
    let order = sorted_incident_by_uid(g, uids, v);
    assert!(2 * s + 1 < order.len(), "slot {s} out of range at {v:?}");
    (order[2 * s], order[2 * s + 1])
}

/// The slot index at `v` containing edge `e`, or `None` if `e` is `v`'s
/// unpaired edge.
pub fn slot_of(g: &Graph, uids: &[u64], v: NodeId, e: EdgeId) -> Option<usize> {
    let order = sorted_incident_by_uid(g, uids, v);
    let pos = order
        .iter()
        .position(|&x| x == e)
        .expect("edge not incident to node");
    let paired = order.len() - (order.len() % 2);
    (pos < paired).then_some(pos / 2)
}

/// The Euler partition of a graph: the trails induced by the per-node UID
/// pairing. Every edge belongs to exactly one trail; every node is the
/// endpoint of at most one open trail (it has at most one unpaired slot).
///
/// Orienting every trail consistently yields an almost-balanced
/// orientation (Corollary 5.3 of the paper).
#[derive(Debug, Clone)]
pub struct EulerPartition {
    trails: Vec<Trail>,
    /// For each edge: (trail index, position within the trail).
    edge_location: Vec<(usize, usize)>,
}

impl EulerPartition {
    /// Computes the Euler partition of `g` under the given UID assignment.
    pub fn new(g: &Graph, uids: &[u64]) -> Self {
        assert_eq!(uids.len(), g.n(), "one uid per node required");
        let mut used = vec![false; g.m()];
        let mut trails = Vec::new();
        let mut edge_location = vec![(usize::MAX, usize::MAX); g.m()];

        let extract = |start_node: NodeId,
                       start_edge: EdgeId,
                       used: &mut Vec<bool>,
                       edge_location: &mut Vec<(usize, usize)>,
                       trails: &mut Vec<Trail>| {
            let trail_idx = trails.len();
            let mut nodes = vec![start_node];
            let mut edges = Vec::new();
            let mut v = start_node;
            let mut e = start_edge;
            let closed;
            loop {
                used[e.index()] = true;
                edge_location[e.index()] = (trail_idx, edges.len());
                edges.push(e);
                let u = g.other_endpoint(e, v);
                nodes.push(u);
                match next_along_trail(g, uids, u, e) {
                    None => {
                        closed = false;
                        break;
                    }
                    Some(e2) => {
                        if e2 == start_edge && u == start_node {
                            closed = true;
                            break;
                        }
                        v = u;
                        e = e2;
                    }
                }
            }
            trails.push(Trail {
                nodes,
                edges,
                closed,
            });
        };

        // Open trails first: start from every unpaired slot.
        for v in g.nodes() {
            if g.degree(v) % 2 == 1 {
                let order = sorted_incident_by_uid(g, uids, v);
                let e = *order.last().expect("odd degree implies an edge");
                if !used[e.index()] {
                    extract(v, e, &mut used, &mut edge_location, &mut trails);
                }
            }
        }
        // Remaining edges lie on closed trails.
        for e in g.edge_ids() {
            if !used[e.index()] {
                let (u, _) = g.endpoints(e);
                extract(u, e, &mut used, &mut edge_location, &mut trails);
            }
        }
        EulerPartition {
            trails,
            edge_location,
        }
    }

    /// The trails of the partition.
    pub fn trails(&self) -> &[Trail] {
        &self.trails
    }

    /// Which trail an edge lies on and at what position.
    pub fn location_of(&self, e: EdgeId) -> (usize, usize) {
        self.edge_location[e.index()]
    }

    /// Orients every trail along its traversal direction, producing an
    /// almost-balanced orientation.
    pub fn orient_all_forward(&self, g: &Graph) -> Orientation {
        let mut o = Orientation::new(g.m());
        for t in &self.trails {
            orient_trail(g, t, true, &mut o);
        }
        o
    }
}

/// Orients the edges of a trail consistently: `forward` follows the trail's
/// traversal order, otherwise the reverse.
pub fn orient_trail(g: &Graph, t: &Trail, forward: bool, out: &mut Orientation) {
    for (i, &e) in t.edges.iter().enumerate() {
        let (a, b) = (t.nodes[i], t.nodes[i + 1]);
        if forward {
            out.set(g, e, a, b);
        } else {
            out.set(g, e, b, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use crate::{generators, GraphBuilder};

    fn uids(n: usize) -> Vec<u64> {
        IdAssignment::identity(n).as_slice().to_vec()
    }

    #[test]
    fn orientation_basics() {
        let g = generators::path(3);
        let mut o = Orientation::new(g.m());
        let e0 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e1 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        o.set(&g, e0, NodeId(1), NodeId(0));
        o.set(&g, e1, NodeId(1), NodeId(2));
        assert_eq!(o.out_degree(&g, NodeId(1)), 2);
        assert_eq!(o.in_degree(&g, NodeId(1)), 0);
        assert_eq!(o.head(&g, e0), NodeId(0));
        assert_eq!(o.tail(&g, e0), NodeId(1));
        assert!(!o.is_almost_balanced(&g)); // node 1 has out 2, in 0
    }

    #[test]
    fn cycle_partition_is_one_closed_trail() {
        let g = generators::cycle(7);
        let ep = EulerPartition::new(&g, &uids(7));
        assert_eq!(ep.trails().len(), 1);
        let t = &ep.trails()[0];
        assert!(t.closed);
        assert_eq!(t.len(), 7);
        assert_eq!(t.nodes[0], *t.nodes.last().unwrap());
    }

    #[test]
    fn path_partition_is_one_open_trail() {
        let g = generators::path(6);
        let ep = EulerPartition::new(&g, &uids(6));
        assert_eq!(ep.trails().len(), 1);
        let t = &ep.trails()[0];
        assert!(!t.closed);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn every_edge_on_exactly_one_trail() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(60, 7, 140, seed);
            let ep = EulerPartition::new(&g, &uids(60));
            let mut count = vec![0usize; g.m()];
            for t in ep.trails() {
                for &e in &t.edges {
                    count[e.index()] += 1;
                }
            }
            assert!(count.iter().all(|&c| c == 1));
            // Location map agrees.
            for (ti, t) in ep.trails().iter().enumerate() {
                for (pos, &e) in t.edges.iter().enumerate() {
                    assert_eq!(ep.location_of(e), (ti, pos));
                }
            }
        }
    }

    #[test]
    fn trails_are_locally_consistent() {
        let g = generators::random_even_degree(40, 6, 8, 3);
        let u = uids(40);
        let ep = EulerPartition::new(&g, &u);
        for t in ep.trails() {
            for i in 0..t.len() {
                let e = t.edges[i];
                assert_eq!(g.endpoints(e).0.min(g.endpoints(e).1), {
                    let (a, b) = (t.nodes[i], t.nodes[i + 1]);
                    a.min(b)
                });
                if i + 1 < t.len() {
                    // Walking locally reproduces the trail.
                    let next = next_along_trail(&g, &u, t.nodes[i + 1], e).unwrap();
                    assert_eq!(next, t.edges[i + 1]);
                }
            }
        }
    }

    #[test]
    fn forward_orientation_is_almost_balanced() {
        for seed in 0..8 {
            let g = generators::random_bounded_degree(80, 9, 200, seed);
            let o = EulerPartition::new(&g, &uids(80)).orient_all_forward(&g);
            assert!(o.is_almost_balanced(&g));
        }
    }

    #[test]
    fn even_degree_graph_gets_fully_balanced() {
        for seed in 0..5 {
            let g = generators::random_even_degree(50, 7, 9, seed);
            let o = EulerPartition::new(&g, &uids(50)).orient_all_forward(&g);
            assert!(o.is_balanced(&g));
        }
    }

    #[test]
    fn pairing_is_an_involution() {
        let g = generators::random_bounded_degree(40, 6, 90, 1);
        let u = uids(40);
        for v in g.nodes() {
            for &e in g.incident_edges(v) {
                if let Some(p) = pair_partner(&g, &u, v, e) {
                    assert_eq!(pair_partner(&g, &u, v, p), Some(e));
                    assert_ne!(p, e);
                }
            }
        }
    }

    #[test]
    fn odd_degree_has_one_unpaired() {
        let g = generators::star(3);
        let u = uids(4);
        let center = NodeId(0);
        let unpaired: Vec<EdgeId> = g
            .incident_edges(center)
            .iter()
            .copied()
            .filter(|&e| pair_partner(&g, &u, center, e).is_none())
            .collect();
        assert_eq!(unpaired.len(), 1);
    }

    #[test]
    fn slots_roundtrip() {
        let g = generators::complete(5);
        let u = uids(5);
        for v in g.nodes() {
            assert_eq!(slot_pairs(&g, v), 2);
            for s in 0..slot_pairs(&g, v) {
                let (a, b) = slot_edges(&g, &u, v, s);
                assert_eq!(slot_of(&g, &u, v, a), Some(s));
                assert_eq!(slot_of(&g, &u, v, b), Some(s));
                assert_eq!(pair_partner(&g, &u, v, a), Some(b));
            }
        }
    }

    #[test]
    fn pairing_respects_uid_order_not_index_order() {
        // A node with three neighbors; permuted uids change the pairing.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(0), NodeId(3));
        let g = b.build();
        let u1 = vec![10, 1, 2, 3]; // neighbor order 1,2,3
        let u2 = vec![10, 3, 2, 1]; // neighbor order 3,2,1
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = g.edge_between(NodeId(0), NodeId(2)).unwrap();
        let e03 = g.edge_between(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(pair_partner(&g, &u1, NodeId(0), e01), Some(e02));
        assert_eq!(pair_partner(&g, &u1, NodeId(0), e03), None);
        assert_eq!(pair_partner(&g, &u2, NodeId(0), e03), Some(e02));
        assert_eq!(pair_partner(&g, &u2, NodeId(0), e01), None);
    }

    #[test]
    fn outgoing_edges_listing() {
        let g = generators::cycle(4);
        let o = EulerPartition::new(&g, &uids(4)).orient_all_forward(&g);
        for v in g.nodes() {
            assert_eq!(o.outgoing_edges(&g, v).len(), 1);
        }
    }

    #[test]
    fn iterator_and_collected_outgoing_edges_agree() {
        let g = generators::complete(5);
        let o = EulerPartition::new(&g, &uids(5)).orient_all_forward(&g);
        for v in g.nodes() {
            let collected = o.outgoing_edges(&g, v);
            let iterated: Vec<_> = o.outgoing_edges_iter(&g, v).collect();
            assert_eq!(collected, iterated);
            assert_eq!(o.out_degree(&g, v), iterated.len());
            assert_eq!(o.in_degree(&g, v), g.degree(v) - iterated.len());
        }
    }
}
