//! Unique-identifier assignments for the LOCAL model.
//!
//! In the LOCAL model nodes carry unique identifiers from
//! `{1, …, poly(n)}`. Advice may depend on the identifiers (the paper is
//! explicit about this), so identifiers are a first-class object here,
//! separate from topological node indices.

use crate::graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A bijection from node indices to unique LOCAL-model identifiers.
///
/// # Example
///
/// ```
/// use lad_graph::{ids::IdAssignment, NodeId};
/// let ids = IdAssignment::identity(4);
/// assert_eq!(ids.uid(NodeId(2)), 3); // identity assigns 1-based ids
/// assert_eq!(ids.node_of(3), Some(NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdAssignment {
    uids: Vec<u64>,
}

impl IdAssignment {
    /// The identity assignment: node `i` gets identifier `i + 1`.
    pub fn identity(n: usize) -> Self {
        IdAssignment {
            uids: (1..=n as u64).collect(),
        }
    }

    /// A uniformly random permutation of `{1, …, n}` (deterministic in `seed`).
    pub fn random_permutation(n: usize, seed: u64) -> Self {
        let mut uids: Vec<u64> = (1..=n as u64).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        uids.shuffle(&mut rng);
        IdAssignment { uids }
    }

    /// Random *distinct* identifiers from `{1, …, space}` — models the
    /// `poly(n)` identifier space of the LOCAL model.
    ///
    /// # Panics
    ///
    /// Panics if `space < n`.
    pub fn random_sparse(n: usize, space: u64, seed: u64) -> Self {
        assert!(space >= n as u64, "identifier space too small");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < n {
            chosen.insert(rng.random_range(1..=space));
        }
        let mut uids: Vec<u64> = chosen.into_iter().collect();
        uids.shuffle(&mut rng);
        IdAssignment { uids }
    }

    /// Builds an assignment from explicit identifiers.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are not pairwise distinct.
    pub fn from_uids(uids: Vec<u64>) -> Self {
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "identifiers must be unique"
        );
        IdAssignment { uids }
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.uids.len()
    }

    /// The unique identifier of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn uid(&self, v: NodeId) -> u64 {
        self.uids[v.index()]
    }

    /// The node carrying identifier `uid`, if any. `O(n)`.
    pub fn node_of(&self, uid: u64) -> Option<NodeId> {
        self.uids
            .iter()
            .position(|&u| u == uid)
            .map(NodeId::from_index)
    }

    /// All identifiers, indexed by node.
    pub fn as_slice(&self) -> &[u64] {
        &self.uids
    }

    /// Nodes sorted by ascending identifier — the canonical processing order
    /// used by "consider nodes by their IDs" steps in the paper.
    pub fn nodes_by_uid(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.n()).map(NodeId::from_index).collect();
        order.sort_by_key(|&v| self.uid(v));
        order
    }

    /// The rank (0-based) of each node's identifier among all identifiers.
    /// Two assignments with the same ranks are *order-equivalent* — the
    /// notion under which order-invariant algorithms (Contribution 2) must
    /// behave identically.
    pub fn ranks(&self) -> Vec<usize> {
        let order = self.nodes_by_uid();
        let mut rank = vec![0usize; self.n()];
        for (r, v) in order.into_iter().enumerate() {
            rank[v.index()] = r;
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_basics() {
        let ids = IdAssignment::identity(5);
        assert_eq!(ids.n(), 5);
        assert_eq!(ids.uid(NodeId(0)), 1);
        assert_eq!(ids.uid(NodeId(4)), 5);
        assert_eq!(ids.node_of(42), None);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let ids = IdAssignment::random_permutation(50, 9);
        let mut seen: Vec<u64> = ids.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (1..=50).collect::<Vec<_>>());
        assert_eq!(ids, IdAssignment::random_permutation(50, 9));
        assert_ne!(ids, IdAssignment::random_permutation(50, 10));
    }

    #[test]
    fn random_sparse_ids_distinct_and_in_range() {
        let ids = IdAssignment::random_sparse(30, 30 * 30, 3);
        let mut seen: Vec<u64> = ids.as_slice().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 30);
        assert!(seen.iter().all(|&u| (1..=900).contains(&u)));
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn from_uids_rejects_duplicates() {
        IdAssignment::from_uids(vec![1, 2, 2]);
    }

    #[test]
    fn ranks_are_order_invariant() {
        let a = IdAssignment::from_uids(vec![10, 30, 20]);
        let b = IdAssignment::from_uids(vec![100, 900, 500]);
        assert_eq!(a.ranks(), b.ranks());
        assert_eq!(a.ranks(), vec![0, 2, 1]);
    }

    #[test]
    fn nodes_by_uid_sorted() {
        let ids = IdAssignment::from_uids(vec![5, 1, 3]);
        assert_eq!(ids.nodes_by_uid(), vec![NodeId(1), NodeId(2), NodeId(0)]);
    }
}
