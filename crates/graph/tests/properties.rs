//! Property-based tests for the graph substrate.

use lad_graph::{
    builder, coloring, generators, orientation, ruling, traversal, EulerPartition, NodeId,
};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = lad_graph::Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(80)).prop_map(
            move |pairs| {
                let mut b = builder::GraphBuilder::new(n);
                for (u, v) in pairs {
                    if u != v {
                        b.add_edge(NodeId(u), NodeId(v));
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_is_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).contains(&v));
                prop_assert!(g.has_edge(u, v));
            }
        }
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_steps(g in arb_graph()) {
        let d = traversal::bfs_distances(&g, NodeId(0));
        for (_, (u, v)) in g.edges() {
            match (d[u.index()], d[v.index()]) {
                (Some(a), Some(b)) => prop_assert!(a.abs_diff(b) <= 1),
                (None, None) => {}
                _ => prop_assert!(false, "edge between reached and unreached node"),
            }
        }
    }

    #[test]
    fn euler_partition_covers_every_edge_once((g, seed) in (arb_graph(), 0u64..1000)) {
        let n = g.n();
        let uids = lad_graph::IdAssignment::random_permutation(n, seed);
        let ep = EulerPartition::new(&g, uids.as_slice());
        let mut count = vec![0usize; g.m()];
        for t in ep.trails() {
            // Consecutive edges share the claimed node.
            for i in 0..t.len() {
                let (a, b) = g.endpoints(t.edges[i]);
                let (x, y) = (t.nodes[i], t.nodes[i + 1]);
                prop_assert!((a, b) == (x.min(y), x.max(y)));
                count[t.edges[i].index()] += 1;
            }
            if t.closed {
                prop_assert_eq!(t.nodes[0], *t.nodes.last().unwrap());
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn forward_orientation_is_almost_balanced((g, seed) in (arb_graph(), 0u64..1000)) {
        let n = g.n();
        let uids = lad_graph::IdAssignment::random_permutation(n, seed);
        let o = EulerPartition::new(&g, uids.as_slice()).orient_all_forward(&g);
        prop_assert!(o.is_almost_balanced(&g));
        if g.all_degrees_even() {
            prop_assert!(o.is_balanced(&g));
        }
    }

    #[test]
    fn pairing_is_involutive((g, seed) in (arb_graph(), 0u64..1000)) {
        let uids = lad_graph::IdAssignment::random_permutation(g.n(), seed);
        for v in g.nodes() {
            let mut unpaired = 0;
            for &e in g.incident_edges(v) {
                match orientation::pair_partner(&g, uids.as_slice(), v, e) {
                    Some(p) => {
                        prop_assert_ne!(p, e);
                        prop_assert_eq!(
                            orientation::pair_partner(&g, uids.as_slice(), v, p),
                            Some(e)
                        );
                    }
                    None => unpaired += 1,
                }
            }
            prop_assert_eq!(unpaired, g.degree(v) % 2);
        }
    }

    #[test]
    fn greedy_coloring_proper_and_bounded(g in arb_graph(), seed in 0u64..100) {
        let ids = lad_graph::IdAssignment::random_permutation(g.n(), seed);
        let order = ids.nodes_by_uid();
        let c = coloring::greedy_coloring(&g, &order);
        prop_assert!(coloring::is_proper_coloring(&g, &c));
        prop_assert!(c.iter().all(|&x| x <= g.max_degree()));
    }

    #[test]
    fn make_greedy_preserves_properness(g in arb_graph()) {
        let base = coloring::greedy_coloring_default(&g);
        let greedy = coloring::make_greedy(&g, &base);
        prop_assert!(coloring::is_greedy_coloring(&g, &greedy));
        // Never uses more colors than the input.
        let max_in = base.iter().max().copied().unwrap_or(0);
        prop_assert!(greedy.iter().all(|&c| c <= max_in));
    }

    #[test]
    fn ruling_set_properties(g in arb_graph(), alpha in 1usize..6) {
        let rs = ruling::ruling_set(&g, alpha);
        prop_assert!(ruling::is_ruling_set(&g, &rs, None, alpha, alpha.saturating_sub(1)));
    }

    #[test]
    fn mis_is_maximal_and_independent(g in arb_graph()) {
        let mis = ruling::greedy_mis_default(&g);
        prop_assert!(ruling::is_mis(&g, &mis));
    }

    #[test]
    fn ball_matches_distances(g in arb_graph(), r in 0usize..5) {
        let d = traversal::bfs_distances(&g, NodeId(0));
        let ball = traversal::ball(&g, NodeId(0), r);
        let in_ball: Vec<bool> = {
            let mut v = vec![false; g.n()];
            for &(u, du) in &ball {
                prop_assert_eq!(d[u.index()], Some(du));
                v[u.index()] = true;
            }
            v
        };
        for v in g.nodes() {
            let expect = matches!(d[v.index()], Some(x) if x <= r);
            prop_assert_eq!(in_ball[v.index()], expect);
        }
    }

    #[test]
    fn mutable_graph_rebuild_equals_builder_on_post_edit_graphs(
        g in arb_graph(),
        raw in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..24),
    ) {
        use lad_graph::mutate::{Edit, MutableGraph};
        use std::collections::BTreeSet;
        let n = g.n();
        let edits: Vec<Edit> = raw
            .into_iter()
            .filter_map(|(u, v, insert)| {
                let (u, v) = (NodeId((u as usize % n) as u32), NodeId((v as usize % n) as u32));
                if u == v {
                    return None;
                }
                Some(if insert { Edit::Insert(u, v) } else { Edit::Remove(u, v) })
            })
            .collect();
        // Apply in two batches so the linear merge runs against an
        // already-rebuilt CSR, not just the pristine one.
        let mut mg = MutableGraph::new(g.clone());
        let mid = edits.len() / 2;
        mg.apply(&edits[..mid]);
        mg.apply(&edits[mid..]);
        // Reference: the final edge set, built from scratch.
        let mut want: BTreeSet<(NodeId, NodeId)> =
            g.edges().map(|(_, e)| e).collect();
        for e in &edits {
            let (u, v) = e.endpoints();
            match e {
                Edit::Insert(..) => {
                    want.insert((u, v));
                }
                Edit::Remove(..) => {
                    want.remove(&(u, v));
                }
            }
        }
        let mut b = builder::GraphBuilder::new(n);
        for &(u, v) in &want {
            b.add_edge(u, v);
        }
        let reference = b.build();
        prop_assert_eq!(mg.graph(), &reference);
        // Touched bookkeeping: every endpoint of a net edge-set change is
        // reported dirty at radius 0.
        let before: BTreeSet<(NodeId, NodeId)> = g.edges().map(|(_, e)| e).collect();
        let dirty = mg.dirty_within(0);
        for (u, v) in before.symmetric_difference(&want) {
            prop_assert!(dirty.binary_search(u).is_ok(), "endpoint {u:?} not dirty");
            prop_assert!(dirty.binary_search(v).is_ok(), "endpoint {v:?} not dirty");
        }
    }

    #[test]
    fn uid_ranks_are_order_invariant(n in 2usize..30, seed in 0u64..50) {
        let a = lad_graph::IdAssignment::random_permutation(n, seed);
        // Stretch uids monotonically: ranks must not change.
        let stretched: Vec<u64> = a.as_slice().iter().map(|&u| u * 1000 + 7).collect();
        let b = lad_graph::IdAssignment::from_uids(stretched);
        prop_assert_eq!(a.ranks(), b.ranks());
    }
}

#[test]
fn generators_cover_expected_degrees() {
    // Deterministic sanity net over the generator zoo.
    assert!(generators::cycle(10).nodes().all(|_| true));
    assert_eq!(generators::hypercube(5).max_degree(), 5);
    assert_eq!(generators::balanced_tree(3, 2).n(), 13);
}
