//! Pluggable message delivery with deterministic fault injection.
//!
//! The synchronous simulator ([`crate::messaging`]) routes every message
//! through a [`Transport`]: given all outboxes of a round, the transport
//! decides what each node actually hears. [`PerfectLink`] reproduces the
//! classical LOCAL model (every message delivered exactly once, in order);
//! [`FaultPlan`] describes an adversarial network — per-round, per-port
//! message drops, duplication, bounded delays, payload corruption, and
//! crash-stop nodes — whose every decision is a **pure function of the
//! plan's seed**, so a run is reproducible bit for bit across executions
//! and build configurations.
//!
//! Determinism is structural, not incidental: fault decisions are computed
//! by stateless hashing of `(seed, round, sender, port, salt)` rather than
//! by a stream RNG, so they do not depend on iteration order, on how many
//! random draws earlier rounds consumed, or on the `parallel` cargo
//! feature. Every injected fault is tallied in [`FaultStats`].

use lad_graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// A payload that a faulty network can garble in transit.
///
/// `corrupt` must deterministically mutate `self` as a function of
/// `entropy` (two equal values corrupted with equal entropy stay equal).
/// Implementations should prefer *plausible* mutations — the point of the
/// fault harness is to probe whether receivers detect tampering, and a
/// wildly malformed payload is easier to reject than a subtly wrong one.
pub trait Corruptible {
    /// Deterministically mutates `self` using `entropy` as the fault seed.
    fn corrupt(&mut self, entropy: u64);
}

impl Corruptible for () {
    fn corrupt(&mut self, _entropy: u64) {}
}

impl Corruptible for bool {
    fn corrupt(&mut self, _entropy: u64) {
        *self = !*self;
    }
}

macro_rules! corruptible_int {
    ($($t:ty),*) => {$(
        impl Corruptible for $t {
            fn corrupt(&mut self, entropy: u64) {
                // Flip one bit — the smallest plausible lie.
                let bit = (entropy % (<$t>::BITS as u64)) as u32;
                *self ^= 1 << bit;
            }
        }
    )*};
}

corruptible_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Corruptible> Corruptible for Option<T> {
    fn corrupt(&mut self, entropy: u64) {
        if let Some(inner) = self {
            inner.corrupt(entropy);
        }
    }
}

impl<T: Corruptible> Corruptible for Vec<T> {
    fn corrupt(&mut self, entropy: u64) {
        if let Some(k) = (!self.is_empty()).then(|| (entropy % self.len() as u64) as usize) {
            self[k].corrupt(splitmix(entropy));
        }
    }
}

impl<A: Corruptible, B: Corruptible> Corruptible for (A, B) {
    fn corrupt(&mut self, entropy: u64) {
        if entropy.is_multiple_of(2) {
            self.0.corrupt(splitmix(entropy));
        } else {
            self.1.corrupt(splitmix(entropy));
        }
    }
}

/// Counters for every fault a transport injected during one run.
///
/// Two runs of the same [`FaultPlan`] over the same execution produce
/// identical statistics — that reproducibility is part of the plan's
/// contract and is pinned by `crates/runtime/tests/faults.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Message copies handed to a receiver (including duplicates and
    /// delayed arrivals; excluding copies still in flight at the end).
    pub delivered: u64,
    /// Messages destroyed outright.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Copies that arrived at least one round late.
    pub delayed: u64,
    /// Copies whose payload was mutated in transit.
    pub corrupted: u64,
    /// Sends suppressed because the sender had crash-stopped.
    pub suppressed: u64,
}

impl FaultStats {
    /// Total number of injected faults (everything except clean deliveries).
    pub fn total_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.corrupted + self.suppressed
    }
}

/// How message delivery happens: the seam between the synchronous
/// simulator and the (possibly adversarial) network.
///
/// `exchange` receives every node's outbox for one round (`outboxes[v][i]`
/// is the message `v` sends on port `i`) and returns every node's inbox
/// (`inboxes[v][i]` is the list of messages arriving at `v` on port `i`
/// this round — possibly empty, possibly several). Port `i` of `v` leads
/// to its `i`-th neighbor in sorted index order, matching
/// [`lad_graph::Graph::port`].
pub trait Transport<Msg: Clone> {
    /// Routes one round of messages; called with rounds strictly
    /// increasing within a run.
    fn exchange(&mut self, g: &Graph, round: usize, outboxes: &[Vec<Msg>]) -> Vec<Vec<Vec<Msg>>>;

    /// Whether `v` has crash-stopped by `round`. Crashed nodes send,
    /// receive, and output nothing from their crash round on.
    fn is_crashed(&self, v: NodeId, round: usize) -> bool {
        let _ = (v, round);
        false
    }

    /// Fault counters accumulated so far.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// The classical LOCAL-model network: every message is delivered to the
/// matching port exactly once, unmodified, in the round it was sent.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectLink;

impl<Msg: Clone> Transport<Msg> for PerfectLink {
    fn exchange(&mut self, g: &Graph, _round: usize, outboxes: &[Vec<Msg>]) -> Vec<Vec<Vec<Msg>>> {
        g.nodes()
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .map(|&u| {
                        let port_back = g.port(u, v).expect("symmetric adjacency");
                        vec![outboxes[u.index()][port_back].clone()]
                    })
                    .collect()
            })
            .collect()
    }
}

/// SplitMix64 finalizer — the deterministic mixing primitive behind every
/// fault decision.
#[inline]
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps 64 hash bits to a uniform value in `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The fate of one copy of a message under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyFate {
    /// Rounds of extra latency (0 = arrives in the round it was sent).
    pub delay: usize,
    /// `Some(entropy)` if the copy's payload is corrupted in transit.
    pub corrupt: Option<u64>,
}

/// The fate of a `(round, sender, port)` send under a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fate {
    /// The sender has crash-stopped; nothing leaves the node.
    Suppressed,
    /// The message is destroyed.
    Dropped,
    /// One or more copies travel, each with its own delay/corruption.
    Deliver(Vec<CopyFate>),
}

/// A seeded, fully deterministic description of a misbehaving network.
///
/// The plan is pure configuration: rates, a delay bound, and a crash
/// schedule. Every decision it makes is a hash of
/// `(seed, round, sender, port)`, so the same plan produces the same
/// faults on every run — start an execution with [`FaultPlan::start`],
/// which yields the stateful [`FaultRun`] transport (the state is only the
/// in-flight queue of delayed messages and the fault counters).
///
/// # Example
///
/// ```
/// use lad_runtime::{FaultPlan, Fate};
/// use lad_graph::NodeId;
///
/// let plan = FaultPlan::new(7).drop_rate(0.5);
/// // Decisions are reproducible: same (round, sender, port) ⇒ same fate.
/// assert_eq!(plan.fate(3, NodeId(0), 1), plan.fate(3, NodeId(0), 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop: f64,
    duplicate: f64,
    corrupt: f64,
    delay: f64,
    max_delay: usize,
    crashes: BTreeMap<u32, usize>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed; compose rates onto it.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            max_delay: 0,
            crashes: BTreeMap::new(),
        }
    }

    /// Probability that a message is destroyed outright.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` (for all rate setters).
    pub fn drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.drop = p;
        self
    }

    /// Probability that a surviving message is duplicated (one extra copy).
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.duplicate = p;
        self
    }

    /// Probability that a copy's payload is corrupted in transit.
    pub fn corrupt_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.corrupt = p;
        self
    }

    /// Probability that a copy is delayed, and the (inclusive) bound on how
    /// many rounds late it may arrive.
    pub fn delay(mut self, p: f64, max_delay: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        assert!(max_delay >= 1 || p == 0.0, "delays need a positive bound");
        self.delay = p;
        self.max_delay = max_delay;
        self
    }

    /// Crash-stops `node` from `from_round` on: it sends, receives, and
    /// outputs nothing in rounds `≥ from_round`.
    pub fn crash(mut self, node: NodeId, from_round: usize) -> Self {
        self.crashes.insert(node.0, from_round);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects no faults at all (equivalent to
    /// [`PerfectLink`]).
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.crashes.is_empty()
    }

    /// Whether the plan can alter payloads or silence nodes (as opposed to
    /// merely reordering/duplicating/losing re-sendable messages).
    pub fn is_content_preserving(&self) -> bool {
        self.corrupt == 0.0 && self.crashes.is_empty()
    }

    /// Whether `v` has crash-stopped by `round` under this plan.
    pub fn is_crashed(&self, v: NodeId, round: usize) -> bool {
        self.crashes.get(&v.0).is_some_and(|&from| round >= from)
    }

    /// Stateless decision hash for `(round, src, port, salt)`.
    fn h(&self, round: usize, src: NodeId, port: usize, salt: u64) -> u64 {
        let mut x = splitmix(self.seed ^ 0x7478_6f70_5f64_6574); // "ted_port"
        for w in [round as u64, u64::from(src.0), port as u64, salt] {
            x = splitmix(x ^ w);
        }
        x
    }

    /// The fate of the message sent on `(round, src, port)` — a pure
    /// function of the plan, usable outside a simulator run (e.g. by
    /// advice-delivery harnesses).
    pub fn fate(&self, round: usize, src: NodeId, port: usize) -> Fate {
        if self.is_crashed(src, round) {
            return Fate::Suppressed;
        }
        if self.drop > 0.0 && unit(self.h(round, src, port, 1)) < self.drop {
            return Fate::Dropped;
        }
        let copies = 1 + usize::from(
            self.duplicate > 0.0 && unit(self.h(round, src, port, 2)) < self.duplicate,
        );
        let fates = (0..copies)
            .map(|c| {
                let salt = 16 + c as u64;
                let delay = if self.max_delay > 0
                    && self.delay > 0.0
                    && unit(self.h(round, src, port, salt)) < self.delay
                {
                    1 + (self.h(round, src, port, salt + 16) % self.max_delay as u64) as usize
                } else {
                    0
                };
                let corrupt = (self.corrupt > 0.0
                    && unit(self.h(round, src, port, salt + 32)) < self.corrupt)
                    .then(|| self.h(round, src, port, salt + 48));
                CopyFate { delay, corrupt }
            })
            .collect();
        Fate::Deliver(fates)
    }

    /// Begins an execution under this plan: a stateful [`Transport`]
    /// carrying the in-flight queue and fault counters.
    pub fn start<Msg>(&self) -> FaultRun<Msg> {
        FaultRun {
            plan: self.clone(),
            in_flight: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }
}

/// One execution of a [`FaultPlan`]: implements [`Transport`] by applying
/// the plan's per-message fates, queueing delayed copies, and counting
/// every injected fault.
#[derive(Debug)]
pub struct FaultRun<Msg> {
    plan: FaultPlan,
    /// Delayed copies keyed by arrival round: `(receiver, port, payload)`.
    in_flight: BTreeMap<usize, Vec<(usize, usize, Msg)>>,
    stats: FaultStats,
}

impl<Msg> FaultRun<Msg> {
    /// The plan this run executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<Msg: Clone + Corruptible> Transport<Msg> for FaultRun<Msg> {
    fn exchange(&mut self, g: &Graph, round: usize, outboxes: &[Vec<Msg>]) -> Vec<Vec<Vec<Msg>>> {
        let mut inboxes: Vec<Vec<Vec<Msg>>> =
            g.nodes().map(|v| vec![Vec::new(); g.degree(v)]).collect();
        // Delayed copies sent in earlier rounds arrive first.
        for (receiver, port, msg) in self.in_flight.remove(&round).unwrap_or_default() {
            self.stats.delivered += 1;
            inboxes[receiver][port].push(msg);
        }
        for v in g.nodes() {
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                let port_back = g.port(u, v).expect("symmetric adjacency");
                match self.plan.fate(round, v, i) {
                    Fate::Suppressed => self.stats.suppressed += 1,
                    Fate::Dropped => self.stats.dropped += 1,
                    Fate::Deliver(copies) => {
                        self.stats.duplicated += copies.len() as u64 - 1;
                        for fate in copies {
                            let mut msg = outboxes[v.index()][i].clone();
                            if let Some(entropy) = fate.corrupt {
                                msg.corrupt(entropy);
                                self.stats.corrupted += 1;
                            }
                            if fate.delay == 0 {
                                self.stats.delivered += 1;
                                inboxes[u.index()][port_back].push(msg);
                            } else {
                                self.stats.delayed += 1;
                                self.in_flight.entry(round + fate.delay).or_default().push((
                                    u.index(),
                                    port_back,
                                    msg,
                                ));
                            }
                        }
                    }
                }
            }
        }
        inboxes
    }

    fn is_crashed(&self, v: NodeId, round: usize) -> bool {
        self.plan.is_crashed(v, round)
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn perfect_link_routes_to_matching_ports() {
        let g = generators::path(3);
        // Node v sends "v:i" on port i.
        let outboxes: Vec<Vec<String>> = g
            .nodes()
            .map(|v| {
                (0..g.degree(v))
                    .map(|i| format!("{}:{i}", v.index()))
                    .collect()
            })
            .collect();
        let inboxes = PerfectLink.exchange(&g, 1, &outboxes);
        // Node 1's port 0 leads to node 0; node 0 sends to node 1 on its port 0.
        assert_eq!(inboxes[1][0], vec!["0:0".to_string()]);
        assert_eq!(inboxes[1][1], vec!["2:0".to_string()]);
        assert_eq!(inboxes[0][0], vec!["1:0".to_string()]);
    }

    #[test]
    fn fates_are_reproducible_and_seed_sensitive() {
        let plan = FaultPlan::new(3).drop_rate(0.4).corrupt_rate(0.3);
        let other = FaultPlan::new(4).drop_rate(0.4).corrupt_rate(0.3);
        let mut diverged = false;
        for round in 0..20 {
            for port in 0..3 {
                let f = plan.fate(round, NodeId(5), port);
                assert_eq!(f, plan.fate(round, NodeId(5), port));
                diverged |= f != other.fate(round, NodeId(5), port);
            }
        }
        assert!(
            diverged,
            "different seeds must give different fault streams"
        );
    }

    #[test]
    fn extreme_rates_behave() {
        let blackout = FaultPlan::new(1).drop_rate(1.0);
        assert_eq!(blackout.fate(0, NodeId(0), 0), Fate::Dropped);
        let clean = FaultPlan::new(1);
        assert!(clean.is_fault_free());
        match clean.fate(9, NodeId(2), 1) {
            Fate::Deliver(copies) => {
                assert_eq!(copies.len(), 1);
                assert_eq!(
                    copies[0],
                    CopyFate {
                        delay: 0,
                        corrupt: None
                    }
                );
            }
            other => panic!("clean plan produced {other:?}"),
        }
    }

    #[test]
    fn crash_schedule_is_respected() {
        let plan = FaultPlan::new(0).crash(NodeId(2), 3);
        assert!(!plan.is_crashed(NodeId(2), 2));
        assert!(plan.is_crashed(NodeId(2), 3));
        assert!(plan.is_crashed(NodeId(2), 9));
        assert!(!plan.is_crashed(NodeId(1), 9));
        assert_eq!(plan.fate(5, NodeId(2), 0), Fate::Suppressed);
        assert!(!plan.is_fault_free());
        assert!(!plan.is_content_preserving());
    }

    #[test]
    fn fault_run_counts_faults_deterministically() {
        let g = generators::cycle(8);
        let plan = FaultPlan::new(11)
            .drop_rate(0.3)
            .duplicate_rate(0.2)
            .delay(0.2, 2)
            .corrupt_rate(0.1);
        let run_once = || {
            let mut run: FaultRun<u64> = plan.start();
            let mut all = Vec::new();
            for round in 1..=6 {
                let outboxes: Vec<Vec<u64>> = g
                    .nodes()
                    .map(|v| vec![v.index() as u64; g.degree(v)])
                    .collect();
                all.push(run.exchange(&g, round, &outboxes));
            }
            (all, run.fault_stats())
        };
        let (a, sa) = run_once();
        let (b, sb) = run_once();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(
            sa.total_faults() > 0,
            "rates this high must inject something"
        );
        assert!(sa.delivered > 0);
    }

    #[test]
    fn corruptible_impls_mutate_deterministically() {
        let mut a = 5u64;
        let mut b = 5u64;
        a.corrupt(9);
        b.corrupt(9);
        assert_eq!(a, b);
        assert_ne!(a, 5);
        let mut v = vec![1u32, 2, 3];
        v.corrupt(4);
        assert_ne!(v, vec![1, 2, 3]);
        let mut flag = true;
        flag.corrupt(0);
        assert!(!flag);
        let mut none: Option<u8> = None;
        none.corrupt(1); // no-op, must not panic
        assert_eq!(none, None);
        let mut pair = (1u8, 2u8);
        pair.corrupt(8);
        assert_ne!(pair, (1, 2));
    }
}
