//! An explicit synchronous message-passing simulator.
//!
//! The ball-view executor ([`crate::run_local`]) is the primary interface,
//! but some baselines (and tests that want to see real round mechanics) use
//! this round-by-round simulator instead. Messages are exchanged along
//! *ports*: node `v`'s port `i` leads to its `i`-th neighbor in sorted
//! index order, matching [`lad_graph::Graph::port`].

use crate::network::Network;

/// What a node knows before the first round.
#[derive(Debug, Clone)]
pub struct LocalInfo<In> {
    /// The node's unique identifier.
    pub uid: u64,
    /// The node's degree (= number of ports).
    pub degree: usize,
    /// Global knowledge: number of nodes.
    pub n: usize,
    /// Global knowledge: maximum degree.
    pub max_degree: usize,
    /// The node's input.
    pub input: In,
}

/// A synchronous round-based algorithm.
///
/// Each round, every non-halted node produces one message per port
/// ([`RoundAlgorithm::send`]), then consumes the messages arriving on its
/// ports ([`RoundAlgorithm::receive`]). A node halts by returning `Some`
/// from [`RoundAlgorithm::output`]; halted nodes keep sending the messages
/// of their final state (as LOCAL-model nodes may).
pub trait RoundAlgorithm<In> {
    /// Per-node mutable state.
    type State;
    /// Message type (unbounded size, as the LOCAL model allows).
    type Msg: Clone;
    /// Final output type.
    type Out;

    /// Initial state.
    fn init(&self, info: &LocalInfo<In>) -> Self::State;
    /// The message to send on each port this round (length = degree).
    fn send(&self, state: &Self::State, info: &LocalInfo<In>) -> Vec<Self::Msg>;
    /// Consumes the message received on each port (length = degree).
    fn receive(&self, state: &mut Self::State, info: &LocalInfo<In>, inbox: &[Self::Msg]);
    /// `Some(out)` once the node has terminated.
    fn output(&self, state: &Self::State) -> Option<Self::Out>;
}

/// The simulator failed to converge within the round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLimitExceeded {
    /// The budget that was exhausted.
    pub max_rounds: usize,
}

impl std::fmt::Display for RoundLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "algorithm did not terminate within {} rounds",
            self.max_rounds
        )
    }
}

impl std::error::Error for RoundLimitExceeded {}

/// Runs a round algorithm until every node outputs, or the budget runs out.
///
/// Returns the outputs and the number of rounds executed (the round in
/// which the last node terminated).
///
/// # Errors
///
/// [`RoundLimitExceeded`] if some node never outputs within `max_rounds`.
pub fn run_rounds<In: Clone, A: RoundAlgorithm<In>>(
    net: &Network<In>,
    algo: &A,
    max_rounds: usize,
) -> Result<(Vec<A::Out>, usize), RoundLimitExceeded> {
    let g = net.graph();
    let n = g.n();
    let infos: Vec<LocalInfo<In>> = g
        .nodes()
        .map(|v| LocalInfo {
            uid: net.uid(v),
            degree: g.degree(v),
            n,
            max_degree: g.max_degree(),
            input: net.input(v).clone(),
        })
        .collect();
    let mut states: Vec<A::State> = infos.iter().map(|i| algo.init(i)).collect();
    let mut outs: Vec<Option<A::Out>> = (0..n).map(|_| None).collect();
    for v in g.nodes() {
        if outs[v.index()].is_none() {
            outs[v.index()] = algo.output(&states[v.index()]);
        }
    }
    if outs.iter().all(Option::is_some) {
        return Ok((outs.into_iter().map(Option::unwrap).collect(), 0));
    }
    for round in 1..=max_rounds {
        // Collect all outboxes first (synchronous semantics).
        let outboxes: Vec<Vec<A::Msg>> = g
            .nodes()
            .map(|v| {
                let msgs = algo.send(&states[v.index()], &infos[v.index()]);
                assert_eq!(
                    msgs.len(),
                    g.degree(v),
                    "send() must produce one message per port"
                );
                msgs
            })
            .collect();
        // Deliver: the message on v's port i comes from neighbor u = nbrs[i],
        // sent on u's port towards v.
        for v in g.nodes() {
            let inbox: Vec<A::Msg> = g
                .neighbors(v)
                .iter()
                .map(|&u| {
                    let port_back = g.port(u, v).expect("symmetric adjacency");
                    outboxes[u.index()][port_back].clone()
                })
                .collect();
            if outs[v.index()].is_none() {
                algo.receive(&mut states[v.index()], &infos[v.index()], &inbox);
                outs[v.index()] = algo.output(&states[v.index()]);
            }
        }
        if outs.iter().all(Option::is_some) {
            return Ok((outs.into_iter().map(Option::unwrap).collect(), round));
        }
    }
    Err(RoundLimitExceeded { max_rounds })
}

/// A ready-made round algorithm: synchronous flooding that computes each
/// node's distance to the nearest *source* (input `true`). Demonstrates the
/// simulator and doubles as a baseline for "global problems take Ω(diam)
/// rounds".
#[derive(Debug, Clone, Default)]
pub struct FloodDistance;

/// State for [`FloodDistance`].
#[derive(Debug, Clone)]
pub struct FloodState {
    dist: Option<usize>,
    /// Rounds with no improvement; termination after `n` rounds of silence
    /// is sound because distances are < n.
    rounds: usize,
    n: usize,
}

impl RoundAlgorithm<bool> for FloodDistance {
    type State = FloodState;
    type Msg = Option<usize>;
    type Out = Option<usize>;

    fn init(&self, info: &LocalInfo<bool>) -> FloodState {
        FloodState {
            dist: info.input.then_some(0),
            rounds: 0,
            n: info.n,
        }
    }

    fn send(&self, st: &FloodState, info: &LocalInfo<bool>) -> Vec<Option<usize>> {
        vec![st.dist; info.degree]
    }

    fn receive(&self, st: &mut FloodState, _info: &LocalInfo<bool>, inbox: &[Option<usize>]) {
        st.rounds += 1;
        for d in inbox.iter().flatten() {
            let cand = d + 1;
            if st.dist.is_none_or(|cur| cand < cur) {
                st.dist = Some(cand);
            }
        }
    }

    fn output(&self, st: &FloodState) -> Option<Option<usize>> {
        (st.rounds >= st.n).then_some(st.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::{generators, traversal, NodeId};

    #[test]
    fn flooding_computes_distances() {
        let g = generators::grid2d(4, 4, false);
        let sources: Vec<bool> = g.nodes().map(|v| v.index() == 0).collect();
        let expected = traversal::bfs_distances(&g, NodeId(0));
        let net = Network::with_identity_ids(g).with_inputs(sources);
        let (outs, rounds) = run_rounds(&net, &FloodDistance, 64).unwrap();
        for (i, d) in outs.iter().enumerate() {
            assert_eq!(*d, expected[i]);
        }
        assert_eq!(rounds, 16); // termination after n rounds of certainty
    }

    #[test]
    fn flooding_with_no_source_yields_none() {
        let g = generators::cycle(5);
        let net = Network::with_identity_ids(g).with_inputs(vec![false; 5]);
        let (outs, _) = run_rounds(&net, &FloodDistance, 16).unwrap();
        assert!(outs.iter().all(Option::is_none));
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::cycle(10);
        let net = Network::with_identity_ids(g).with_inputs(vec![false; 10]);
        let err = run_rounds(&net, &FloodDistance, 3).unwrap_err();
        assert_eq!(err.max_rounds, 3);
    }
}
