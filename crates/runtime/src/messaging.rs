//! An explicit synchronous message-passing simulator.
//!
//! The ball-view executor ([`crate::run_local`]) is the primary interface,
//! but some baselines (and tests that want to see real round mechanics) use
//! this round-by-round simulator instead. Messages are exchanged along
//! *ports*: node `v`'s port `i` leads to its `i`-th neighbor in sorted
//! index order, matching [`lad_graph::Graph::port`].
//!
//! Delivery is pluggable: every message crosses a [`Transport`]
//! ([`crate::transport`]). [`run_rounds`] fixes the transport to
//! [`PerfectLink`] and the classical exactly-one-message-per-port contract;
//! [`run_rounds_on`] exposes the general form, where an adversarial
//! transport may drop, duplicate, delay, or corrupt messages and
//! crash-stop nodes — algorithms written against
//! [`LossyRoundAlgorithm`] receive *zero or more* messages per port and
//! must cope.

use crate::network::Network;
use crate::transport::{FaultStats, PerfectLink, Transport};
use lad_graph::NodeId;

/// What a node knows before the first round.
#[derive(Debug, Clone)]
pub struct LocalInfo<In> {
    /// The node's unique identifier.
    pub uid: u64,
    /// The node's degree (= number of ports).
    pub degree: usize,
    /// Global knowledge: number of nodes.
    pub n: usize,
    /// Global knowledge: maximum degree.
    pub max_degree: usize,
    /// The node's input.
    pub input: In,
}

/// A synchronous round-based algorithm.
///
/// Each round, every non-halted node produces one message per port
/// ([`RoundAlgorithm::send`]), then consumes the messages arriving on its
/// ports ([`RoundAlgorithm::receive`]). A node halts by returning `Some`
/// from [`RoundAlgorithm::output`]; halted nodes keep sending the messages
/// of their final state (as LOCAL-model nodes may).
pub trait RoundAlgorithm<In> {
    /// Per-node mutable state.
    type State;
    /// Message type (unbounded size, as the LOCAL model allows).
    type Msg: Clone;
    /// Final output type.
    type Out;

    /// Initial state.
    fn init(&self, info: &LocalInfo<In>) -> Self::State;
    /// The message to send on each port this round (length = degree).
    fn send(&self, state: &Self::State, info: &LocalInfo<In>) -> Vec<Self::Msg>;
    /// Consumes the message received on each port (length = degree).
    fn receive(&self, state: &mut Self::State, info: &LocalInfo<In>, inbox: &[Self::Msg]);
    /// `Some(out)` once the node has terminated.
    fn output(&self, state: &Self::State) -> Option<Self::Out>;
}

/// A synchronous round algorithm that tolerates imperfect delivery.
///
/// Unlike [`RoundAlgorithm`], whose receivers are handed exactly one
/// message per port, a lossy algorithm's inbox holds *zero or more*
/// messages per port — what an adversarial [`Transport`] actually
/// delivered this round (drops leave a port empty, duplicates and delayed
/// copies stack up). Halting and sending rules are unchanged: a node halts
/// by returning `Some` from `output`, and halted nodes keep sending their
/// final-state messages.
pub trait LossyRoundAlgorithm<In> {
    /// Per-node mutable state.
    type State;
    /// Message type (unbounded size, as the LOCAL model allows).
    type Msg: Clone;
    /// Final output type.
    type Out;

    /// Initial state.
    fn init(&self, info: &LocalInfo<In>) -> Self::State;
    /// The message to send on each port this round (length = degree).
    fn send(&self, state: &Self::State, info: &LocalInfo<In>) -> Vec<Self::Msg>;
    /// Consumes this round's arrivals; `inbox[i]` holds whatever the
    /// transport delivered on port `i` (possibly nothing, possibly
    /// several messages).
    fn receive(&self, state: &mut Self::State, info: &LocalInfo<In>, inbox: Vec<Vec<Self::Msg>>);
    /// `Some(out)` once the node has terminated.
    fn output(&self, state: &Self::State) -> Option<Self::Out>;
}

/// Adapts a [`RoundAlgorithm`] to the lossy interface by *asserting* the
/// classical delivery contract: exactly one message per port per round.
///
/// Use only with transports that guarantee it (i.e. [`PerfectLink`]);
/// under a faulty transport the assertion is the loud failure that keeps a
/// perfect-delivery algorithm from silently misreading a lossy inbox.
pub struct Strict<'a, A>(pub &'a A);

impl<In, A: RoundAlgorithm<In>> LossyRoundAlgorithm<In> for Strict<'_, A> {
    type State = A::State;
    type Msg = A::Msg;
    type Out = A::Out;

    fn init(&self, info: &LocalInfo<In>) -> A::State {
        self.0.init(info)
    }

    fn send(&self, state: &A::State, info: &LocalInfo<In>) -> Vec<A::Msg> {
        self.0.send(state, info)
    }

    fn receive(&self, state: &mut A::State, info: &LocalInfo<In>, inbox: Vec<Vec<A::Msg>>) {
        let flat: Vec<A::Msg> = inbox
            .into_iter()
            .map(|mut port| {
                assert_eq!(
                    port.len(),
                    1,
                    "Strict algorithm requires exactly one message per port"
                );
                port.pop().expect("length checked above")
            })
            .collect();
        self.0.receive(state, info, &flat);
    }

    fn output(&self, state: &A::State) -> Option<A::Out> {
        self.0.output(state)
    }
}

/// What came out of running a round algorithm over a (possibly faulty)
/// transport.
///
/// This is not a `Result`: under faults, "some nodes never terminated" is
/// an expected outcome the caller inspects, not an exception. `outputs[v]`
/// is `None` exactly when `v` crashed before terminating or ran out of
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome<Out> {
    /// Per-node outputs; `None` = did not terminate (crashed or starved).
    pub outputs: Vec<Option<Out>>,
    /// Rounds executed: the round in which the last node terminated, or
    /// the full budget if some node never did.
    pub rounds: usize,
    /// The transport's fault counters at the end of the run.
    pub faults: FaultStats,
    /// Nodes that had crash-stopped by the final round.
    pub crashed: Vec<NodeId>,
}

/// Runs a lossy round algorithm over an explicit transport.
///
/// Each round: every node's `send` is collected synchronously (halted and
/// crashed nodes included — the transport, not the algorithm, models
/// crash silence), the transport routes the outboxes, and every
/// non-halted non-crashed node consumes its inbox. The run ends when all
/// nodes have either terminated or crashed, or after `max_rounds`.
pub fn run_rounds_on<In: Clone, A: LossyRoundAlgorithm<In>>(
    net: &Network<In>,
    algo: &A,
    max_rounds: usize,
    transport: &mut impl Transport<A::Msg>,
) -> RoundOutcome<A::Out> {
    let g = net.graph();
    let n = g.n();
    let infos: Vec<LocalInfo<In>> = g
        .nodes()
        .map(|v| LocalInfo {
            uid: net.uid(v),
            degree: g.degree(v),
            n,
            max_degree: g.max_degree(),
            input: net.input(v).clone(),
        })
        .collect();
    let mut states: Vec<A::State> = infos.iter().map(|i| algo.init(i)).collect();
    let mut outs: Vec<Option<A::Out>> = (0..n).map(|_| None).collect();
    for v in g.nodes() {
        if !transport.is_crashed(v, 0) {
            outs[v.index()] = algo.output(&states[v.index()]);
        }
    }
    fn settled<Out, Msg: Clone, T: Transport<Msg>>(
        outs: &[Option<Out>],
        transport: &T,
        round: usize,
    ) -> bool {
        outs.iter()
            .enumerate()
            .all(|(i, o)| o.is_some() || transport.is_crashed(NodeId::from_index(i), round))
    }
    let mut rounds = 0;
    if !settled(&outs, transport, 0) {
        for round in 1..=max_rounds {
            rounds = round;
            // Collect all outboxes first (synchronous semantics).
            let outboxes: Vec<Vec<A::Msg>> = g
                .nodes()
                .map(|v| {
                    let msgs = algo.send(&states[v.index()], &infos[v.index()]);
                    assert_eq!(
                        msgs.len(),
                        g.degree(v),
                        "send() must produce one message per port"
                    );
                    msgs
                })
                .collect();
            let mut inboxes = transport.exchange(g, round, &outboxes);
            for v in g.nodes() {
                if outs[v.index()].is_none() && !transport.is_crashed(v, round) {
                    let inbox = std::mem::take(&mut inboxes[v.index()]);
                    algo.receive(&mut states[v.index()], &infos[v.index()], inbox);
                    outs[v.index()] = algo.output(&states[v.index()]);
                }
            }
            if settled(&outs, transport, round) {
                break;
            }
        }
    }
    let crashed: Vec<NodeId> = g
        .nodes()
        .filter(|&v| transport.is_crashed(v, rounds))
        .collect();
    RoundOutcome {
        outputs: outs,
        rounds,
        faults: transport.fault_stats(),
        crashed,
    }
}

/// The simulator failed to converge within the round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundLimitExceeded {
    /// The budget that was exhausted.
    pub max_rounds: usize,
}

impl std::fmt::Display for RoundLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "algorithm did not terminate within {} rounds",
            self.max_rounds
        )
    }
}

impl std::error::Error for RoundLimitExceeded {}

/// Runs a round algorithm until every node outputs, or the budget runs out.
///
/// Returns the outputs and the number of rounds executed (the round in
/// which the last node terminated). Delivery is a [`PerfectLink`]: exactly
/// one message per port per round, unmodified — the classical LOCAL model.
///
/// # Errors
///
/// [`RoundLimitExceeded`] if some node never outputs within `max_rounds`.
pub fn run_rounds<In: Clone, A: RoundAlgorithm<In>>(
    net: &Network<In>,
    algo: &A,
    max_rounds: usize,
) -> Result<(Vec<A::Out>, usize), RoundLimitExceeded> {
    let outcome = run_rounds_on(net, &Strict(algo), max_rounds, &mut PerfectLink);
    if outcome.outputs.iter().all(Option::is_some) {
        let outs = outcome.outputs.into_iter().flatten().collect();
        Ok((outs, outcome.rounds))
    } else {
        Err(RoundLimitExceeded { max_rounds })
    }
}

/// A ready-made round algorithm: synchronous flooding that computes each
/// node's distance to the nearest *source* (input `true`). Demonstrates the
/// simulator and doubles as a baseline for "global problems take Ω(diam)
/// rounds".
#[derive(Debug, Clone, Default)]
pub struct FloodDistance;

/// State for [`FloodDistance`].
#[derive(Debug, Clone)]
pub struct FloodState {
    dist: Option<usize>,
    /// Rounds with no improvement; termination after `n` rounds of silence
    /// is sound because distances are < n.
    rounds: usize,
    n: usize,
}

impl RoundAlgorithm<bool> for FloodDistance {
    type State = FloodState;
    type Msg = Option<usize>;
    type Out = Option<usize>;

    fn init(&self, info: &LocalInfo<bool>) -> FloodState {
        FloodState {
            dist: info.input.then_some(0),
            rounds: 0,
            n: info.n,
        }
    }

    fn send(&self, st: &FloodState, info: &LocalInfo<bool>) -> Vec<Option<usize>> {
        vec![st.dist; info.degree]
    }

    fn receive(&self, st: &mut FloodState, _info: &LocalInfo<bool>, inbox: &[Option<usize>]) {
        st.rounds += 1;
        for d in inbox.iter().flatten() {
            let cand = d + 1;
            if st.dist.is_none_or(|cur| cand < cur) {
                st.dist = Some(cand);
            }
        }
    }

    fn output(&self, st: &FloodState) -> Option<Option<usize>> {
        (st.rounds >= st.n).then_some(st.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::{generators, traversal, NodeId};

    #[test]
    fn flooding_computes_distances() {
        let g = generators::grid2d(4, 4, false);
        let sources: Vec<bool> = g.nodes().map(|v| v.index() == 0).collect();
        let expected = traversal::bfs_distances(&g, NodeId(0));
        let net = Network::with_identity_ids(g).with_inputs(sources);
        let (outs, rounds) = run_rounds(&net, &FloodDistance, 64).unwrap();
        for (i, d) in outs.iter().enumerate() {
            assert_eq!(*d, expected[i]);
        }
        assert_eq!(rounds, 16); // termination after n rounds of certainty
    }

    #[test]
    fn flooding_with_no_source_yields_none() {
        let g = generators::cycle(5);
        let net = Network::with_identity_ids(g).with_inputs(vec![false; 5]);
        let (outs, _) = run_rounds(&net, &FloodDistance, 16).unwrap();
        assert!(outs.iter().all(Option::is_none));
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::cycle(10);
        let net = Network::with_identity_ids(g).with_inputs(vec![false; 10]);
        let err = run_rounds(&net, &FloodDistance, 3).unwrap_err();
        assert_eq!(err.max_rounds, 3);
    }

    /// Each node outputs its hop distance from the source the moment it
    /// learns it — so node `k` on a path halts at round `k`, and node
    /// `k + 1` can only ever learn its distance from the *already-halted*
    /// node `k`. Progress past round 1 therefore proves halted nodes keep
    /// sending their final-state messages.
    struct Relay;

    impl RoundAlgorithm<bool> for Relay {
        type State = Option<usize>;
        type Msg = Option<usize>;
        type Out = usize;

        fn init(&self, info: &LocalInfo<bool>) -> Option<usize> {
            info.input.then_some(0)
        }

        fn send(&self, st: &Option<usize>, info: &LocalInfo<bool>) -> Vec<Option<usize>> {
            vec![*st; info.degree]
        }

        fn receive(
            &self,
            st: &mut Option<usize>,
            _info: &LocalInfo<bool>,
            inbox: &[Option<usize>],
        ) {
            for d in inbox.iter().flatten() {
                if st.is_none_or(|cur| d + 1 < cur) {
                    *st = Some(d + 1);
                }
            }
        }

        fn output(&self, st: &Option<usize>) -> Option<usize> {
            *st
        }
    }

    #[test]
    fn halted_nodes_keep_sending_final_state() {
        let n = 8;
        let g = generators::path(n);
        let mut sources = vec![false; n];
        sources[0] = true;
        let net = Network::with_identity_ids(g).with_inputs(sources);
        let (outs, rounds) = run_rounds(&net, &Relay, n).unwrap();
        // Node k's distance arrives via node k-1, which halted at round k-1.
        assert_eq!(outs, (0..n).collect::<Vec<usize>>());
        assert_eq!(rounds, n - 1, "last node terminates in round n-1");
    }

    #[test]
    fn never_halting_node_trips_limit_with_correct_round_count() {
        // No source: FloodDistance nodes only halt after n rounds of
        // silence, so any budget below n must fail with that exact budget.
        let n = 12;
        let g = generators::cycle(n);
        let net = Network::with_identity_ids(g).with_inputs(vec![false; n]);
        for budget in [0, 1, n - 1] {
            let err = run_rounds(&net, &FloodDistance, budget).unwrap_err();
            assert_eq!(err.max_rounds, budget);
            assert!(err.to_string().contains(&budget.to_string()));
        }
        // And the exact budget n succeeds in exactly n rounds.
        let (_, rounds) = run_rounds(&net, &FloodDistance, n).unwrap();
        assert_eq!(rounds, n);
    }

    #[test]
    fn transported_runner_matches_legacy_on_perfect_links() {
        let g = generators::grid2d(4, 4, false);
        let sources: Vec<bool> = g.nodes().map(|v| v.index() == 5).collect();
        let net = Network::with_identity_ids(g).with_inputs(sources);
        let (outs, rounds) = run_rounds(&net, &FloodDistance, 64).unwrap();
        let outcome = run_rounds_on(&net, &Strict(&FloodDistance), 64, &mut PerfectLink);
        assert_eq!(outcome.rounds, rounds);
        assert_eq!(outcome.faults, FaultStats::default());
        assert!(outcome.crashed.is_empty());
        let robust: Vec<_> = outcome.outputs.into_iter().map(Option::unwrap).collect();
        assert_eq!(robust, outs);
    }

    /// [`Relay`] restated against the lossy interface: tolerates empty and
    /// repeated port deliveries.
    struct LossyRelay;

    impl LossyRoundAlgorithm<bool> for LossyRelay {
        type State = Option<usize>;
        type Msg = Option<usize>;
        type Out = usize;

        fn init(&self, info: &LocalInfo<bool>) -> Option<usize> {
            info.input.then_some(0)
        }

        fn send(&self, st: &Option<usize>, info: &LocalInfo<bool>) -> Vec<Option<usize>> {
            vec![*st; info.degree]
        }

        fn receive(
            &self,
            st: &mut Option<usize>,
            _info: &LocalInfo<bool>,
            inbox: Vec<Vec<Option<usize>>>,
        ) {
            for d in inbox.into_iter().flatten().flatten() {
                if st.is_none_or(|cur| d + 1 < cur) {
                    *st = Some(d + 1);
                }
            }
        }

        fn output(&self, st: &Option<usize>) -> Option<usize> {
            *st
        }
    }

    #[test]
    fn crashed_nodes_go_silent_and_produce_no_output() {
        use crate::transport::FaultPlan;
        // Path with the source at one end; crash the middle node before it
        // can relay: everyone past it starves, everyone before it finishes.
        let n = 7;
        let g = generators::path(n);
        let mut sources = vec![false; n];
        sources[0] = true;
        let net = Network::with_identity_ids(g).with_inputs(sources);
        let crash_at = 3;
        let plan = FaultPlan::new(5).crash(NodeId(crash_at as u32), crash_at);
        let mut run = plan.start();
        let budget = 4 * n;
        let outcome = run_rounds_on(&net, &LossyRelay, budget, &mut run);
        for v in 0..n {
            match v.cmp(&crash_at) {
                std::cmp::Ordering::Less => assert_eq!(outcome.outputs[v], Some(v)),
                _ => assert_eq!(outcome.outputs[v], None, "node {v} starves"),
            }
        }
        assert_eq!(outcome.crashed, vec![NodeId(crash_at as u32)]);
        assert_eq!(outcome.rounds, budget, "starved nodes exhaust the budget");
        assert!(outcome.faults.suppressed > 0, "crash silence is counted");
    }
}
