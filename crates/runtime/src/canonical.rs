//! Order-invariant canonical forms of ball views (Contribution 2).
//!
//! The paper's ETH argument hinges on replacing an arbitrary local
//! algorithm by an *order-invariant* one — an algorithm whose output
//! depends only on the *relative order* of the identifiers in its view, not
//! their numerical values — because an order-invariant algorithm on
//! bounded-degree graphs is a finite lookup table and therefore cheap to
//! simulate.
//!
//! [`CanonicalKey`] is that lookup key: a serialization of a ball in which
//! identifiers are replaced by their ranks and node order is normalized to
//! `(distance, rank)` order. Two views receive the same key exactly when
//! they are isomorphic via a mapping that preserves distances, inputs, true
//! degrees, and the relative order of identifiers.

use crate::ball::Ball;
use lad_graph::NodeId;

/// A canonical, hashable fingerprint of a ball view.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(Vec<u64>);

impl CanonicalKey {
    /// The raw serialized words (for size accounting).
    pub fn words(&self) -> &[u64] {
        &self.0
    }
}

/// Reusable workspace for [`canonicalize_with`]: the rank/order/index
/// tables and edge list canonicalization allocates are kept and reused
/// across calls, so repeated keying (cache keys, [`crate::LookupTable`]
/// training, ETH simulation) allocates only the output words.
#[derive(Debug, Default)]
pub struct CanonScratch {
    by_uid: Vec<NodeId>,
    rank: Vec<u64>,
    order: Vec<NodeId>,
    canon_index: Vec<u64>,
    edges: Vec<(u64, u64)>,
}

impl CanonScratch {
    /// An empty workspace; buffers grow to the largest ball seen.
    pub fn new() -> Self {
        CanonScratch::default()
    }
}

/// Canonicalizes a ball. `input_tag` maps each node's input to a `u64`
/// (inputs must be finitely tagged for the key to be meaningful); pass
/// `|_| 0` for unit inputs.
///
/// Uses a thread-local [`CanonScratch`]; use [`canonicalize_with`] to
/// control the workspace explicitly.
pub fn canonicalize<In>(ball: &Ball<In>, input_tag: impl Fn(&In) -> u64) -> CanonicalKey {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<CanonScratch> = RefCell::new(CanonScratch::new());
    }
    SCRATCH.with(|cell| canonicalize_with(ball, input_tag, &mut cell.borrow_mut()))
}

/// [`canonicalize`] with a caller-provided reusable workspace.
pub fn canonicalize_with<In>(
    ball: &Ball<In>,
    input_tag: impl Fn(&In) -> u64,
    scratch: &mut CanonScratch,
) -> CanonicalKey {
    let g = ball.graph();
    let n = g.n();
    // Ranks of identifiers within the ball: the only identifier information
    // an order-invariant algorithm may use.
    let by_uid = &mut scratch.by_uid;
    by_uid.clear();
    by_uid.extend(g.nodes());
    by_uid.sort_by_key(|&v| ball.uid(v));
    let rank = &mut scratch.rank;
    rank.clear();
    rank.resize(n, 0);
    for (r, &v) in by_uid.iter().enumerate() {
        rank[v.index()] = r as u64;
    }
    // Canonical node order: by (distance from center, rank).
    let order = &mut scratch.order;
    order.clear();
    order.extend(g.nodes());
    order.sort_by_key(|&v| (ball.dist(v), rank[v.index()]));
    let canon_index = &mut scratch.canon_index;
    canon_index.clear();
    canon_index.resize(n, 0);
    for (ci, &v) in order.iter().enumerate() {
        canon_index[v.index()] = ci as u64;
    }
    let mut words = Vec::with_capacity(5 + 4 * n + 2 * g.m());
    words.push(n as u64);
    words.push(ball.radius() as u64);
    words.push(canon_index[ball.center().index()]);
    for &v in order.iter() {
        words.push(ball.dist(v) as u64);
        words.push(rank[v.index()]);
        words.push(ball.global_degree(v) as u64);
        words.push(input_tag(ball.input(v)));
    }
    let edges = &mut scratch.edges;
    edges.clear();
    edges.extend(g.edges().map(|(_, (u, v))| {
        let (a, b) = (canon_index[u.index()], canon_index[v.index()]);
        (a.min(b), a.max(b))
    }));
    edges.sort_unstable();
    words.push(edges.len() as u64);
    for &(a, b) in edges.iter() {
        words.push(a);
        words.push(b);
    }
    CanonicalKey(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use lad_graph::{generators, IdAssignment};

    fn key_at(net: &Network, v: NodeId, r: usize) -> CanonicalKey {
        let ball = Ball::collect(net, v, r);
        canonicalize(&ball, |_| 0)
    }

    #[test]
    fn rotation_invariance_on_cycle() {
        // Every node of a cycle with identity ids that is "locally
        // ascending" sees an order-equivalent view... IDs 1..n wrap, so the
        // wrap nodes differ; compare two deep-interior nodes instead.
        let net = Network::with_identity_ids(generators::cycle(20));
        assert_eq!(key_at(&net, NodeId(7), 2), key_at(&net, NodeId(11), 2));
    }

    #[test]
    fn order_equivalent_ids_same_key() {
        let g = generators::path(7);
        let a = Network::with_ids(
            g.clone(),
            IdAssignment::from_uids(vec![1, 2, 3, 4, 5, 6, 7]),
        );
        let b = Network::with_ids(
            g,
            IdAssignment::from_uids(vec![10, 20, 30, 44, 58, 600, 7000]),
        );
        for v in 0..7 {
            assert_eq!(
                key_at(&a, NodeId(v), 2),
                key_at(&b, NodeId(v), 2),
                "node {v}"
            );
        }
    }

    #[test]
    fn different_order_different_key() {
        let g = generators::path(3);
        let a = Network::with_ids(g.clone(), IdAssignment::from_uids(vec![1, 2, 3]));
        let b = Network::with_ids(g, IdAssignment::from_uids(vec![3, 2, 1]));
        assert_ne!(key_at(&a, NodeId(0), 1), key_at(&b, NodeId(0), 1));
    }

    #[test]
    fn inputs_affect_key() {
        let g = generators::path(3);
        let base = Network::with_identity_ids(g);
        let a = base.with_inputs(vec![0u8, 1, 0]);
        let b = base.with_inputs(vec![0u8, 0, 0]);
        let ka = canonicalize(&Ball::collect(&a, NodeId(0), 1), |&x| x as u64);
        let kb = canonicalize(&Ball::collect(&b, NodeId(0), 1), |&x| x as u64);
        assert_ne!(ka, kb);
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, true));
        let mut scratch = CanonScratch::new();
        for v in net.graph().nodes() {
            for r in 0..3 {
                let ball = Ball::collect(&net, v, r);
                assert_eq!(
                    canonicalize_with(&ball, |_| 0, &mut scratch),
                    canonicalize(&ball, |_| 0),
                    "node {v:?} radius {r}"
                );
            }
        }
    }

    #[test]
    fn frontier_degree_distinguishes() {
        // A path endpoint vs an interior node: different true degrees at the
        // frontier show up in the key.
        let net = Network::with_identity_ids(generators::path(10));
        assert_ne!(key_at(&net, NodeId(1), 1), key_at(&net, NodeId(5), 1));
    }
}
