//! Order-invariant canonical forms of ball views (Contribution 2).
//!
//! The paper's ETH argument hinges on replacing an arbitrary local
//! algorithm by an *order-invariant* one — an algorithm whose output
//! depends only on the *relative order* of the identifiers in its view, not
//! their numerical values — because an order-invariant algorithm on
//! bounded-degree graphs is a finite lookup table and therefore cheap to
//! simulate.
//!
//! [`CanonicalKey`] is that lookup key: a serialization of a ball in which
//! identifiers are replaced by their ranks and node order is normalized to
//! `(distance, rank)` order. Two views receive the same key exactly when
//! they are isomorphic via a mapping that preserves distances, inputs, true
//! degrees, and the relative order of identifiers.

use crate::ball::Ball;
use crate::network::Network;
use lad_graph::NodeId;

/// A canonical, hashable fingerprint of a ball view.
///
/// The serialized words carry the identity; a multiply–rotate fold of them
/// is computed once at construction and replayed by `Hash`, so hash-map
/// lookups mix a single word instead of re-hashing kilobytes per probe.
/// Equality still compares the full word sequence (the cached fold only
/// fast-rejects), so a fold collision costs a memcmp, never a wrong match.
#[derive(Debug, Clone)]
pub struct CanonicalKey {
    fold: u64,
    words: Vec<u64>,
}

impl CanonicalKey {
    fn new(words: Vec<u64>) -> Self {
        let mut fold = 0x9e37_79b9_7f4a_7c15u64;
        for &w in &words {
            fold = (fold.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
        CanonicalKey { fold, words }
    }

    /// The raw serialized words (for size accounting).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// A key from an externally serialized word sequence — the shell-indexed
    /// gather (`crate::shell`) emits the exact layout of
    /// [`canonicalize_tagged_with`] into a reusable buffer and only
    /// materializes a `CanonicalKey` when a class is first seen.
    pub(crate) fn from_word_slice(words: &[u64]) -> Self {
        CanonicalKey::new(words.to_vec())
    }
}

impl PartialEq for CanonicalKey {
    fn eq(&self, other: &Self) -> bool {
        self.fold == other.fold && self.words == other.words
    }
}

impl Eq for CanonicalKey {}

impl std::hash::Hash for CanonicalKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.fold);
    }
}

impl PartialOrd for CanonicalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CanonicalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.words.cmp(&other.words)
    }
}

/// Reusable workspace for [`canonicalize_with`]: the rank/order/index
/// tables and edge list canonicalization allocates are kept and reused
/// across calls, so repeated keying (cache keys, [`crate::LookupTable`]
/// training, ETH simulation) allocates only the output words.
#[derive(Debug, Default)]
pub struct CanonScratch {
    by_uid: Vec<NodeId>,
    uid_tmp: Vec<(u64, u32)>,
    rank: Vec<u64>,
    order: Vec<NodeId>,
    order_keys: Vec<u64>,
    canon_index: Vec<u64>,
    edges: Vec<u64>,
}

impl CanonScratch {
    /// An empty workspace; buffers grow to the largest ball seen.
    pub fn new() -> Self {
        CanonScratch::default()
    }
}

/// Canonicalizes a ball. `input_tag` maps each node's input to a `u64`
/// (inputs must be finitely tagged for the key to be meaningful); pass
/// `|_| 0` for unit inputs.
///
/// Uses a thread-local [`CanonScratch`]; use [`canonicalize_with`] to
/// control the workspace explicitly.
pub fn canonicalize<In>(ball: &Ball<In>, input_tag: impl Fn(&In) -> u64) -> CanonicalKey {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<CanonScratch> = RefCell::new(CanonScratch::new());
    }
    SCRATCH.with(|cell| canonicalize_with(ball, input_tag, &mut cell.borrow_mut()))
}

/// [`canonicalize`] with a caller-provided reusable workspace.
pub fn canonicalize_with<In>(
    ball: &Ball<In>,
    input_tag: impl Fn(&In) -> u64,
    scratch: &mut CanonScratch,
) -> CanonicalKey {
    canonicalize_tagged_with(ball, |input, words| words.push(input_tag(input)), scratch)
}

/// [`canonicalize_with`] for inputs whose tag does not fit in one word:
/// `input_tag` appends an arbitrary number of words per node (an advice
/// bit string, say — see `BitString::push_key_words` in `lad-core`).
///
/// The writer must be *prefix-free*: either a fixed number of words per
/// call, or self-delimiting (e.g. a length word followed by payload
/// words). Otherwise distinct views could serialize identically.
pub fn canonicalize_tagged_with<In>(
    ball: &Ball<In>,
    input_tag: impl Fn(&In, &mut Vec<u64>),
    scratch: &mut CanonScratch,
) -> CanonicalKey {
    let g = ball.graph();
    let n = g.n();
    // Ranks of identifiers within the ball: the only identifier information
    // an order-invariant algorithm may use. Sorting materialized
    // (uid, node) pairs keeps the sort's comparisons on contiguous memory
    // instead of chasing the uid table; uids are distinct, so the unstable
    // pair sort orders exactly by uid.
    let uid_tmp = &mut scratch.uid_tmp;
    uid_tmp.clear();
    uid_tmp.extend(g.nodes().map(|v| (ball.uid(v), v.index() as u32)));
    uid_tmp.sort_unstable();
    let by_uid = &mut scratch.by_uid;
    by_uid.clear();
    by_uid.extend(uid_tmp.iter().map(|&(_, i)| NodeId::from_index(i as usize)));
    let rank = &mut scratch.rank;
    rank.clear();
    rank.resize(n, 0);
    for (r, &v) in by_uid.iter().enumerate() {
        rank[v.index()] = r as u64;
    }
    // Canonical node order: by (distance from center, rank). Distances and
    // ranks are `< n ≤ u32::MAX`, so the pair packs into one word — the
    // sort runs on plain `u64`s, and rank `r` maps back to its node via
    // `by_uid[r]`. The packed keys double as the per-node key words below.
    let order_keys = &mut scratch.order_keys;
    order_keys.clear();
    order_keys.extend(
        g.nodes()
            .map(|v| (ball.dist(v) as u64) << 32 | rank[v.index()]),
    );
    order_keys.sort_unstable();
    let order = &mut scratch.order;
    order.clear();
    order.extend(
        order_keys
            .iter()
            .map(|&k| by_uid[(k & 0xffff_ffff) as usize]),
    );
    let canon_index = &mut scratch.canon_index;
    canon_index.clear();
    canon_index.resize(n, 0);
    for (ci, &v) in order.iter().enumerate() {
        canon_index[v.index()] = ci as u64;
    }
    // Word layout (shared with `key_of_members`, which must stay
    // word-identical): (dist, rank) pairs and edge endpoint pairs are
    // packed two-to-a-word — shorter keys mean cheaper equality checks and
    // a cheaper construction-time fold.
    let mut words = Vec::with_capacity(4 + 3 * n + g.m());
    words.push(n as u64);
    words.push(ball.radius() as u64);
    words.push(canon_index[ball.center().index()]);
    for (&k, &v) in order_keys.iter().zip(order.iter()) {
        words.push(k);
        words.push(ball.global_degree(v) as u64);
        input_tag(ball.input(v), &mut words);
    }
    let edges = &mut scratch.edges;
    edges.clear();
    edges.extend(g.edges().map(|(_, (u, v))| {
        let (a, b) = (canon_index[u.index()], canon_index[v.index()]);
        a.min(b) << 32 | a.max(b)
    }));
    edges.sort_unstable();
    words.push(edges.len() as u64);
    words.extend_from_slice(edges);
    CanonicalKey::new(words)
}

/// Computes the [`CanonicalKey`] of the ball a BFS membership *would*
/// materialize, without building it — word-identical to
/// [`canonicalize_tagged_with`] on `members.build(..)` (pinned by the
/// differential tests below). This is the memo executor's hit path: a
/// node whose class is already decoded pays only the gather and this
/// keying pass, never CSR/uid/input assembly.
///
/// `members` is the full BFS membership at `radius` (distances
/// nondecreasing) and `local_of` maps a *global* node to its local index
/// within it (the stamps a just-run gather/expand left in the BFS
/// scratch).
pub(crate) fn key_of_members<In>(
    net: &Network<In>,
    members: &[(NodeId, usize)],
    radius: usize,
    local_of: impl Fn(NodeId) -> Option<NodeId>,
    input_tag: impl Fn(&In, &mut Vec<u64>),
    scratch: &mut CanonScratch,
) -> CanonicalKey {
    let g = net.graph();
    let n = members.len();
    // Same packed-sort scheme as `canonicalize_tagged_with` (which see):
    // (uid, local) pairs sort contiguously, (dist, rank) pairs pack into
    // one word each and double as the per-node key words.
    let uid_tmp = &mut scratch.uid_tmp;
    uid_tmp.clear();
    uid_tmp.extend(
        members
            .iter()
            .enumerate()
            .map(|(li, &(v, _))| (net.uid(v), li as u32)),
    );
    uid_tmp.sort_unstable();
    let by_uid = &mut scratch.by_uid;
    by_uid.clear();
    by_uid.extend(
        uid_tmp
            .iter()
            .map(|&(_, li)| NodeId::from_index(li as usize)),
    );
    let rank = &mut scratch.rank;
    rank.clear();
    rank.resize(n, 0);
    for (r, &lv) in by_uid.iter().enumerate() {
        rank[lv.index()] = r as u64;
    }
    let order_keys = &mut scratch.order_keys;
    order_keys.clear();
    order_keys.extend(
        members
            .iter()
            .enumerate()
            .map(|(li, &(_, d))| (d as u64) << 32 | rank[li]),
    );
    order_keys.sort_unstable();
    let order = &mut scratch.order;
    order.clear();
    order.extend(
        order_keys
            .iter()
            .map(|&k| by_uid[(k & 0xffff_ffff) as usize]),
    );
    let canon_index = &mut scratch.canon_index;
    canon_index.clear();
    canon_index.resize(n, 0);
    for (ci, &lv) in order.iter().enumerate() {
        canon_index[lv.index()] = ci as u64;
    }
    let mut words = Vec::with_capacity(4 + 3 * n);
    words.push(n as u64);
    words.push(radius as u64);
    // The center is always local index 0 of its own membership.
    words.push(canon_index[0]);
    for (&k, &lv) in order_keys.iter().zip(order.iter()) {
        let (v, _) = members[lv.index()];
        words.push(k);
        words.push(g.degree(v) as u64);
        input_tag(net.input(v), &mut words);
    }
    // Known edges, enumerated exactly like `build_from_members`: from the
    // smaller-local endpoint, which sits at distance < radius (distances
    // are nondecreasing in local index, so the frontier is a suffix).
    let edges = &mut scratch.edges;
    edges.clear();
    for (li, &(v, d)) in members.iter().enumerate() {
        if d == radius {
            break;
        }
        let lv = NodeId::from_index(li);
        for &u in g.neighbors(v) {
            if let Some(lu) = local_of(u) {
                if lv < lu {
                    let (a, b) = (canon_index[lv.index()], canon_index[lu.index()]);
                    edges.push(a.min(b) << 32 | a.max(b));
                }
            }
        }
    }
    edges.sort_unstable();
    words.push(edges.len() as u64);
    words.extend_from_slice(edges);
    CanonicalKey::new(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use lad_graph::{generators, IdAssignment};

    fn key_at(net: &Network, v: NodeId, r: usize) -> CanonicalKey {
        let ball = Ball::collect(net, v, r);
        canonicalize(&ball, |_| 0)
    }

    #[test]
    fn rotation_invariance_on_cycle() {
        // Every node of a cycle with identity ids that is "locally
        // ascending" sees an order-equivalent view... IDs 1..n wrap, so the
        // wrap nodes differ; compare two deep-interior nodes instead.
        let net = Network::with_identity_ids(generators::cycle(20));
        assert_eq!(key_at(&net, NodeId(7), 2), key_at(&net, NodeId(11), 2));
    }

    #[test]
    fn order_equivalent_ids_same_key() {
        let g = generators::path(7);
        let a = Network::with_ids(
            g.clone(),
            IdAssignment::from_uids(vec![1, 2, 3, 4, 5, 6, 7]),
        );
        let b = Network::with_ids(
            g,
            IdAssignment::from_uids(vec![10, 20, 30, 44, 58, 600, 7000]),
        );
        for v in 0..7 {
            assert_eq!(
                key_at(&a, NodeId(v), 2),
                key_at(&b, NodeId(v), 2),
                "node {v}"
            );
        }
    }

    #[test]
    fn different_order_different_key() {
        let g = generators::path(3);
        let a = Network::with_ids(g.clone(), IdAssignment::from_uids(vec![1, 2, 3]));
        let b = Network::with_ids(g, IdAssignment::from_uids(vec![3, 2, 1]));
        assert_ne!(key_at(&a, NodeId(0), 1), key_at(&b, NodeId(0), 1));
    }

    #[test]
    fn inputs_affect_key() {
        let g = generators::path(3);
        let base = Network::with_identity_ids(g);
        let a = base.with_inputs(vec![0u8, 1, 0]);
        let b = base.with_inputs(vec![0u8, 0, 0]);
        let ka = canonicalize(&Ball::collect(&a, NodeId(0), 1), |&x| x as u64);
        let kb = canonicalize(&Ball::collect(&b, NodeId(0), 1), |&x| x as u64);
        assert_ne!(ka, kb);
    }

    #[test]
    fn explicit_scratch_matches_thread_local_path() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, true));
        let mut scratch = CanonScratch::new();
        for v in net.graph().nodes() {
            for r in 0..3 {
                let ball = Ball::collect(&net, v, r);
                assert_eq!(
                    canonicalize_with(&ball, |_| 0, &mut scratch),
                    canonicalize(&ball, |_| 0),
                    "node {v:?} radius {r}"
                );
            }
        }
    }

    #[test]
    fn key_of_members_matches_canonicalize() {
        // The memo executor's build-free keying path must be
        // word-identical to canonicalizing the materialized ball.
        use crate::ball::{BallMembers, Scratch};
        let tag = |&x: &u8, words: &mut Vec<u64>| words.push(x as u64);
        for g in [
            generators::cycle(12),
            generators::path(9),
            generators::grid2d(4, 5, true),
            generators::complete(5),
            generators::star(6),
        ] {
            let base = Network::with_identity_ids(g);
            let n = base.graph().n();
            let inputs: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
            let net = base.with_inputs(inputs);
            let mut bfs = Scratch::new(n);
            let mut cs = CanonScratch::new();
            for v in net.graph().nodes() {
                for r in 0..4 {
                    let members = BallMembers::gather(net.graph(), v, r, &mut bfs);
                    let key = key_of_members(
                        &net,
                        members.members(),
                        r,
                        |u| bfs.current_local(u),
                        tag,
                        &mut cs,
                    );
                    let ball = Ball::collect(&net, v, r);
                    let expect = canonicalize_tagged_with(&ball, tag, &mut cs);
                    assert_eq!(key, expect, "node {v:?} radius {r}");
                    members.recycle(&mut bfs);
                }
            }
        }
    }

    #[test]
    fn key_of_members_after_expand_matches_fresh_gather() {
        use crate::ball::{BallMembers, Scratch};
        let net = Network::with_identity_ids(generators::grid2d(6, 6, true));
        let n = net.graph().n();
        let mut bfs = Scratch::new(n);
        let mut cs = CanonScratch::new();
        for v in net.graph().nodes() {
            let mut members = BallMembers::gather(net.graph(), v, 1, &mut bfs);
            members.expand(net.graph(), 3, &mut bfs);
            let grown = key_of_members(
                &net,
                members.members(),
                3,
                |u| bfs.current_local(u),
                |&(), w| w.push(0),
                &mut cs,
            );
            members.recycle(&mut bfs);
            let fresh = BallMembers::gather(net.graph(), v, 3, &mut bfs);
            let expect = key_of_members(
                &net,
                fresh.members(),
                3,
                |u| bfs.current_local(u),
                |&(), w| w.push(0),
                &mut cs,
            );
            fresh.recycle(&mut bfs);
            assert_eq!(grown, expect, "node {v:?}");
        }
    }

    #[test]
    fn multi_word_tags_affect_key() {
        // A tag wider than one word still distinguishes views: two inputs
        // that agree on the first word but differ later.
        let g = generators::path(3);
        let base = Network::with_identity_ids(g);
        let a = base.with_inputs(vec![vec![7u64, 1], vec![7, 1], vec![7, 1]]);
        let b = base.with_inputs(vec![vec![7u64, 2], vec![7, 1], vec![7, 1]]);
        let tag = |xs: &Vec<u64>, words: &mut Vec<u64>| {
            words.push(xs.len() as u64);
            words.extend_from_slice(xs);
        };
        let mut cs = CanonScratch::new();
        let ka = canonicalize_tagged_with(&Ball::collect(&a, NodeId(0), 1), tag, &mut cs);
        let kb = canonicalize_tagged_with(&Ball::collect(&b, NodeId(0), 1), tag, &mut cs);
        assert_ne!(ka, kb);
    }

    #[test]
    fn frontier_degree_distinguishes() {
        // A path endpoint vs an interior node: different true degrees at the
        // frontier show up in the key.
        let net = Network::with_identity_ids(generators::path(10));
        assert_ne!(key_at(&net, NodeId(1), 1), key_at(&net, NodeId(5), 1));
    }
}
