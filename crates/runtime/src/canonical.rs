//! Order-invariant canonical forms of ball views (Contribution 2).
//!
//! The paper's ETH argument hinges on replacing an arbitrary local
//! algorithm by an *order-invariant* one — an algorithm whose output
//! depends only on the *relative order* of the identifiers in its view, not
//! their numerical values — because an order-invariant algorithm on
//! bounded-degree graphs is a finite lookup table and therefore cheap to
//! simulate.
//!
//! [`CanonicalKey`] is that lookup key: a serialization of a ball in which
//! identifiers are replaced by their ranks and node order is normalized to
//! `(distance, rank)` order. Two views receive the same key exactly when
//! they are isomorphic via a mapping that preserves distances, inputs, true
//! degrees, and the relative order of identifiers.

use crate::ball::Ball;
use lad_graph::NodeId;

/// A canonical, hashable fingerprint of a ball view.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalKey(Vec<u64>);

impl CanonicalKey {
    /// The raw serialized words (for size accounting).
    pub fn words(&self) -> &[u64] {
        &self.0
    }
}

/// Canonicalizes a ball. `input_tag` maps each node's input to a `u64`
/// (inputs must be finitely tagged for the key to be meaningful); pass
/// `|_| 0` for unit inputs.
pub fn canonicalize<In>(ball: &Ball<In>, input_tag: impl Fn(&In) -> u64) -> CanonicalKey {
    let g = ball.graph();
    let n = g.n();
    // Ranks of identifiers within the ball: the only identifier information
    // an order-invariant algorithm may use.
    let mut by_uid: Vec<NodeId> = g.nodes().collect();
    by_uid.sort_by_key(|&v| ball.uid(v));
    let mut rank = vec![0u64; n];
    for (r, &v) in by_uid.iter().enumerate() {
        rank[v.index()] = r as u64;
    }
    // Canonical node order: by (distance from center, rank).
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|&v| (ball.dist(v), rank[v.index()]));
    let mut canon_index = vec![0u64; n];
    for (ci, &v) in order.iter().enumerate() {
        canon_index[v.index()] = ci as u64;
    }
    let mut words = Vec::with_capacity(5 + 4 * n + 2 * g.m());
    words.push(n as u64);
    words.push(ball.radius() as u64);
    words.push(canon_index[ball.center().index()]);
    for &v in &order {
        words.push(ball.dist(v) as u64);
        words.push(rank[v.index()]);
        words.push(ball.global_degree(v) as u64);
        words.push(input_tag(ball.input(v)));
    }
    let mut edges: Vec<(u64, u64)> = g
        .edges()
        .map(|(_, (u, v))| {
            let (a, b) = (canon_index[u.index()], canon_index[v.index()]);
            (a.min(b), a.max(b))
        })
        .collect();
    edges.sort_unstable();
    words.push(edges.len() as u64);
    for (a, b) in edges {
        words.push(a);
        words.push(b);
    }
    CanonicalKey(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use lad_graph::{generators, IdAssignment};

    fn key_at(net: &Network, v: NodeId, r: usize) -> CanonicalKey {
        let ball = Ball::collect(net, v, r);
        canonicalize(&ball, |_| 0)
    }

    #[test]
    fn rotation_invariance_on_cycle() {
        // Every node of a cycle with identity ids that is "locally
        // ascending" sees an order-equivalent view... IDs 1..n wrap, so the
        // wrap nodes differ; compare two deep-interior nodes instead.
        let net = Network::with_identity_ids(generators::cycle(20));
        assert_eq!(key_at(&net, NodeId(7), 2), key_at(&net, NodeId(11), 2));
    }

    #[test]
    fn order_equivalent_ids_same_key() {
        let g = generators::path(7);
        let a = Network::with_ids(
            g.clone(),
            IdAssignment::from_uids(vec![1, 2, 3, 4, 5, 6, 7]),
        );
        let b = Network::with_ids(
            g,
            IdAssignment::from_uids(vec![10, 20, 30, 44, 58, 600, 7000]),
        );
        for v in 0..7 {
            assert_eq!(
                key_at(&a, NodeId(v), 2),
                key_at(&b, NodeId(v), 2),
                "node {v}"
            );
        }
    }

    #[test]
    fn different_order_different_key() {
        let g = generators::path(3);
        let a = Network::with_ids(g.clone(), IdAssignment::from_uids(vec![1, 2, 3]));
        let b = Network::with_ids(g, IdAssignment::from_uids(vec![3, 2, 1]));
        assert_ne!(key_at(&a, NodeId(0), 1), key_at(&b, NodeId(0), 1));
    }

    #[test]
    fn inputs_affect_key() {
        let g = generators::path(3);
        let base = Network::with_identity_ids(g);
        let a = base.with_inputs(vec![0u8, 1, 0]);
        let b = base.with_inputs(vec![0u8, 0, 0]);
        let ka = canonicalize(&Ball::collect(&a, NodeId(0), 1), |&x| x as u64);
        let kb = canonicalize(&Ball::collect(&b, NodeId(0), 1), |&x| x as u64);
        assert_ne!(ka, kb);
    }

    #[test]
    fn frontier_degree_distinguishes() {
        // A path endpoint vs an interior node: different true degrees at the
        // frontier show up in the key.
        let net = Network::with_identity_ids(generators::path(10));
        assert_ne!(key_at(&net, NodeId(1), 1), key_at(&net, NodeId(5), 1));
    }
}
