//! The persistent, versioned on-disk class store (`LADSTORE`).
//!
//! The canonical-class insight makes decode work reusable *across runs and
//! networks*: a class dictionary (canonical advice-labeled ball → verdict)
//! trained on one graph serves any graph with the same local structure.
//! This module persists sealed memo-class tables ([`ShardMemo`]) and
//! [`LookupTable`]s to a compact on-disk format and reloads them with full
//! validation, so a long-lived server can load a dictionary once and
//! answer queries against a warm store.
//!
//! # File layout
//!
//! Everything is little-endian `u64` words, so the file is 8-byte aligned
//! throughout and an mmap of it can be read as a `&[u64]` without copying.
//! The layout extends the `LADSPILL` scratch format (one header, one
//! payload) with multiple checksummed sections and a footer index:
//!
//! ```text
//! header   (6 words)  magic "LADSTORE", format version, schema digest,
//!                     decode radius, section count, header checksum
//! sections (×S)       kind, payload word count, payload…, section checksum
//! index    (4×S words) per section: kind, offset, word count, checksum
//! tail     (5 words)  index offset, section count, index checksum,
//!                     tail checksum, magic "LADSTEND"
//! ```
//!
//! The fixed-size tail means a reader can locate the index — and through
//! it any section — from the last 40 bytes alone, without scanning
//! payloads. Every byte of the file is covered by exactly one checksum
//! (header, per-section, index, or tail), so *any* single-bit corruption
//! anywhere is detected at [`ClassStore::open`] and surfaces as a typed
//! [`StoreError`], never a panic or a silently wrong dictionary
//! (`crates/runtime/tests/store.rs` flips every byte and checks exactly
//! that).
//!
//! # Schema identity
//!
//! A dictionary is only meaningful for the schema (and schema parameters)
//! it was trained under, keyed through the exact canonical-key layout it
//! was written with. [`SchemaId`] captures all three — schema name,
//! parameter digest, and [`KEY_LAYOUT_VERSION`] — and its digest is
//! embedded in the header. Opening a store against a different expected
//! identity fails with [`StoreError::SchemaMismatch`] naming both sides,
//! so a stale or foreign dictionary can never be decoded into wrong
//! answers.

use crate::canonical::CanonicalKey;
use crate::executor::{KeyHashMap, MemoEntryKind};
use crate::lookup::{LookupTable, NotOrderInvariant};
use crate::shard::{ShardMemo, Spillable};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Shared low-level helpers (also used by the spill scratch format)
// ---------------------------------------------------------------------------

/// Multiply–rotate fold over a byte slice, 8 bytes at a time (the tail is
/// zero-padded). Matches the spirit of the `CanonicalKey` fold: fast,
/// non-cryptographic, and word-oriented — corruption detection for our own
/// files, not an integrity MAC against an adversary.
pub(crate) fn fold_bytes(bytes: &[u8]) -> u64 {
    let mut fold = 0xA076_1D64_78BD_642Fu64 ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("exact chunk"));
        fold = (fold.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let w = u64::from_le_bytes(tail);
        fold = (fold.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fold
}

static ATOMIC_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: the content goes to a
/// process-unique temporary sibling first and is renamed into place, so a
/// crash mid-write leaves either the old file or no file — never a
/// truncated one masquerading as corruption.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let seq = ATOMIC_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|f| f.to_os_string())
        .unwrap_or_else(|| "store".into());
    tmp_name.push(format!(".tmp-{}-{seq}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let res = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

/// Why a class store could not be opened, parsed, or extended. Every
/// corruption and mismatch path lands here — the store never panics on
/// untrusted bytes.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file is too short (or not word-aligned) to be a store.
    Truncated {
        /// Observed file length in bytes.
        len: usize,
    },
    /// The leading or trailing magic is wrong: not a `LADSTORE` file.
    BadMagic,
    /// The file is a store, but of an incompatible format version.
    BadVersion {
        /// Version the file claims.
        found: u64,
        /// Version this build reads ([`STORE_VERSION`]).
        expected: u64,
    },
    /// A checksum failed; `what` names the region (header, section,
    /// index, tail).
    ChecksumMismatch {
        /// Which checksummed region disagreed.
        what: &'static str,
    },
    /// The store was trained under a different schema identity.
    SchemaMismatch {
        /// Identity recorded in the store.
        found: String,
        /// Identity the caller expected.
        expected: String,
    },
    /// Structurally invalid content behind valid checksums (a writer bug
    /// or a format extension this build does not understand).
    Malformed(String),
    /// Two sources resolved one canonical class differently while
    /// building or merging a store.
    Conflict(NotOrderInvariant),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Truncated { len } => {
                write!(f, "store file truncated or misaligned: {len} bytes")
            }
            StoreError::BadMagic => write!(f, "not a LADSTORE file"),
            StoreError::BadVersion { found, expected } => {
                write!(f, "store format version {found}, expected {expected}")
            }
            StoreError::ChecksumMismatch { what } => {
                write!(f, "store {what} checksum mismatch (corrupt file)")
            }
            StoreError::SchemaMismatch { found, expected } => {
                write!(
                    f,
                    "store trained for schema `{found}`, expected `{expected}`"
                )
            }
            StoreError::Malformed(m) => write!(f, "malformed store: {m}"),
            StoreError::Conflict(_) => {
                write!(f, "conflicting verdicts for one canonical class")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Conflict(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<NotOrderInvariant> for StoreError {
    fn from(e: NotOrderInvariant) -> Self {
        StoreError::Conflict(e)
    }
}

// ---------------------------------------------------------------------------
// Schema identity
// ---------------------------------------------------------------------------

/// Version of the [`CanonicalKey`] serialization layout. Bumped whenever
/// the canonical keying changes incompatibly; stores written under a
/// different layout are rejected at open (their keys would never match a
/// live probe, which is indistinguishable from an empty dictionary — a
/// silent performance cliff the version check turns into a typed error).
pub const KEY_LAYOUT_VERSION: u32 = 1;

/// Identity a class dictionary is valid for: schema name, a digest of the
/// schema's parameters, and the canonical-key layout version it was
/// written under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaId {
    name: String,
    params: u64,
    key_layout: u32,
}

impl SchemaId {
    /// Identity for `name` with a caller-computed parameter digest
    /// (fold the schema's tunables in; two configurations that decode
    /// differently must digest differently).
    pub fn new(name: impl Into<String>, params: u64) -> Self {
        SchemaId {
            name: name.into(),
            params,
            key_layout: KEY_LAYOUT_VERSION,
        }
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter digest.
    pub fn params(&self) -> u64 {
        self.params
    }

    /// One word folding name, parameters, and key layout — what the store
    /// header records and validates.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.name.len() + 12);
        bytes.extend_from_slice(self.name.as_bytes());
        bytes.extend_from_slice(&self.params.to_le_bytes());
        bytes.extend_from_slice(&self.key_layout.to_le_bytes());
        fold_bytes(&bytes)
    }
}

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (params {:#x}, key layout v{})",
            self.name, self.params, self.key_layout
        )
    }
}

// ---------------------------------------------------------------------------
// The in-memory store
// ---------------------------------------------------------------------------

/// What a store knows about one canonical class — the public mirror of the
/// memo executor's entry kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassVerdict<Out> {
    /// The class decodes to this output.
    Done(Out),
    /// The class needs a deeper view; re-query at this radius.
    Expand(usize),
    /// The decode step failed on this class.
    Failed,
}

/// A persistent dictionary from canonical classes to verdicts, keyed by
/// schema identity. Built from sealed [`ShardMemo`] tables or
/// [`LookupTable`]s, saved/loaded through the checksummed `LADSTORE`
/// format, and probed by [`CanonicalKey`].
#[derive(Debug, Clone)]
pub struct ClassStore<Out> {
    schema: SchemaId,
    radius: usize,
    entries: KeyHashMap<ClassVerdict<Out>>,
}

impl<Out: PartialEq> ClassStore<Out> {
    /// An empty store for `schema` whose ladders start at `radius`.
    pub fn new(schema: SchemaId, radius: usize) -> Self {
        ClassStore {
            schema,
            radius,
            entries: KeyHashMap::default(),
        }
    }

    /// The identity this dictionary is valid for.
    pub fn schema(&self) -> &SchemaId {
        &self.schema
    }

    /// The initial ladder radius queries should be keyed at.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Distinct canonical classes stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a class up.
    pub fn get(&self, key: &CanonicalKey) -> Option<&ClassVerdict<Out>> {
        self.entries.get(key)
    }

    /// Iterates all entries (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&CanonicalKey, &ClassVerdict<Out>)> {
        self.entries.iter()
    }

    /// Records a verdict. Re-recording an identical verdict is a no-op
    /// (`Ok(false)`); a *different* verdict for a present class is a
    /// [`StoreError::Conflict`] — the store never silently overwrites.
    pub fn insert(
        &mut self,
        key: CanonicalKey,
        verdict: ClassVerdict<Out>,
    ) -> Result<bool, StoreError> {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(verdict);
                Ok(true)
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                if *slot.get() == verdict {
                    Ok(false)
                } else {
                    Err(StoreError::Conflict(NotOrderInvariant {
                        key: slot.key().clone(),
                    }))
                }
            }
        }
    }

    /// Folds one shard's sealed memo table in, under the same conflict
    /// discipline as the cross-shard merge. Returns how many classes were
    /// new.
    pub fn absorb_shard_memo(&mut self, memo: ShardMemo<Out>) -> Result<usize, StoreError> {
        let mut fresh = 0usize;
        for (key, entry) in memo.into_memo().into_entries() {
            let verdict = match entry.kind {
                MemoEntryKind::Done(out) => ClassVerdict::Done(out),
                MemoEntryKind::Expand(r) => ClassVerdict::Expand(r),
                MemoEntryKind::Failed => ClassVerdict::Failed,
            };
            fresh += usize::from(self.insert(key, verdict)?);
        }
        Ok(fresh)
    }

    /// Entries in canonical (key-word) order — the deterministic order
    /// every save writes, so identical dictionaries produce identical
    /// bytes.
    fn entries_sorted(&self) -> Vec<(&CanonicalKey, &ClassVerdict<Out>)> {
        let mut v: Vec<_> = self.entries.iter().collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }
}

impl<Out: Clone + PartialEq> ClassStore<Out> {
    /// A store holding a [`LookupTable`]'s observations (every entry a
    /// [`ClassVerdict::Done`]).
    pub fn from_lookup_table(schema: SchemaId, table: &LookupTable<Out>) -> Self {
        let mut store = ClassStore::new(schema, table.radius());
        for (key, out) in table.entries() {
            store
                .entries
                .insert(key.clone(), ClassVerdict::Done(out.clone()));
        }
        store
    }

    /// The [`LookupTable`] view of this store: `Done` entries become
    /// observations, ladder (`Expand`) and `Failed` classes are dropped
    /// (a lookup table has no notion of either).
    pub fn to_lookup_table(&self) -> LookupTable<Out> {
        LookupTable::from_entries(
            self.radius,
            self.entries.iter().filter_map(|(k, v)| match v {
                ClassVerdict::Done(out) => Some((k.clone(), out.clone())),
                _ => None,
            }),
        )
        .expect("store entries are conflict-free by construction")
    }
}

// ---------------------------------------------------------------------------
// On-disk encoding
// ---------------------------------------------------------------------------

const STORE_MAGIC: u64 = u64::from_le_bytes(*b"LADSTORE");
const TAIL_MAGIC: u64 = u64::from_le_bytes(*b"LADSTEND");
/// Current store format version; bumped on any layout change so stale
/// dictionaries are rejected instead of misread.
pub const STORE_VERSION: u64 = 1;

const KIND_META: u64 = 1;
const KIND_CLASSES: u64 = 2;

const HEADER_WORDS: usize = 6;
const TAIL_WORDS: usize = 5;

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for &w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

fn fold_words(words: &[u64]) -> u64 {
    fold_bytes(&words_to_bytes(words))
}

/// Packs a UTF-8 string as `[byte length, ceil(len/8) padded words…]`.
fn push_string(words: &mut Vec<u64>, s: &str) {
    let bytes = s.as_bytes();
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
}

/// Reads a string packed by [`push_string`].
fn read_string(it: &mut std::slice::Iter<'_, u64>) -> Result<String, StoreError> {
    let malformed = |m: &str| StoreError::Malformed(m.into());
    let len = usize::try_from(*it.next().ok_or_else(|| malformed("string truncated"))?)
        .map_err(|_| malformed("string length overflows"))?;
    let word_count = len.div_ceil(8);
    if word_count > it.len() {
        return Err(malformed("string payload truncated"));
    }
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..word_count {
        bytes.extend_from_slice(&it.next().expect("checked above").to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).map_err(|_| malformed("string is not UTF-8"))
}

impl<Out: Spillable + Clone + PartialEq> ClassStore<Out> {
    /// Serializes the store to its on-disk byte form. Deterministic:
    /// entries are written in canonical key order, so two stores with the
    /// same content produce identical bytes (the golden-file CI check
    /// relies on this).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Meta section: schema name, params, key layout, entry count.
        let mut meta: Vec<u64> = Vec::new();
        push_string(&mut meta, &self.schema.name);
        meta.push(self.schema.params);
        meta.push(u64::from(self.schema.key_layout));
        meta.push(self.entries.len() as u64);

        // Classes section: entry count, then sorted entries.
        let sorted = self.entries_sorted();
        let mut classes: Vec<u64> = Vec::with_capacity(1 + 8 * sorted.len());
        classes.push(sorted.len() as u64);
        for (key, verdict) in sorted {
            classes.push(key.words().len() as u64);
            classes.extend_from_slice(key.words());
            match verdict {
                ClassVerdict::Done(out) => {
                    classes.push(0);
                    out.spill(&mut classes);
                }
                ClassVerdict::Expand(r) => {
                    classes.push(1);
                    classes.push(*r as u64);
                }
                ClassVerdict::Failed => classes.push(2),
            }
        }

        let sections: [(u64, Vec<u64>); 2] = [(KIND_META, meta), (KIND_CLASSES, classes)];

        // Header.
        let mut words: Vec<u64> = vec![
            STORE_MAGIC,
            STORE_VERSION,
            self.schema.digest(),
            self.radius as u64,
            sections.len() as u64,
        ];
        words.push(fold_words(&words[..HEADER_WORDS - 1]));
        // Sections, recording the index as we go.
        let mut index: Vec<u64> = Vec::with_capacity(4 * sections.len());
        for (kind, payload) in &sections {
            let offset = words.len() as u64;
            words.push(*kind);
            words.push(payload.len() as u64);
            words.extend_from_slice(payload);
            let start = offset as usize;
            let checksum = fold_words(&words[start..]);
            words.push(checksum);
            index.extend_from_slice(&[*kind, offset, payload.len() as u64, checksum]);
        }
        // Footer index + tail.
        let index_offset = words.len() as u64;
        let index_checksum = fold_words(&index);
        words.extend_from_slice(&index);
        let tail_head = [index_offset, sections.len() as u64, index_checksum];
        words.extend_from_slice(&tail_head);
        words.push(fold_words(&tail_head));
        words.push(TAIL_MAGIC);
        words_to_bytes(&words)
    }

    /// Saves the store atomically (temp file + rename), so a crash
    /// mid-save leaves the previous dictionary intact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        atomic_write(path.as_ref(), &self.to_bytes()).map_err(StoreError::Io)
    }

    /// Parses a store from bytes, validating magic, version, every
    /// checksum, all section bounds, and (when `expected` is given) the
    /// schema identity.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] on any corruption, truncation, version or
    /// schema mismatch — this path must never panic on untrusted bytes.
    pub fn from_bytes(bytes: &[u8], expected: Option<&SchemaId>) -> Result<Self, StoreError> {
        let malformed = |m: &str| StoreError::Malformed(m.into());
        if !bytes.len().is_multiple_of(8) || bytes.len() < 8 * (HEADER_WORDS + TAIL_WORDS) {
            return Err(StoreError::Truncated { len: bytes.len() });
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("exact chunk")))
            .collect();
        let nw = words.len();
        // Header.
        if words[0] != STORE_MAGIC {
            return Err(StoreError::BadMagic);
        }
        if words[1] != STORE_VERSION {
            return Err(StoreError::BadVersion {
                found: words[1],
                expected: STORE_VERSION,
            });
        }
        if fold_words(&words[..HEADER_WORDS - 1]) != words[HEADER_WORDS - 1] {
            return Err(StoreError::ChecksumMismatch { what: "header" });
        }
        let digest = words[2];
        let radius = usize::try_from(words[3]).map_err(|_| malformed("radius overflows"))?;
        let section_count =
            usize::try_from(words[4]).map_err(|_| malformed("section count overflows"))?;
        // Tail.
        if words[nw - 1] != TAIL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let tail_head = &words[nw - TAIL_WORDS..nw - 2];
        if fold_words(tail_head) != words[nw - 2] {
            return Err(StoreError::ChecksumMismatch { what: "tail" });
        }
        let index_offset =
            usize::try_from(tail_head[0]).map_err(|_| malformed("index offset overflows"))?;
        if tail_head[1] != section_count as u64 {
            return Err(malformed("tail and header disagree on section count"));
        }
        let index_words = section_count
            .checked_mul(4)
            .ok_or_else(|| malformed("index size overflows"))?;
        let index_end = index_offset
            .checked_add(index_words)
            .ok_or_else(|| malformed("index extent overflows"))?;
        if index_offset < HEADER_WORDS || index_end != nw - TAIL_WORDS {
            return Err(malformed("index does not sit between sections and tail"));
        }
        let index = &words[index_offset..index_end];
        if fold_words(index) != tail_head[2] {
            return Err(StoreError::ChecksumMismatch { what: "index" });
        }
        // Sections, as the index describes them.
        let mut meta: Option<&[u64]> = None;
        let mut classes: Option<&[u64]> = None;
        let mut cursor = HEADER_WORDS;
        for entry in index.chunks_exact(4) {
            let [kind, offset, count, checksum] = entry.try_into().expect("chunk of 4");
            let offset =
                usize::try_from(offset).map_err(|_| malformed("section offset overflows"))?;
            let count = usize::try_from(count).map_err(|_| malformed("section size overflows"))?;
            if offset != cursor {
                return Err(malformed("index offsets are not contiguous"));
            }
            let end = offset
                .checked_add(count)
                .and_then(|e| e.checked_add(3))
                .ok_or_else(|| malformed("section extent overflows"))?;
            if end > index_offset {
                return Err(malformed("section extends past the index"));
            }
            if words[offset] != kind || words[offset + 1] != count as u64 {
                return Err(malformed("section header disagrees with the index"));
            }
            if fold_words(&words[offset..end - 1]) != checksum || words[end - 1] != checksum {
                return Err(StoreError::ChecksumMismatch { what: "section" });
            }
            let payload = &words[offset + 2..end - 1];
            match kind {
                KIND_META => meta = Some(payload),
                KIND_CLASSES => classes = Some(payload),
                _ => return Err(malformed("unknown section kind")),
            }
            cursor = end;
        }
        if cursor != index_offset {
            return Err(malformed("sections do not reach the index"));
        }
        let meta = meta.ok_or_else(|| malformed("missing meta section"))?;
        let classes = classes.ok_or_else(|| malformed("missing classes section"))?;
        // Meta: schema identity + entry count.
        let mut it = meta.iter();
        let name = read_string(&mut it)?;
        let params = *it.next().ok_or_else(|| malformed("meta truncated"))?;
        let key_layout = u32::try_from(*it.next().ok_or_else(|| malformed("meta truncated"))?)
            .map_err(|_| malformed("key layout overflows"))?;
        let entry_count = usize::try_from(*it.next().ok_or_else(|| malformed("meta truncated"))?)
            .map_err(|_| malformed("entry count overflows"))?;
        if it.next().is_some() {
            return Err(malformed("trailing meta words"));
        }
        let schema = SchemaId {
            name,
            params,
            key_layout,
        };
        if schema.digest() != digest {
            return Err(malformed("header digest disagrees with meta identity"));
        }
        if let Some(want) = expected {
            if *want != schema {
                return Err(StoreError::SchemaMismatch {
                    found: schema.to_string(),
                    expected: want.to_string(),
                });
            }
        } else if schema.key_layout != KEY_LAYOUT_VERSION {
            return Err(StoreError::SchemaMismatch {
                found: schema.to_string(),
                expected: format!("any schema at key layout v{KEY_LAYOUT_VERSION}"),
            });
        }
        // Classes.
        let mut store = ClassStore::new(schema, radius);
        let mut it = classes.iter();
        let count = usize::try_from(*it.next().ok_or_else(|| malformed("classes truncated"))?)
            .map_err(|_| malformed("class count overflows"))?;
        if count != entry_count {
            return Err(malformed("meta and classes disagree on entry count"));
        }
        for _ in 0..count {
            let klen = usize::try_from(*it.next().ok_or_else(|| malformed("classes truncated"))?)
                .map_err(|_| malformed("key length overflows"))?;
            let rest = it.as_slice();
            if klen > rest.len() {
                return Err(malformed("key words truncated"));
            }
            let key = CanonicalKey::from_word_slice(&rest[..klen]);
            it = rest[klen..].iter();
            let verdict = match it.next().ok_or_else(|| malformed("classes truncated"))? {
                0 => ClassVerdict::Done(
                    Out::unspill(&mut it).ok_or_else(|| malformed("verdict payload truncated"))?,
                ),
                1 => ClassVerdict::Expand(
                    usize::try_from(*it.next().ok_or_else(|| malformed("classes truncated"))?)
                        .map_err(|_| malformed("expand radius overflows"))?,
                ),
                2 => ClassVerdict::Failed,
                _ => return Err(malformed("unknown verdict tag")),
            };
            store.insert(key, verdict)?;
        }
        if it.next().is_some() {
            return Err(malformed("trailing class words"));
        }
        Ok(store)
    }

    /// Opens and validates a store file; see [`ClassStore::from_bytes`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be read (an *absent* file
    /// surfaces as `Io` with [`io::ErrorKind::NotFound`] — distinguishable
    /// from a corrupt one, which yields a parse error), otherwise any of
    /// the [`ClassStore::from_bytes`] errors.
    pub fn open(path: impl AsRef<Path>, expected: Option<&SchemaId>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_bytes(&bytes, expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball::Ball;
    use crate::canonical::canonicalize;
    use crate::network::Network;
    use lad_graph::generators;
    use lad_graph::NodeId;

    /// Distinct canonical keys from one ball, distinguished by input tag
    /// (different radius-1 cycle views are isomorphic, so varying the
    /// center would collide).
    fn key_of(tag: u64) -> CanonicalKey {
        let net = Network::with_identity_ids(generators::cycle(8));
        let ball = Ball::collect(&net, NodeId::from_index(3), 1);
        canonicalize(&ball, move |_| tag)
    }

    fn sample_store() -> ClassStore<u64> {
        let mut store = ClassStore::new(SchemaId::new("unit-test", 7), 1);
        store
            .insert(key_of(0), ClassVerdict::Done(42))
            .expect("fresh");
        store
            .insert(key_of(1), ClassVerdict::Expand(3))
            .expect("fresh");
        store
            .insert(key_of(2), ClassVerdict::Failed)
            .expect("fresh");
        store
    }

    #[test]
    fn bytes_round_trip_preserves_everything() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let back: ClassStore<u64> =
            ClassStore::from_bytes(&bytes, Some(store.schema())).expect("parses");
        assert_eq!(back.radius(), store.radius());
        assert_eq!(back.len(), store.len());
        for (key, verdict) in store.iter() {
            assert_eq!(back.get(key), Some(verdict));
        }
        // Deterministic bytes: identical content, identical serialization.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn save_is_atomic_and_open_validates() {
        let dir = std::env::temp_dir().join(format!("lad-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("dict.lads");
        let store = sample_store();
        store.save(&path).expect("save");
        let back: ClassStore<u64> = ClassStore::open(&path, Some(store.schema())).expect("open");
        assert_eq!(back.len(), store.len());
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_mismatch_is_typed() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let other = SchemaId::new("other-schema", 7);
        match ClassStore::<u64>::from_bytes(&bytes, Some(&other)) {
            Err(StoreError::SchemaMismatch { found, expected }) => {
                assert!(found.contains("unit-test"));
                assert!(expected.contains("other-schema"));
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_insert_is_refused() {
        let mut store = sample_store();
        let key = key_of(0);
        assert!(matches!(
            store.insert(key.clone(), ClassVerdict::Done(41)),
            Err(StoreError::Conflict(_))
        ));
        // Identical re-insert is a no-op.
        assert!(!store.insert(key, ClassVerdict::Done(42)).expect("dup"));
    }

    #[test]
    fn lookup_table_round_trips_through_store() {
        let training: Vec<Network> = (0..6)
            .map(|s| {
                Network::with_ids(
                    generators::cycle(12),
                    lad_graph::IdAssignment::random_permutation(12, 100 + s),
                )
            })
            .collect();
        let table = LookupTable::train(
            1,
            &training,
            |_| 0,
            |ball: &Ball| {
                let me = ball.uid(ball.center());
                ball.graph().nodes().all(|v| ball.uid(v) >= me)
            },
        )
        .expect("order-invariant");
        let store = ClassStore::from_lookup_table(SchemaId::new("local-min", 0), &table);
        assert_eq!(store.len(), table.len());
        let bytes = store.to_bytes();
        let back: ClassStore<bool> = ClassStore::from_bytes(&bytes, None).expect("parses");
        let table2 = back.to_lookup_table();
        assert_eq!(table2.len(), table.len());
        // Every training view answers identically through the round trip.
        let probe = Network::with_ids(
            generators::cycle(12),
            lad_graph::IdAssignment::random_permutation(12, 999),
        );
        for v in probe.graph().nodes() {
            let ball = Ball::collect(&probe, v, 1);
            assert_eq!(table2.eval(&ball, |_| 0), table.eval(&ball, |_| 0));
        }
    }
}
