//! Shard-at-a-time execution on a bounded resident set.
//!
//! Every other executor in this crate assumes the whole instance fits in
//! one address space. This module removes that assumption: the graph is
//! cut into `K` shards by a [`Partition`], each shard is materialized as a
//! [`ShardView`] (its interior nodes plus a radius-`T` halo), and the
//! driver decodes shards one wave at a time with at most `R` views
//! resident, spilling evicted state (views and memo-class tables) to a
//! versioned on-disk scratch format ([`SpillStore`]).
//!
//! # Why shard-local replay is sound
//!
//! A LOCAL decoder's output at `v` is a pure function of `v`'s
//! radius-`r` ball. The halo argument (proved in [`lad_graph::shard`])
//! says: inside a view built with halo depth `T`, every ball of radius
//! `r ≤ T − 1` around an *interior* node is bit-identical — graph,
//! distances, degrees, uids, inputs — to the same ball in the full graph.
//! So replaying the decode ladder inside the view produces exactly the
//! global outputs, provided the ladder never climbs past `T − 1`.
//!
//! That proviso is *enforced*, not assumed: the per-shard runners wrap the
//! step and abort the whole run with a typed [`HaloExceeded`] the moment a
//! [`MemoStep::Expand`] requests a radius beyond the cap. The violation is
//! deliberately **not** memoized as an ordinary failed class — replaying a
//! "failed" class on the full graph would succeed and masquerade as a
//! [`NotOrderInvariant`] conflict — and a poisoned shard's memo table is
//! never merged. A shard whose members have no edge out of the view (for
//! `K = 1`, or a union of whole components) is complete, and its ladder is
//! uncapped.
//!
//! # Memo merge across shards
//!
//! Each shard decodes with a fresh class memo (fingerprints are engine-
//! local, so tables cannot be shared while hot). Afterward the tables are
//! replay-merged in schedule order under the same discipline as the
//! parallel executor's private-shard merge: two shards resolving one
//! canonical class differently is exactly a [`NotOrderInvariant`] and
//! aborts the run instead of returning schedule-dependent outputs.
//! First-error behavior also matches the single-address-space executors:
//! failed nodes are collected globally and the smallest-index one replays
//! its ladder on the **full** network (`memo_first_error`'s discipline),
//! so error payloads are bit-identical to `run_local_memo_fallible`.
//!
//! # Spill format
//!
//! One file per spilled section, little-endian `u64` words behind an
//! 8-byte magic (`LADSPILL`), a format version, a section kind tag, and
//! the owning shard id. Loads validate all four and fail loudly on
//! mismatch, so a stale or foreign scratch directory can never be decoded
//! into wrong answers. This is the first slice of the roadmap's persistent
//! class store: memo tables round-trip through the same encoding
//! ([`ShardMemo::into_words`] / [`MemoMerge::absorb_words`]).
//!
//! # Messaging
//!
//! [`ShardedTransport`] adapts any [`Transport`] to the sharded regime:
//! intra-shard messages are routed directly, cross-shard messages are
//! queued in per-`(src_shard, dst_shard)` mailboxes and flushed when the
//! schedule switches shards. Delivery is bit-identical to the inner
//! transport — each inbox slot has exactly one sender, so re-routing is a
//! permutation of the delivery order, which the round-synchronous model
//! cannot observe. Fault plans therefore compose unchanged.

use crate::ball::{Ball, BallMembers, Scratch};
use crate::canonical::{CanonScratch, CanonicalKey};
use crate::executor::{
    bfs_visit_order, flush_memo_stats, memo_first_error, memo_kind_eq, memo_run_tile, par_map,
    ClassMemo, KeyHashMap, MemoEntry, MemoEntryKind, MemoStats, MemoStep, RoundStats,
};
use crate::lookup::NotOrderInvariant;
use crate::network::Network;
use crate::plan::{plan_decode, ExecPath};
use crate::shell::ShellEngine;
use crate::transport::{FaultStats, Transport};
use lad_graph::frontier::TILE_WIDTH;
use lad_graph::{BitFrontier, Graph, IdAssignment, NodeId, Partition, ShardView};
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Halo violations
// ---------------------------------------------------------------------------

/// A decode ladder asked for a radius its shard's halo cannot serve.
///
/// Shard views are built with halo depth `T`; balls of radius up to
/// `T − 1` around interior nodes are exact, anything deeper would read
/// truncated neighborhoods. Rather than silently decoding from a wrong
/// ball, the sharded runners abort with this error — rebuild the views
/// with a deeper halo (or fewer shards) and rerun.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloExceeded {
    /// Shard whose ladder outgrew its view.
    pub shard: usize,
    /// Halo depth the views were built with (the ladder may use up to
    /// `halo_radius − 1`).
    pub halo_radius: usize,
    /// The radius the step requested.
    pub requested: usize,
}

impl fmt::Display for HaloExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}: decode ladder requested radius {} but the halo depth {} only serves \
             radii up to {}; rebuild with a deeper halo",
            self.shard,
            self.requested,
            self.halo_radius,
            self.halo_radius.saturating_sub(1),
        )
    }
}

impl std::error::Error for HaloExceeded {}

// ---------------------------------------------------------------------------
// Spill accounting
// ---------------------------------------------------------------------------

static SPILL_WRITTEN: AtomicU64 = AtomicU64::new(0);
static SPILL_READ: AtomicU64 = AtomicU64::new(0);
static SPILL_FILES: AtomicU64 = AtomicU64::new(0);
static SPILL_BUFFER_PEAK: AtomicU64 = AtomicU64::new(0);

/// Process-wide spill I/O counters (the allocation high-water hook for
/// spill buffers: every serialized section bumps these before it touches
/// disk, so benches can report spill traffic next to `peak_rss_mb`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Total bytes serialized and written.
    pub bytes_written: u64,
    /// Total bytes read back and deserialized.
    pub bytes_read: u64,
    /// Spill files written.
    pub files: u64,
    /// Largest single in-memory spill buffer, in bytes — the transient
    /// allocation a spill adds on top of the resident set.
    pub buffer_peak: u64,
}

/// Snapshot of the process-wide [`SpillStats`].
pub fn spill_stats() -> SpillStats {
    SpillStats {
        bytes_written: SPILL_WRITTEN.load(Ordering::Relaxed),
        bytes_read: SPILL_READ.load(Ordering::Relaxed),
        files: SPILL_FILES.load(Ordering::Relaxed),
        buffer_peak: SPILL_BUFFER_PEAK.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide [`SpillStats`] (benches call this per cell).
pub fn spill_stats_reset() {
    SPILL_WRITTEN.store(0, Ordering::Relaxed);
    SPILL_READ.store(0, Ordering::Relaxed);
    SPILL_FILES.store(0, Ordering::Relaxed);
    SPILL_BUFFER_PEAK.store(0, Ordering::Relaxed);
}

fn note_buffer(bytes: u64) {
    SPILL_BUFFER_PEAK.fetch_max(bytes, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Word-serializable values
// ---------------------------------------------------------------------------

/// A value the spill store can round-trip as a self-delimiting `u64` word
/// sequence. Sharded memoized execution requires `Out: Spillable` so
/// evicted memo tables (and, in the streaming pipeline, per-shard output
/// sections) can leave the resident set.
pub trait Spillable: Sized {
    /// Appends a self-delimiting encoding of `self`.
    fn spill(&self, words: &mut Vec<u64>);
    /// Reads one value back; `None` on truncated or malformed input.
    fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self>;
}

macro_rules! spillable_uint {
    ($($t:ty),*) => {$(
        impl Spillable for $t {
            fn spill(&self, words: &mut Vec<u64>) {
                words.push(*self as u64);
            }
            fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self> {
                <$t>::try_from(*words.next()?).ok()
            }
        }
    )*};
}

spillable_uint!(u8, u16, u32, u64, usize);

impl Spillable for bool {
    fn spill(&self, words: &mut Vec<u64>) {
        words.push(u64::from(*self));
    }
    fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self> {
        match *words.next()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: Spillable, B: Spillable> Spillable for (A, B) {
    fn spill(&self, words: &mut Vec<u64>) {
        self.0.spill(words);
        self.1.spill(words);
    }
    fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self> {
        Some((A::unspill(words)?, B::unspill(words)?))
    }
}

impl<T: Spillable> Spillable for Vec<T> {
    fn spill(&self, words: &mut Vec<u64>) {
        words.push(self.len() as u64);
        for x in self {
            x.spill(words);
        }
    }
    fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self> {
        let len = usize::try_from(*words.next()?).ok()?;
        // Guard against a corrupt length word asking for more items than
        // words remain (each item consumes ≥ 1 word).
        if len > words.len() {
            return None;
        }
        (0..len).map(|_| T::unspill(words)).collect()
    }
}

impl<T: Spillable> Spillable for Option<T> {
    fn spill(&self, words: &mut Vec<u64>) {
        match self {
            None => words.push(0),
            Some(x) => {
                words.push(1);
                x.spill(words);
            }
        }
    }
    fn unspill(words: &mut std::slice::Iter<'_, u64>) -> Option<Self> {
        match *words.next()? {
            0 => Some(None),
            1 => Some(Some(T::unspill(words)?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The versioned on-disk scratch format
// ---------------------------------------------------------------------------

const SPILL_MAGIC: [u8; 8] = *b"LADSPILL";
/// Current spill format version; bumped on any layout change so stale
/// scratch directories are rejected instead of misread. Version 2 added
/// the trailing whole-file checksum word and atomic (temp + rename)
/// writes.
pub const SPILL_VERSION: u32 = 2;

/// Which section of shard state a spill file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillKind {
    /// A serialized [`ShardView`] (members, interior flags, local CSR).
    View,
    /// A shard's memo-class table (canonical keys and verdicts).
    Memo,
    /// A shard's decoded output section.
    Outputs,
}

impl SpillKind {
    fn tag(self) -> u32 {
        match self {
            SpillKind::View => 1,
            SpillKind::Memo => 2,
            SpillKind::Outputs => 3,
        }
    }

    fn name(self) -> &'static str {
        match self {
            SpillKind::View => "view",
            SpillKind::Memo => "memo",
            SpillKind::Outputs => "outs",
        }
    }
}

/// A directory of spill files, one per `(kind, shard)` section.
///
/// Files carry `LADSPILL`, [`SPILL_VERSION`], the kind tag, the shard id,
/// a word count, the payload, and a trailing whole-file checksum;
/// [`SpillStore::load`] validates all of them with checked arithmetic and
/// returns a typed [`io::ErrorKind::InvalidData`] error on any corruption
/// — an untrusted header word can never index or allocate out of bounds.
/// Writes go to a temp file and rename into place atomically, so a crash
/// mid-save leaves "absent" (retryable), never a truncated file
/// masquerading as corruption. Stores opened with [`SpillStore::temp`]
/// delete their directory on drop; caller-provided directories
/// ([`SpillStore::open`]) are left in place.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    own_dir: bool,
}

impl SpillStore {
    /// Opens (creating if needed) a caller-owned scratch directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SpillStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SpillStore {
            dir,
            own_dir: false,
        })
    }

    /// Creates a fresh process-unique scratch directory under the system
    /// temp dir, removed when the store is dropped.
    pub fn temp() -> io::Result<SpillStore> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lad-spill-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillStore { dir, own_dir: true })
    }

    /// The scratch directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, kind: SpillKind, shard: usize) -> PathBuf {
        self.dir.join(format!("{}-{shard}.lsp", kind.name()))
    }

    /// Serializes and writes one section atomically (temp file + rename).
    pub fn save(&self, kind: SpillKind, shard: usize, words: &[u64]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(40 + 8 * words.len());
        buf.extend_from_slice(&SPILL_MAGIC);
        buf.extend_from_slice(&SPILL_VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.tag().to_le_bytes());
        buf.extend_from_slice(&(shard as u64).to_le_bytes());
        buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for &w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = crate::store::fold_bytes(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        note_buffer(buf.len() as u64);
        SPILL_WRITTEN.fetch_add(buf.len() as u64, Ordering::Relaxed);
        SPILL_FILES.fetch_add(1, Ordering::Relaxed);
        crate::store::atomic_write(&self.path(kind, shard), &buf)
    }

    /// Reads one section back, validating magic, version, kind, shard,
    /// payload bounds (checked arithmetic — a corrupt count word cannot
    /// overflow), and the trailing whole-file checksum.
    pub fn load(&self, kind: SpillKind, shard: usize) -> io::Result<Vec<u64>> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let buf = std::fs::read(self.path(kind, shard))?;
        note_buffer(buf.len() as u64);
        if buf.len() < 40 {
            return Err(bad(format!("spill file truncated: {} bytes", buf.len())));
        }
        if buf[..8] != SPILL_MAGIC {
            return Err(bad("not a LADSPILL file".into()));
        }
        let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != SPILL_VERSION {
            return Err(bad(format!(
                "spill format version {version}, expected {SPILL_VERSION}"
            )));
        }
        let tag = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        if tag != kind.tag() {
            return Err(bad(format!(
                "spill section kind {tag}, expected {}",
                kind.tag()
            )));
        }
        if word(16) != shard as u64 {
            return Err(bad(format!(
                "spill file for shard {}, expected {shard}",
                word(16)
            )));
        }
        // The count is an untrusted header word: size it with checked
        // arithmetic so a corrupt value yields InvalidData, not overflow.
        let count = usize::try_from(word(24))
            .ok()
            .filter(|&c| c.checked_mul(8).and_then(|b| b.checked_add(40)) == Some(buf.len()))
            .ok_or_else(|| {
                bad(format!(
                    "spill payload {} bytes, header promises {} words",
                    buf.len() - 40,
                    word(24)
                ))
            })?;
        let checksum = word(buf.len() - 8);
        if crate::store::fold_bytes(&buf[..buf.len() - 8]) != checksum {
            return Err(bad("spill checksum mismatch (corrupt file)".into()));
        }
        SPILL_READ.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok((0..count).map(|i| word(32 + 8 * i)).collect())
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if self.own_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Serializes a [`ShardView`] to spill words (the shard id lives in the
/// file header, not the payload).
pub fn view_spill(view: &ShardView) -> Vec<u64> {
    let nm = view.members.len();
    let mut words = Vec::with_capacity(3 + nm + nm.div_ceil(64) + view.graph.m());
    words.push(view.halo_radius as u64);
    words.push(nm as u64);
    for &v in &view.members {
        words.push(v.index() as u64);
    }
    let mut packed = vec![0u64; nm.div_ceil(64)];
    for (i, &int) in view.interior.iter().enumerate() {
        if int {
            packed[i / 64] |= 1u64 << (i % 64);
        }
    }
    words.extend_from_slice(&packed);
    words.push(view.graph.m() as u64);
    for li in 0..nm {
        let v = NodeId::from_index(li);
        for &u in view.graph.neighbors(v) {
            if u > v {
                words.push(((li as u64) << 32) | u.index() as u64);
            }
        }
    }
    words
}

/// Reconstructs a [`ShardView`] from spill words.
pub fn view_unspill(shard: usize, words: &[u64]) -> io::Result<ShardView> {
    fn bad(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, format!("spilled view: {msg}"))
    }
    fn next(it: &mut std::iter::Copied<std::slice::Iter<'_, u64>>) -> io::Result<u64> {
        it.next().ok_or_else(|| bad("truncated"))
    }
    let mut it = words.iter().copied();
    let halo_radius = next(&mut it)? as usize;
    let nm = next(&mut it)? as usize;
    if nm > words.len() {
        return Err(bad("member count exceeds payload"));
    }
    let mut members = Vec::with_capacity(nm);
    for _ in 0..nm {
        members.push(NodeId::from_index(next(&mut it)? as usize));
    }
    let mut interior_words = Vec::with_capacity(nm.div_ceil(64));
    for _ in 0..nm.div_ceil(64) {
        interior_words.push(next(&mut it)?);
    }
    let interior: Vec<bool> = (0..nm)
        .map(|i| interior_words[i / 64] >> (i % 64) & 1 == 1)
        .collect();
    let m = next(&mut it)? as usize;
    if m > words.len() {
        return Err(bad("edge count exceeds payload"));
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let w = next(&mut it)?;
        let (a, b) = ((w >> 32) as usize, (w & 0xffff_ffff) as usize);
        if a >= nm || b >= nm {
            return Err(bad("edge endpoint out of range"));
        }
        edges.push((NodeId::from_index(a), NodeId::from_index(b)));
    }
    if it.next().is_some() {
        return Err(bad("trailing words"));
    }
    let graph = lad_graph::builder::from_sorted_edges(nm, edges);
    Ok(ShardView {
        shard,
        halo_radius,
        members,
        interior,
        graph,
    })
}

// ---------------------------------------------------------------------------
// Per-shard memo tables and the cross-shard merge
// ---------------------------------------------------------------------------

/// One shard's sealed memo-class table, ready to merge or spill.
pub struct ShardMemo<Out> {
    memo: ClassMemo<Out>,
}

impl<Out> ShardMemo<Out> {
    /// Distinct canonical classes this shard evaluated.
    pub fn class_count(&self) -> usize {
        self.memo.class_count()
    }

    /// Unwraps the sealed class table (for the persistent class store).
    pub(crate) fn into_memo(self) -> ClassMemo<Out> {
        self.memo
    }
}

impl<Out: Spillable> ShardMemo<Out> {
    /// Serializes the table as spill words: canonical-key word sequences
    /// plus each class's verdict. Fingerprints are engine-local and are
    /// *not* stored — a reloaded table can be merged and audited, but not
    /// re-used as a hot probe table (the roadmap's persistent class store
    /// will add a re-keying pass for that).
    pub fn into_words(self) -> Vec<u64> {
        let entries: Vec<(CanonicalKey, MemoEntry<Out>)> = self.memo.into_entries().collect();
        let mut words = Vec::with_capacity(8 * entries.len() + 1);
        words.push(entries.len() as u64);
        for (key, entry) in entries {
            words.push(key.words().len() as u64);
            words.extend_from_slice(key.words());
            match entry.kind {
                MemoEntryKind::Done(out) => {
                    words.push(0);
                    out.spill(&mut words);
                }
                MemoEntryKind::Expand(r) => {
                    words.push(1);
                    words.push(r as u64);
                }
                MemoEntryKind::Failed => words.push(2),
            }
        }
        words
    }
}

/// Accumulates per-shard memo tables, detecting cross-shard conflicts.
///
/// Same discipline as the parallel executor's private-shard merge: the
/// first key two shards resolved differently aborts with
/// [`NotOrderInvariant`] instead of letting outputs depend on the shard
/// schedule. Which conflict is *reported* follows absorb order, so the
/// driver absorbs in schedule order deterministically.
pub struct MemoMerge<Out> {
    map: KeyHashMap<MemoEntryKind<Out>>,
}

impl<Out: PartialEq> MemoMerge<Out> {
    /// An empty merge.
    pub fn new() -> Self {
        MemoMerge {
            map: KeyHashMap::default(),
        }
    }

    /// Distinct canonical classes absorbed so far.
    pub fn class_count(&self) -> usize {
        self.map.len()
    }

    fn insert(
        &mut self,
        key: CanonicalKey,
        kind: MemoEntryKind<Out>,
    ) -> Result<(), NotOrderInvariant> {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(kind);
                Ok(())
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                if memo_kind_eq(slot.get(), &kind) {
                    Ok(())
                } else {
                    Err(NotOrderInvariant {
                        key: slot.key().clone(),
                    })
                }
            }
        }
    }

    /// Folds one shard's table in.
    pub fn absorb(&mut self, shard_memo: ShardMemo<Out>) -> Result<(), NotOrderInvariant> {
        for (key, entry) in shard_memo.memo.into_entries() {
            self.insert(key, entry.kind)?;
        }
        Ok(())
    }
}

impl<Out: Spillable + PartialEq> MemoMerge<Out> {
    /// Folds in a table previously serialized by [`ShardMemo::into_words`]
    /// (typically read back through a [`SpillStore`]).
    ///
    /// # Panics
    ///
    /// Panics on malformed words — the store already validated the file
    /// header, so a bad payload means scratch corruption, not user error.
    pub fn absorb_words(&mut self, words: &[u64]) -> Result<(), NotOrderInvariant> {
        fn corrupt() -> ! {
            panic!("corrupt spilled memo table")
        }
        let mut it = words.iter();
        let n = *it.next().unwrap_or_else(|| corrupt()) as usize;
        for _ in 0..n {
            let klen = *it.next().unwrap_or_else(|| corrupt()) as usize;
            let rest = it.as_slice();
            if klen > rest.len() {
                corrupt();
            }
            let key = CanonicalKey::from_word_slice(&rest[..klen]);
            it = rest[klen..].iter();
            let kind = match it.next().unwrap_or_else(|| corrupt()) {
                0 => MemoEntryKind::Done(Out::unspill(&mut it).unwrap_or_else(|| corrupt())),
                1 => MemoEntryKind::Expand(*it.next().unwrap_or_else(|| corrupt()) as usize),
                2 => MemoEntryKind::Failed,
                _ => corrupt(),
            };
            self.insert(key, kind)?;
        }
        if it.next().is_some() {
            corrupt();
        }
        Ok(())
    }
}

impl<Out: PartialEq> Default for MemoMerge<Out> {
    fn default() -> Self {
        MemoMerge::new()
    }
}

// ---------------------------------------------------------------------------
// Per-shard runners
// ---------------------------------------------------------------------------

/// What one shard's pass produced, in local ids.
pub struct ShardRun<Out> {
    /// Per local node: the decoded output (interior nodes only; halo and
    /// failed slots stay `None`).
    pub outs: Vec<Option<Out>>,
    /// Per local node: the final ladder radius (interior nodes only).
    pub per_node: Vec<usize>,
    /// Local indices of interior nodes whose step failed; the driver
    /// resolves the *global* first error after all shards ran.
    pub failed: Vec<usize>,
    /// Memo counters for this shard (zero on the plain path).
    pub stats: MemoStats,
}

/// Runs the memoized ladder over one shard's local network.
///
/// `interior[l]` marks which local nodes this shard owns; only those are
/// decoded. `ladder_cap` is `Some(halo_radius − 1)` for a truncated view
/// and `None` for a complete one (no out-edges); a step expanding past the
/// cap aborts with [`HaloExceeded`] — crucially *without* treating the
/// poisoned class as an ordinary failure, which would replay as a spurious
/// [`NotOrderInvariant`] on the full graph.
///
/// On success returns the shard's outputs plus its sealed memo table; the
/// caller must fold the table into a [`MemoMerge`] so cross-shard
/// disagreements are detected.
#[allow(clippy::too_many_arguments)]
pub fn run_shard_memo_fallible<In: Clone, Out: Clone + PartialEq, E>(
    local_net: &Network<In>,
    interior: &[bool],
    shard: usize,
    ladder_cap: Option<usize>,
    initial_radius: usize,
    input_tag: &impl Fn(&In, &mut Vec<u64>),
    step: &impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
) -> Result<(ShardRun<Out>, ShardMemo<Out>), E>
where
    E: From<NotOrderInvariant> + From<HaloExceeded>,
{
    let g = local_net.graph();
    let n = g.n();
    assert_eq!(interior.len(), n, "one interior flag per local node");
    let halo_err = |requested: usize| HaloExceeded {
        shard,
        halo_radius: ladder_cap.map_or(0, |c| c + 1),
        requested,
    };
    if ladder_cap.is_some_and(|cap| initial_radius > cap) {
        return Err(halo_err(initial_radius).into());
    }
    // The cap is checked inside the step wrapper so memo hits, misses, and
    // verification all see it; the violation is recorded on the side and
    // the run aborts after the tile, before this shard's memo can merge.
    let exceeded: Cell<Option<usize>> = Cell::new(None);
    let capped = |ball: &Ball<In>| -> Result<MemoStep<Out>, E> {
        let res = step(ball);
        if let (Some(cap), Ok(MemoStep::Expand(r2))) = (ladder_cap, &res) {
            if *r2 > cap {
                exceeded.set(Some(*r2));
                return Err(halo_err(*r2).into());
            }
        }
        res
    };
    let mut stats = MemoStats::default();
    let mut memo: ClassMemo<Out> = ClassMemo::default();
    let mut engine = ShellEngine::new(local_net, input_tag);
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let mut failed: Vec<usize> = Vec::new();
    let order: Vec<NodeId> = bfs_visit_order(g)
        .into_iter()
        .filter(|v| interior[v.index()])
        .collect();
    for tile in order.chunks(TILE_WIDTH) {
        let tiled = memo_run_tile(
            local_net,
            tile,
            0,
            initial_radius,
            input_tag,
            &capped,
            &mut memo,
            &mut engine,
            &mut stats,
            &mut failed,
            &mut outs,
            &mut per_node,
            None,
        );
        if let Some(requested) = exceeded.get() {
            return Err(halo_err(requested).into());
        }
        if let Err(conflict) = tiled {
            return Err(conflict.into());
        }
    }
    Ok((
        ShardRun {
            outs,
            per_node,
            failed,
            stats,
        },
        ShardMemo { memo },
    ))
}

/// Runs the plain (unmemoized) ladder over one shard's local network —
/// the path the planner picks when an instance has too few repeated
/// classes to pay for keying. Same cap discipline as
/// [`run_shard_memo_fallible`], same output/radius semantics, no memo
/// table.
pub fn run_shard_plain_fallible<In: Clone, Out, E: From<HaloExceeded>>(
    local_net: &Network<In>,
    interior: &[bool],
    shard: usize,
    ladder_cap: Option<usize>,
    initial_radius: usize,
    step: &impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
) -> Result<ShardRun<Out>, E> {
    let g = local_net.graph();
    let n = g.n();
    assert_eq!(interior.len(), n, "one interior flag per local node");
    let halo_err = |requested: usize| HaloExceeded {
        shard,
        halo_radius: ladder_cap.map_or(0, |c| c + 1),
        requested,
    };
    if ladder_cap.is_some_and(|cap| initial_radius > cap) {
        return Err(halo_err(initial_radius).into());
    }
    let mut scratch = Scratch::new(n);
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let mut failed: Vec<usize> = Vec::new();
    for li in 0..n {
        if !interior[li] {
            continue;
        }
        let v = NodeId::from_index(li);
        let mut members = BallMembers::gather(g, v, initial_radius, &mut scratch);
        loop {
            let ball = members.build_current(local_net, &mut scratch);
            match step(&ball) {
                Ok(MemoStep::Done(out)) => {
                    outs[li] = Some(out);
                    per_node[li] = members.radius();
                    break;
                }
                Ok(MemoStep::Expand(r2)) => {
                    assert!(
                        r2 > members.radius(),
                        "MemoStep::Expand must strictly increase the radius"
                    );
                    if ladder_cap.is_some_and(|cap| r2 > cap) {
                        return Err(halo_err(r2).into());
                    }
                    members.expand(g, r2, &mut scratch);
                }
                Err(_) => {
                    failed.push(li);
                    per_node[li] = members.radius();
                    break;
                }
            }
        }
    }
    Ok(ShardRun {
        outs,
        per_node,
        failed,
        stats: MemoStats::default(),
    })
}

/// Replays one node's plain ladder on the full network to regenerate its
/// exact error (payloads address the node, so the shard-local error —
/// phrased in local ids — cannot be returned).
fn plain_first_error<In: Clone, Out, E>(
    net: &Network<In>,
    v: NodeId,
    initial_radius: usize,
    step: &impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
) -> E {
    let g = net.graph();
    let mut scratch = Scratch::new(g.n());
    let mut members = BallMembers::gather(g, v, initial_radius, &mut scratch);
    loop {
        let ball = members.build_current(net, &mut scratch);
        match step(&ball) {
            Err(e) => return e,
            Ok(MemoStep::Expand(r)) if r > members.radius() => members.expand(g, r, &mut scratch),
            Ok(_) => unreachable!(
                "sharded replay diverged: a node that failed in its shard succeeded on the \
                 full graph (impure step?)"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The sharded drivers
// ---------------------------------------------------------------------------

/// Configuration for the sharded drivers.
#[derive(Debug, Clone)]
pub struct ShardOpts {
    /// Halo depth `T` the views are built with; the decode ladder may use
    /// radii up to `T − 1` on truncated shards. Must be ≥ 1.
    pub halo_radius: usize,
    /// Maximum shard views resident at once (`R`); evicted views spill to
    /// the scratch store. Clamped to ≥ 1. Defaults to "all resident".
    pub resident: usize,
    /// Shard processing order; `None` means `0..k`. Must be a permutation
    /// of the shard ids — outputs are schedule-invariant either way.
    pub schedule: Option<Vec<usize>>,
    /// Scratch directory for spilled state. `None` uses a process-unique
    /// temp directory that is removed when the run finishes. Only used
    /// when `resident < k`.
    pub spill_dir: Option<PathBuf>,
    /// When set, [`plan_decode`] runs per shard under this schema name and
    /// may route individual shards to the plain path. `None` always
    /// memoizes.
    pub plan_schema: Option<String>,
}

impl ShardOpts {
    /// Options with halo depth `halo_radius`, everything resident, the
    /// identity schedule, and no planner.
    pub fn new(halo_radius: usize) -> Self {
        ShardOpts {
            halo_radius,
            resident: usize::MAX,
            schedule: None,
            spill_dir: None,
            plan_schema: None,
        }
    }

    /// Caps the number of resident shard views.
    pub fn resident(mut self, r: usize) -> Self {
        self.resident = r;
        self
    }

    /// Sets an explicit shard schedule.
    pub fn schedule(mut self, order: Vec<usize>) -> Self {
        self.schedule = Some(order);
        self
    }

    /// Spills to a caller-owned scratch directory instead of a temp one.
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Enables per-shard execution planning under `schema`.
    pub fn plan_schema(mut self, schema: impl Into<String>) -> Self {
        self.plan_schema = Some(schema.into());
        self
    }
}

fn check_schedule(schedule: &[usize], k: usize) {
    assert_eq!(schedule.len(), k, "schedule must list every shard once");
    let mut seen = vec![false; k];
    for &s in schedule {
        assert!(s < k, "schedule names shard {s} of {k}");
        assert!(!seen[s], "schedule lists shard {s} twice");
        seen[s] = true;
    }
}

/// A truncated view's ladder cap, or `None` for a complete view.
///
/// With `halo_radius ≥ 1`, a shard whose members are all interior has no
/// edge leaving the view (any boundary node would have pulled its exterior
/// neighbor into the halo), so its local graph is a union of whole
/// components and balls are exact at every radius.
fn ladder_cap(view: &ShardView) -> Option<usize> {
    if view.interior.iter().all(|&b| b) {
        None
    } else {
        Some(view.halo_radius - 1)
    }
}

/// Builds the local [`Network`] a shard decodes against: the view's
/// induced subgraph with the members' global uids and cloned inputs.
pub fn shard_network<In: Clone>(net: &Network<In>, view: &ShardView) -> Network<In> {
    let uids: Vec<u64> = view.members.iter().map(|&v| net.uid(v)).collect();
    let inputs: Vec<In> = view.members.iter().map(|&v| net.input(v).clone()).collect();
    Network::new(view.graph.clone(), IdAssignment::from_uids(uids), inputs)
}

struct ShardPass<Out> {
    shard: usize,
    run: ShardRun<Out>,
    memo: Option<ShardMemo<Out>>,
}

/// Memoized sharded execution: decodes `net` shard-at-a-time under
/// `part`, with at most `opts.resident` shard views in memory and evicted
/// state spilled to the scratch store.
///
/// Outputs, [`RoundStats`], and first-error choice are bit-identical to
/// [`run_local_memo_fallible`](crate::run_local_memo_fallible) (and, for
/// ladder steps, to `run_local`) whenever the halo is deep enough; a
/// ladder that outgrows the halo aborts with a typed [`HaloExceeded`]
/// instead of decoding from truncated views. Shards are processed in
/// waves of `resident` (rayon-parallel within a wave behind the
/// `parallel` feature, sequential otherwise); outputs are
/// schedule-invariant.
///
/// # Panics
///
/// Panics if the partition does not match the graph, `halo_radius` is 0,
/// the schedule is not a permutation, or scratch I/O fails.
pub fn run_sharded_memo_fallible<In, Out, E>(
    net: &Network<In>,
    part: &Partition,
    opts: &ShardOpts,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Spillable + Send,
    E: From<NotOrderInvariant> + From<HaloExceeded> + Send,
{
    // With a store active, each shard's sealed table takes the full spill
    // round-trip (serialize → disk → parse) before merging, so the
    // resident set never holds more than one sealed table at a time.
    let spill_absorb =
        |st: &SpillStore, shard: usize, memo: ShardMemo<Out>, merge: &mut MemoMerge<Out>| {
            let words = memo.into_words();
            st.save(SpillKind::Memo, shard, &words)
                .expect("spill scratch write failed");
            let back = st
                .load(SpillKind::Memo, shard)
                .expect("spill scratch read failed");
            merge.absorb_words(&back)
        };
    run_sharded_impl(
        net,
        part,
        opts,
        initial_radius,
        &input_tag,
        &step,
        true,
        spill_absorb,
    )
}

/// Plain (unmemoized) sharded execution: the same bounded-residency
/// drive as [`run_sharded_memo_fallible`] but every interior node
/// evaluates its own ladder — the sharded analogue of
/// [`run_local_fallible`](crate::run_local_fallible) for steps that are
/// not order-invariant. No memo tables exist, so `Out` needs no
/// [`Spillable`] bound and cross-shard merge is vacuous.
pub fn run_sharded_fallible<In, Out, E>(
    net: &Network<In>,
    part: &Partition,
    opts: &ShardOpts,
    initial_radius: usize,
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
    E: From<NotOrderInvariant> + From<HaloExceeded> + Send,
{
    // Plain path never consults the memo machinery; reuse the driver with
    // planning disabled and the memo leg switched off (so the spill-absorb
    // strategy is never called and `Out` needs no `Spillable`).
    let mut plain_opts = opts.clone();
    plain_opts.plan_schema = None;
    run_sharded_impl(
        net,
        part,
        &plain_opts,
        initial_radius,
        &|_, _| {},
        &step,
        false,
        |_, _, memo, merge| merge.absorb(memo),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sharded_impl<In, Out, E>(
    net: &Network<In>,
    part: &Partition,
    opts: &ShardOpts,
    initial_radius: usize,
    input_tag: &(impl Fn(&In, &mut Vec<u64>) + Sync),
    step: &(impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync),
    memoize: bool,
    spill_absorb: impl Fn(
        &SpillStore,
        usize,
        ShardMemo<Out>,
        &mut MemoMerge<Out>,
    ) -> Result<(), NotOrderInvariant>,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
    E: From<NotOrderInvariant> + From<HaloExceeded> + Send,
{
    let g = net.graph();
    let n = g.n();
    assert_eq!(part.n(), n, "partition does not match the network's graph");
    assert!(opts.halo_radius >= 1, "halo_radius must be at least 1");
    let k = part.k();
    let resident = opts.resident.clamp(1, k.max(1));
    let schedule: Vec<usize> = match &opts.schedule {
        Some(s) => s.clone(),
        None => (0..k).collect(),
    };
    check_schedule(&schedule, k);
    let store: Option<SpillStore> = if resident < k {
        let st = match &opts.spill_dir {
            Some(dir) => SpillStore::open(dir),
            None => SpillStore::temp(),
        };
        Some(st.expect("spill scratch directory unavailable"))
    } else {
        None
    };

    // Phase 1: build every view, keeping the first `resident` scheduled
    // shards in memory and spilling the rest.
    let mut frontier = BitFrontier::new(n);
    let mut resident_views: HashMap<usize, ShardView> = HashMap::new();
    for (i, &s) in schedule.iter().enumerate() {
        let view = ShardView::build(g, part, s, opts.halo_radius, &mut frontier);
        if i < resident {
            resident_views.insert(s, view);
        } else {
            let st = store.as_ref().expect("resident < k implies a store");
            st.save(SpillKind::View, s, &view_spill(&view))
                .expect("spill scratch write failed");
        }
    }
    drop(frontier);

    // Phase 2: decode in waves of `resident`, reloading evicted views.
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let mut failed_global: Vec<usize> = Vec::new();
    let mut merge: MemoMerge<Out> = MemoMerge::new();
    let mut stats = MemoStats::default();
    for wave in schedule.chunks(resident) {
        let views: Vec<ShardView> = wave
            .iter()
            .map(|&s| match resident_views.remove(&s) {
                Some(view) => view,
                None => {
                    let st = store.as_ref().expect("evicted view implies a store");
                    let words = st
                        .load(SpillKind::View, s)
                        .expect("spill scratch read failed");
                    view_unspill(s, &words).expect("spilled view corrupt")
                }
            })
            .collect();
        let passes: Vec<Result<ShardPass<Out>, E>> = par_map(&views, |_, view| {
            let local = shard_network(net, view);
            let cap = ladder_cap(view);
            let memo_path = memoize
                && match &opts.plan_schema {
                    None => true,
                    Some(schema) => {
                        plan_decode(&local, initial_radius, input_tag, schema, None).path
                            == ExecPath::Memo
                    }
                };
            if memo_path {
                run_shard_memo_fallible(
                    &local,
                    &view.interior,
                    view.shard,
                    cap,
                    initial_radius,
                    input_tag,
                    step,
                )
                .map(|(run, memo)| ShardPass {
                    shard: view.shard,
                    run,
                    memo: Some(memo),
                })
            } else {
                run_shard_plain_fallible(
                    &local,
                    &view.interior,
                    view.shard,
                    cap,
                    initial_radius,
                    step,
                )
                .map(|run| ShardPass {
                    shard: view.shard,
                    run,
                    memo: None,
                })
            }
        });
        for (view, pass) in views.iter().zip(passes) {
            let pass = match pass {
                Ok(p) => p,
                Err(e) => {
                    flush_memo_stats(&stats);
                    return Err(e);
                }
            };
            stats.accumulate(&pass.run.stats);
            for &lf in &pass.run.failed {
                failed_global.push(view.members[lf].index());
            }
            for (li, out) in pass.run.outs.into_iter().enumerate() {
                if view.interior[li] {
                    let gv = view.members[li].index();
                    per_node[gv] = pass.run.per_node[li];
                    outs[gv] = out;
                }
            }
            if let Some(memo) = pass.memo {
                let absorbed = match &store {
                    Some(st) => spill_absorb(st, pass.shard, memo, &mut merge),
                    None => merge.absorb(memo),
                };
                if let Err(conflict) = absorbed {
                    flush_memo_stats(&stats);
                    return Err(conflict.into());
                }
            }
        }
    }
    flush_memo_stats(&stats);

    if let Some(&first) = failed_global.iter().min() {
        let v = NodeId::from_index(first);
        if memoize {
            let mut scratch = Scratch::new(n);
            let mut cscratch = CanonScratch::new();
            return Err(memo_first_error(
                net,
                v,
                initial_radius,
                input_tag,
                step,
                &mut scratch,
                &mut cscratch,
            ));
        }
        return Err(plain_first_error(net, v, initial_radius, step));
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("non-failing sharded run fills every interior slot"))
        .collect();
    Ok((outs, RoundStats::from_per_node(per_node)))
}

// ---------------------------------------------------------------------------
// Streaming (provider-based) sharded execution
// ---------------------------------------------------------------------------

/// One shard materialized by a streaming provider: the local network plus
/// membership metadata — everything the per-shard runners need, with no
/// global graph behind it.
///
/// The partition-based drivers slice a resident [`Network`]; for instances
/// too large to ever hold, [`run_sharded_stream_memo_fallible`] instead
/// asks a caller-supplied provider for one `ShardSlice` at a time (e.g.
/// generated directly from a streaming graph family), so peak memory is
/// the largest wave of slices, not the graph.
pub struct ShardSlice<In> {
    /// The shard this slice serves.
    pub shard: usize,
    /// Global ids of the slice's nodes, ascending; local id = rank.
    pub members: Vec<NodeId>,
    /// Per local node: does this shard own it? Interior sets must
    /// partition the global node set across all `k` slices.
    pub interior: Vec<bool>,
    /// The local network: the halo-closed induced subgraph with global
    /// uids and inputs.
    pub net: Network<In>,
    /// `true` when no edge leaves the slice (every member interior): balls
    /// are then exact at every radius and the ladder runs uncapped.
    pub complete: bool,
}

impl<In: Clone> ShardSlice<In> {
    /// Materializes a slice from a built [`ShardView`] — the bridge from
    /// the partition-based drivers' world into the provider-based one
    /// (used by tests to pin the two drivers against each other).
    pub fn from_view(net: &Network<In>, view: &ShardView) -> ShardSlice<In> {
        ShardSlice {
            shard: view.shard,
            members: view.members.clone(),
            interior: view.interior.clone(),
            net: shard_network(net, view),
            complete: ladder_cap(view).is_none(),
        }
    }
}

/// Memoized sharded execution over provider-materialized slices: the
/// bounded-residency drive of [`run_sharded_memo_fallible`] without a
/// resident global [`Network`].
///
/// `slice_of` is called exactly once per shard, in schedule order, and at
/// most `opts.resident` slices are alive at a time; each wave decodes
/// through the same per-shard runners as the partition-based driver
/// (planner consultation, halo caps, memo spill round-trips when
/// `resident < k` included), so outputs and [`RoundStats`] are
/// bit-identical to it — and hence to the monolithic executors — whenever
/// the provider's slices match [`ShardView`]s of some partition.
///
/// `replay_net` is invoked only on the error path: first-error payloads
/// address exact radii on the full graph, so the one failing node replays
/// there. Providers for instances that cannot materialize the full
/// network may panic in that closure; they then trade typed first-error
/// payloads for boundedness.
///
/// # Panics
///
/// Panics if `opts.halo_radius` is 0, the schedule is not a permutation
/// of `0..k`, a slice's metadata is inconsistent, the slices' interiors
/// fail to partition `0..n`, or scratch I/O fails.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_stream_memo_fallible<In, Out, E>(
    n: usize,
    k: usize,
    opts: &ShardOpts,
    initial_radius: usize,
    mut slice_of: impl FnMut(usize) -> ShardSlice<In>,
    replay_net: impl FnOnce() -> Network<In>,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Spillable + Send,
    E: From<NotOrderInvariant> + From<HaloExceeded> + Send,
{
    assert!(opts.halo_radius >= 1, "halo_radius must be at least 1");
    let resident = opts.resident.clamp(1, k.max(1));
    let schedule: Vec<usize> = match &opts.schedule {
        Some(s) => s.clone(),
        None => (0..k).collect(),
    };
    check_schedule(&schedule, k);
    // The store exists purely for memo-table parity with the
    // partition-based driver: views regenerate from the provider instead
    // of unspilling, but sealed memo tables still take the full
    // serialize → disk → parse round-trip before merging.
    let store: Option<SpillStore> = if resident < k {
        let st = match &opts.spill_dir {
            Some(dir) => SpillStore::open(dir),
            None => SpillStore::temp(),
        };
        Some(st.expect("spill scratch directory unavailable"))
    } else {
        None
    };

    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let mut failed_global: Vec<usize> = Vec::new();
    let mut merge: MemoMerge<Out> = MemoMerge::new();
    let mut stats = MemoStats::default();
    for wave in schedule.chunks(resident) {
        let slices: Vec<ShardSlice<In>> = wave
            .iter()
            .map(|&s| {
                let slice = slice_of(s);
                assert_eq!(slice.shard, s, "provider returned the wrong shard");
                let m = slice.members.len();
                assert_eq!(slice.interior.len(), m, "one interior flag per member");
                assert_eq!(slice.net.graph().n(), m, "local network covers the members");
                slice
            })
            .collect();
        let passes: Vec<Result<ShardPass<Out>, E>> = par_map(&slices, |_, slice| {
            let cap = if slice.complete {
                None
            } else {
                Some(opts.halo_radius - 1)
            };
            let memo_path = match &opts.plan_schema {
                None => true,
                Some(schema) => {
                    plan_decode(&slice.net, initial_radius, &input_tag, schema, None).path
                        == ExecPath::Memo
                }
            };
            if memo_path {
                run_shard_memo_fallible(
                    &slice.net,
                    &slice.interior,
                    slice.shard,
                    cap,
                    initial_radius,
                    &input_tag,
                    &step,
                )
                .map(|(run, memo)| ShardPass {
                    shard: slice.shard,
                    run,
                    memo: Some(memo),
                })
            } else {
                run_shard_plain_fallible(
                    &slice.net,
                    &slice.interior,
                    slice.shard,
                    cap,
                    initial_radius,
                    &step,
                )
                .map(|run| ShardPass {
                    shard: slice.shard,
                    run,
                    memo: None,
                })
            }
        });
        for (slice, pass) in slices.iter().zip(passes) {
            let pass = match pass {
                Ok(p) => p,
                Err(e) => {
                    flush_memo_stats(&stats);
                    return Err(e);
                }
            };
            stats.accumulate(&pass.run.stats);
            for &lf in &pass.run.failed {
                failed_global.push(slice.members[lf].index());
            }
            for (li, out) in pass.run.outs.into_iter().enumerate() {
                if slice.interior[li] {
                    let gv = slice.members[li].index();
                    per_node[gv] = pass.run.per_node[li];
                    outs[gv] = out;
                }
            }
            if let Some(memo) = pass.memo {
                let absorbed = match &store {
                    Some(st) => {
                        let words = memo.into_words();
                        st.save(SpillKind::Memo, pass.shard, &words)
                            .expect("spill scratch write failed");
                        let back = st
                            .load(SpillKind::Memo, pass.shard)
                            .expect("spill scratch read failed");
                        merge.absorb_words(&back)
                    }
                    None => merge.absorb(memo),
                };
                if let Err(conflict) = absorbed {
                    flush_memo_stats(&stats);
                    return Err(conflict.into());
                }
            }
        }
    }
    flush_memo_stats(&stats);

    if let Some(&first) = failed_global.iter().min() {
        let net = replay_net();
        assert_eq!(net.graph().n(), n, "replay network covers the instance");
        let v = NodeId::from_index(first);
        let mut scratch = Scratch::new(n);
        let mut cscratch = CanonScratch::new();
        return Err(memo_first_error(
            &net,
            v,
            initial_radius,
            &input_tag,
            &step,
            &mut scratch,
            &mut cscratch,
        ));
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("streaming slices' interiors must partition the nodes"))
        .collect();
    Ok((outs, RoundStats::from_per_node(per_node)))
}

// ---------------------------------------------------------------------------
// Sharded message routing
// ---------------------------------------------------------------------------

/// Traffic counters for a [`ShardedTransport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTrafficStats {
    /// Messages delivered directly (sender and receiver in one shard).
    pub intra_messages: u64,
    /// Messages that crossed a shard boundary through a mailbox.
    pub cross_messages: u64,
    /// Non-empty `(src_shard, dst_shard)` mailboxes flushed.
    pub flushes: u64,
    /// Most messages queued in mailboxes at once (per-round high water).
    pub mailbox_peak: u64,
}

/// Adapts any [`Transport`] to shard-at-a-time processing: messages whose
/// sender and receiver share a shard are routed directly while the shard
/// is current; cross-shard messages queue in per-`(src_shard, dst_shard)`
/// mailboxes and are flushed when the schedule switches to the receiving
/// shard.
///
/// Every inbox slot has exactly one sending edge, so the re-routing is a
/// permutation of delivery order within the round — delivered inboxes are
/// **bit-identical** to the inner transport's, and fault plans compose
/// unchanged (drops, duplicates, delays, and crashes all happen inside
/// the wrapped transport before routing).
#[derive(Debug, Clone)]
pub struct ShardedTransport<T> {
    inner: T,
    part: Partition,
    schedule: Vec<usize>,
    nodes_by_shard: Vec<Vec<NodeId>>,
    stats: ShardTrafficStats,
}

impl<T> ShardedTransport<T> {
    /// Wraps `inner`, processing shards in id order.
    pub fn new(inner: T, part: Partition) -> Self {
        let schedule = (0..part.k()).collect();
        ShardedTransport::with_schedule(inner, part, schedule)
    }

    /// Wraps `inner` with an explicit shard schedule.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is not a permutation of `0..part.k()`.
    pub fn with_schedule(inner: T, part: Partition, schedule: Vec<usize>) -> Self {
        check_schedule(&schedule, part.k());
        let nodes_by_shard = (0..part.k()).map(|s| part.shard_nodes(s)).collect();
        ShardedTransport {
            inner,
            part,
            schedule,
            nodes_by_shard,
            stats: ShardTrafficStats::default(),
        }
    }

    /// Traffic counters accumulated so far.
    pub fn traffic(&self) -> ShardTrafficStats {
        self.stats
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<Msg: Clone, T: Transport<Msg>> Transport<Msg> for ShardedTransport<T> {
    fn exchange(&mut self, g: &Graph, round: usize, outboxes: &[Vec<Msg>]) -> Vec<Vec<Vec<Msg>>> {
        assert_eq!(self.part.n(), g.n(), "partition does not match the graph");
        let mut delivered = self.inner.exchange(g, round, outboxes);
        let k = self.part.k();
        let mut inboxes: Vec<Vec<Vec<Msg>>> = delivered
            .iter()
            .map(|slots| vec![Vec::new(); slots.len()])
            .collect();
        // Pass 1 — process shards in schedule order: deliver intra-shard
        // slots directly, queue cross-shard slots in (src, dst) mailboxes.
        let mut mailboxes: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); k * k];
        let mut queued: u64 = 0;
        for &dst in &self.schedule {
            for &v in &self.nodes_by_shard[dst] {
                for (port, &u) in g.neighbors(v).iter().enumerate() {
                    let src = self.part.owner(u);
                    if src == dst {
                        let msgs = std::mem::take(&mut delivered[v.index()][port]);
                        self.stats.intra_messages += msgs.len() as u64;
                        inboxes[v.index()][port] = msgs;
                    } else {
                        queued += delivered[v.index()][port].len() as u64;
                        mailboxes[src * k + dst].push((v, port));
                    }
                }
            }
        }
        self.stats.mailbox_peak = self.stats.mailbox_peak.max(queued);
        // Pass 2 — flush: when the schedule switches to shard `dst`, drain
        // every mailbox addressed to it, in schedule order of the source.
        for &dst in &self.schedule {
            for &src in &self.schedule {
                let slots = std::mem::take(&mut mailboxes[src * k + dst]);
                if slots.is_empty() {
                    continue;
                }
                self.stats.flushes += 1;
                for (v, port) in slots {
                    let msgs = std::mem::take(&mut delivered[v.index()][port]);
                    self.stats.cross_messages += msgs.len() as u64;
                    inboxes[v.index()][port] = msgs;
                }
            }
        }
        inboxes
    }

    fn is_crashed(&self, v: NodeId, round: usize) -> bool {
        self.inner.is_crashed(v, round)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_local_memo_fallible, MemoStep};
    use crate::transport::PerfectLink;
    use lad_graph::generators;

    /// Error enum for tests exercising both failure modes.
    #[derive(Debug, PartialEq)]
    enum ShardDecodeError {
        Conflict(NotOrderInvariant),
        Halo(HaloExceeded),
    }

    impl From<NotOrderInvariant> for ShardDecodeError {
        fn from(c: NotOrderInvariant) -> Self {
            ShardDecodeError::Conflict(c)
        }
    }

    impl From<HaloExceeded> for ShardDecodeError {
        fn from(h: HaloExceeded) -> Self {
            ShardDecodeError::Halo(h)
        }
    }

    /// An order-invariant ladder step: expand to radius 2, then output a
    /// statistic of the ball's canonical content (sizes, degrees, inputs
    /// weighted by distance) — a pure function of the isomorphism class.
    fn ball_stat_step(ball: &Ball<u32>) -> Result<MemoStep<u64>, ShardDecodeError> {
        if ball.radius() < 2 {
            return Ok(MemoStep::Expand(2));
        }
        let mut acc = ball.n() as u64;
        for i in 0..ball.n() {
            let v = NodeId::from_index(i);
            acc += u64::from(*ball.input(v)) * 31
                + ball.global_degree(v) as u64 * 7
                + ball.dist(v) as u64;
        }
        Ok(MemoStep::Done(acc))
    }

    fn tag(x: &u32, words: &mut Vec<u64>) {
        words.push(u64::from(*x));
    }

    fn net(g: Graph) -> Network<u32> {
        let inputs = (0..g.n() as u32).map(|i| i % 5).collect();
        let ids = IdAssignment::from_uids(
            (0..g.n() as u64)
                .map(|i| (i * 7) % (g.n() as u64 * 7) + 1)
                .collect(),
        );
        Network::new(g, ids, inputs)
    }

    #[test]
    fn sharded_matches_unsharded_memo() {
        let g = generators::cycle(40);
        let net = net(g);
        let reference =
            run_local_memo_fallible(&net, 1, tag, ball_stat_step).expect("reference decodes");
        for k in [1usize, 2, 3, 5] {
            for resident in [1usize, 2, usize::MAX] {
                let part = Partition::contiguous(40, k);
                let opts = ShardOpts::new(4).resident(resident);
                let got = run_sharded_memo_fallible(&net, &part, &opts, 1, tag, ball_stat_step)
                    .expect("sharded decodes");
                assert_eq!(got, reference, "k={k} resident={resident}");
            }
        }
    }

    #[test]
    fn sharded_is_schedule_invariant() {
        let g = generators::grid2d(6, 5, false);
        let net = net(g);
        let part = Partition::bfs_grown(net.graph(), 4);
        let forward = ShardOpts::new(5).schedule(vec![0, 1, 2, 3]).resident(2);
        let reverse = ShardOpts::new(5).schedule(vec![3, 2, 1, 0]).resident(2);
        let a = run_sharded_memo_fallible(&net, &part, &forward, 1, tag, ball_stat_step)
            .expect("forward decodes");
        let b = run_sharded_memo_fallible(&net, &part, &reverse, 1, tag, ball_stat_step)
            .expect("reverse decodes");
        assert_eq!(a, b);
    }

    #[test]
    fn plain_sharded_matches_memo_sharded() {
        let g = generators::cycle(30);
        let net = net(g);
        let part = Partition::contiguous(30, 3);
        let opts = ShardOpts::new(4).resident(1);
        let memoized = run_sharded_memo_fallible(&net, &part, &opts, 1, tag, ball_stat_step)
            .expect("memo decodes");
        let plain =
            run_sharded_fallible(&net, &part, &opts, 1, ball_stat_step).expect("plain decodes");
        assert_eq!(memoized, plain);
    }

    #[test]
    fn stream_driver_matches_partition_driver() {
        let g = generators::grid2d(7, 5, false);
        let network = net(g);
        let n = network.graph().n();
        let reference =
            run_local_memo_fallible(&network, 1, tag, ball_stat_step).expect("reference decodes");
        for k in [1usize, 2, 4] {
            for resident in [1usize, 2, usize::MAX] {
                let part = Partition::contiguous(n, k);
                let opts = ShardOpts::new(5).resident(resident);
                let mut frontier = BitFrontier::new(n);
                let mut slices: Vec<Option<ShardSlice<u32>>> = (0..k)
                    .map(|s| {
                        let view = ShardView::build(
                            network.graph(),
                            &part,
                            s,
                            opts.halo_radius,
                            &mut frontier,
                        );
                        Some(ShardSlice::from_view(&network, &view))
                    })
                    .collect();
                let got = run_sharded_stream_memo_fallible(
                    n,
                    k,
                    &opts,
                    1,
                    |s| slices[s].take().expect("each shard requested once"),
                    || unreachable!("no failures in this instance"),
                    tag,
                    ball_stat_step,
                )
                .expect("stream decode");
                assert_eq!(got, reference, "k={k} resident={resident}");
                let want =
                    run_sharded_memo_fallible(&network, &part, &opts, 1, tag, ball_stat_step)
                        .expect("partition decode");
                assert_eq!(got, want, "k={k} resident={resident}");
            }
        }
    }

    #[test]
    fn stream_driver_halo_cap_still_bites() {
        let g = generators::cycle(24);
        let network = net(g);
        let part = Partition::contiguous(24, 4);
        // Ladder needs radius 2; halo 2 caps truncated slices at 1.
        let opts = ShardOpts::new(2);
        let mut frontier = BitFrontier::new(24);
        let mut slices: Vec<Option<ShardSlice<u32>>> = (0..4)
            .map(|s| {
                let view = ShardView::build(network.graph(), &part, s, 2, &mut frontier);
                Some(ShardSlice::from_view(&network, &view))
            })
            .collect();
        let got = run_sharded_stream_memo_fallible(
            24,
            4,
            &opts,
            1,
            |s| slices[s].take().expect("each shard requested once"),
            || unreachable!("halo errors do not replay"),
            tag,
            ball_stat_step,
        );
        match got {
            Err(ShardDecodeError::Halo(h)) => {
                assert_eq!(h.halo_radius, 2);
                assert_eq!(h.requested, 2);
            }
            other => panic!("expected a halo error, got {other:?}"),
        }
    }

    #[test]
    fn halo_too_shallow_is_a_typed_error() {
        let g = generators::cycle(24);
        let net = net(g);
        let part = Partition::contiguous(24, 4);
        // Ladder needs radius 2; halo 2 caps it at 1.
        let opts = ShardOpts::new(2);
        let err = run_sharded_memo_fallible(&net, &part, &opts, 1, tag, ball_stat_step)
            .map(|_| ())
            .expect_err("halo 2 cannot serve radius 2");
        match err {
            ShardDecodeError::Halo(h) => {
                assert_eq!(h.requested, 2);
                assert_eq!(h.halo_radius, 2);
            }
            other => panic!("expected HaloExceeded, got {other:?}"),
        }
    }

    #[test]
    fn view_spill_round_trips() {
        let g = generators::random_tree(33, 0xDECAF);
        let part = Partition::bfs_grown(&g, 3);
        let mut frontier = BitFrontier::new(g.n());
        let view = ShardView::build(&g, &part, 1, 3, &mut frontier);
        let store = SpillStore::temp().expect("temp store");
        store
            .save(SpillKind::View, 1, &view_spill(&view))
            .expect("save");
        let words = store.load(SpillKind::View, 1).expect("load");
        let back = view_unspill(1, &words).expect("unspill");
        assert_eq!(back.members, view.members);
        assert_eq!(back.interior, view.interior);
        assert_eq!(back.halo_radius, view.halo_radius);
        assert_eq!(back.graph.n(), view.graph.n());
        for v in view.graph.nodes() {
            assert_eq!(back.graph.neighbors(v), view.graph.neighbors(v));
        }
    }

    #[test]
    fn spill_store_rejects_foreign_files() {
        let store = SpillStore::temp().expect("temp store");
        store.save(SpillKind::Memo, 2, &[1, 2, 3]).expect("save");
        // Wrong kind and wrong shard are both rejected.
        assert!(store.load(SpillKind::View, 2).is_err());
        assert!(store.load(SpillKind::Memo, 3).is_err());
        // A tampered version header is rejected.
        let path = store.dir().join("memo-2.lsp");
        let mut bytes = std::fs::read(&path).expect("read raw");
        bytes[8] ^= 0xFF;
        std::fs::write(&path, bytes).expect("tamper");
        let err = store
            .load(SpillKind::Memo, 2)
            .expect_err("version mismatch");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn memo_tables_survive_the_spill_round_trip() {
        let g = generators::cycle(32);
        let network = net(g);
        let part = Partition::contiguous(32, 2);
        let mut frontier = BitFrontier::new(32);
        let mut direct: MemoMerge<u64> = MemoMerge::new();
        let mut via_disk: MemoMerge<u64> = MemoMerge::new();
        let store = SpillStore::temp().expect("temp store");
        for s in 0..2 {
            let view = ShardView::build(network.graph(), &part, s, 4, &mut frontier);
            let local = shard_network(&network, &view);
            let (_, memo) = run_shard_memo_fallible::<_, _, ShardDecodeError>(
                &local,
                &view.interior,
                s,
                ladder_cap(&view),
                1,
                &tag,
                &ball_stat_step,
            )
            .expect("shard decodes");
            let words = memo.into_words();
            store.save(SpillKind::Memo, s, &words).expect("save");
            via_disk
                .absorb_words(&store.load(SpillKind::Memo, s).expect("load"))
                .expect("absorb from disk");
            let (_, memo2) = run_shard_memo_fallible::<_, _, ShardDecodeError>(
                &local,
                &view.interior,
                s,
                ladder_cap(&view),
                1,
                &tag,
                &ball_stat_step,
            )
            .expect("shard decodes again");
            direct.absorb(memo2).expect("absorb direct");
        }
        assert_eq!(direct.class_count(), via_disk.class_count());
    }

    #[test]
    fn sharded_transport_delivers_bit_identically() {
        let g = generators::grid2d(5, 4, false);
        let part = Partition::contiguous(g.n(), 3);
        let outboxes: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| {
                (0..g.degree(v))
                    .map(|p| (v.index() as u64) << 8 | p as u64)
                    .collect()
            })
            .collect();
        let want = PerfectLink.exchange(&g, 0, &outboxes);
        let mut sharded = ShardedTransport::new(PerfectLink, part.clone());
        let got = sharded.exchange(&g, 0, &outboxes);
        assert_eq!(got, want);
        let t = sharded.traffic();
        assert!(t.cross_messages > 0, "a 3-shard grid must cross shards");
        assert_eq!(
            t.intra_messages + t.cross_messages,
            2 * g.m() as u64,
            "every directed edge carries one message"
        );
        // An alternate schedule delivers the same inboxes.
        let mut reversed = ShardedTransport::with_schedule(PerfectLink, part, vec![2, 1, 0]);
        assert_eq!(reversed.exchange(&g, 0, &outboxes), want);
    }
}
