#![warn(missing_docs)]

//! LOCAL-model runtime: networks, ball views, round accounting, an explicit
//! synchronous message-passing simulator, and order-invariant lookup-table
//! algorithms.
//!
//! # The model
//!
//! In the LOCAL model (Section 3.2 of the paper), an `n`-node graph's nodes
//! carry unique identifiers from `{1, …, poly(n)}`; computation proceeds in
//! synchronous rounds of unbounded-size messages and unbounded local
//! computation. A classical equivalence says a `T`-round LOCAL algorithm is
//! exactly a function of each node's *radius-`T` view*: the subgraph induced
//! by `N_{≤T}(v)` (without edges between two nodes at distance exactly `T`),
//! together with all identifiers, inputs, and degrees in it.
//!
//! This crate realizes that equivalence directly: a decoder receives a
//! [`NodeCtx`] whose [`NodeCtx::ball`] calls materialize views of requested
//! radii. The maximum radius requested over all nodes **is** the measured
//! round complexity ([`RoundStats`]); decoders physically cannot read
//! anything outside the views they paid for.
//!
//! For completeness (and tests that want the "real" round-by-round
//! mechanics), [`messaging`] provides an explicit synchronous
//! message-passing simulator.
//!
//! # Example
//!
//! ```
//! use lad_graph::generators;
//! use lad_runtime::{Network, run_local};
//!
//! // Every node reports how many nodes it sees at distance ≤ 2.
//! let net = Network::with_identity_ids(generators::cycle(10));
//! let (outs, stats) = run_local(&net, |ctx| ctx.ball(2).n());
//! assert!(outs.iter().all(|&k| k == 5));
//! assert_eq!(stats.rounds(), 2);
//! ```

//! # Execution paths
//!
//! [`run_local`] is the sequential reference executor. [`run_local_par`]
//! (and the `*_cached` variants over a shared [`ViewCache`]) computes the
//! same outputs and [`RoundStats`] bit for bit — LOCAL algorithms are pure
//! per-node functions of their views, so scheduling cannot change results,
//! and `crates/runtime/tests/equivalence.rs` enforces this differentially.
//! Threading sits behind the `parallel` cargo feature (default-on); see
//! [`executor::effective_parallelism`] for how worker counts resolve.
//!
//! For *order-invariant* algorithms, [`run_local_memo`] (and its
//! fallible/parallel variants) additionally decodes once per canonical
//! isomorphism class of advice-labeled balls instead of once per node,
//! with a built-in [`NotOrderInvariant`] safety net; on bounded-growth
//! graphs this is the difference between O(n) and O(#classes) step
//! evaluations.

//! # Fault injection
//!
//! Message delivery is pluggable ([`transport`]): [`run_rounds`] fixes it
//! to [`PerfectLink`] (the classical model), while [`run_rounds_on`] and
//! [`run_gathered_robust`] accept any [`Transport`] — in particular a
//! seeded [`FaultPlan`], which deterministically drops, duplicates,
//! delays, and corrupts messages and crash-stops nodes, tallying every
//! injected fault in [`FaultStats`]. Robust gathering validates what it
//! heard and degrades to a typed [`GatherError`] rather than ever
//! assembling a silently wrong view.

pub mod ball;
pub mod cache;
pub mod canonical;
pub mod churn;
pub mod ctx;
pub mod executor;
pub mod gather;
pub mod lookup;
pub mod messaging;
pub mod network;
pub mod plan;
pub mod shard;
pub mod shell;
pub mod store;
pub mod transport;

pub use ball::Ball;
pub use cache::{CacheStats, ViewCache};
pub use canonical::{
    canonicalize, canonicalize_tagged_with, canonicalize_with, CanonScratch, CanonicalKey,
};
pub use churn::{ChurnLocal, ChurnMemoLocal, PlannedChurnLocal, RepairReport};
pub use ctx::NodeCtx;
pub use executor::{
    effective_parallelism, memo_stats, memo_stats_reset, par_map, par_map_with, run_local,
    run_local_cached, run_local_fallible, run_local_fallible_cached, run_local_fallible_par,
    run_local_fallible_par_cached, run_local_fallible_par_with, run_local_memo,
    run_local_memo_fallible, run_local_memo_fallible_par, run_local_memo_fallible_par_with,
    run_local_memo_par, run_local_memo_par_with, run_local_par, run_local_par_cached,
    run_local_par_with, set_thread_override, MemoStats, MemoStep, RoundStats,
};
pub use gather::{run_gathered, run_gathered_robust, GatherError, GatherReport, NodeRecord};
pub use lookup::{LookupTable, NotOrderInvariant};
pub use messaging::{
    run_rounds, run_rounds_on, LocalInfo, LossyRoundAlgorithm, RoundAlgorithm, RoundLimitExceeded,
    RoundOutcome, Strict,
};
pub use network::Network;
pub use plan::{
    forced_path, plan_decode, probe_stride, set_force_path, Calibration, ExecPath, PlanDecision,
};
pub use shard::{
    run_shard_memo_fallible, run_shard_plain_fallible, run_sharded_fallible,
    run_sharded_memo_fallible, run_sharded_stream_memo_fallible, shard_network, spill_stats,
    spill_stats_reset, view_spill, view_unspill, HaloExceeded, MemoMerge, ShardMemo, ShardOpts,
    ShardRun, ShardSlice, ShardTrafficStats, ShardedTransport, SpillKind, SpillStats, SpillStore,
    Spillable,
};
pub use shell::{fold_key_words, shell_class_keys, shell_class_keys_at_radii};
pub use store::{
    ClassStore, ClassVerdict, SchemaId, StoreError, KEY_LAYOUT_VERSION, STORE_VERSION,
};
pub use transport::{
    CopyFate, Corruptible, Fate, FaultPlan, FaultRun, FaultStats, PerfectLink, Transport,
};
