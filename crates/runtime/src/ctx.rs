//! Per-node execution contexts with round accounting.

use crate::ball::{Ball, BallMembers, Scratch};
use crate::cache::ViewCache;
use crate::network::Network;
use lad_graph::NodeId;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Where a context materializes its views from. All three sources produce
/// bit-identical balls; they differ only in what work is amortized.
enum ViewSource<'a, In> {
    /// Fresh `Ball::collect_reference` per request — the independent
    /// `HashMap`-based implementation, kept as the differential baseline.
    Direct,
    /// Worker-local BFS scratch plus a per-node membership memo, so
    /// adaptive decoders growing `r` by one expand the previous BFS
    /// instead of restarting it.
    Scratch(&'a RefCell<Scratch>),
    /// A shared [`ViewCache`], reusing balls across nodes, phases, and
    /// threads.
    Cached(&'a ViewCache<In>, &'a RefCell<Scratch>),
}

/// The handle a LOCAL algorithm runs against at one node.
///
/// Everything a node knows *initially* (Section 3.2: its identifier, its
/// degree, `Δ`, and `n`) is available for free; everything else costs
/// rounds via [`NodeCtx::ball`]. The largest radius ever requested is
/// recorded and aggregated into [`crate::RoundStats`].
pub struct NodeCtx<'a, In = ()> {
    net: &'a Network<In>,
    node: NodeId,
    max_radius: Cell<usize>,
    source: ViewSource<'a, In>,
    /// Membership memo for the `Scratch` source (grown, never shrunk).
    memo: RefCell<Option<BallMembers>>,
}

impl<'a, In: Clone> NodeCtx<'a, In> {
    pub(crate) fn new(net: &'a Network<In>, node: NodeId) -> Self {
        Self::with_source(net, node, ViewSource::Direct)
    }

    pub(crate) fn with_scratch(
        net: &'a Network<In>,
        node: NodeId,
        scratch: &'a RefCell<Scratch>,
    ) -> Self {
        Self::with_source(net, node, ViewSource::Scratch(scratch))
    }

    pub(crate) fn with_cache(
        net: &'a Network<In>,
        node: NodeId,
        cache: &'a ViewCache<In>,
        scratch: &'a RefCell<Scratch>,
    ) -> Self {
        Self::with_source(net, node, ViewSource::Cached(cache, scratch))
    }

    fn with_source(net: &'a Network<In>, node: NodeId, source: ViewSource<'a, In>) -> Self {
        NodeCtx {
            net,
            node,
            max_radius: Cell::new(0),
            source,
            memo: RefCell::new(None),
        }
    }

    /// This node's unique identifier.
    pub fn uid(&self) -> u64 {
        self.net.uid(self.node)
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.net.graph().degree(self.node)
    }

    /// This node's own input.
    pub fn input(&self) -> &In {
        self.net.input(self.node)
    }

    /// Global knowledge: the number of nodes `n`.
    pub fn n(&self) -> usize {
        self.net.graph().n()
    }

    /// Global knowledge: the maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.net.graph().max_degree()
    }

    /// The radius-`r` view of this node. Calling with radius `r` commits
    /// the algorithm to at least `r` rounds.
    ///
    /// The returned ball is identical regardless of which executor entry
    /// point (sequential, parallel, cached) created this context.
    pub fn ball(&self, r: usize) -> Ball<In> {
        self.note_radius(r);
        match &self.source {
            ViewSource::Direct => Ball::collect_reference(self.net, self.node, r),
            ViewSource::Scratch(scratch) => {
                let mut scratch = scratch.borrow_mut();
                let mut memo = self.memo.borrow_mut();
                let g = self.net.graph();
                match memo.as_mut() {
                    None => *memo = Some(BallMembers::gather(g, self.node, r, &mut scratch)),
                    Some(m) if m.radius() < r => m.expand(g, r, &mut scratch),
                    Some(_) => {}
                }
                memo.as_ref()
                    .expect("memo just ensured")
                    .build(self.net, r, &mut scratch)
            }
            ViewSource::Cached(cache, scratch) => {
                let arc =
                    cache.ball_with_scratch(self.net, self.node, r, &mut scratch.borrow_mut());
                (*arc).clone()
            }
        }
    }

    /// Like [`NodeCtx::ball`] but shares the allocation when a cache backs
    /// this context; otherwise a freshly gathered ball is wrapped. Use for
    /// zero-copy access on hot decoder paths.
    pub fn view(&self, r: usize) -> Arc<Ball<In>> {
        self.note_radius(r);
        match &self.source {
            ViewSource::Cached(cache, scratch) => {
                cache.ball_with_scratch(self.net, self.node, r, &mut scratch.borrow_mut())
            }
            _ => {
                // `ball` re-notes the radius; that is idempotent.
                Arc::new(self.ball(r))
            }
        }
    }

    fn note_radius(&self, r: usize) {
        if r > self.max_radius.get() {
            self.max_radius.set(r);
        }
    }

    /// The largest radius requested so far.
    pub fn rounds_used(&self) -> usize {
        self.max_radius.get()
    }

    /// The global name of this node — for addressing outputs only; LOCAL
    /// decisions must be based on [`NodeCtx::uid`].
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn ctx_tracks_max_radius() {
        let net = Network::with_identity_ids(generators::cycle(10));
        let ctx = NodeCtx::new(&net, NodeId(0));
        assert_eq!(ctx.rounds_used(), 0);
        ctx.ball(2);
        ctx.ball(1);
        assert_eq!(ctx.rounds_used(), 2);
        ctx.ball(4);
        assert_eq!(ctx.rounds_used(), 4);
    }

    #[test]
    fn initial_knowledge_is_free() {
        let net = Network::with_identity_ids(generators::star(4));
        let ctx = NodeCtx::new(&net, NodeId(0));
        assert_eq!(ctx.uid(), 1);
        assert_eq!(ctx.degree(), 4);
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.max_degree(), 4);
        assert_eq!(ctx.rounds_used(), 0);
    }

    #[test]
    fn all_sources_agree_on_balls() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, true));
        let cache = ViewCache::for_network(&net);
        let scratch = RefCell::new(Scratch::new(net.graph().n()));
        for v in net.graph().nodes() {
            let direct = NodeCtx::new(&net, v);
            let scratched = NodeCtx::with_scratch(&net, v, &scratch);
            let cached = NodeCtx::with_cache(&net, v, &cache, &scratch);
            // Interleave radii to exercise memo expansion and prefixing.
            for r in [1usize, 3, 2, 0, 4] {
                let reference = direct.ball(r);
                assert_eq!(scratched.ball(r), reference, "scratch node {v:?} r {r}");
                assert_eq!(cached.ball(r), reference, "cache node {v:?} r {r}");
                assert_eq!(*cached.view(r), reference, "view node {v:?} r {r}");
            }
            assert_eq!(direct.rounds_used(), 4);
            assert_eq!(scratched.rounds_used(), 4);
            assert_eq!(cached.rounds_used(), 4);
        }
    }

    #[test]
    fn view_wraps_ball_for_direct_contexts() {
        let net = Network::with_identity_ids(generators::path(5));
        let ctx = NodeCtx::new(&net, NodeId(2));
        assert_eq!(*ctx.view(2), ctx.ball(2));
        assert_eq!(ctx.rounds_used(), 2);
    }
}
