//! Per-node execution contexts with round accounting.

use crate::ball::Ball;
use crate::network::Network;
use lad_graph::NodeId;
use std::cell::Cell;

/// The handle a LOCAL algorithm runs against at one node.
///
/// Everything a node knows *initially* (Section 3.2: its identifier, its
/// degree, `Δ`, and `n`) is available for free; everything else costs
/// rounds via [`NodeCtx::ball`]. The largest radius ever requested is
/// recorded and aggregated into [`crate::RoundStats`].
pub struct NodeCtx<'a, In = ()> {
    net: &'a Network<In>,
    node: NodeId,
    max_radius: Cell<usize>,
}

impl<'a, In: Clone> NodeCtx<'a, In> {
    pub(crate) fn new(net: &'a Network<In>, node: NodeId) -> Self {
        NodeCtx {
            net,
            node,
            max_radius: Cell::new(0),
        }
    }

    /// This node's unique identifier.
    pub fn uid(&self) -> u64 {
        self.net.uid(self.node)
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.net.graph().degree(self.node)
    }

    /// This node's own input.
    pub fn input(&self) -> &In {
        self.net.input(self.node)
    }

    /// Global knowledge: the number of nodes `n`.
    pub fn n(&self) -> usize {
        self.net.graph().n()
    }

    /// Global knowledge: the maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.net.graph().max_degree()
    }

    /// The radius-`r` view of this node. Calling with radius `r` commits
    /// the algorithm to at least `r` rounds.
    pub fn ball(&self, r: usize) -> Ball<In> {
        if r > self.max_radius.get() {
            self.max_radius.set(r);
        }
        Ball::collect(self.net, self.node, r)
    }

    /// The largest radius requested so far.
    pub fn rounds_used(&self) -> usize {
        self.max_radius.get()
    }

    /// The global name of this node — for addressing outputs only; LOCAL
    /// decisions must be based on [`NodeCtx::uid`].
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn ctx_tracks_max_radius() {
        let net = Network::with_identity_ids(generators::cycle(10));
        let ctx = NodeCtx::new(&net, NodeId(0));
        assert_eq!(ctx.rounds_used(), 0);
        ctx.ball(2);
        ctx.ball(1);
        assert_eq!(ctx.rounds_used(), 2);
        ctx.ball(4);
        assert_eq!(ctx.rounds_used(), 4);
    }

    #[test]
    fn initial_knowledge_is_free() {
        let net = Network::with_identity_ids(generators::star(4));
        let ctx = NodeCtx::new(&net, NodeId(0));
        assert_eq!(ctx.uid(), 1);
        assert_eq!(ctx.degree(), 4);
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.max_degree(), 4);
        assert_eq!(ctx.rounds_used(), 0);
    }
}
