//! Radius-`r` views — what a node knows after `r` rounds in the LOCAL model.

use crate::network::Network;
use lad_graph::{EdgeId, Graph, GraphBuilder, NodeId};

/// The radius-`r` view of a node: the subgraph induced by `N_{≤r}(v)`
/// *minus* edges between two nodes at distance exactly `r` (those are only
/// learned after `r + 1` rounds), together with the identifiers, inputs,
/// and true degrees of every node in it.
///
/// Nodes and edges inside the ball use **local** indices; convert with
/// [`Ball::global_node`] / [`Ball::global_edge`]. Decoders should base all
/// decisions on unique identifiers (as LOCAL algorithms must), using global
/// indices only to *address* their outputs.
///
/// # Example
///
/// ```
/// use lad_graph::generators;
/// use lad_runtime::{Network, run_local};
///
/// let net = Network::with_identity_ids(generators::cycle(8));
/// let (outs, _) = run_local(&net, |ctx| {
///     let ball = ctx.ball(3);
///     (ball.n(), ball.graph().m())
/// });
/// // 7 nodes within distance 3; the two frontier nodes' connecting edge
/// // (at distance 4 around the back) is invisible.
/// assert!(outs.iter().all(|&(n, m)| n == 7 && m == 6));
/// ```
#[derive(Debug, Clone)]
pub struct Ball<In = ()> {
    graph: Graph,
    center: NodeId,
    radius: usize,
    dist: Vec<usize>,
    uids: Vec<u64>,
    inputs: Vec<In>,
    global_degree: Vec<usize>,
    to_global_node: Vec<NodeId>,
    to_global_edge: Vec<EdgeId>,
}

impl<In: Clone> Ball<In> {
    /// Materializes the radius-`r` view of `center` in `net`.
    ///
    /// Work and memory are proportional to the *ball*, not the graph, so
    /// running a constant-radius decoder at every node of a large network
    /// stays near-linear overall.
    pub fn collect(net: &Network<In>, center: NodeId, radius: usize) -> Self {
        let g = net.graph();
        // Bounded BFS with ball-sized bookkeeping.
        let mut local_of: std::collections::HashMap<NodeId, NodeId> =
            std::collections::HashMap::new();
        let mut members: Vec<(NodeId, usize)> = vec![(center, 0)];
        local_of.insert(center, NodeId(0));
        let mut head = 0usize;
        while head < members.len() {
            let (v, d) = members[head];
            head += 1;
            if d == radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if !local_of.contains_key(&u) {
                    local_of.insert(u, NodeId::from_index(members.len()));
                    members.push((u, d + 1));
                }
            }
        }
        let to_global_node: Vec<NodeId> = members.iter().map(|&(v, _)| v).collect();
        let dist: Vec<usize> = members.iter().map(|&(_, d)| d).collect();
        let mut b = GraphBuilder::new(members.len());
        let mut edge_pairs = Vec::new();
        for (li, &(v, d)) in members.iter().enumerate() {
            if d == radius {
                continue; // only edges with an endpoint at distance < r are known
            }
            for (&u, &e) in g.neighbors(v).iter().zip(g.incident_edges(v)) {
                if let Some(&lu) = local_of.get(&u) {
                    let lv = NodeId::from_index(li);
                    if b.add_edge(lv, lu) {
                        edge_pairs.push(((lv.min(lu), lv.max(lu)), e));
                    }
                }
            }
        }
        // The builder sorts edges by endpoint pair; replicate that order for
        // the global-edge map.
        edge_pairs.sort_by_key(|&(pair, _)| pair);
        let to_global_edge: Vec<EdgeId> = edge_pairs.into_iter().map(|(_, e)| e).collect();
        let graph = b.build();
        debug_assert_eq!(graph.m(), to_global_edge.len());
        let uids = to_global_node.iter().map(|&v| net.uid(v)).collect();
        let inputs = to_global_node
            .iter()
            .map(|&v| net.input(v).clone())
            .collect();
        let global_degree = to_global_node.iter().map(|&v| g.degree(v)).collect();
        Ball {
            graph,
            center: NodeId(0),
            radius,
            dist,
            uids,
            inputs,
            global_degree,
            to_global_node,
            to_global_edge,
        }
    }
}

impl<In> Ball<In> {
    /// Assembles a ball from raw parts — used by
    /// [`crate::gather`] to build views out of *received messages* rather
    /// than direct graph access. The center must be local index 0.
    ///
    /// Assembled balls carry no global names: [`Ball::global_node`] and
    /// [`Ball::global_edge`] return the local indices themselves, so
    /// algorithms that address outputs globally should run on collected
    /// balls (or address by identifier).
    ///
    /// # Panics
    ///
    /// Panics if the part lengths disagree or node 0 is not at distance 0.
    pub fn assemble(
        graph: Graph,
        radius: usize,
        dist: Vec<usize>,
        uids: Vec<u64>,
        inputs: Vec<In>,
        global_degree: Vec<usize>,
    ) -> Self {
        let n = graph.n();
        assert!(n > 0 && dist[0] == 0, "center must be local index 0");
        assert!(dist.len() == n && uids.len() == n && inputs.len() == n);
        assert_eq!(global_degree.len(), n);
        let to_global_node = graph.nodes().collect();
        let to_global_edge = graph.edge_ids().collect();
        Ball {
            graph,
            center: NodeId(0),
            radius,
            dist,
            uids,
            inputs,
            global_degree,
            to_global_node,
            to_global_edge,
        }
    }

    /// Number of nodes in the view.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The view's subgraph (local indices).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The center node (always local index 0).
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The view radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Distance from the center to a local node.
    pub fn dist(&self, local: NodeId) -> usize {
        self.dist[local.index()]
    }

    /// The unique identifier of a local node.
    pub fn uid(&self, local: NodeId) -> u64 {
        self.uids[local.index()]
    }

    /// All identifiers, indexed by local node — in the layout
    /// `lad_graph::orientation` helpers expect.
    pub fn uids(&self) -> &[u64] {
        &self.uids
    }

    /// The input of a local node.
    pub fn input(&self, local: NodeId) -> &In {
        &self.inputs[local.index()]
    }

    /// The *true* degree of a local node in the underlying network (nodes
    /// announce their degree, so this is known even at the frontier).
    pub fn global_degree(&self, local: NodeId) -> usize {
        self.global_degree[local.index()]
    }

    /// Whether the view contains *all* edges of `local` — true exactly when
    /// `dist(local) < radius`. Only then may pairing/slot computations be
    /// performed at `local`.
    pub fn knows_all_edges_of(&self, local: NodeId) -> bool {
        self.dist[local.index()] < self.radius
            && self.graph.degree(local) == self.global_degree(local)
    }

    /// The local node carrying identifier `uid`, if present.
    pub fn node_with_uid(&self, uid: u64) -> Option<NodeId> {
        self.uids
            .iter()
            .position(|&u| u == uid)
            .map(NodeId::from_index)
    }

    /// The global name of a local node (for addressing outputs only).
    pub fn global_node(&self, local: NodeId) -> NodeId {
        self.to_global_node[local.index()]
    }

    /// The global name of a local edge (for addressing outputs only).
    pub fn global_edge(&self, local: EdgeId) -> EdgeId {
        self.to_global_edge[local.index()]
    }

    /// The local node corresponding to a global node, if inside the view.
    pub fn local_node(&self, global: NodeId) -> Option<NodeId> {
        self.to_global_node
            .iter()
            .position(|&v| v == global)
            .map(NodeId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn ball_on_cycle_excludes_frontier_edge() {
        let net = Network::with_identity_ids(generators::cycle(6));
        let ball = Ball::collect(&net, NodeId(0), 3);
        // Radius 3 on C6 sees all 6 nodes; node 3 is at distance 3, and its
        // edges to nodes 2 and 4 are known because 2 and 4 are at distance 2.
        assert_eq!(ball.n(), 6);
        assert_eq!(ball.graph().m(), 6);
        let b2 = Ball::collect(&net, NodeId(0), 2);
        assert_eq!(b2.n(), 5);
        assert_eq!(b2.graph().m(), 4);
    }

    #[test]
    fn center_is_local_zero() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, false));
        let ball = Ball::collect(&net, NodeId(5), 2);
        assert_eq!(ball.center(), NodeId(0));
        assert_eq!(ball.global_node(NodeId(0)), NodeId(5));
        assert_eq!(ball.dist(NodeId(0)), 0);
        assert_eq!(ball.uid(NodeId(0)), 6);
    }

    #[test]
    fn knows_all_edges_only_inside() {
        let net = Network::with_identity_ids(generators::path(9));
        let ball = Ball::collect(&net, NodeId(4), 2);
        for v in ball.graph().nodes() {
            let expect = ball.dist(v) < 2;
            assert_eq!(ball.knows_all_edges_of(v), expect, "node {v:?}");
        }
    }

    #[test]
    fn global_degree_visible_at_frontier() {
        let net = Network::with_identity_ids(generators::star(5));
        // Take a leaf; radius 1 sees the center at the frontier with its
        // true degree 5 even though only one of its edges is in the view.
        let ball = Ball::collect(&net, NodeId(1), 1);
        let center_local = ball.local_node(NodeId(0)).unwrap();
        assert_eq!(ball.global_degree(center_local), 5);
        assert_eq!(ball.graph().degree(center_local), 1);
    }

    #[test]
    fn global_edge_mapping_consistent() {
        let net = Network::with_identity_ids(generators::grid2d(3, 3, false));
        let ball = Ball::collect(&net, NodeId(4), 2);
        let g = net.graph();
        for (le, (lu, lv)) in ball.graph().edges() {
            let ge = ball.global_edge(le);
            let (gu, gv) = g.endpoints(ge);
            let mapped = (ball.global_node(lu), ball.global_node(lv));
            assert!(mapped == (gu, gv) || mapped == (gv, gu));
        }
    }

    #[test]
    fn inputs_travel_with_ball() {
        let g = generators::path(4);
        let net = Network::with_identity_ids(g).with_inputs(vec![9, 8, 7, 6]);
        let ball = Ball::collect(&net, NodeId(3), 1);
        let local2 = ball.local_node(NodeId(2)).unwrap();
        assert_eq!(*ball.input(local2), 7);
    }

    #[test]
    fn radius_zero_is_lonely() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let ball = Ball::collect(&net, NodeId(2), 0);
        assert_eq!(ball.n(), 1);
        assert_eq!(ball.graph().m(), 0);
        assert_eq!(ball.global_degree(NodeId(0)), 2);
    }
}
