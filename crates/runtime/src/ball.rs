//! Radius-`r` views — what a node knows after `r` rounds in the LOCAL model.

use crate::network::Network;
use lad_graph::{EdgeId, Graph, GraphBuilder, NodeId};

/// The radius-`r` view of a node: the subgraph induced by `N_{≤r}(v)`
/// *minus* edges between two nodes at distance exactly `r` (those are only
/// learned after `r + 1` rounds), together with the identifiers, inputs,
/// and true degrees of every node in it.
///
/// Nodes and edges inside the ball use **local** indices; convert with
/// [`Ball::global_node`] / [`Ball::global_edge`]. Decoders should base all
/// decisions on unique identifiers (as LOCAL algorithms must), using global
/// indices only to *address* their outputs.
///
/// # Example
///
/// ```
/// use lad_graph::generators;
/// use lad_runtime::{Network, run_local};
///
/// let net = Network::with_identity_ids(generators::cycle(8));
/// let (outs, _) = run_local(&net, |ctx| {
///     let ball = ctx.ball(3);
///     (ball.n(), ball.graph().m())
/// });
/// // 7 nodes within distance 3; the two frontier nodes' connecting edge
/// // (at distance 4 around the back) is invisible.
/// assert!(outs.iter().all(|&(n, m)| n == 7 && m == 6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ball<In = ()> {
    graph: Graph,
    center: NodeId,
    radius: usize,
    meta: Vec<NodeMeta>,
    uids: Vec<u64>,
    inputs: Vec<In>,
    to_global_edge: Vec<EdgeId>,
}

/// Per-node metadata (global name, BFS distance, true network degree) packed
/// into one contiguous table. A [`crate::ViewCache`] pins roughly one ball
/// per node, so one retained allocation here instead of three parallel
/// `Vec`s is a measurable share of the cold-population cost.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeMeta {
    global: NodeId,
    dist: u32,
    degree: u32,
}

/// Reusable per-worker BFS bookkeeping: an epoch-stamped visited/local-index
/// array sized to the *network*, amortized over every ball a worker gathers,
/// plus reusable assembly buffers (edge enumeration, spare membership
/// storage). Replaces the per-ball `HashMap` on the executor hot paths —
/// membership tests become two array reads and gathering/assembly allocates
/// nothing beyond the ball's own retained storage.
#[derive(Debug)]
pub(crate) struct Scratch {
    stamp: Vec<u32>,
    local: Vec<u32>,
    epoch: u32,
    /// Edge-enumeration buffer for [`build_from_members`]: local `(min,
    /// max)` endpoints plus the global edge id, reused across balls.
    pairs: Vec<(NodeId, NodeId, EdgeId)>,
    /// Recycled membership storage: [`BallMembers::gather`] starts from
    /// this buffer and [`BallMembers::recycle`] returns it, so transient
    /// memberships (dropped after a fused gather-and-build) stop paying
    /// grow-from-one reallocation per ball.
    members_spare: Vec<(NodeId, usize)>,
}

impl Scratch {
    /// Scratch for an `n`-node network.
    pub(crate) fn new(n: usize) -> Self {
        Scratch {
            stamp: vec![0; n],
            local: vec![0; n],
            epoch: 0,
            pairs: Vec::new(),
            members_spare: Vec::new(),
        }
    }

    /// Grows the scratch to cover an `n`-node network. New entries carry
    /// stamp 0, which never equals a live epoch, so growing cannot create
    /// phantom memberships.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local.resize(n, 0);
        }
    }

    /// Starts a fresh membership set (O(1) amortized).
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    #[inline]
    fn insert(&mut self, v: NodeId, local: u32) {
        self.stamp[v.index()] = self.epoch;
        self.local[v.index()] = local;
    }

    #[inline]
    fn get(&self, v: NodeId) -> Option<NodeId> {
        (self.stamp[v.index()] == self.epoch).then(|| NodeId(self.local[v.index()]))
    }

    /// The local index of `v` under the *current* epoch — the membership a
    /// just-run [`BallMembers::gather`] / [`BallMembers::expand`] stamped.
    /// Lets the memo executor key a membership without rebuilding a
    /// global-to-local map.
    #[inline]
    pub(crate) fn current_local(&self, v: NodeId) -> Option<NodeId> {
        self.get(v)
    }
}

/// The BFS *membership* of a ball: nodes in discovery order with their
/// distances, complete up to `radius`. Separated from [`Ball`] so caches can
/// keep it per node and grow it incrementally — expanding radius `r` to
/// `r + 1` continues the frontier BFS instead of re-running it from the
/// center.
///
/// Invariant: `members` is exactly the sequence a from-scratch bounded BFS
/// ([`Ball::collect`]) would produce at `radius` — distances are
/// nondecreasing, so the radius-`r` membership (`r ≤ radius`) is a prefix.
#[derive(Debug, Clone)]
pub(crate) struct BallMembers {
    members: Vec<(NodeId, usize)>,
    radius: usize,
}

impl BallMembers {
    /// Bounded BFS from `center`, identical in discovery order to
    /// [`Ball::collect`].
    pub(crate) fn gather(g: &Graph, center: NodeId, radius: usize, scratch: &mut Scratch) -> Self {
        scratch.begin();
        let mut members = std::mem::take(&mut scratch.members_spare);
        members.clear();
        members.push((center, 0));
        scratch.insert(center, 0);
        let mut head = 0usize;
        while head < members.len() {
            let (v, d) = members[head];
            head += 1;
            if d == radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if scratch.get(u).is_none() {
                    scratch.insert(u, members.len() as u32);
                    members.push((u, d + 1));
                }
            }
        }
        BallMembers { members, radius }
    }

    /// The radius this membership is complete to.
    pub(crate) fn radius(&self) -> usize {
        self.radius
    }

    /// The members in BFS discovery order with their distances.
    pub(crate) fn members(&self) -> &[(NodeId, usize)] {
        &self.members
    }

    /// Returns this membership's storage to `scratch` for the next
    /// [`BallMembers::gather`] — call instead of dropping when the
    /// membership is not retained.
    pub(crate) fn recycle(self, scratch: &mut Scratch) {
        if self.members.capacity() > scratch.members_spare.capacity() {
            scratch.members_spare = self.members;
        }
    }

    /// Grows the membership to `new_radius` by continuing the BFS from the
    /// current frontier. Nodes strictly inside the old radius already have
    /// all neighbors discovered, so only frontier and newer nodes are
    /// (re)processed; the resulting member order is exactly what a
    /// from-scratch BFS at `new_radius` would produce.
    pub(crate) fn expand(&mut self, g: &Graph, new_radius: usize, scratch: &mut Scratch) {
        if new_radius <= self.radius {
            return;
        }
        scratch.begin();
        for (i, &(v, _)) in self.members.iter().enumerate() {
            scratch.insert(v, i as u32);
        }
        let old_radius = self.radius;
        let mut head = self.members.partition_point(|&(_, d)| d < old_radius);
        while head < self.members.len() {
            let (v, d) = self.members[head];
            head += 1;
            if d == new_radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if scratch.get(u).is_none() {
                    scratch.insert(u, self.members.len() as u32);
                    self.members.push((u, d + 1));
                }
            }
        }
        self.radius = new_radius;
    }

    /// Number of members within distance `r`.
    fn prefix_len(&self, r: usize) -> usize {
        self.members.partition_point(|&(_, d)| d <= r)
    }

    /// Materializes the radius-`r` ball (`r ≤ self.radius`) from this
    /// membership — bit-identical to `Ball::collect(net, center, r)`.
    pub(crate) fn build<In: Clone>(
        &self,
        net: &Network<In>,
        r: usize,
        scratch: &mut Scratch,
    ) -> Ball<In> {
        assert!(
            r <= self.radius,
            "membership only complete to {}",
            self.radius
        );
        let prefix = &self.members[..self.prefix_len(r)];
        scratch.begin();
        for (i, &(v, _)) in prefix.iter().enumerate() {
            scratch.insert(v, i as u32);
        }
        let Scratch {
            stamp,
            local,
            epoch,
            pairs,
            ..
        } = scratch;
        let epoch = *epoch;
        build_from_members(
            net,
            prefix,
            r,
            |u| (stamp[u.index()] == epoch).then(|| NodeId(local[u.index()])),
            pairs,
        )
    }

    /// Materializes the full-radius ball directly from the stamps a just-run
    /// [`BallMembers::gather`] left in `scratch`, skipping the epoch bump and
    /// re-stamping pass [`BallMembers::build`] pays. Only valid immediately
    /// after `gather` with the same scratch (no intervening `begin`).
    pub(crate) fn build_current<In: Clone>(
        &self,
        net: &Network<In>,
        scratch: &mut Scratch,
    ) -> Ball<In> {
        let Scratch {
            stamp,
            local,
            epoch,
            pairs,
            ..
        } = scratch;
        let epoch = *epoch;
        build_from_members(
            net,
            &self.members,
            self.radius,
            |u| (stamp[u.index()] == epoch).then(|| NodeId(local[u.index()])),
            pairs,
        )
    }
}

/// Shared ball constructor for the scratch-backed paths: builds the view
/// subgraph, per-node tables, and global-name maps from a BFS membership
/// with no transient allocation — edge enumeration reuses `pairs` and the
/// subgraph CSR is assembled directly from the sorted edge list
/// ([`lad_graph::builder::from_sorted_edges`]). The sequential reference
/// ([`Ball::collect_reference`]) keeps its own `GraphBuilder`-based copy of
/// this assembly, so the two executor paths remain independently
/// implemented and the differential tests compare real alternatives.
pub(crate) fn build_from_members<In: Clone>(
    net: &Network<In>,
    members: &[(NodeId, usize)],
    radius: usize,
    local_of: impl Fn(NodeId) -> Option<NodeId>,
    pairs: &mut Vec<(NodeId, NodeId, EdgeId)>,
) -> Ball<In> {
    let g = net.graph();
    // An edge is known exactly when an endpoint lies at distance < r.
    // Distances are nondecreasing in local index (BFS order), so the
    // smaller endpoint of every known edge is itself at distance < r:
    // enumerating from the smaller endpoint visits each edge exactly once,
    // with no dedup set. Either endpoint's adjacency slot names the same
    // global edge, so the recorded id matches the reference path's.
    pairs.clear();
    for (li, &(v, d)) in members.iter().enumerate() {
        if d == radius {
            break; // frontier suffix: edges among frontier nodes are unknown
        }
        let lv = NodeId::from_index(li);
        for (&u, &e) in g.neighbors(v).iter().zip(g.incident_edges(v)) {
            if let Some(lu) = local_of(u) {
                if lv < lu {
                    pairs.push((lv, lu, e));
                }
            }
        }
    }
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
    let edges: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
    let to_global_edge: Vec<EdgeId> = pairs.iter().map(|&(_, _, e)| e).collect();
    let graph = lad_graph::builder::from_sorted_edges(members.len(), edges);
    debug_assert_eq!(graph.m(), to_global_edge.len());
    let meta = members
        .iter()
        .map(|&(v, d)| NodeMeta {
            global: v,
            dist: d as u32,
            degree: g.degree(v) as u32,
        })
        .collect();
    let uids = members.iter().map(|&(v, _)| net.uid(v)).collect();
    let inputs = members.iter().map(|&(v, _)| net.input(v).clone()).collect();
    Ball {
        graph,
        center: NodeId(0),
        radius,
        meta,
        uids,
        inputs,
        to_global_edge,
    }
}

impl<In: Clone> Ball<In> {
    /// Materializes the radius-`r` view of `center` in `net`.
    ///
    /// Work and memory are proportional to the *ball*, not the graph: the
    /// bounded BFS runs over an epoch-stamped `Scratch` kept per thread,
    /// so membership tests are two array reads and repeated calls allocate
    /// nothing beyond the ball itself. A deliberately independent
    /// `HashMap` implementation (`collect_reference`, crate-private) is
    /// what the differential tests compare against.
    pub fn collect(net: &Network<In>, center: NodeId, radius: usize) -> Self {
        use std::cell::RefCell;
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new(0));
        }
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.ensure(net.graph().n());
            let members = BallMembers::gather(net.graph(), center, radius, &mut scratch);
            let ball = members.build_current(net, &mut scratch);
            members.recycle(&mut scratch);
            ball
        })
    }

    /// The original per-call `HashMap` bounded BFS, kept as a fully
    /// self-contained, independent reference implementation: the sequential
    /// reference executor ([`crate::run_local`]) builds its views through
    /// this path — per-ball map bookkeeping, `GraphBuilder` subgraph
    /// assembly and all — so the differential harness compares two
    /// genuinely different codepaths against the scratch-backed
    /// [`build_from_members`] pipeline.
    pub(crate) fn collect_reference(net: &Network<In>, center: NodeId, radius: usize) -> Self {
        let g = net.graph();
        // Bounded BFS with ball-sized bookkeeping.
        let mut local_of: std::collections::HashMap<NodeId, NodeId> =
            std::collections::HashMap::new();
        let mut members: Vec<(NodeId, usize)> = vec![(center, 0)];
        local_of.insert(center, NodeId(0));
        let mut head = 0usize;
        while head < members.len() {
            let (v, d) = members[head];
            head += 1;
            if d == radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = local_of.entry(u) {
                    e.insert(NodeId::from_index(members.len()));
                    members.push((u, d + 1));
                }
            }
        }
        // Dedup-set subgraph assembly, structurally identical to (but
        // implemented independently of) the scratch path's sorted-edge CSR
        // construction.
        let mut b = GraphBuilder::new(members.len());
        let mut edge_pairs = Vec::new();
        for (li, &(v, d)) in members.iter().enumerate() {
            if d == radius {
                continue; // only edges with an endpoint at distance < r are known
            }
            for (&u, &e) in g.neighbors(v).iter().zip(g.incident_edges(v)) {
                if let Some(&lu) = local_of.get(&u) {
                    let lv = NodeId::from_index(li);
                    if b.add_edge(lv, lu) {
                        edge_pairs.push(((lv.min(lu), lv.max(lu)), e));
                    }
                }
            }
        }
        // The builder sorts edges by endpoint pair; replicate that order
        // for the global-edge map.
        edge_pairs.sort_by_key(|&(pair, _)| pair);
        let to_global_edge: Vec<EdgeId> = edge_pairs.iter().map(|&(_, e)| e).collect();
        let graph = b.build();
        debug_assert_eq!(graph.m(), to_global_edge.len());
        let meta = members
            .iter()
            .map(|&(v, d)| NodeMeta {
                global: v,
                dist: d as u32,
                degree: g.degree(v) as u32,
            })
            .collect();
        let uids = members.iter().map(|&(v, _)| net.uid(v)).collect();
        let inputs = members.iter().map(|&(v, _)| net.input(v).clone()).collect();
        Ball {
            graph,
            center: NodeId(0),
            radius,
            meta,
            uids,
            inputs,
            to_global_edge,
        }
    }
}

impl<In> Ball<In> {
    /// Assembles a ball from raw parts — used by
    /// [`crate::gather`] to build views out of *received messages* rather
    /// than direct graph access. The center must be local index 0.
    ///
    /// Assembled balls carry no global names: [`Ball::global_node`] and
    /// [`Ball::global_edge`] return the local indices themselves, so
    /// algorithms that address outputs globally should run on collected
    /// balls (or address by identifier).
    ///
    /// # Panics
    ///
    /// Panics if the part lengths disagree or node 0 is not at distance 0.
    pub fn assemble(
        graph: Graph,
        radius: usize,
        dist: Vec<usize>,
        uids: Vec<u64>,
        inputs: Vec<In>,
        global_degree: Vec<usize>,
    ) -> Self {
        let n = graph.n();
        assert!(n > 0 && dist[0] == 0, "center must be local index 0");
        assert!(dist.len() == n && uids.len() == n && inputs.len() == n);
        assert_eq!(global_degree.len(), n);
        let meta = graph
            .nodes()
            .map(|v| NodeMeta {
                global: v,
                dist: dist[v.index()] as u32,
                degree: global_degree[v.index()] as u32,
            })
            .collect();
        let to_global_edge = graph.edge_ids().collect();
        Ball {
            graph,
            center: NodeId(0),
            radius,
            meta,
            uids,
            inputs,
            to_global_edge,
        }
    }

    /// Number of nodes in the view.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The view's subgraph (local indices).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The center node (always local index 0).
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The view radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Distance from the center to a local node.
    pub fn dist(&self, local: NodeId) -> usize {
        self.meta[local.index()].dist as usize
    }

    /// The unique identifier of a local node.
    pub fn uid(&self, local: NodeId) -> u64 {
        self.uids[local.index()]
    }

    /// All identifiers, indexed by local node — in the layout
    /// `lad_graph::orientation` helpers expect.
    pub fn uids(&self) -> &[u64] {
        &self.uids
    }

    /// The input of a local node.
    pub fn input(&self, local: NodeId) -> &In {
        &self.inputs[local.index()]
    }

    /// The *true* degree of a local node in the underlying network (nodes
    /// announce their degree, so this is known even at the frontier).
    pub fn global_degree(&self, local: NodeId) -> usize {
        self.meta[local.index()].degree as usize
    }

    /// Whether the view contains *all* edges of `local` — true exactly when
    /// `dist(local) < radius`. Only then may pairing/slot computations be
    /// performed at `local`.
    pub fn knows_all_edges_of(&self, local: NodeId) -> bool {
        let m = &self.meta[local.index()];
        (m.dist as usize) < self.radius && self.graph.degree(local) == m.degree as usize
    }

    /// The local node carrying identifier `uid`, if present.
    pub fn node_with_uid(&self, uid: u64) -> Option<NodeId> {
        self.uids
            .iter()
            .position(|&u| u == uid)
            .map(NodeId::from_index)
    }

    /// The global name of a local node (for addressing outputs only).
    pub fn global_node(&self, local: NodeId) -> NodeId {
        self.meta[local.index()].global
    }

    /// The global name of a local edge (for addressing outputs only).
    pub fn global_edge(&self, local: EdgeId) -> EdgeId {
        self.to_global_edge[local.index()]
    }

    /// The local node corresponding to a global node, if inside the view.
    pub fn local_node(&self, global: NodeId) -> Option<NodeId> {
        self.meta
            .iter()
            .position(|m| m.global == global)
            .map(NodeId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn ball_on_cycle_excludes_frontier_edge() {
        let net = Network::with_identity_ids(generators::cycle(6));
        let ball = Ball::collect(&net, NodeId(0), 3);
        // Radius 3 on C6 sees all 6 nodes; node 3 is at distance 3, and its
        // edges to nodes 2 and 4 are known because 2 and 4 are at distance 2.
        assert_eq!(ball.n(), 6);
        assert_eq!(ball.graph().m(), 6);
        let b2 = Ball::collect(&net, NodeId(0), 2);
        assert_eq!(b2.n(), 5);
        assert_eq!(b2.graph().m(), 4);
    }

    #[test]
    fn center_is_local_zero() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, false));
        let ball = Ball::collect(&net, NodeId(5), 2);
        assert_eq!(ball.center(), NodeId(0));
        assert_eq!(ball.global_node(NodeId(0)), NodeId(5));
        assert_eq!(ball.dist(NodeId(0)), 0);
        assert_eq!(ball.uid(NodeId(0)), 6);
    }

    #[test]
    fn knows_all_edges_only_inside() {
        let net = Network::with_identity_ids(generators::path(9));
        let ball = Ball::collect(&net, NodeId(4), 2);
        for v in ball.graph().nodes() {
            let expect = ball.dist(v) < 2;
            assert_eq!(ball.knows_all_edges_of(v), expect, "node {v:?}");
        }
    }

    #[test]
    fn global_degree_visible_at_frontier() {
        let net = Network::with_identity_ids(generators::star(5));
        // Take a leaf; radius 1 sees the center at the frontier with its
        // true degree 5 even though only one of its edges is in the view.
        let ball = Ball::collect(&net, NodeId(1), 1);
        let center_local = ball.local_node(NodeId(0)).unwrap();
        assert_eq!(ball.global_degree(center_local), 5);
        assert_eq!(ball.graph().degree(center_local), 1);
    }

    #[test]
    fn global_edge_mapping_consistent() {
        let net = Network::with_identity_ids(generators::grid2d(3, 3, false));
        let ball = Ball::collect(&net, NodeId(4), 2);
        let g = net.graph();
        for (le, (lu, lv)) in ball.graph().edges() {
            let ge = ball.global_edge(le);
            let (gu, gv) = g.endpoints(ge);
            let mapped = (ball.global_node(lu), ball.global_node(lv));
            assert!(mapped == (gu, gv) || mapped == (gv, gu));
        }
    }

    #[test]
    fn inputs_travel_with_ball() {
        let g = generators::path(4);
        let net = Network::with_identity_ids(g).with_inputs(vec![9, 8, 7, 6]);
        let ball = Ball::collect(&net, NodeId(3), 1);
        let local2 = ball.local_node(NodeId(2)).unwrap();
        assert_eq!(*ball.input(local2), 7);
    }

    #[test]
    fn scratch_and_reference_collect_agree() {
        // `collect` (epoch-stamped scratch) and `collect_reference`
        // (HashMap) are independent implementations; they must produce
        // structurally identical balls, including discovery order.
        for g in [
            generators::cycle(12),
            generators::path(9),
            generators::grid2d(4, 5, true),
            generators::complete(6),
        ] {
            let net = Network::with_identity_ids(g);
            for v in net.graph().nodes() {
                for r in 0..4 {
                    assert_eq!(
                        Ball::collect(&net, v, r),
                        Ball::collect_reference(&net, v, r),
                        "node {v:?} radius {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn thread_local_scratch_survives_network_size_changes() {
        // Interleave collects on networks of different sizes to exercise
        // `Scratch::ensure` growth on the shared thread-local scratch.
        let small = Network::with_identity_ids(generators::cycle(5));
        let big = Network::with_identity_ids(generators::grid2d(8, 8, false));
        for r in 0..3 {
            let a = Ball::collect(&small, NodeId(1), r);
            let b = Ball::collect(&big, NodeId(9), r + 1);
            let c = Ball::collect(&small, NodeId(4), r);
            assert_eq!(a, Ball::collect_reference(&small, NodeId(1), r));
            assert_eq!(b, Ball::collect_reference(&big, NodeId(9), r + 1));
            assert_eq!(c, Ball::collect_reference(&small, NodeId(4), r));
        }
    }

    #[test]
    fn radius_zero_is_lonely() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let ball = Ball::collect(&net, NodeId(2), 0);
        assert_eq!(ball.n(), 1);
        assert_eq!(ball.graph().m(), 0);
        assert_eq!(ball.global_degree(NodeId(0)), 2);
    }
}
