//! A shared, thread-safe cache of ball views.
//!
//! Gathering a radius-`r` ball is the dominant cost of executing a LOCAL
//! algorithm, and neighboring nodes' balls overlap heavily — on bounded-
//! degree graphs a single ball is re-explored `Θ(Δ^r)` times across an
//! execution, and adaptive decoders ask the *same node* for radii
//! `1, 2, …, r` in sequence. [`ViewCache`] eliminates both redundancies:
//!
//! * **Reuse across calls**: the first request for `(v, r)` materializes the
//!   ball and stores it behind an [`Arc`]; every later request (same run,
//!   later phase, other thread) is a clone of the `Arc`.
//! * **Incremental expansion**: once a node has been asked for a second
//!   distinct radius, the cache keeps its BFS membership at the largest
//!   radius seen so far. A request for a bigger radius *continues* that
//!   BFS from its frontier instead of restarting from the center, and a
//!   request for a smaller radius takes a prefix — BFS discovery order
//!   makes radius-`r` membership a prefix of radius-`r+1` membership.
//!   (A node's *first* touch deliberately skips this bookkeeping: most
//!   nodes are served at exactly one radius, and a cold population then
//!   retains exactly one ball per node and nothing else.)
//!
//! Cached balls are **bit-identical** to what [`Ball::collect`] produces
//! (`crates/runtime/tests/equivalence.rs` enforces this differentially):
//! membership order is the BFS queue order either way, and both paths build
//! the final [`Ball`] through one shared constructor.
//!
//! Concurrency is per-node: each node has its own mutex-guarded slot, so
//! parallel workers contend only when they ask for the *same* center at the
//! same time. The cache never blocks a slot while gathering another.

use crate::ball::{Ball, BallMembers, Scratch};
use crate::network::Network;
use lad_graph::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-node cache entry: the widest BFS membership seen plus materialized
/// balls by radius.
///
/// The first materialized ball lives inline: the overwhelmingly common
/// access pattern — every node touched at exactly one radius per phase —
/// then never allocates a `BTreeMap` node, and a cold population's only
/// retained allocation per slot is the ball itself. Membership bookkeeping
/// (`members`) is likewise deferred to a node's *second* distinct radius;
/// see [`ViewCache::ball_with_scratch`].
#[derive(Debug)]
struct Slot<In> {
    members: Option<BallMembers>,
    first: Option<(usize, Arc<Ball<In>>)>,
    more: BTreeMap<usize, Arc<Ball<In>>>,
}

impl<In> Default for Slot<In> {
    fn default() -> Self {
        Slot {
            members: None,
            first: None,
            more: BTreeMap::new(),
        }
    }
}

impl<In> Slot<In> {
    fn lookup(&self, radius: usize) -> Option<&Arc<Ball<In>>> {
        match &self.first {
            Some((r, ball)) if *r == radius => Some(ball),
            _ => self.more.get(&radius),
        }
    }

    fn store(&mut self, radius: usize, ball: &Arc<Ball<In>>) {
        if self.first.is_none() {
            self.first = Some((radius, Arc::clone(ball)));
        } else {
            self.more.insert(radius, Arc::clone(ball));
        }
    }
}

/// Counters describing how a [`ViewCache`] has been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered by an already-materialized ball.
    pub hits: u64,
    /// Requests that gathered a ball from scratch.
    pub misses: u64,
    /// Requests answered by growing or slicing an existing membership
    /// (cheaper than a miss, costlier than a hit).
    pub expansions: u64,
    /// Slots evicted by [`ViewCache::invalidate`] that actually held
    /// content (a warm ball or membership). Evicting an empty slot is
    /// free and not counted.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.expansions
    }
}

/// A shared, thread-safe ball/view cache for one network.
///
/// Create one per [`Network`] (sizes must match) and pass it to the cached
/// executor entry points ([`crate::run_local_cached`],
/// [`crate::run_local_par_cached`], …) or query it directly with
/// [`ViewCache::ball`].
///
/// Memory grows with the number of distinct `(node, radius)` balls
/// materialized; call [`ViewCache::clear`] between phases if that matters
/// more than reuse.
#[derive(Debug)]
pub struct ViewCache<In> {
    slots: Vec<Mutex<Slot<In>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    expansions: AtomicU64,
    invalidations: AtomicU64,
}

impl<In: Clone> ViewCache<In> {
    /// An empty cache for an `n`-node network.
    pub fn new(n: usize) -> Self {
        ViewCache {
            slots: (0..n).map(|_| Mutex::new(Slot::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expansions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// An empty cache sized for `net`.
    pub fn for_network(net: &Network<In>) -> Self {
        ViewCache::new(net.graph().n())
    }

    /// Number of node slots (the network size this cache serves).
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// The radius-`radius` ball of `center`, from cache when possible.
    ///
    /// Equivalent to `Arc::new(Ball::collect(net, center, radius))` — the
    /// returned ball is structurally identical — but amortizes gathering
    /// across requests.
    pub fn ball(&self, net: &Network<In>, center: NodeId, radius: usize) -> Arc<Ball<In>> {
        let mut scratch = Scratch::new(net.graph().n());
        self.ball_with_scratch(net, center, radius, &mut scratch)
    }

    /// Like [`ViewCache::ball`] with caller-provided BFS scratch space
    /// (reused across many requests by the executors).
    pub(crate) fn ball_with_scratch(
        &self,
        net: &Network<In>,
        center: NodeId,
        radius: usize,
        scratch: &mut Scratch,
    ) -> Arc<Ball<In>> {
        let mut slot = self.slots[center.index()]
            .lock()
            .expect("view-cache slot poisoned");
        if let Some(ball) = slot.lookup(radius) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(ball);
        }
        let g = net.graph();
        if slot.members.is_none() {
            // No membership tracked yet: gather and build in one fused
            // pass — `build_current` reuses the stamps `gather` just
            // wrote, so no re-stamping pass over the membership is paid.
            let members = BallMembers::gather(g, center, radius, scratch);
            let ball = Arc::new(members.build_current(net, scratch));
            if slot.first.is_none() {
                // Cold first touch. The membership is *not* stored: most
                // nodes are only ever asked for one radius, and skipping
                // the bookkeeping keeps a cold population's retained
                // memory at exactly one ball per node. A second distinct
                // radius re-gathers once and starts the incremental
                // bookkeeping below.
                members.recycle(scratch);
                slot.first = Some((radius, Arc::clone(&ball)));
                self.misses.fetch_add(1, Ordering::Relaxed);
            } else {
                // Second distinct radius: the node is evidently served at
                // several radii, so keep the membership from here on.
                // Classified as an expansion — the request shape (slot
                // already populated) is what the counters describe, not
                // the work done.
                slot.members = Some(members);
                slot.store(radius, &ball);
                self.expansions.fetch_add(1, Ordering::Relaxed);
            }
            return ball;
        }
        let m = slot.members.as_mut().expect("members checked above");
        if m.radius() < radius {
            m.expand(g, radius, scratch);
        }
        // Larger radius: BFS continued from the stored frontier; smaller:
        // prefix of an already-gathered wider membership. Both are
        // expansions.
        self.expansions.fetch_add(1, Ordering::Relaxed);
        let members = slot.members.as_ref().expect("members just ensured");
        let ball = Arc::new(members.build(net, radius, scratch));
        slot.store(radius, &ball);
        ball
    }

    /// Usage counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            expansions: self.expansions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Evicts the cached state of exactly `nodes` — their materialized
    /// balls *and* their BFS memberships — leaving every other slot warm.
    ///
    /// This is the churn eviction primitive: after an edit batch, only the
    /// nodes reported by `MutableGraph::dirty_within(radius)` can have
    /// stale radius-`≤ radius` views, so evicting exactly that set restores
    /// cache/`Ball::collect` agreement on the mutated graph while keeping
    /// the (typically vast) clean majority hot. The next request for an
    /// evicted node re-gathers and re-enters the normal cold-slot protocol.
    ///
    /// Counters: `invalidations` grows by the number of evicted slots that
    /// actually held content; hits/misses/expansions are untouched, so
    /// warm-hit stats across evict/re-key cycles remain a faithful request
    /// log.
    pub fn invalidate(&self, nodes: &[NodeId]) {
        let mut evicted = 0u64;
        for &v in nodes {
            let mut slot = self.slots[v.index()]
                .lock()
                .expect("view-cache slot poisoned");
            if slot.members.is_some() || slot.first.is_some() || !slot.more.is_empty() {
                evicted += 1;
            }
            slot.members = None;
            slot.first = None;
            slot.more.clear();
        }
        self.invalidations.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops all cached memberships and balls, keeping the counters.
    pub fn clear(&self) {
        for slot in &self.slots {
            let mut slot = slot.lock().expect("view-cache slot poisoned");
            slot.members = None;
            slot.first = None;
            slot.more.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn cached_ball_matches_collect_at_every_radius() {
        let net = Network::with_identity_ids(generators::grid2d(5, 4, false));
        let cache = ViewCache::for_network(&net);
        for v in net.graph().nodes() {
            for r in 0..=4 {
                let cached = cache.ball(&net, v, r);
                let fresh = Ball::collect(&net, v, r);
                assert_eq!(*cached, fresh, "node {v:?} radius {r}");
            }
        }
    }

    #[test]
    fn shrinking_and_growing_radii_stay_consistent() {
        // Ask big first (prefix path), then ask bigger (expansion path).
        let net = Network::with_identity_ids(generators::cycle(12));
        let cache = ViewCache::for_network(&net);
        for &r in &[3usize, 1, 0, 5, 2, 4] {
            let cached = cache.ball(&net, NodeId(7), r);
            assert_eq!(*cached, Ball::collect(&net, NodeId(7), r), "radius {r}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.requests(), 6);
    }

    #[test]
    fn repeat_requests_hit() {
        let net = Network::with_identity_ids(generators::path(6));
        let cache = ViewCache::for_network(&net);
        let a = cache.ball(&net, NodeId(2), 2);
        let b = cache.ball(&net, NodeId(2), 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                expansions: 0,
                invalidations: 0
            }
        );
    }

    #[test]
    fn counters_classify_every_request_shape() {
        let net = Network::with_identity_ids(generators::cycle(16));
        let cache = ViewCache::for_network(&net);
        assert_eq!(cache.stats(), CacheStats::default());

        // First-ever request for a node: a miss, whatever the radius.
        cache.ball(&net, NodeId(0), 3);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                expansions: 0,
                invalidations: 0
            }
        );

        // Smaller radius at the same node: prefix of the membership —
        // an expansion, not a miss (no BFS restart) and not a hit (a new
        // ball is still materialized).
        cache.ball(&net, NodeId(0), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                expansions: 1,
                invalidations: 0
            }
        );

        // Larger radius at the same node: BFS continues from the stored
        // frontier — also an expansion.
        cache.ball(&net, NodeId(0), 5);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                expansions: 2,
                invalidations: 0
            }
        );

        // Exact repeats of any materialized radius: hits.
        cache.ball(&net, NodeId(0), 3);
        cache.ball(&net, NodeId(0), 1);
        cache.ball(&net, NodeId(0), 5);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 3,
                misses: 1,
                expansions: 2,
                invalidations: 0
            }
        );

        // A different node has its own slot: a fresh miss.
        cache.ball(&net, NodeId(9), 2);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.requests(), 7);
    }

    #[test]
    fn counters_count_requests_not_work() {
        // An adaptive-decoder-style radius sweep at one node: exactly one
        // miss, every later radius an expansion, every repeat a hit.
        let net = Network::with_identity_ids(generators::grid2d(6, 6, false));
        let cache = ViewCache::for_network(&net);
        for r in 0..=4 {
            cache.ball(&net, NodeId(14), r);
        }
        for r in 0..=4 {
            cache.ball(&net, NodeId(14), r);
        }
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 5,
                misses: 1,
                expansions: 4,
                invalidations: 0
            }
        );
        assert_eq!(cache.stats().requests(), 10);
    }

    #[test]
    fn clear_resets_contents_so_misses_recur() {
        let net = Network::with_identity_ids(generators::cycle(8));
        let cache = ViewCache::for_network(&net);
        cache.ball(&net, NodeId(3), 2);
        cache.ball(&net, NodeId(3), 2);
        cache.clear();
        cache.ball(&net, NodeId(3), 2);
        // Counters survive clear(); only the cached contents are dropped.
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                expansions: 0,
                invalidations: 0
            }
        );
    }

    #[test]
    fn clear_empties_but_keeps_counting() {
        let net = Network::with_identity_ids(generators::path(6));
        let cache = ViewCache::for_network(&net);
        cache.ball(&net, NodeId(0), 1);
        cache.clear();
        let again = cache.ball(&net, NodeId(0), 1);
        assert_eq!(*again, Ball::collect(&net, NodeId(0), 1));
        assert_eq!(cache.stats().misses, 2);
    }
}
