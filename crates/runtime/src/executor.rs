//! Executing a LOCAL algorithm at every node and measuring its locality.
//!
//! # Entry points
//!
//! All executors run the same per-node function against [`NodeCtx`] handles
//! and produce *identical* outputs and [`RoundStats`] — a LOCAL algorithm is
//! a pure function of each node's view, so scheduling cannot change results.
//! They differ only in wall-clock cost:
//!
//! | function | views | schedule |
//! |---|---|---|
//! | [`run_local`] | fresh BFS per request | sequential (reference) |
//! | [`run_local_cached`] | shared [`ViewCache`] | sequential |
//! | [`run_local_par`] | worker-local scratch + memo | contiguous chunks across threads |
//! | [`run_local_par_cached`] | shared [`ViewCache`] | contiguous chunks across threads |
//! | [`run_local_memo`] | shared shell sweep per 64-center tile, decode once per canonical class | BFS tile order |
//! | [`run_local_memo_par`] | per-worker shell engines + class memos, replay-merged | contiguous chunks across threads |
//!
//! (`run_local_fallible*` variants propagate the first per-node error in
//! node-index order — also independent of the schedule.)
//!
//! The `run_local_memo*` family is restricted to *order-invariant* steps
//! (a step whose output depends only on the canonical form of its view)
//! and turns the paper's order-invariance theorem into a hot path: on
//! bounded-growth graphs almost all balls are pairwise isomorphic, so one
//! evaluation per [`CanonicalKey`] replaces one evaluation per node.
//!
//! Parallelism is gated behind the `parallel` cargo feature (on by
//! default); with the feature off every entry point runs sequentially but
//! keeps its signature. Thread count resolution is described at
//! [`effective_parallelism`]. The differential harness in
//! `crates/runtime/tests/equivalence.rs` pins down the equivalence of all
//! paths bit for bit.

use crate::ball::{Ball, BallMembers, Scratch};
use crate::cache::ViewCache;
use crate::canonical::{key_of_members, CanonScratch, CanonicalKey};
use crate::ctx::NodeCtx;
use crate::lookup::NotOrderInvariant;
use crate::network::Network;
use crate::shell::ShellEngine;
use lad_graph::frontier::TILE_WIDTH;
use lad_graph::{Graph, NodeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::convert::Infallible;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Round-complexity statistics of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    per_node: Vec<usize>,
}

impl RoundStats {
    /// The all-zero statistics of an `n`-node execution that never
    /// communicated. This is the identity of [`RoundStats::sequential`].
    pub fn zero(n: usize) -> Self {
        RoundStats {
            per_node: vec![0; n],
        }
    }

    /// Statistics from explicit per-node view radii.
    pub fn from_per_node(per_node: Vec<usize>) -> Self {
        RoundStats { per_node }
    }

    /// The per-node view radii, indexed by node.
    pub fn per_node(&self) -> &[usize] {
        &self.per_node
    }

    /// Number of nodes in the measured execution.
    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// The round complexity: the maximum view radius any node requested.
    pub fn rounds(&self) -> usize {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// The view radius requested by node `v`.
    pub fn rounds_at(&self, v: NodeId) -> usize {
        self.per_node[v.index()]
    }

    /// Mean view radius over nodes.
    pub fn mean_rounds(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().sum::<usize>() as f64 / self.per_node.len() as f64
    }

    /// Merges two executions run back to back (radii add: the second
    /// phase starts after the first finished).
    pub fn sequential(&self, later: &RoundStats) -> RoundStats {
        assert_eq!(self.per_node.len(), later.per_node.len());
        RoundStats {
            per_node: self
                .per_node
                .iter()
                .zip(&later.per_node)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

/// Networks smaller than this run sequentially even when threads are
/// available — spawn overhead would dominate.
const PAR_MIN_NODES: usize = 512;

/// `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide thread-count override for the `*_par` entry points, taking
/// precedence over the `LAD_THREADS` environment variable and the detected
/// parallelism. `Some(1)` forces sequential execution; `None` restores
/// automatic selection. Intended for tests and benchmarks that compare
/// schedules within one process.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// The explicitly configured worker count (feature gate, override,
/// `LAD_THREADS`), or `None` when selection should be automatic.
fn configured_threads() -> Option<usize> {
    if cfg!(not(feature = "parallel")) {
        return Some(1);
    }
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o != 0 {
        return Some(o);
    }
    if let Ok(s) = std::env::var("LAD_THREADS") {
        if let Ok(t) = s.parse::<usize>() {
            if t >= 1 {
                return Some(t);
            }
        }
    }
    None
}

/// The number of worker threads [`run_local_par`] would use on an `n`-node
/// network, resolved in order:
///
/// 1. `1` when built without the `parallel` feature;
/// 2. the [`set_thread_override`] value, if set;
/// 3. the `LAD_THREADS` environment variable, if a positive integer;
/// 4. `1` when `n` is too small to amortize thread spawns;
/// 5. [`std::thread::available_parallelism`].
pub fn effective_parallelism(n: usize) -> usize {
    if let Some(t) = configured_threads() {
        return t;
    }
    if n < PAR_MIN_NODES {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Applies `f` to each item across worker threads, returning outputs in
/// item order — the fan-out primitive the centralized encoders use for
/// per-trail, per-cluster, and per-network work.
///
/// Items are split into contiguous chunks (one scoped thread each), so a
/// chunk's items run in index order and outputs land in index-addressed
/// slots: results never depend on scheduling. Thread count resolves like
/// [`effective_parallelism`] except there is no minimum item count —
/// encoder work items are coarse (a whole Euler trail, a whole training
/// network), unlike per-node decoder calls. Runs sequentially without the
/// `parallel` feature.
pub fn par_map<T, U>(items: &[T], f: impl Fn(usize, &T) -> U + Sync) -> Vec<U>
where
    T: Sync,
    U: Send,
{
    par_map_with(items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker mutable state: `init` runs once per worker
/// thread (once in total for a sequential run) and every `f` call on that
/// worker receives the same `&mut` state. This is how reusable workspaces
/// ([`crate::CanonScratch`], BFS scratch) thread through fan-outs
/// *explicitly* — scoped worker threads are fresh per call, so
/// thread-local storage would silently reallocate on every invocation.
pub fn par_map_with<T, U, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> U + Sync,
) -> Vec<U>
where
    T: Sync,
    U: Send,
{
    let n = items.len();
    let threads = configured_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .min(n.max(1));
    if !worth_spawning(n, threads) {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let mut outs: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk_len = n.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let mut rest = &mut outs[..];
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut state = init();
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = start + off;
                    *slot = Some(f(&mut state, i, &items[i]));
                }
            });
            start += take;
        }
    });
    outs.into_iter()
        .map(|o| o.expect("every chunk ran to completion"))
        .collect()
}

/// Runs `algo` independently at every node, returning per-node outputs and
/// the measured locality.
///
/// This is the *reference* executor: one fresh BFS per view request, no
/// sharing, no threads. [`run_local_par`] and the cached variants are
/// drop-in replacements with identical results.
///
/// # Example
///
/// ```
/// use lad_graph::generators;
/// use lad_runtime::{run_local, Network};
///
/// let net = Network::with_identity_ids(generators::path(5));
/// let (uids, stats) = run_local(&net, |ctx| ctx.uid());
/// assert_eq!(uids, vec![1, 2, 3, 4, 5]);
/// assert_eq!(stats.rounds(), 0); // no communication needed
/// ```
pub fn run_local<In: Clone, Out>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> (Vec<Out>, RoundStats) {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx));
        per_node.push(ctx.rounds_used());
    }
    (outs, RoundStats { per_node })
}

/// Like [`run_local`] for fallible algorithms: stops at the first node that
/// errors. The partial round statistics are discarded on error.
///
/// # Errors
///
/// Propagates the first per-node error in node-index order.
pub fn run_local_fallible<In: Clone, Out, E>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx)?);
        per_node.push(ctx.rounds_used());
    }
    Ok((outs, RoundStats { per_node }))
}

/// Sequential executor backed by an optional shared cache; otherwise a
/// worker-local scratch/memo. Single code path for all non-reference
/// sequential variants.
fn run_seq_impl<In: Clone, Out, E>(
    net: &Network<In>,
    cache: Option<&ViewCache<In>>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let n = net.graph().n();
    let scratch = RefCell::new(Scratch::new(n));
    let mut outs = Vec::with_capacity(n);
    let mut per_node = Vec::with_capacity(n);
    for v in net.graph().nodes() {
        let ctx = match cache {
            Some(c) => NodeCtx::with_cache(net, v, c, &scratch),
            None => NodeCtx::with_scratch(net, v, &scratch),
        };
        outs.push(algo(&ctx)?);
        per_node.push(ctx.rounds_used());
    }
    Ok((outs, RoundStats { per_node }))
}

/// Parallel executor: splits nodes into `threads` contiguous chunks, each
/// processed in index order by one scoped thread with its own BFS scratch.
/// Outputs and per-node radii are written into index-addressed slots, so
/// results are position-exact regardless of scheduling. Errors are reduced
/// to the smallest erroring node index — per-node functions are
/// independent, so that is exactly the error a sequential run returns.
fn run_par_impl<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    cache: Option<&ViewCache<In>>,
    algo: &(impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync),
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    let n = net.graph().n();
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let chunk_len = n.div_ceil(threads.max(1)).max(1);
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let mut out_rest = &mut outs[..];
        let mut pn_rest = &mut per_node[..];
        let mut start = 0usize;
        while !out_rest.is_empty() {
            let take = chunk_len.min(out_rest.len());
            let (out_chunk, rest) = out_rest.split_at_mut(take);
            out_rest = rest;
            let (pn_chunk, rest) = pn_rest.split_at_mut(take);
            pn_rest = rest;
            let first_err = &first_err;
            scope.spawn(move || {
                let scratch = RefCell::new(Scratch::new(n));
                for (off, (out_slot, pn_slot)) in
                    out_chunk.iter_mut().zip(pn_chunk.iter_mut()).enumerate()
                {
                    let v = NodeId::from_index(start + off);
                    let ctx = match cache {
                        Some(c) => NodeCtx::with_cache(net, v, c, &scratch),
                        None => NodeCtx::with_scratch(net, v, &scratch),
                    };
                    match algo(&ctx) {
                        Ok(out) => {
                            *out_slot = Some(out);
                            *pn_slot = ctx.rounds_used();
                        }
                        Err(e) => {
                            // Keep the smallest erroring node index; abandon
                            // the rest of this chunk like a sequential run
                            // abandons everything after its first error.
                            let mut fe = first_err.lock().expect("error slot poisoned");
                            let idx = start + off;
                            if fe.as_ref().is_none_or(|&(j, _)| idx < j) {
                                *fe = Some((idx, e));
                            }
                            return;
                        }
                    }
                }
            });
            start += take;
        }
    });
    if let Some((_, e)) = first_err.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("every chunk ran to completion"))
        .collect();
    Ok((outs, RoundStats { per_node }))
}

fn infallible<In, Out>(
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> impl Fn(&NodeCtx<In>) -> Result<Out, Infallible> {
    move |ctx| Ok(algo(ctx))
}

fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => match e {},
    }
}

/// Whether `threads` workers actually beat a sequential pass over `n`
/// nodes, given the feature gate.
fn worth_spawning(n: usize, threads: usize) -> bool {
    cfg!(feature = "parallel") && threads > 1 && n > 1
}

/// [`run_local`] over a shared [`ViewCache`]: identical results, but view
/// requests hit the cache. A second execution over the same cache (another
/// phase of a composed algorithm, a lookup-table training pass, …) reuses
/// every ball the first one gathered.
pub fn run_local_cached<In: Clone, Out>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> (Vec<Out>, RoundStats) {
    unwrap_infallible(run_seq_impl(net, Some(cache), infallible(algo)))
}

/// Fallible [`run_local_cached`].
///
/// # Errors
///
/// Propagates the first per-node error in node-index order.
pub fn run_local_fallible_cached<In: Clone, Out, E>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    run_seq_impl(net, Some(cache), algo)
}

/// Parallel [`run_local`]: same outputs and [`RoundStats`], bit for bit,
/// computed by [`effective_parallelism`] worker threads over contiguous
/// node ranges. Falls back to a sequential pass when built without the
/// `parallel` feature, when only one thread is available, or when the
/// network is too small to amortize spawns.
pub fn run_local_par<In, Out>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    run_local_par_with(net, effective_parallelism(net.graph().n()), algo)
}

/// [`run_local_par`] with an explicit worker-thread count (`<= 1` runs
/// sequentially). Results do not depend on `threads`.
pub fn run_local_par_with<In, Out>(
    net: &Network<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        unwrap_infallible(run_par_impl(net, threads, None, &infallible(algo)))
    } else {
        unwrap_infallible(run_seq_impl(net, None, infallible(algo)))
    }
}

/// Parallel [`run_local_fallible`]: same success results and the same
/// first-error-in-node-index-order semantics as the sequential run.
///
/// # Errors
///
/// Propagates the error of the smallest-index erroring node — per-node
/// functions are independent, so this is exactly the error a sequential
/// pass returns.
pub fn run_local_fallible_par<In, Out, E>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    run_local_fallible_par_with(net, effective_parallelism(net.graph().n()), algo)
}

/// [`run_local_fallible_par`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates the first per-node error in node-index order, independent of
/// `threads`.
pub fn run_local_fallible_par_with<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        run_par_impl(net, threads, None, &algo)
    } else {
        run_seq_impl(net, None, algo)
    }
}

/// Parallel execution over a shared [`ViewCache`]: overlapping balls are
/// gathered once (by whichever worker asks first) and reused by every
/// other worker and by later executions over the same cache.
pub fn run_local_par_cached<In, Out>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        unwrap_infallible(run_par_impl(net, threads, Some(cache), &infallible(algo)))
    } else {
        unwrap_infallible(run_seq_impl(net, Some(cache), infallible(algo)))
    }
}

/// Fallible [`run_local_par_cached`].
///
/// # Errors
///
/// Propagates the first per-node error in node-index order, independent of
/// `threads`.
pub fn run_local_fallible_par_cached<In, Out, E>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        run_par_impl(net, threads, Some(cache), &algo)
    } else {
        run_seq_impl(net, Some(cache), algo)
    }
}

// ---------------------------------------------------------------------------
// Memoized decode executor: decode once per canonical isomorphism class.
// ---------------------------------------------------------------------------

/// One rung of a memoized decode ladder (see [`run_local_memo`]).
///
/// The step function inspects a ball and either finishes or asks for a
/// strictly larger view — the same contract as an adaptive-radius
/// `ctx.ball(r)` loop under [`run_local`], reified as data so the
/// executor can memoize the decision per canonical class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoStep<Out> {
    /// The node's output is fully determined by the current view.
    Done(Out),
    /// The view is inconclusive; regather at this (strictly larger)
    /// radius and evaluate again.
    Expand(usize),
}

/// Counters describing one or more `run_local_memo*` executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Canonical-key lookups: one per ladder rung per node.
    pub lookups: u64,
    /// Distinct canonical classes evaluated (memo misses).
    pub classes: u64,
    /// Lookups answered from the memo without evaluating the step.
    pub hits: u64,
    /// Safety-net re-evaluations of already-memoized entries.
    pub verifications: u64,
    /// Misses whose class pre-fingerprint was absent from the memo — the
    /// probe was rejected before any exact word comparison. Always a subset
    /// of `classes`; a probe is counted once, never as both a fingerprint
    /// reject and a scanned miss (`lookups == hits + classes` holds).
    pub fp_rejects: u64,
    /// Nanoseconds spent gathering memberships and computing keys —
    /// exactly `sweep_ns + key_ns`.
    pub gather_ns: u64,
    /// Nanoseconds in the shared frontier sweep and per-shell bookkeeping
    /// (membership, uid-rank merge, edge appends).
    pub sweep_ns: u64,
    /// Nanoseconds serializing canonical key words and probing the memo.
    pub key_ns: u64,
    /// Nanoseconds spent materializing balls and evaluating the step.
    pub eval_ns: u64,
    /// Planner decisions that selected the plain parallel path.
    pub plans_plain: u64,
    /// Planner decisions that selected the memoized (shell-tiled) path.
    pub plans_memo: u64,
    /// Nanoseconds spent in planner instance probes (sampled keying and
    /// step evaluation).
    pub probe_ns: u64,
}

impl MemoStats {
    /// Fraction of lookups answered from the memo (`0.0` when none ran).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of misses rejected by the class pre-fingerprint alone,
    /// i.e. without comparing any exact key words (`0.0` when no miss
    /// occurred). High is good: a low rate means fingerprint collisions
    /// are forcing word comparisons on fresh classes.
    pub fn fp_reject_rate(&self) -> f64 {
        if self.classes == 0 {
            0.0
        } else {
            self.fp_rejects as f64 / self.classes as f64
        }
    }

    pub(crate) fn accumulate(&mut self, other: &MemoStats) {
        self.lookups += other.lookups;
        self.classes += other.classes;
        self.hits += other.hits;
        self.verifications += other.verifications;
        self.fp_rejects += other.fp_rejects;
        self.gather_ns += other.gather_ns;
        self.sweep_ns += other.sweep_ns;
        self.key_ns += other.key_ns;
        self.eval_ns += other.eval_ns;
        self.plans_plain += other.plans_plain;
        self.plans_memo += other.plans_memo;
        self.probe_ns += other.probe_ns;
    }
}

static MEMO_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static MEMO_CLASSES: AtomicU64 = AtomicU64::new(0);
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_VERIFICATIONS: AtomicU64 = AtomicU64::new(0);
static MEMO_FP_REJECTS: AtomicU64 = AtomicU64::new(0);
static MEMO_GATHER_NS: AtomicU64 = AtomicU64::new(0);
static MEMO_SWEEP_NS: AtomicU64 = AtomicU64::new(0);
static MEMO_KEY_NS: AtomicU64 = AtomicU64::new(0);
static MEMO_EVAL_NS: AtomicU64 = AtomicU64::new(0);
static MEMO_PLANS_PLAIN: AtomicU64 = AtomicU64::new(0);
static MEMO_PLANS_MEMO: AtomicU64 = AtomicU64::new(0);
static MEMO_PROBE_NS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn flush_memo_stats(s: &MemoStats) {
    MEMO_LOOKUPS.fetch_add(s.lookups, Ordering::Relaxed);
    MEMO_CLASSES.fetch_add(s.classes, Ordering::Relaxed);
    MEMO_HITS.fetch_add(s.hits, Ordering::Relaxed);
    MEMO_VERIFICATIONS.fetch_add(s.verifications, Ordering::Relaxed);
    MEMO_FP_REJECTS.fetch_add(s.fp_rejects, Ordering::Relaxed);
    MEMO_GATHER_NS.fetch_add(s.gather_ns, Ordering::Relaxed);
    MEMO_SWEEP_NS.fetch_add(s.sweep_ns, Ordering::Relaxed);
    MEMO_KEY_NS.fetch_add(s.key_ns, Ordering::Relaxed);
    MEMO_EVAL_NS.fetch_add(s.eval_ns, Ordering::Relaxed);
    MEMO_PLANS_PLAIN.fetch_add(s.plans_plain, Ordering::Relaxed);
    MEMO_PLANS_MEMO.fetch_add(s.plans_memo, Ordering::Relaxed);
    MEMO_PROBE_NS.fetch_add(s.probe_ns, Ordering::Relaxed);
}

/// Records one planner decision (and its probe cost) into the
/// process-wide counters — called by [`crate::plan`] so every planner
/// choice is visible to the same `memo_stats` snapshot benchmarks read.
pub(crate) fn record_plan(memo_chosen: bool, probe_ns: u64) {
    if memo_chosen {
        MEMO_PLANS_MEMO.fetch_add(1, Ordering::Relaxed);
    } else {
        MEMO_PLANS_PLAIN.fetch_add(1, Ordering::Relaxed);
    }
    MEMO_PROBE_NS.fetch_add(probe_ns, Ordering::Relaxed);
}

/// Resets the process-wide [`memo_stats`] counters. Benchmarks bracket a
/// decode with reset/read to attribute gather vs. evaluation time and the
/// memo hit rate; the counters flow through schema `decode` signatures
/// unchanged.
pub fn memo_stats_reset() {
    for c in [
        &MEMO_LOOKUPS,
        &MEMO_CLASSES,
        &MEMO_HITS,
        &MEMO_VERIFICATIONS,
        &MEMO_FP_REJECTS,
        &MEMO_GATHER_NS,
        &MEMO_SWEEP_NS,
        &MEMO_KEY_NS,
        &MEMO_EVAL_NS,
        &MEMO_PLANS_PLAIN,
        &MEMO_PLANS_MEMO,
        &MEMO_PROBE_NS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of the process-wide memo executor counters accumulated since
/// the last [`memo_stats_reset`] (across every `run_local_memo*` call in
/// the process, all threads).
pub fn memo_stats() -> MemoStats {
    MemoStats {
        lookups: MEMO_LOOKUPS.load(Ordering::Relaxed),
        classes: MEMO_CLASSES.load(Ordering::Relaxed),
        hits: MEMO_HITS.load(Ordering::Relaxed),
        verifications: MEMO_VERIFICATIONS.load(Ordering::Relaxed),
        fp_rejects: MEMO_FP_REJECTS.load(Ordering::Relaxed),
        gather_ns: MEMO_GATHER_NS.load(Ordering::Relaxed),
        sweep_ns: MEMO_SWEEP_NS.load(Ordering::Relaxed),
        key_ns: MEMO_KEY_NS.load(Ordering::Relaxed),
        eval_ns: MEMO_EVAL_NS.load(Ordering::Relaxed),
        plans_plain: MEMO_PLANS_PLAIN.load(Ordering::Relaxed),
        plans_memo: MEMO_PLANS_MEMO.load(Ordering::Relaxed),
        probe_ns: MEMO_PROBE_NS.load(Ordering::Relaxed),
    }
}

/// Multiply-rotate hasher for memo tables keyed by [`CanonicalKey`].
///
/// A key's `Hash` impl writes its single construction-time fold word, so
/// per-lookup hashing is one `write_u64`; this hasher finishes that word
/// without SipHash's initialization and finalization overhead. Key words
/// derive from the caller's own graph, not attacker-controlled input, so a
/// fast non-cryptographic word hash is the right trade. Collisions only
/// cost an extra full-key comparison — never correctness.
#[derive(Default)]
pub(crate) struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, word: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
}

pub(crate) type KeyHashMap<V> = HashMap<CanonicalKey, V, std::hash::BuildHasherDefault<KeyHasher>>;

/// What the memo records for one canonical class at one rung.
pub(crate) enum MemoEntryKind<Out> {
    /// The class decodes to this output.
    Done(Out),
    /// The class asks for a larger radius.
    Expand(usize),
    /// The step failed on this class. Error payloads address specific
    /// nodes, so only the *fact* of failure is shared; the actual error is
    /// regenerated for the smallest-index failing node at the end
    /// ([`memo_first_error`]), matching [`run_local_fallible`]'s
    /// first-error-in-node-order contract.
    Failed,
}

pub(crate) struct MemoEntry<Out> {
    pub(crate) kind: MemoEntryKind<Out>,
    /// Reuse count; drives the geometric verification schedule.
    pub(crate) hits: u32,
    /// Identity stable across bucket reordering ([`ClassMemo::entry_mut`]
    /// front-swaps on every hit), so long-lived sessions can refer to a
    /// class without holding its key. Assigned by [`ClassMemo::insert`].
    pub(crate) id: u64,
    /// How many nodes currently rely on this class. Only maintained by
    /// executors that pass an assignment log to [`memo_run_tile`] (the
    /// churn session); the one-shot executors leave it at zero.
    pub(crate) members: u32,
}

pub(crate) fn memo_kind_eq<Out: PartialEq>(a: &MemoEntryKind<Out>, b: &MemoEntryKind<Out>) -> bool {
    match (a, b) {
        (MemoEntryKind::Done(x), MemoEntryKind::Done(y)) => x == y,
        (MemoEntryKind::Expand(x), MemoEntryKind::Expand(y)) => x == y,
        (MemoEntryKind::Failed, MemoEntryKind::Failed) => true,
        _ => false,
    }
}

/// Network-wide BFS visit order, restarting at the smallest unvisited
/// node per component. Consecutive nodes overlap in all but an O(r·Δ)
/// frontier of their balls, so the incremental gather stays cache-hot and
/// new canonical classes surface early (seams first, then a long run of
/// hits).
pub(crate) fn bfs_visit_order(g: &Graph) -> Vec<NodeId> {
    let n = g.n();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut head = 0usize;
    let mut next_seed = 0usize;
    while order.len() < n {
        if head == order.len() {
            while seen[next_seed] {
                next_seed += 1;
            }
            seen[next_seed] = true;
            order.push(NodeId::from_index(next_seed));
        }
        let v = order[head];
        head += 1;
        for &u in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                order.push(u);
            }
        }
    }
    order
}

/// Two-level class memo: classes bucketed by pre-fingerprint, exact keys
/// compared word-for-word within a bucket. A probe whose fingerprint is
/// absent is rejected without touching any key words; a present bucket is
/// scanned with slice comparisons against the engine's reusable emission
/// buffer, so hits allocate nothing — an owned [`CanonicalKey`] is only
/// materialized when a new class is inserted.
type Bucket<Out> = Vec<(CanonicalKey, MemoEntry<Out>)>;

pub(crate) struct ClassMemo<Out> {
    buckets: HashMap<u64, Bucket<Out>, std::hash::BuildHasherDefault<KeyHasher>>,
    /// Next stable entry id; see [`MemoEntry::id`].
    next_id: u64,
}

impl<Out> Default for ClassMemo<Out> {
    fn default() -> Self {
        ClassMemo {
            buckets: HashMap::default(),
            next_id: 0,
        }
    }
}

/// A stable reference to one memo class: `(pre-fingerprint, entry id)`.
/// Survives bucket reordering; used by the churn session's per-node
/// assignment chains.
pub(crate) type ClassRef = (u64, u64);

/// Outcome of a [`ClassMemo::probe`], split so the accounting can tell a
/// fingerprint-rejected miss from a scanned-bucket miss without counting
/// either twice.
pub(crate) enum Probe {
    /// Exact match at this bucket position.
    Hit(usize),
    /// No bucket for the fingerprint: rejected before exact keying.
    MissRejected,
    /// Bucket existed (fingerprint collision) but no key words matched.
    MissScanned,
}

impl<Out> ClassMemo<Out> {
    /// Probes the memo with a caller-supplied word-equality test — the
    /// engine streams its would-be key serialization against each
    /// candidate's stored words, so a probe materializes nothing. The test
    /// must be a pure equality check (same verdict for the same candidate);
    /// bucket order is first-inserted-first, so within a fingerprint bucket
    /// the probe cost is one streamed comparison per colliding class, each
    /// failing at the first differing word.
    pub(crate) fn probe_with(&self, fp: u64, mut eq: impl FnMut(&[u64]) -> bool) -> Probe {
        match self.buckets.get(&fp) {
            None => Probe::MissRejected,
            Some(bucket) => bucket
                .iter()
                .position(|(key, _)| eq(key.words()))
                .map_or(Probe::MissScanned, Probe::Hit),
        }
    }

    /// Fetches a hit's entry and moves its class to the bucket front, so a
    /// run of probes matching the same class confirms against the first
    /// candidate. Bucket order is pure probe-cost heuristic: classes in a
    /// bucket have distinct keys, so a probe's verdict is order-blind.
    fn entry_mut(&mut self, fp: u64, idx: usize) -> &mut MemoEntry<Out> {
        let bucket = self.buckets.get_mut(&fp).expect("probed bucket");
        bucket.swap(0, idx);
        &mut bucket[0].1
    }

    /// Inserts a new class and returns its stable id.
    fn insert(&mut self, fp: u64, key: CanonicalKey, mut entry: MemoEntry<Out>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        entry.id = id;
        self.buckets.entry(fp).or_default().push((key, entry));
        id
    }

    /// Drops one membership from the class `(fp, id)` refers to. When the
    /// class loses its last member it is **retired**: the entry (and its
    /// bucket, if emptied) is removed, so a later probe of the same
    /// structure is a fresh miss that re-evaluates the step. Returns
    /// whether the class was retired.
    ///
    /// # Panics
    ///
    /// Panics if the reference is dangling or the class has no members —
    /// both mean the caller's assignment chains are out of sync.
    pub(crate) fn release(&mut self, (fp, id): ClassRef) -> bool {
        let bucket = self
            .buckets
            .get_mut(&fp)
            .expect("released class has a bucket");
        let idx = bucket
            .iter()
            .position(|(_, e)| e.id == id)
            .expect("released class is present");
        let entry = &mut bucket[idx].1;
        assert!(entry.members > 0, "released class has members");
        entry.members -= 1;
        if entry.members > 0 {
            return false;
        }
        bucket.swap_remove(idx);
        if bucket.is_empty() {
            self.buckets.remove(&fp);
        }
        true
    }

    /// Number of live classes.
    pub(crate) fn class_count(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Total membership across all classes (zero for one-shot executors,
    /// which don't log assignments).
    pub(crate) fn member_count(&self) -> usize {
        self.buckets
            .values()
            .flatten()
            .map(|(_, e)| e.members as usize)
            .sum()
    }

    pub(crate) fn into_entries(self) -> impl Iterator<Item = (CanonicalKey, MemoEntry<Out>)> {
        self.buckets.into_values().flatten()
    }
}

/// Runs the decode ladders of one tile of centers against a class memo,
/// sharing a single shell-indexed sweep ([`ShellEngine`]) across all of
/// them. On a memo miss the ball is materialized (from the canonical
/// membership) and the step evaluated, then shared with the whole class;
/// on a hit a center pays only its share of the sweep and the keying.
/// Every entry is re-evaluated on a geometric schedule of its reuses
/// (1st, 2nd, 4th, 8th, … hit) as a differential safety net: a step whose
/// output is *not* a function of the canonical view is reported as
/// [`NotOrderInvariant`] instead of silently decoding wrong.
///
/// Output and radius slots are addressed at `v.index() - base`, so the
/// sequential driver passes full slices (`base = 0`) and the parallel
/// driver passes its chunk (`base =` chunk start).
#[allow(clippy::too_many_arguments)]
pub(crate) fn memo_run_tile<In: Clone, Out: Clone + PartialEq, E>(
    net: &Network<In>,
    centers: &[NodeId],
    base: usize,
    initial_radius: usize,
    input_tag: &impl Fn(&In, &mut Vec<u64>),
    step: &impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
    memo: &mut ClassMemo<Out>,
    engine: &mut ShellEngine,
    stats: &mut MemoStats,
    failed: &mut Vec<usize>,
    outs: &mut [Option<Out>],
    per_node: &mut [usize],
    // When present (the churn session), every class a center confirms or
    // creates — each `Expand` rung plus the final verdict — is appended to
    // `assign[v.index() - base]` and counted in `MemoEntry::members`, so
    // invalidation can later release exactly what this node pinned.
    mut assign: Option<&mut [Vec<ClassRef>]>,
) -> Result<(), NotOrderInvariant> {
    let t0 = Instant::now();
    engine.start_tile(net, centers);
    let dt = t0.elapsed().as_nanos() as u64;
    stats.sweep_ns += dt;
    stats.gather_ns += dt;
    // `(bit, previous radius, target radius)`, `usize::MAX` = unstarted.
    // Each wave is grouped by (previous, target) rung so one
    // [`ShellEngine::extend_centers`] batch serves every center making the
    // same hop — that batching is where the shared gather pays. Grouping
    // permutes probe order within a wave, which is safe: memo entries are
    // keyed by canonical class and every output is class-determined, so
    // the decoded labeling cannot depend on which center created an entry.
    let mut active: Vec<(usize, usize, usize)> = (0..centers.len())
        .map(|bit| (bit, usize::MAX, initial_radius))
        .collect();
    let mut next: Vec<(usize, usize, usize)> = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    while !active.is_empty() {
        active.sort_unstable_by_key(|&(bit, prev, r)| (prev, r, bit));
        let mut i = 0;
        while i < active.len() {
            let (_, prev, r) = active[i];
            group.clear();
            while i < active.len() && (active[i].1, active[i].2) == (prev, r) {
                group.push(active[i].0);
                i += 1;
            }
            let t = Instant::now();
            engine.extend_centers(net, &group, r, input_tag);
            let dt = t.elapsed().as_nanos() as u64;
            stats.sweep_ns += dt;
            stats.gather_ns += dt;
            for &bit in &group {
                let v = centers[bit];
                let t = Instant::now();
                // Hit path: stream-confirm against the fingerprint bucket's
                // classes without materializing this center's key words — only
                // a miss ever pays the full serialization (inside
                // `canonical_key`, on insert).
                let fp = engine.pre_fp(bit);
                let probe = memo.probe_with(fp, |cand| engine.confirm(bit, cand));
                let dt = t.elapsed().as_nanos() as u64;
                stats.key_ns += dt;
                stats.gather_ns += dt;
                stats.lookups += 1;
                match probe {
                    Probe::Hit(idx) => {
                        stats.hits += 1;
                        let entry = memo.entry_mut(fp, idx);
                        entry.hits += 1;
                        if let Some(assign) = assign.as_deref_mut() {
                            entry.members += 1;
                            assign[v.index() - base].push((fp, entry.id));
                        }
                        let verify = entry.hits.is_power_of_two();
                        let kind = match &entry.kind {
                            MemoEntryKind::Done(out) => MemoEntryKind::Done(out.clone()),
                            MemoEntryKind::Expand(r2) => MemoEntryKind::Expand(*r2),
                            MemoEntryKind::Failed => MemoEntryKind::Failed,
                        };
                        if verify {
                            stats.verifications += 1;
                            let t = Instant::now();
                            let ball = engine.build_ball(net, bit);
                            let res = step(&ball);
                            stats.eval_ns += t.elapsed().as_nanos() as u64;
                            let agrees = match (&res, &kind) {
                                (Ok(MemoStep::Done(a)), MemoEntryKind::Done(b)) => a == b,
                                (Ok(MemoStep::Expand(ra)), MemoEntryKind::Expand(rb)) => ra == rb,
                                (Err(_), MemoEntryKind::Failed) => true,
                                _ => false,
                            };
                            if !agrees {
                                return Err(NotOrderInvariant {
                                    key: engine.canonical_key(bit),
                                });
                            }
                        }
                        match kind {
                            MemoEntryKind::Done(out) => {
                                outs[v.index() - base] = Some(out);
                                per_node[v.index() - base] = r;
                            }
                            MemoEntryKind::Expand(r2) => next.push((bit, r, r2)),
                            MemoEntryKind::Failed => {
                                failed.push(v.index());
                                per_node[v.index() - base] = r;
                            }
                        }
                    }
                    miss => {
                        if matches!(miss, Probe::MissRejected) {
                            stats.fp_rejects += 1;
                        }
                        stats.classes += 1;
                        let t = Instant::now();
                        let ball = engine.build_ball(net, bit);
                        let res = step(&ball);
                        stats.eval_ns += t.elapsed().as_nanos() as u64;
                        let key = engine.canonical_key(bit);
                        let kind = match res {
                            Ok(MemoStep::Done(out)) => {
                                outs[v.index() - base] = Some(out.clone());
                                per_node[v.index() - base] = r;
                                MemoEntryKind::Done(out)
                            }
                            Ok(MemoStep::Expand(r2)) => {
                                assert!(
                                    r2 > r,
                                    "MemoStep::Expand must strictly increase the radius"
                                );
                                next.push((bit, r, r2));
                                MemoEntryKind::Expand(r2)
                            }
                            Err(_) => {
                                failed.push(v.index());
                                per_node[v.index() - base] = r;
                                MemoEntryKind::Failed
                            }
                        };
                        // The inserting node is the class's first member.
                        let members = u32::from(assign.is_some());
                        let id = memo.insert(
                            fp,
                            key,
                            MemoEntry {
                                kind,
                                hits: 0,
                                id: 0,
                                members,
                            },
                        );
                        if let Some(assign) = assign.as_deref_mut() {
                            assign[v.index() - base].push((fp, id));
                        }
                    }
                }
            }
        }
        active.clear();
        std::mem::swap(&mut active, &mut next);
    }
    Ok(())
}

/// Replays one node's full ladder *without* the memo to regenerate its
/// exact error — the payload addresses this node, so it cannot be shared
/// across the class. If the replay unexpectedly succeeds (or stalls) where
/// its class failed, the step is not order-invariant.
pub(crate) fn memo_first_error<In: Clone, Out, E: From<NotOrderInvariant>>(
    net: &Network<In>,
    v: NodeId,
    initial_radius: usize,
    input_tag: &impl Fn(&In, &mut Vec<u64>),
    step: &impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
    scratch: &mut Scratch,
    cscratch: &mut CanonScratch,
) -> E {
    let g = net.graph();
    let mut members = BallMembers::gather(g, v, initial_radius, scratch);
    loop {
        let ball = members.build_current(net, scratch);
        match step(&ball) {
            Err(e) => return e,
            Ok(MemoStep::Expand(r)) if r > members.radius() => members.expand(g, r, scratch),
            _ => {
                let key = key_of_members(
                    net,
                    members.members(),
                    members.radius(),
                    |u| scratch.current_local(u),
                    input_tag,
                    cscratch,
                );
                return NotOrderInvariant { key }.into();
            }
        }
    }
}

fn run_memo_seq<In: Clone, Out: Clone + PartialEq, E: From<NotOrderInvariant>>(
    net: &Network<In>,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>),
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let g = net.graph();
    let n = g.n();
    let mut stats = MemoStats::default();
    let mut memo: ClassMemo<Out> = ClassMemo::default();
    let mut engine = ShellEngine::new(net, &input_tag);
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let mut failed: Vec<usize> = Vec::new();
    // BFS visit order keeps consecutive tiles spatially coherent, so one
    // shared frontier sweep covers 64 overlapping balls at once.
    for tile in bfs_visit_order(g).chunks(TILE_WIDTH) {
        if let Err(conflict) = memo_run_tile(
            net,
            tile,
            0,
            initial_radius,
            &input_tag,
            &step,
            &mut memo,
            &mut engine,
            &mut stats,
            &mut failed,
            &mut outs,
            &mut per_node,
            None,
        ) {
            flush_memo_stats(&stats);
            return Err(conflict.into());
        }
    }
    flush_memo_stats(&stats);
    if let Some(&i) = failed.iter().min() {
        let mut scratch = Scratch::new(n);
        let mut cscratch = CanonScratch::new();
        return Err(memo_first_error(
            net,
            NodeId::from_index(i),
            initial_radius,
            &input_tag,
            &step,
            &mut scratch,
            &mut cscratch,
        ));
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("non-failing run fills every node"))
        .collect();
    Ok((outs, RoundStats { per_node }))
}

#[allow(clippy::type_complexity)]
fn run_memo_par<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    initial_radius: usize,
    input_tag: &(impl Fn(&In, &mut Vec<u64>) + Sync),
    step: &(impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync),
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
    E: From<NotOrderInvariant> + Send,
{
    let g = net.graph();
    let n = g.n();
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let chunk_len = n.div_ceil(threads.max(1)).max(1);
    let conflict: Mutex<Option<NotOrderInvariant>> = Mutex::new(None);
    // Per-worker shards, replay-merged after the join: (chunk start, class
    // memo, failed node indices).
    let shards: Mutex<Vec<(usize, ClassMemo<Out>, Vec<usize>)>> = Mutex::new(Vec::new());
    let mut stats = MemoStats::default();
    let stats_total: Mutex<MemoStats> = Mutex::new(MemoStats::default());
    std::thread::scope(|scope| {
        let mut out_rest = &mut outs[..];
        let mut pn_rest = &mut per_node[..];
        let mut start = 0usize;
        while !out_rest.is_empty() {
            let take = chunk_len.min(out_rest.len());
            let (out_chunk, rest) = out_rest.split_at_mut(take);
            out_rest = rest;
            let (pn_chunk, rest) = pn_rest.split_at_mut(take);
            pn_rest = rest;
            let (conflict, shards, stats_total) = (&conflict, &shards, &stats_total);
            scope.spawn(move || {
                let mut memo: ClassMemo<Out> = ClassMemo::default();
                let mut engine = ShellEngine::new(net, input_tag);
                let mut local = MemoStats::default();
                let mut failed: Vec<usize> = Vec::new();
                let mut tile_centers: Vec<NodeId> = Vec::with_capacity(TILE_WIDTH);
                let mut off = 0usize;
                while off < take {
                    let t = TILE_WIDTH.min(take - off);
                    tile_centers.clear();
                    tile_centers.extend((0..t).map(|i| NodeId::from_index(start + off + i)));
                    if let Err(c) = memo_run_tile(
                        net,
                        &tile_centers,
                        start,
                        initial_radius,
                        input_tag,
                        step,
                        &mut memo,
                        &mut engine,
                        &mut local,
                        &mut failed,
                        out_chunk,
                        pn_chunk,
                        None,
                    ) {
                        let mut slot = conflict.lock().expect("conflict slot poisoned");
                        if slot.is_none() {
                            *slot = Some(c);
                        }
                        break;
                    }
                    off += t;
                }
                stats_total
                    .lock()
                    .expect("stats slot poisoned")
                    .accumulate(&local);
                shards
                    .lock()
                    .expect("shard slot poisoned")
                    .push((start, memo, failed));
            });
            start += take;
        }
    });
    stats.accumulate(&stats_total.into_inner().expect("stats slot poisoned"));
    flush_memo_stats(&stats);
    if let Some(c) = conflict.into_inner().expect("conflict slot poisoned") {
        return Err(c.into());
    }
    // Replay-merge: fold every shard's class memo into one map, in chunk
    // order. A key two workers resolved differently is exactly a conflict
    // the sequential safety net would have caught — report it instead of
    // returning schedule-dependent outputs.
    let mut shards = shards.into_inner().expect("shard slot poisoned");
    shards.sort_by_key(|&(start, _, _)| start);
    let mut merged: KeyHashMap<MemoEntryKind<Out>> = HashMap::default();
    let mut failed: Vec<usize> = Vec::new();
    for (_, memo, shard_failed) in shards {
        for (key, entry) in memo.into_entries() {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(entry.kind);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    if !memo_kind_eq(slot.get(), &entry.kind) {
                        let key = slot.key().clone();
                        return Err(NotOrderInvariant { key }.into());
                    }
                }
            }
        }
        failed.extend(shard_failed);
    }
    if let Some(&i) = failed.iter().min() {
        let mut scratch = Scratch::new(n);
        let mut cscratch = CanonScratch::new();
        return Err(memo_first_error(
            net,
            NodeId::from_index(i),
            initial_radius,
            input_tag,
            step,
            &mut scratch,
            &mut cscratch,
        ));
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("non-failing run fills every node"))
        .collect();
    Ok((outs, RoundStats { per_node }))
}

/// Memoized executor for **order-invariant** adaptive-radius algorithms:
/// runs `step` once per distinct canonical class of advice-labeled balls
/// and shares the output across every node in the class.
///
/// Nodes are processed in BFS order, in tiles of up to 64 centers that
/// share a *single* shell-indexed frontier sweep: one bitset BFS stamps
/// per-center distance shells for the whole tile at once, and each
/// center's [`CanonicalKey`] (inputs folded in through `input_tag`, which
/// must be prefix-free — fixed arity or self-delimiting) is serialized
/// incrementally shell by shell. A commutative pre-fingerprint of the key
/// buckets the memo, so most misses are rejected before any exact word
/// comparison. The ladder `step` prescribes: [`MemoStep::Done`] finishes
/// the node, [`MemoStep::Expand`] extends that center's sweep and re-keys
/// only the new shells.
///
/// Outputs, per-node radii, and error choice are identical to running the
/// equivalent `ctx.ball(r)` ladder under [`run_local`] — provided `step`
/// is order-invariant. That premise is *checked*, not trusted: memo
/// entries are re-evaluated against fresh balls on a geometric schedule
/// of their reuses, and any disagreement (including cross-shard
/// disagreement in the parallel variants) aborts with
/// [`NotOrderInvariant`] instead of returning wrong answers.
///
/// # Errors
///
/// [`NotOrderInvariant`] if two isomorphic views produced different step
/// results.
///
/// # Panics
///
/// Panics if `step` requests [`MemoStep::Expand`] to a radius that does
/// not strictly increase.
pub fn run_local_memo<In: Clone, Out: Clone + PartialEq>(
    net: &Network<In>,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>),
    step: impl Fn(&Ball<In>) -> MemoStep<Out>,
) -> Result<(Vec<Out>, RoundStats), NotOrderInvariant> {
    run_memo_seq::<_, _, NotOrderInvariant>(net, initial_radius, input_tag, |ball| Ok(step(ball)))
}

/// [`run_local_memo`] for fallible steps. Failures are memoized as facts
/// ("this class fails") and the concrete error of the smallest-index
/// failing node is regenerated by replaying that node without the memo,
/// so node-addressed payloads match [`run_local_fallible`] exactly.
///
/// # Errors
///
/// The first per-node error in node-index order, or
/// [`NotOrderInvariant`] (through `E: From<NotOrderInvariant>`) if the
/// step is not order-invariant.
pub fn run_local_memo_fallible<In: Clone, Out: Clone + PartialEq, E: From<NotOrderInvariant>>(
    net: &Network<In>,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>),
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    run_memo_seq(net, initial_radius, input_tag, step)
}

/// Parallel [`run_local_memo`]: contiguous node chunks across
/// [`effective_parallelism`] workers, one class memo per worker, merged
/// after the join ([`run_local_memo_par_with`] for details).
///
/// # Errors
///
/// [`NotOrderInvariant`] if two isomorphic views produced different step
/// results.
pub fn run_local_memo_par<In, Out>(
    net: &Network<In>,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> MemoStep<Out> + Sync,
) -> Result<(Vec<Out>, RoundStats), NotOrderInvariant>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
{
    run_local_memo_par_with(
        net,
        effective_parallelism(net.graph().n()),
        initial_radius,
        input_tag,
        step,
    )
}

/// [`run_local_memo_par`] with an explicit worker count. Workers keep
/// *independent* class memos over contiguous node ranges (no shared-map
/// contention); after the join the shards are replay-merged and any key
/// two workers resolved differently aborts with [`NotOrderInvariant`].
/// For an order-invariant step the outputs are bit-identical to the
/// sequential run for every `threads` value.
///
/// # Errors
///
/// [`NotOrderInvariant`] if two isomorphic views produced different step
/// results.
pub fn run_local_memo_par_with<In, Out>(
    net: &Network<In>,
    threads: usize,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> MemoStep<Out> + Sync,
) -> Result<(Vec<Out>, RoundStats), NotOrderInvariant>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
{
    let step = |ball: &Ball<In>| Ok(step(ball));
    if worth_spawning(net.graph().n(), threads) {
        run_memo_par::<_, _, NotOrderInvariant>(net, threads, initial_radius, &input_tag, &step)
    } else {
        run_memo_seq::<_, _, NotOrderInvariant>(net, initial_radius, input_tag, step)
    }
}

/// Parallel [`run_local_memo_fallible`] with automatic worker count.
///
/// # Errors
///
/// The first per-node error in node-index order, or
/// [`NotOrderInvariant`] through `E: From<NotOrderInvariant>`.
pub fn run_local_memo_fallible_par<In, Out, E>(
    net: &Network<In>,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
    E: From<NotOrderInvariant> + Send,
{
    run_local_memo_fallible_par_with(
        net,
        effective_parallelism(net.graph().n()),
        initial_radius,
        input_tag,
        step,
    )
}

/// [`run_local_memo_fallible_par`] with an explicit worker count; see
/// [`run_local_memo_par_with`] for the sharding and merge contract.
///
/// # Errors
///
/// The first per-node error in node-index order, or
/// [`NotOrderInvariant`] through `E: From<NotOrderInvariant>`.
pub fn run_local_memo_fallible_par_with<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    initial_radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>) + Sync,
    step: impl Fn(&Ball<In>) -> Result<MemoStep<Out>, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Clone + PartialEq + Send,
    E: From<NotOrderInvariant> + Send,
{
    if worth_spawning(net.graph().n(), threads) {
        run_memo_par(net, threads, initial_radius, &input_tag, &step)
    } else {
        run_memo_seq(net, initial_radius, input_tag, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn local_min_uid_within_radius() {
        let net = Network::with_identity_ids(generators::cycle(9));
        let (outs, stats) = run_local(&net, |ctx| {
            let ball = ctx.ball(2);
            ball.graph()
                .nodes()
                .map(|v| ball.uid(v))
                .min()
                .expect("nonempty ball")
        });
        assert_eq!(stats.rounds(), 2);
        assert_eq!(outs[0], 1); // sees uids {8,9,1,2,3} -> 1
        assert_eq!(outs[4], 3); // sees uids {3,4,5,6,7} -> 3
    }

    #[test]
    fn fallible_run_propagates_error() {
        let net = Network::with_identity_ids(generators::path(4));
        let res: Result<(Vec<()>, _), String> = run_local_fallible(&net, |ctx| {
            if ctx.uid() == 3 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        });
        assert_eq!(res.unwrap_err(), "boom");
    }

    #[test]
    fn stats_sequential_composition() {
        let net = Network::with_identity_ids(generators::path(4));
        let (_, s1) = run_local(&net, |ctx| ctx.ball(2).n());
        let (_, s2) = run_local(&net, |ctx| ctx.ball(3).n());
        let s = s1.sequential(&s2);
        assert_eq!(s.rounds(), 5);
        assert_eq!(s.rounds_at(NodeId(0)), 5);
    }

    #[test]
    fn mean_rounds() {
        let net = Network::with_identity_ids(generators::path(2));
        let (_, stats) = run_local(&net, |ctx| if ctx.uid() == 1 { ctx.ball(4).n() } else { 0 });
        assert_eq!(stats.rounds(), 4);
        assert!((stats.mean_rounds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_radius_stops_early() {
        // Nodes expand until they see an endpoint of the path.
        let net = Network::with_identity_ids(generators::path(12));
        let (_, stats) = run_local(&net, |ctx| {
            let mut r = 1;
            loop {
                let ball = ctx.ball(r);
                let sees_endpoint = ball.graph().nodes().any(|v| ball.global_degree(v) == 1);
                if sees_endpoint {
                    return r;
                }
                r += 1;
            }
        });
        assert_eq!(stats.rounds_at(NodeId(0)), 1);
        assert_eq!(stats.rounds(), 5); // middle nodes reach an endpoint in 5
    }

    #[test]
    fn zero_stats_are_sequential_identity() {
        let net = Network::with_identity_ids(generators::cycle(6));
        let (_, s) = run_local(&net, |ctx| ctx.ball(2).n());
        assert_eq!(s.sequential(&RoundStats::zero(6)), s);
        assert_eq!(RoundStats::zero(6).sequential(&s), s);
        assert_eq!(RoundStats::zero(0).rounds(), 0);
    }

    #[test]
    fn parallel_matches_sequential_on_adaptive_algo() {
        let net = Network::with_identity_ids(generators::path(40));
        let algo = |ctx: &NodeCtx| {
            let mut r = 1;
            loop {
                let ball = ctx.ball(r);
                if ball.graph().nodes().any(|v| ball.global_degree(v) == 1) {
                    return (r, ball.n());
                }
                r += 1;
            }
        };
        let seq = run_local(&net, algo);
        for threads in [1, 2, 5] {
            assert_eq!(run_local_par_with(&net, threads, algo), seq);
        }
        let cache = ViewCache::for_network(&net);
        assert_eq!(run_local_cached(&net, &cache, algo), seq);
        assert_eq!(run_local_par_cached(&net, &cache, 3, algo), seq);
        assert!(cache.stats().hits > 0, "second run should hit the cache");
    }

    #[test]
    fn parallel_error_is_first_in_node_order() {
        // Nodes 7, 3, and 31 all fail; every schedule must report node 3's
        // error, like the sequential run does.
        let net = Network::with_identity_ids(generators::cycle(40));
        let algo = |ctx: &NodeCtx| {
            let idx = ctx.node().index();
            if idx == 7 || idx == 3 || idx == 31 {
                Err(format!("node {idx} failed"))
            } else {
                Ok(ctx.ball(1).n())
            }
        };
        let seq_err = run_local_fallible(&net, algo).unwrap_err();
        assert_eq!(seq_err, "node 3 failed");
        for threads in [1, 2, 4, 8, 40] {
            assert_eq!(
                run_local_fallible_par_with(&net, threads, algo).unwrap_err(),
                seq_err,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn thread_override_takes_precedence() {
        set_thread_override(Some(3));
        assert_eq!(
            effective_parallelism(1_000_000),
            if cfg!(feature = "parallel") { 3 } else { 1 }
        );
        set_thread_override(None);
        assert_eq!(effective_parallelism(4), 1); // below the small-n cutoff
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(
            par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * x
            }),
            expect
        );
        for threads in [1, 2, 3, 8] {
            set_thread_override(Some(threads));
            assert_eq!(par_map(&items, |_, &x| x * x), expect, "threads {threads}");
        }
        set_thread_override(None);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(par_map(&empty, |_, &x: &usize| x), empty);
    }

    #[test]
    fn memo_stats_reconcile() {
        // The only lib test touching the process-wide memo counters, so the
        // snapshot below observes exactly this run. Ladder: everyone expands
        // 1 -> 2 and then reports the ball size, giving both Expand and Done
        // rungs, plenty of hits, and (on a torus) very few classes.
        memo_stats_reset();
        let net = Network::with_identity_ids(generators::grid2d(8, 8, true));
        let (outs, _) = run_local_memo(
            &net,
            1,
            |_, _| {},
            |ball| {
                if ball.radius() < 2 {
                    MemoStep::Expand(2)
                } else {
                    MemoStep::Done(ball.n())
                }
            },
        )
        .expect("order-invariant step");
        assert!(outs.iter().all(|&k| k == 13));
        let s = memo_stats();
        // Every probe is either a hit or a new class — a fingerprint-
        // rejected miss is *not* double-counted as both.
        assert_eq!(s.lookups, s.hits + s.classes);
        assert!(s.fp_rejects <= s.classes, "rejects are a subset of misses");
        assert!(s.classes >= 1 && s.hits > 0);
        // The two gather phases partition the gather total exactly.
        assert_eq!(s.gather_ns, s.sweep_ns + s.key_ns);
        assert!(s.verifications >= 1);
    }

    #[test]
    fn empty_network_runs_everywhere() {
        let net: Network<()> =
            Network::with_identity_ids(lad_graph::builder::GraphBuilder::new(0).build());
        let (outs, stats) = run_local_par_with(&net, 4, |ctx| ctx.uid());
        assert!(outs.is_empty());
        assert_eq!(stats, RoundStats::zero(0));
    }
}
