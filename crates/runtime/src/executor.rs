//! Executing a LOCAL algorithm at every node and measuring its locality.

use crate::ctx::NodeCtx;
use crate::network::Network;
use lad_graph::NodeId;

/// Round-complexity statistics of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    per_node: Vec<usize>,
}

impl RoundStats {
    /// The round complexity: the maximum view radius any node requested.
    pub fn rounds(&self) -> usize {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// The view radius requested by node `v`.
    pub fn rounds_at(&self, v: NodeId) -> usize {
        self.per_node[v.index()]
    }

    /// Mean view radius over nodes.
    pub fn mean_rounds(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().sum::<usize>() as f64 / self.per_node.len() as f64
    }

    /// Merges two executions run back to back (radii add: the second
    /// phase starts after the first finished).
    pub fn sequential(&self, later: &RoundStats) -> RoundStats {
        assert_eq!(self.per_node.len(), later.per_node.len());
        RoundStats {
            per_node: self
                .per_node
                .iter()
                .zip(&later.per_node)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

/// Runs `algo` independently at every node, returning per-node outputs and
/// the measured locality.
///
/// # Example
///
/// ```
/// use lad_graph::generators;
/// use lad_runtime::{run_local, Network};
///
/// let net = Network::with_identity_ids(generators::path(5));
/// let (uids, stats) = run_local(&net, |ctx| ctx.uid());
/// assert_eq!(uids, vec![1, 2, 3, 4, 5]);
/// assert_eq!(stats.rounds(), 0); // no communication needed
/// ```
pub fn run_local<In: Clone, Out>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> (Vec<Out>, RoundStats) {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx));
        per_node.push(ctx.rounds_used());
    }
    (outs, RoundStats { per_node })
}

/// Like [`run_local`] for fallible algorithms: stops at the first node that
/// errors. The partial round statistics are discarded on error.
///
/// # Errors
///
/// Propagates the first per-node error in node-index order.
pub fn run_local_fallible<In: Clone, Out, E>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx)?);
        per_node.push(ctx.rounds_used());
    }
    Ok((outs, RoundStats { per_node }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn local_min_uid_within_radius() {
        let net = Network::with_identity_ids(generators::cycle(9));
        let (outs, stats) = run_local(&net, |ctx| {
            let ball = ctx.ball(2);
            ball.graph()
                .nodes()
                .map(|v| ball.uid(v))
                .min()
                .expect("nonempty ball")
        });
        assert_eq!(stats.rounds(), 2);
        assert_eq!(outs[0], 1); // sees uids {8,9,1,2,3} -> 1
        assert_eq!(outs[4], 3); // sees uids {3,4,5,6,7} -> 3
    }

    #[test]
    fn fallible_run_propagates_error() {
        let net = Network::with_identity_ids(generators::path(4));
        let res: Result<(Vec<()>, _), String> = run_local_fallible(&net, |ctx| {
            if ctx.uid() == 3 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        });
        assert_eq!(res.unwrap_err(), "boom");
    }

    #[test]
    fn stats_sequential_composition() {
        let net = Network::with_identity_ids(generators::path(4));
        let (_, s1) = run_local(&net, |ctx| ctx.ball(2).n());
        let (_, s2) = run_local(&net, |ctx| ctx.ball(3).n());
        let s = s1.sequential(&s2);
        assert_eq!(s.rounds(), 5);
        assert_eq!(s.rounds_at(NodeId(0)), 5);
    }

    #[test]
    fn mean_rounds() {
        let net = Network::with_identity_ids(generators::path(2));
        let (_, stats) = run_local(&net, |ctx| if ctx.uid() == 1 { ctx.ball(4).n() } else { 0 });
        assert_eq!(stats.rounds(), 4);
        assert!((stats.mean_rounds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_radius_stops_early() {
        // Nodes expand until they see an endpoint of the path.
        let net = Network::with_identity_ids(generators::path(12));
        let (_, stats) = run_local(&net, |ctx| {
            let mut r = 1;
            loop {
                let ball = ctx.ball(r);
                let sees_endpoint = ball
                    .graph()
                    .nodes()
                    .any(|v| ball.global_degree(v) == 1);
                if sees_endpoint {
                    return r;
                }
                r += 1;
            }
        });
        assert_eq!(stats.rounds_at(NodeId(0)), 1);
        assert_eq!(stats.rounds(), 5); // middle nodes reach an endpoint in 5
    }
}
