//! Executing a LOCAL algorithm at every node and measuring its locality.
//!
//! # Entry points
//!
//! All executors run the same per-node function against [`NodeCtx`] handles
//! and produce *identical* outputs and [`RoundStats`] — a LOCAL algorithm is
//! a pure function of each node's view, so scheduling cannot change results.
//! They differ only in wall-clock cost:
//!
//! | function | views | schedule |
//! |---|---|---|
//! | [`run_local`] | fresh BFS per request | sequential (reference) |
//! | [`run_local_cached`] | shared [`ViewCache`] | sequential |
//! | [`run_local_par`] | worker-local scratch + memo | contiguous chunks across threads |
//! | [`run_local_par_cached`] | shared [`ViewCache`] | contiguous chunks across threads |
//!
//! (`run_local_fallible*` variants propagate the first per-node error in
//! node-index order — also independent of the schedule.)
//!
//! Parallelism is gated behind the `parallel` cargo feature (on by
//! default); with the feature off every entry point runs sequentially but
//! keeps its signature. Thread count resolution is described at
//! [`effective_parallelism`]. The differential harness in
//! `crates/runtime/tests/equivalence.rs` pins down the equivalence of all
//! paths bit for bit.

use crate::ball::Scratch;
use crate::cache::ViewCache;
use crate::ctx::NodeCtx;
use crate::network::Network;
use lad_graph::NodeId;
use std::cell::RefCell;
use std::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Round-complexity statistics of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    per_node: Vec<usize>,
}

impl RoundStats {
    /// The all-zero statistics of an `n`-node execution that never
    /// communicated. This is the identity of [`RoundStats::sequential`].
    pub fn zero(n: usize) -> Self {
        RoundStats {
            per_node: vec![0; n],
        }
    }

    /// Statistics from explicit per-node view radii.
    pub fn from_per_node(per_node: Vec<usize>) -> Self {
        RoundStats { per_node }
    }

    /// The per-node view radii, indexed by node.
    pub fn per_node(&self) -> &[usize] {
        &self.per_node
    }

    /// Number of nodes in the measured execution.
    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// The round complexity: the maximum view radius any node requested.
    pub fn rounds(&self) -> usize {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// The view radius requested by node `v`.
    pub fn rounds_at(&self, v: NodeId) -> usize {
        self.per_node[v.index()]
    }

    /// Mean view radius over nodes.
    pub fn mean_rounds(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().sum::<usize>() as f64 / self.per_node.len() as f64
    }

    /// Merges two executions run back to back (radii add: the second
    /// phase starts after the first finished).
    pub fn sequential(&self, later: &RoundStats) -> RoundStats {
        assert_eq!(self.per_node.len(), later.per_node.len());
        RoundStats {
            per_node: self
                .per_node
                .iter()
                .zip(&later.per_node)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

/// Networks smaller than this run sequentially even when threads are
/// available — spawn overhead would dominate.
const PAR_MIN_NODES: usize = 512;

/// `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide thread-count override for the `*_par` entry points, taking
/// precedence over the `LAD_THREADS` environment variable and the detected
/// parallelism. `Some(1)` forces sequential execution; `None` restores
/// automatic selection. Intended for tests and benchmarks that compare
/// schedules within one process.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |t| t.max(1)), Ordering::SeqCst);
}

/// The explicitly configured worker count (feature gate, override,
/// `LAD_THREADS`), or `None` when selection should be automatic.
fn configured_threads() -> Option<usize> {
    if cfg!(not(feature = "parallel")) {
        return Some(1);
    }
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o != 0 {
        return Some(o);
    }
    if let Ok(s) = std::env::var("LAD_THREADS") {
        if let Ok(t) = s.parse::<usize>() {
            if t >= 1 {
                return Some(t);
            }
        }
    }
    None
}

/// The number of worker threads [`run_local_par`] would use on an `n`-node
/// network, resolved in order:
///
/// 1. `1` when built without the `parallel` feature;
/// 2. the [`set_thread_override`] value, if set;
/// 3. the `LAD_THREADS` environment variable, if a positive integer;
/// 4. `1` when `n` is too small to amortize thread spawns;
/// 5. [`std::thread::available_parallelism`].
pub fn effective_parallelism(n: usize) -> usize {
    if let Some(t) = configured_threads() {
        return t;
    }
    if n < PAR_MIN_NODES {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Applies `f` to each item across worker threads, returning outputs in
/// item order — the fan-out primitive the centralized encoders use for
/// per-trail, per-cluster, and per-network work.
///
/// Items are split into contiguous chunks (one scoped thread each), so a
/// chunk's items run in index order and outputs land in index-addressed
/// slots: results never depend on scheduling. Thread count resolves like
/// [`effective_parallelism`] except there is no minimum item count —
/// encoder work items are coarse (a whole Euler trail, a whole training
/// network), unlike per-node decoder calls. Runs sequentially without the
/// `parallel` feature.
pub fn par_map<T, U>(items: &[T], f: impl Fn(usize, &T) -> U + Sync) -> Vec<U>
where
    T: Sync,
    U: Send,
{
    let n = items.len();
    let threads = configured_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .min(n.max(1));
    if !worth_spawning(n, threads) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut outs: Vec<Option<U>> = std::iter::repeat_with(|| None).take(n).collect();
    let chunk_len = n.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let mut rest = &mut outs[..];
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = start + off;
                    *slot = Some(f(i, &items[i]));
                }
            });
            start += take;
        }
    });
    outs.into_iter()
        .map(|o| o.expect("every chunk ran to completion"))
        .collect()
}

/// Runs `algo` independently at every node, returning per-node outputs and
/// the measured locality.
///
/// This is the *reference* executor: one fresh BFS per view request, no
/// sharing, no threads. [`run_local_par`] and the cached variants are
/// drop-in replacements with identical results.
///
/// # Example
///
/// ```
/// use lad_graph::generators;
/// use lad_runtime::{run_local, Network};
///
/// let net = Network::with_identity_ids(generators::path(5));
/// let (uids, stats) = run_local(&net, |ctx| ctx.uid());
/// assert_eq!(uids, vec![1, 2, 3, 4, 5]);
/// assert_eq!(stats.rounds(), 0); // no communication needed
/// ```
pub fn run_local<In: Clone, Out>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> (Vec<Out>, RoundStats) {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx));
        per_node.push(ctx.rounds_used());
    }
    (outs, RoundStats { per_node })
}

/// Like [`run_local`] for fallible algorithms: stops at the first node that
/// errors. The partial round statistics are discarded on error.
///
/// # Errors
///
/// Propagates the first per-node error in node-index order.
pub fn run_local_fallible<In: Clone, Out, E>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let mut outs = Vec::with_capacity(net.graph().n());
    let mut per_node = Vec::with_capacity(net.graph().n());
    for v in net.graph().nodes() {
        let ctx = NodeCtx::new(net, v);
        outs.push(algo(&ctx)?);
        per_node.push(ctx.rounds_used());
    }
    Ok((outs, RoundStats { per_node }))
}

/// Sequential executor backed by an optional shared cache; otherwise a
/// worker-local scratch/memo. Single code path for all non-reference
/// sequential variants.
fn run_seq_impl<In: Clone, Out, E>(
    net: &Network<In>,
    cache: Option<&ViewCache<In>>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    let n = net.graph().n();
    let scratch = RefCell::new(Scratch::new(n));
    let mut outs = Vec::with_capacity(n);
    let mut per_node = Vec::with_capacity(n);
    for v in net.graph().nodes() {
        let ctx = match cache {
            Some(c) => NodeCtx::with_cache(net, v, c, &scratch),
            None => NodeCtx::with_scratch(net, v, &scratch),
        };
        outs.push(algo(&ctx)?);
        per_node.push(ctx.rounds_used());
    }
    Ok((outs, RoundStats { per_node }))
}

/// Parallel executor: splits nodes into `threads` contiguous chunks, each
/// processed in index order by one scoped thread with its own BFS scratch.
/// Outputs and per-node radii are written into index-addressed slots, so
/// results are position-exact regardless of scheduling. Errors are reduced
/// to the smallest erroring node index — per-node functions are
/// independent, so that is exactly the error a sequential run returns.
fn run_par_impl<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    cache: Option<&ViewCache<In>>,
    algo: &(impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync),
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    let n = net.graph().n();
    let mut outs: Vec<Option<Out>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut per_node = vec![0usize; n];
    let chunk_len = n.div_ceil(threads.max(1)).max(1);
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let mut out_rest = &mut outs[..];
        let mut pn_rest = &mut per_node[..];
        let mut start = 0usize;
        while !out_rest.is_empty() {
            let take = chunk_len.min(out_rest.len());
            let (out_chunk, rest) = out_rest.split_at_mut(take);
            out_rest = rest;
            let (pn_chunk, rest) = pn_rest.split_at_mut(take);
            pn_rest = rest;
            let first_err = &first_err;
            scope.spawn(move || {
                let scratch = RefCell::new(Scratch::new(n));
                for (off, (out_slot, pn_slot)) in
                    out_chunk.iter_mut().zip(pn_chunk.iter_mut()).enumerate()
                {
                    let v = NodeId::from_index(start + off);
                    let ctx = match cache {
                        Some(c) => NodeCtx::with_cache(net, v, c, &scratch),
                        None => NodeCtx::with_scratch(net, v, &scratch),
                    };
                    match algo(&ctx) {
                        Ok(out) => {
                            *out_slot = Some(out);
                            *pn_slot = ctx.rounds_used();
                        }
                        Err(e) => {
                            // Keep the smallest erroring node index; abandon
                            // the rest of this chunk like a sequential run
                            // abandons everything after its first error.
                            let mut fe = first_err.lock().expect("error slot poisoned");
                            let idx = start + off;
                            if fe.as_ref().is_none_or(|&(j, _)| idx < j) {
                                *fe = Some((idx, e));
                            }
                            return;
                        }
                    }
                }
            });
            start += take;
        }
    });
    if let Some((_, e)) = first_err.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let outs = outs
        .into_iter()
        .map(|o| o.expect("every chunk ran to completion"))
        .collect();
    Ok((outs, RoundStats { per_node }))
}

fn infallible<In, Out>(
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> impl Fn(&NodeCtx<In>) -> Result<Out, Infallible> {
    move |ctx| Ok(algo(ctx))
}

fn unwrap_infallible<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(t) => t,
        Err(e) => match e {},
    }
}

/// Whether `threads` workers actually beat a sequential pass over `n`
/// nodes, given the feature gate.
fn worth_spawning(n: usize, threads: usize) -> bool {
    cfg!(feature = "parallel") && threads > 1 && n > 1
}

/// [`run_local`] over a shared [`ViewCache`]: identical results, but view
/// requests hit the cache. A second execution over the same cache (another
/// phase of a composed algorithm, a lookup-table training pass, …) reuses
/// every ball the first one gathered.
pub fn run_local_cached<In: Clone, Out>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out,
) -> (Vec<Out>, RoundStats) {
    unwrap_infallible(run_seq_impl(net, Some(cache), infallible(algo)))
}

/// Fallible [`run_local_cached`].
///
/// # Errors
///
/// Propagates the first per-node error in node-index order.
pub fn run_local_fallible_cached<In: Clone, Out, E>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E>,
) -> Result<(Vec<Out>, RoundStats), E> {
    run_seq_impl(net, Some(cache), algo)
}

/// Parallel [`run_local`]: same outputs and [`RoundStats`], bit for bit,
/// computed by [`effective_parallelism`] worker threads over contiguous
/// node ranges. Falls back to a sequential pass when built without the
/// `parallel` feature, when only one thread is available, or when the
/// network is too small to amortize spawns.
pub fn run_local_par<In, Out>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    run_local_par_with(net, effective_parallelism(net.graph().n()), algo)
}

/// [`run_local_par`] with an explicit worker-thread count (`<= 1` runs
/// sequentially). Results do not depend on `threads`.
pub fn run_local_par_with<In, Out>(
    net: &Network<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        unwrap_infallible(run_par_impl(net, threads, None, &infallible(algo)))
    } else {
        unwrap_infallible(run_seq_impl(net, None, infallible(algo)))
    }
}

/// Parallel [`run_local_fallible`]: same success results and the same
/// first-error-in-node-index-order semantics as the sequential run.
///
/// # Errors
///
/// Propagates the error of the smallest-index erroring node — per-node
/// functions are independent, so this is exactly the error a sequential
/// pass returns.
pub fn run_local_fallible_par<In, Out, E>(
    net: &Network<In>,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    run_local_fallible_par_with(net, effective_parallelism(net.graph().n()), algo)
}

/// [`run_local_fallible_par`] with an explicit worker-thread count.
///
/// # Errors
///
/// Propagates the first per-node error in node-index order, independent of
/// `threads`.
pub fn run_local_fallible_par_with<In, Out, E>(
    net: &Network<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        run_par_impl(net, threads, None, &algo)
    } else {
        run_seq_impl(net, None, algo)
    }
}

/// Parallel execution over a shared [`ViewCache`]: overlapping balls are
/// gathered once (by whichever worker asks first) and reused by every
/// other worker and by later executions over the same cache.
pub fn run_local_par_cached<In, Out>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Out + Sync,
) -> (Vec<Out>, RoundStats)
where
    In: Clone + Send + Sync,
    Out: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        unwrap_infallible(run_par_impl(net, threads, Some(cache), &infallible(algo)))
    } else {
        unwrap_infallible(run_seq_impl(net, Some(cache), infallible(algo)))
    }
}

/// Fallible [`run_local_par_cached`].
///
/// # Errors
///
/// Propagates the first per-node error in node-index order, independent of
/// `threads`.
pub fn run_local_fallible_par_cached<In, Out, E>(
    net: &Network<In>,
    cache: &ViewCache<In>,
    threads: usize,
    algo: impl Fn(&NodeCtx<In>) -> Result<Out, E> + Sync,
) -> Result<(Vec<Out>, RoundStats), E>
where
    In: Clone + Send + Sync,
    Out: Send,
    E: Send,
{
    if worth_spawning(net.graph().n(), threads) {
        run_par_impl(net, threads, Some(cache), &algo)
    } else {
        run_seq_impl(net, Some(cache), algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn local_min_uid_within_radius() {
        let net = Network::with_identity_ids(generators::cycle(9));
        let (outs, stats) = run_local(&net, |ctx| {
            let ball = ctx.ball(2);
            ball.graph()
                .nodes()
                .map(|v| ball.uid(v))
                .min()
                .expect("nonempty ball")
        });
        assert_eq!(stats.rounds(), 2);
        assert_eq!(outs[0], 1); // sees uids {8,9,1,2,3} -> 1
        assert_eq!(outs[4], 3); // sees uids {3,4,5,6,7} -> 3
    }

    #[test]
    fn fallible_run_propagates_error() {
        let net = Network::with_identity_ids(generators::path(4));
        let res: Result<(Vec<()>, _), String> = run_local_fallible(&net, |ctx| {
            if ctx.uid() == 3 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        });
        assert_eq!(res.unwrap_err(), "boom");
    }

    #[test]
    fn stats_sequential_composition() {
        let net = Network::with_identity_ids(generators::path(4));
        let (_, s1) = run_local(&net, |ctx| ctx.ball(2).n());
        let (_, s2) = run_local(&net, |ctx| ctx.ball(3).n());
        let s = s1.sequential(&s2);
        assert_eq!(s.rounds(), 5);
        assert_eq!(s.rounds_at(NodeId(0)), 5);
    }

    #[test]
    fn mean_rounds() {
        let net = Network::with_identity_ids(generators::path(2));
        let (_, stats) = run_local(&net, |ctx| if ctx.uid() == 1 { ctx.ball(4).n() } else { 0 });
        assert_eq!(stats.rounds(), 4);
        assert!((stats.mean_rounds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_radius_stops_early() {
        // Nodes expand until they see an endpoint of the path.
        let net = Network::with_identity_ids(generators::path(12));
        let (_, stats) = run_local(&net, |ctx| {
            let mut r = 1;
            loop {
                let ball = ctx.ball(r);
                let sees_endpoint = ball.graph().nodes().any(|v| ball.global_degree(v) == 1);
                if sees_endpoint {
                    return r;
                }
                r += 1;
            }
        });
        assert_eq!(stats.rounds_at(NodeId(0)), 1);
        assert_eq!(stats.rounds(), 5); // middle nodes reach an endpoint in 5
    }

    #[test]
    fn zero_stats_are_sequential_identity() {
        let net = Network::with_identity_ids(generators::cycle(6));
        let (_, s) = run_local(&net, |ctx| ctx.ball(2).n());
        assert_eq!(s.sequential(&RoundStats::zero(6)), s);
        assert_eq!(RoundStats::zero(6).sequential(&s), s);
        assert_eq!(RoundStats::zero(0).rounds(), 0);
    }

    #[test]
    fn parallel_matches_sequential_on_adaptive_algo() {
        let net = Network::with_identity_ids(generators::path(40));
        let algo = |ctx: &NodeCtx| {
            let mut r = 1;
            loop {
                let ball = ctx.ball(r);
                if ball.graph().nodes().any(|v| ball.global_degree(v) == 1) {
                    return (r, ball.n());
                }
                r += 1;
            }
        };
        let seq = run_local(&net, algo);
        for threads in [1, 2, 5] {
            assert_eq!(run_local_par_with(&net, threads, algo), seq);
        }
        let cache = ViewCache::for_network(&net);
        assert_eq!(run_local_cached(&net, &cache, algo), seq);
        assert_eq!(run_local_par_cached(&net, &cache, 3, algo), seq);
        assert!(cache.stats().hits > 0, "second run should hit the cache");
    }

    #[test]
    fn parallel_error_is_first_in_node_order() {
        // Nodes 7, 3, and 31 all fail; every schedule must report node 3's
        // error, like the sequential run does.
        let net = Network::with_identity_ids(generators::cycle(40));
        let algo = |ctx: &NodeCtx| {
            let idx = ctx.node().index();
            if idx == 7 || idx == 3 || idx == 31 {
                Err(format!("node {idx} failed"))
            } else {
                Ok(ctx.ball(1).n())
            }
        };
        let seq_err = run_local_fallible(&net, algo).unwrap_err();
        assert_eq!(seq_err, "node 3 failed");
        for threads in [1, 2, 4, 8, 40] {
            assert_eq!(
                run_local_fallible_par_with(&net, threads, algo).unwrap_err(),
                seq_err,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn thread_override_takes_precedence() {
        set_thread_override(Some(3));
        assert_eq!(
            effective_parallelism(1_000_000),
            if cfg!(feature = "parallel") { 3 } else { 1 }
        );
        set_thread_override(None);
        assert_eq!(effective_parallelism(4), 1); // below the small-n cutoff
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(
            par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * x
            }),
            expect
        );
        for threads in [1, 2, 3, 8] {
            set_thread_override(Some(threads));
            assert_eq!(par_map(&items, |_, &x| x * x), expect, "threads {threads}");
        }
        set_thread_override(None);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(par_map(&empty, |_, &x: &usize| x), empty);
    }

    #[test]
    fn empty_network_runs_everywhere() {
        let net: Network<()> =
            Network::with_identity_ids(lad_graph::builder::GraphBuilder::new(0).build());
        let (outs, stats) = run_local_par_with(&net, 4, |ctx| ctx.uid());
        assert!(outs.is_empty());
        assert_eq!(stats, RoundStats::zero(0));
    }
}
