//! A graph instrumented with LOCAL-model identifiers and per-node inputs.

use lad_graph::{Graph, IdAssignment, NodeId};

/// A LOCAL-model network: an immutable graph, a unique-identifier
/// assignment, and one input value per node.
///
/// The input type defaults to `()`; advice schemas attach their advice as
/// the input of a derived network (see `lad-core`).
///
/// # Example
///
/// ```
/// use lad_graph::{generators, IdAssignment, NodeId};
/// use lad_runtime::Network;
///
/// let g = generators::path(3);
/// let ids = IdAssignment::random_permutation(3, 7);
/// let net = Network::new(g, ids, vec!["a", "b", "c"]);
/// assert_eq!(*net.input(NodeId(1)), "b");
/// ```
#[derive(Debug, Clone)]
pub struct Network<In = ()> {
    graph: Graph,
    ids: IdAssignment,
    inputs: Vec<In>,
}

impl Network<()> {
    /// A network with identity identifiers (`uid = index + 1`) and unit
    /// inputs — convenient for tests and examples.
    pub fn with_identity_ids(graph: Graph) -> Self {
        let n = graph.n();
        Network {
            graph,
            ids: IdAssignment::identity(n),
            inputs: vec![(); n],
        }
    }

    /// A network with the given identifiers and unit inputs.
    pub fn with_ids(graph: Graph, ids: IdAssignment) -> Self {
        let n = graph.n();
        assert_eq!(ids.n(), n, "one uid per node required");
        Network {
            graph,
            ids,
            inputs: vec![(); n],
        }
    }
}

impl<In> Network<In> {
    /// Builds a network from parts.
    ///
    /// # Panics
    ///
    /// Panics unless `ids` and `inputs` match the graph's node count.
    pub fn new(graph: Graph, ids: IdAssignment, inputs: Vec<In>) -> Self {
        assert_eq!(ids.n(), graph.n(), "one uid per node required");
        assert_eq!(inputs.len(), graph.n(), "one input per node required");
        Network { graph, ids, inputs }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The identifier assignment.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// The unique identifier of `v`.
    pub fn uid(&self, v: NodeId) -> u64 {
        self.ids.uid(v)
    }

    /// All identifiers indexed by node.
    pub fn uids(&self) -> &[u64] {
        self.ids.as_slice()
    }

    /// The input of `v`.
    pub fn input(&self, v: NodeId) -> &In {
        &self.inputs[v.index()]
    }

    /// All inputs indexed by node.
    pub fn inputs(&self) -> &[In] {
        &self.inputs
    }

    /// An empty [`crate::ViewCache`] sized for this network, for the
    /// cached executor entry points.
    pub fn view_cache(&self) -> crate::ViewCache<In>
    where
        In: Clone,
    {
        crate::ViewCache::for_network(self)
    }

    /// A network over the same graph and identifiers with new inputs.
    pub fn with_inputs<J>(&self, inputs: Vec<J>) -> Network<J>
    where
        In: Clone,
    {
        Network::new(self.graph.clone(), self.ids.clone(), inputs)
    }

    /// A network over the same graph and identifiers whose inputs pair the
    /// existing inputs with `extra`.
    pub fn zip_inputs<J: Clone>(&self, extra: &[J]) -> Network<(In, J)>
    where
        In: Clone,
    {
        assert_eq!(extra.len(), self.graph.n());
        let inputs = self
            .inputs
            .iter()
            .cloned()
            .zip(extra.iter().cloned())
            .collect();
        Network::new(self.graph.clone(), self.ids.clone(), inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn identity_network() {
        let net = Network::with_identity_ids(generators::cycle(5));
        assert_eq!(net.uid(NodeId(3)), 4);
        assert_eq!(net.graph().n(), 5);
    }

    #[test]
    fn with_inputs_replaces() {
        let net = Network::with_identity_ids(generators::path(3));
        let net2 = net.with_inputs(vec![10, 20, 30]);
        assert_eq!(*net2.input(NodeId(2)), 30);
        assert_eq!(net2.uid(NodeId(2)), net.uid(NodeId(2)));
    }

    #[test]
    fn zip_inputs_pairs() {
        let net = Network::with_identity_ids(generators::path(2)).with_inputs(vec!["x", "y"]);
        let z = net.zip_inputs(&[1, 2]);
        assert_eq!(*z.input(NodeId(1)), ("y", 2));
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_length_checked() {
        let g = generators::path(3);
        let ids = IdAssignment::identity(3);
        let _ = Network::new(g, ids, vec![1, 2]);
    }
}
