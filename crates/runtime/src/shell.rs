//! Shared shell-indexed gather: one frontier sweep serves many centers.
//!
//! The memo executor's cost model changed after canonical-ball
//! memoization: evaluation happens once per class, so almost all per-node
//! time went into *gathering* — materializing and keying a radius-`T` ball
//! per node even though adjacent balls overlap in all but an `O(T·Δ)`
//! frontier. This module shares that work three ways:
//!
//! 1. **One sweep per tile.** Centers are grouped into tiles of up to
//!    [`TILE_WIDTH`] nodes and a single [`BitFrontier`] sweep stamps, for
//!    every round `d`, which centers first reach which node at distance
//!    exactly `d` (the distance-`d` *shells*). Every edge of the union of
//!    the tile's balls is relaxed once per round with a word-wide OR,
//!    instead of once per center.
//! 2. **Node-major keying over the shared union.** Everything keying needs
//!    per union node — degree, serialized input tag, neighbor dense
//!    indices, uid rank — is computed *once per tile* and fanned out to
//!    every center that reached the node. One pass over the union in uid
//!    order assigns, for all centers at once, each member's canonical index
//!    *and* its packed `(distance, rank)` key word (canonical order is
//!    shells by distance with uid order inside, so a per-center counter
//!    walked in uid order is the rank). Per-center tables are laid out as
//!    per-center *planes* so the edge pass reads L1-resident rows, and edge
//!    words are emitted from the min-distance endpoint in canonical order —
//!    they come out sorted without any comparison sort.
//! 3. **Class pre-fingerprints before any serialization.** The merge walk
//!    folds each member's `(distance, rank)` word and degree/input mix in
//!    canonical order, and the edge pass adds a commutative accumulator of
//!    the edge-word multiset — every folded quantity is a pure function of
//!    the exact key, computed from tables that exist *before* any key
//!    words do. The memo buckets classes by this fingerprint, so
//!    non-matching classes are rejected with no word comparison, and a
//!    probable hit is confirmed by *streaming* the would-be words against
//!    the candidate class (`ShellEngine::confirm`) — the full
//!    serialization is materialized only on a miss. Equal keys always
//!    produce equal fingerprints — a fingerprint collision costs one extra
//!    word comparison, never correctness.
//!
//! Expanding a rung ([`crate::MemoStep::Expand`]) reuses the sweep — shells
//! already swept are never re-relaxed — while the derived per-center tables
//! are rebuilt from the retained shell log: member ranks shift whenever new
//! uids interleave with old ones, so rebuilding linearly is both simpler
//! and cheaper than patching.
//!
//! # Determinism
//!
//! Nothing here depends on sweep scheduling: shells are *sets* (walked in
//! uid order), canonical order is a pure function of the view, and the
//! executor's outputs remain bit-identical to [`crate::run_local`] for
//! order-invariant steps — the same safety nets (geometric re-verification,
//! cross-shard replay merge) still detect steps that are not. The emitted
//! words are bit-identical to [`crate::canonicalize_tagged_with`] on the
//! materialized ball (pinned by `crates/runtime/tests/shell_gather.rs`).

use crate::ball::{build_from_members, Ball};

use crate::canonical::CanonicalKey;
use crate::network::Network;
use lad_graph::frontier::BitFrontier;
pub use lad_graph::frontier::TILE_WIDTH;
use lad_graph::{EdgeId, NodeId};

/// Seed and multiplier of the multiply–rotate fold used for pre-fingerprints
/// (the same constants as [`CanonicalKey`]'s construction-time fold).
const FOLD_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const FOLD_MUL: u64 = 0x517c_c1b7_2722_0a95;

#[inline]
fn fold_step(fold: u64, w: u64) -> u64 {
    (fold.rotate_left(5) ^ w).wrapping_mul(FOLD_MUL)
}

/// Folds a key-word sequence into one word with the shell fingerprint's
/// multiply–rotate fold. This is the hook advice schemas use to
/// pre-fingerprint their `push_key_words` encodings (e.g.
/// `BitString::key_fingerprint` in `lad-core`): equal word sequences fold
/// equal, so a schema-level fingerprint is sound for the same reason the
/// class pre-fingerprint is.
#[inline]
pub fn fold_key_words(words: &[u64]) -> u64 {
    let mut fp = FOLD_SEED;
    for &w in words {
        fp = fold_step(fp, w);
    }
    fp
}

/// Per-member mix for the class pre-fingerprint: a splitmix-style
/// finalizer over the pair (true degree, folded input tag). The merge pass
/// folds each member's mix in canonical order, so the fingerprint is a
/// function of the *sequence* of (distance, rank, degree, input) tuples —
/// exactly the per-member data the exact key carries, in the key's own
/// order. (An earlier commutative per-shell sum could not tell apart balls
/// whose shells hold the same multiset of tags in different arrangements,
/// which multi-rung coloring ladders produce in bulk.)
#[inline]
fn member_mix(degree: u64, input_fp: u64) -> u64 {
    let mut x = degree.wrapping_mul(FOLD_SEED) ^ input_fp;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One stable counting pass of an LSD radix sort on the 11 bits of `src`
/// at `shift`, scattered into `dst`.
fn radix_pass(src: &[u64], dst: &mut [u64], shift: u32, hist: &mut [u32; 2048]) {
    hist.fill(0);
    for &w in src {
        hist[(w >> shift) as usize & 2047] += 1;
    }
    let mut run = 0u32;
    for h in hist.iter_mut() {
        let c = *h;
        *h = run;
        run += c;
    }
    for &w in src {
        let slot = &mut hist[(w >> shift) as usize & 2047];
        dst[*slot as usize] = w;
        *slot += 1;
    }
}

/// Per-center results of the latest [`ShellEngine::extend_centers`] batch
/// that included this center.
#[derive(Debug, Default)]
struct CenterState {
    started: bool,
    /// Radius the state is complete to (meaningful once `started`).
    radius: usize,
    /// Member count at that radius.
    m: u32,
    /// Class pre-fingerprint at that radius.
    fp: u64,
    /// Sorted packed edge words `min(canon) << 32 | max(canon)`.
    edges: Vec<u64>,
    /// Reusable key-word emission buffer (filled by `emit`).
    words: Vec<u64>,
}

/// The shared gather engine: one [`BitFrontier`] plus node-major union
/// tables and per-center planes. One engine per worker, reused across every
/// tile it processes — steady-state tiles allocate nothing.
///
/// # Batch contract
///
/// [`ShellEngine::extend_centers`] rebuilds the derived tables for exactly
/// the centers in its batch; the state of centers *outside* the batch is
/// invalidated. The executor honors this by fully processing each batch
/// (keying, probing, verification) before extending the next one, and by
/// including every still-laddering center in some batch of every wave.
#[derive(Debug)]
pub(crate) struct ShellEngine {
    frontier: BitFrontier,
    /// Folded input-tag words per *global* node, computed once per engine.
    input_fp: Vec<u64>,
    /// Rank of each node's uid in the global uid order, computed once per
    /// engine. Uid *rank* carries exactly the information keying needs
    /// (relative order) in a u32 that sorts and compares cheaper than raw
    /// uids.
    uid_rank: Vec<u32>,
    /// Centers of the current tile (slot count of the last `start_tile`).
    n_centers: usize,
    /// Plane stride (= union size of the last extend batch).
    stride: usize,
    /// Union radius the tables were last built to.
    built_radius: usize,
    // --- node-major union tables, rebuilt per extend batch ---
    /// Per dense node: its first-reach entries, ascending distance, at
    /// `ent_d/ent_m[ent_off[dense]..ent_off[dense + 1]]`.
    ent_off: Vec<u32>,
    ent_d: Vec<u8>,
    ent_m: Vec<u64>,
    /// Counting-scatter cursor (per dense).
    ent_fill: Vec<u32>,
    /// Packed `uid rank << 32 | dense` of the union nodes, sorted: the
    /// tile's uid order (radix-sorted; ranks are unique, so the packed
    /// order is the rank order).
    union_nodes: Vec<u64>,
    /// Radix-sort ping buffer for `union_nodes`.
    union_scratch: Vec<u64>,
    /// Per dense node: `[degree, input tag words…]` at
    /// `attr_words[attr_off[dense]..attr_off[dense + 1]]` — the node's
    /// serialized key block minus the leading `(dist, rank)` word.
    attr_off: Vec<u32>,
    attr_words: Vec<u64>,
    /// Per dense node: neighbor dense indices (`u32::MAX` = outside the
    /// union) at `adj[adj_off[dense]..adj_off[dense + 1]]`.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    // --- per-center planes, `bit * stride + dense` ---
    /// Canonical index within center `bit`'s ball. Stale entries are never
    /// cleared; validity is the sparse-set check
    /// `canon_p[..] < m && mem_flat[mem_base + canon_p[..]] == dense`,
    /// which pass C re-establishes for exactly the members of each batch
    /// center. `u16` halves the plane working set (the merge scatter's and
    /// edge pass's hot rows); ball sizes are capped accordingly.
    canon_p: Vec<u16>,
    /// Shell sizes / write cursors, at `bit * (radius + 1) + d`.
    cnt: Vec<u32>,
    pos: Vec<u32>,
    /// Per dense node: its [`member_mix`], consumed by the merge pass's
    /// fingerprint fold.
    mix_buf: Vec<u64>,
    /// Per center: start of its segment in `mem_flat`/`rank_flat`.
    mem_base: Vec<u32>,
    /// Members as dense indices, canonical order, per-center segments.
    mem_flat: Vec<u32>,
    /// Packed `(distance << 32 | rank)` key words, canonical order.
    rank_flat: Vec<u64>,
    centers: Vec<CenterState>,
    /// `(node, dist)` buffer for ball materialization.
    members_buf: Vec<(NodeId, usize)>,
    /// Edge-enumeration buffer for [`build_from_members`].
    pairs: Vec<(NodeId, NodeId, EdgeId)>,
}

impl ShellEngine {
    /// An engine for `net`, with per-node input fingerprints precomputed
    /// through `input_tag` (one tag call per node, total).
    pub(crate) fn new<In>(net: &Network<In>, input_tag: &impl Fn(&In, &mut Vec<u64>)) -> Self {
        let g = net.graph();
        let mut buf = Vec::new();
        let input_fp: Vec<u64> = g
            .nodes()
            .map(|v| {
                buf.clear();
                input_tag(net.input(v), &mut buf);
                fold_key_words(&buf)
            })
            .collect();
        // Rank-compress uids: order is all keying ever consumes.
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_unstable_by_key(|&v| net.uid(v));
        let mut uid_rank = vec![0u32; g.n()];
        for (r, &v) in order.iter().enumerate() {
            uid_rank[v.index()] = r as u32;
        }
        ShellEngine {
            frontier: BitFrontier::new(g.n()),
            input_fp,
            uid_rank,
            n_centers: 0,
            stride: 0,
            built_radius: 0,
            ent_off: Vec::new(),
            ent_d: Vec::new(),
            ent_m: Vec::new(),
            ent_fill: Vec::new(),
            union_nodes: Vec::new(),
            union_scratch: Vec::new(),
            attr_off: Vec::new(),
            attr_words: Vec::new(),
            adj_off: Vec::new(),
            adj: Vec::new(),
            canon_p: Vec::new(),
            cnt: Vec::new(),
            mix_buf: Vec::new(),
            pos: Vec::new(),
            mem_base: vec![0; TILE_WIDTH],
            mem_flat: Vec::new(),
            rank_flat: Vec::new(),
            centers: (0..TILE_WIDTH).map(|_| CenterState::default()).collect(),
            members_buf: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Begins a tile: starts the shared sweep at the new centers. Derived
    /// tables are rebuilt per [`ShellEngine::extend_centers`] batch, so no
    /// per-slot cleanup is needed here.
    pub(crate) fn start_tile<In>(&mut self, net: &Network<In>, centers: &[NodeId]) {
        for c in self.centers.iter_mut().take(self.n_centers) {
            c.started = false;
        }
        self.n_centers = centers.len();
        self.frontier.start(net.graph(), centers);
    }

    /// [`ShellEngine::extend_centers`] for a single center.
    #[cfg(test)]
    pub(crate) fn extend_center<In>(
        &mut self,
        net: &Network<In>,
        bit: usize,
        new_radius: usize,
        input_tag: &impl Fn(&In, &mut Vec<u64>),
    ) {
        self.extend_centers(net, &[bit], new_radius, input_tag);
    }

    /// Completes every listed center's state to `new_radius` in one shared
    /// pass and computes its class pre-fingerprint. All listed centers must
    /// be at the same rung: either all unstarted, or all previously
    /// extended to the same radius (< `new_radius`). The driver groups its
    /// worklist by rung to make batches maximal. Centers *not* in the batch
    /// have their derived state invalidated (see the type-level batch
    /// contract).
    pub(crate) fn extend_centers<In>(
        &mut self,
        net: &Network<In>,
        bits: &[usize],
        new_radius: usize,
        input_tag: &impl Fn(&In, &mut Vec<u64>),
    ) {
        let g = net.graph();
        assert!(
            new_radius <= u8::MAX as usize,
            "radius fits the u8 shell log"
        );
        self.frontier.extend(g, new_radius);
        let n_centers = self.n_centers;
        let mut batch_mask = 0u64;
        {
            let rung = {
                let c0 = &self.centers[bits[0]];
                (c0.started, if c0.started { c0.radius } else { 0 })
            };
            debug_assert!(!rung.0 || new_radius > rung.1, "rungs strictly increase");
            for &bit in bits {
                debug_assert!(bit < n_centers);
                let c = &self.centers[bit];
                debug_assert_eq!(
                    (c.started, if c.started { c.radius } else { 0 }),
                    rung,
                    "batched centers must share a rung"
                );
                batch_mask |= 1u64 << bit;
            }
        }
        let r = new_radius;
        let u = self.frontier.touched().len();
        self.stride = u;
        self.built_radius = r;

        // A. Counting-scatter the shell log into per-node first-reach lists
        // (ascending distance, because shells are scattered in distance
        // order) and sort the union into the tile's uid order.
        self.ent_fill.clear();
        self.ent_fill.resize(u, 0);
        for d in 0..=r {
            for &(dense, _) in self.frontier.shell_dense(d) {
                self.ent_fill[dense as usize] += 1;
            }
        }
        self.ent_off.clear();
        self.ent_off.reserve(u + 1);
        let mut run = 0u32;
        for dense in 0..u {
            self.ent_off.push(run);
            let c = self.ent_fill[dense];
            self.ent_fill[dense] = run;
            run += c;
        }
        self.ent_off.push(run);
        self.ent_d.resize(run as usize, 0);
        self.ent_m.resize(run as usize, 0);
        for d in 0..=r {
            for &(dense, m) in self.frontier.shell_dense(d) {
                let i = self.ent_fill[dense as usize] as usize;
                self.ent_fill[dense as usize] += 1;
                self.ent_d[i] = d as u8;
                self.ent_m[i] = m;
            }
        }
        self.union_nodes.clear();
        self.union_nodes.extend(
            self.frontier
                .touched()
                .iter()
                .enumerate()
                .map(|(dense, &v)| (self.uid_rank[v.index()] as u64) << 32 | dense as u64),
        );
        if self.uid_rank.len() < 1 << 22 {
            // Ranks fit 22 bits: two 11-bit counting passes beat a
            // comparison sort on every tile-sized union.
            self.union_scratch.resize(self.union_nodes.len(), 0);
            let mut hist = [0u32; 2048];
            radix_pass(&self.union_nodes, &mut self.union_scratch, 32, &mut hist);
            radix_pass(&self.union_scratch, &mut self.union_nodes, 43, &mut hist);
        } else {
            self.union_nodes.sort_unstable();
        }

        // B. Per union node, once for the whole tile: degree, serialized
        // attr block, neighbor dense indices, fingerprint mix — then fan
        // shell sizes out to the batch.
        let nd = r + 1;
        self.cnt.clear();
        self.cnt.resize(TILE_WIDTH * nd, 0);
        self.attr_off.clear();
        self.attr_words.clear();
        self.adj_off.clear();
        self.adj.clear();
        self.mix_buf.clear();
        for dense in 0..u {
            let v = self.frontier.touched()[dense];
            let deg = g.degree(v) as u64;
            self.mix_buf.push(member_mix(deg, self.input_fp[v.index()]));
            self.attr_off.push(self.attr_words.len() as u32);
            self.attr_words.push(deg);
            input_tag(net.input(v), &mut self.attr_words);
            self.adj_off.push(self.adj.len() as u32);
            for &nb in g.neighbors(v) {
                self.adj
                    .push(self.frontier.dense_index(nb).map_or(u32::MAX, |x| x as u32));
            }
            for i in self.ent_off[dense] as usize..self.ent_off[dense + 1] as usize {
                let mut mm = self.ent_m[i] & batch_mask;
                let d = self.ent_d[i] as usize;
                while mm != 0 {
                    let bit = mm.trailing_zeros() as usize;
                    mm &= mm - 1;
                    self.cnt[bit * nd + d] += 1;
                }
            }
        }
        self.attr_off.push(self.attr_words.len() as u32);
        self.adj_off.push(self.adj.len() as u32);

        // Prefix sums per center (the canonical shell starts). The class
        // pre-fingerprint is folded during the merge walk below — one step
        // per member, over `rank word ^ mix`, in canonical order — then
        // finalized here-after with the scalars. Every folded quantity is
        // derivable from the exact key, so equal keys always fingerprint
        // equally; unlike a commutative per-shell sum, the ordered fold
        // also separates arrangements of the same shell multisets.
        self.pos.clear();
        self.pos.resize(TILE_WIDTH * nd, 0);
        let mut mem_total = 0u32;
        for &bit in bits {
            let mut m = 0u32;
            for d in 0..nd {
                self.pos[bit * nd + d] = m;
                m += self.cnt[bit * nd + d];
            }
            assert!(
                m < u16::MAX as u32,
                "ball size fits the u16 canonical plane"
            );
            let c = &mut self.centers[bit];
            c.started = true;
            c.radius = r;
            c.m = m;
            self.mem_base[bit] = mem_total;
            mem_total += m;
        }
        self.mem_flat.resize(mem_total as usize, 0);
        self.rank_flat.resize(mem_total as usize, 0);
        let need = TILE_WIDTH * u;
        if self.canon_p.len() < need {
            self.canon_p.resize(need, 0);
        }

        // C. One walk of the union in uid order assigns, for every batch
        // center at once, each member's canonical index (its shell's write
        // cursor), distance, *and* packed `(dist, rank)` key word — the
        // per-center counter walked in uid order is exactly the member's
        // rank in the uid order of its ball. The same walk folds each
        // member's `rank word ^ mix` into the center's pre-fingerprint:
        // per member, one step over data the exact key determines, in the
        // key's own order.
        let mut rank_ctr = [0u32; TILE_WIDTH];
        let mut fps = [FOLD_SEED; TILE_WIDTH];
        {
            let ShellEngine {
                union_nodes,
                ent_off,
                ent_d,
                ent_m,
                pos,
                canon_p,
                mem_base,
                mem_flat,
                rank_flat,
                mix_buf,
                ..
            } = self;
            for &un in union_nodes.iter() {
                let dense = un as u32 as usize;
                let mix = mix_buf[dense];
                for i in ent_off[dense] as usize..ent_off[dense + 1] as usize {
                    let mut mm = ent_m[i] & batch_mask;
                    if mm == 0 {
                        continue;
                    }
                    let d = ent_d[i];
                    while mm != 0 {
                        let bit = mm.trailing_zeros() as usize;
                        mm &= mm - 1;
                        let slot = bit * nd + d as usize;
                        let p = pos[slot];
                        pos[slot] = p + 1;
                        canon_p[bit * u + dense] = p as u16;
                        let at = (mem_base[bit] + p) as usize;
                        mem_flat[at] = dense as u32;
                        let rw = (d as u64) << 32 | rank_ctr[bit] as u64;
                        rank_flat[at] = rw;
                        rank_ctr[bit] += 1;
                        fps[bit] = fold_step(fps[bit], rw ^ mix);
                    }
                }
            }
        }
        for &bit in bits {
            self.centers[bit].fp = fps[bit];
        }

        // D. Edges per center, over its L1-resident canonical plane. An
        // edge is emitted from its min-distance endpoint (canonical
        // tie-break), and canonical order is distance-major — so the
        // emitting endpoint is exactly the *min-canon* endpoint, and the
        // whole rule collapses to one compare: emit `ci << 32 | cu` iff
        // `cu > ci`. Members are walked in canonical order, so the high
        // halves ascend and each member only needs its ≤ degree low halves
        // bubbled into place — the words emerge sorted with no comparison
        // sort. Members at the radius emit nothing (a frontier–frontier
        // edge is outside the view), and every neighbor of an interior
        // member is itself a member, so its plane entry is fresh.
        for &bit in bits {
            let base = self.mem_base[bit] as usize;
            let m = self.centers[bit].m as usize;
            // Canonical order is distance-major, so the interior (every
            // member below the frontier shell) is exactly a prefix.
            let interior = m - self.cnt[bit * nd + r] as usize;
            let ShellEngine {
                adj_off,
                adj,
                canon_p,
                mem_flat,
                centers,
                ..
            } = self;
            let cp = &canon_p[bit * u..(bit + 1) * u];
            let e = &mut centers[bit].edges;
            e.clear();
            // Commutative edge accumulator for the pre-fingerprint: a sum
            // of self-rotated edge words. Push order depends on the
            // graph's adjacency-list order (not canonical), so the
            // accumulator must be order-insensitive; the sum is a function
            // of the edge-word *multiset*, which the exact key determines.
            // The self-rotation keeps crossed rewirings — swap `(a,b),
            // (c,d)` for `(a,d),(c,b)` — from cancelling, which a plain
            // sum of packed words cannot see. Without edge data in the
            // fingerprint, ladder schemas pile same-shell different-wiring
            // classes into one bucket and every miss scans them all.
            let mut ea = 0u64;
            for (ci, &vd) in mem_flat[base..base + interior].iter().enumerate() {
                let vd = vd as usize;
                let run = e.len();
                for &ud in &adj[adj_off[vd] as usize..adj_off[vd + 1] as usize] {
                    if ud == u32::MAX {
                        continue;
                    }
                    let cu = cp[ud as usize];
                    debug_assert!(
                        (cu as usize) < m && mem_flat[base + cu as usize] == ud,
                        "neighbor of an interior member is a member"
                    );
                    if cu as usize > ci {
                        let w = (ci as u64) << 32 | cu as u64;
                        ea = ea.wrapping_add(w.rotate_left(w as u32 & 63));
                        let mut i = e.len();
                        e.push(w);
                        while i > run && e[i - 1] > w {
                            e[i] = e[i - 1];
                            i -= 1;
                        }
                        e[i] = w;
                    }
                }
            }
            debug_assert!(
                e.windows(2).all(|w| w[0] < w[1]),
                "edge words must emerge sorted"
            );
            let c = &mut centers[bit];
            c.fp = fold_step(fold_step(fold_step(c.fp, ea), c.m as u64), r as u64);
        }
    }

    /// The class pre-fingerprint of center `bit` at its current radius —
    /// available straight after [`ShellEngine::extend_centers`], before any
    /// key words exist.
    pub(crate) fn pre_fp(&self, bit: usize) -> u64 {
        debug_assert!(self.centers[bit].started);
        self.centers[bit].fp
    }

    /// Streams center `bit`'s would-be canonical key words against
    /// `candidate` without materializing them: returns `true` iff the full
    /// serialization would equal `candidate` word for word. This is the
    /// memo hit path — a confirmed center never builds its key.
    pub(crate) fn confirm(&self, bit: usize, candidate: &[u64]) -> bool {
        let c = &self.centers[bit];
        let base = self.mem_base[bit] as usize;
        let m = c.m as usize;
        let header = [m as u64, c.radius as u64, 0u64];
        if candidate.len() < 3 || candidate[..3] != header {
            return false;
        }
        let mut at = 3;
        for ci in 0..m {
            let vd = self.mem_flat[base + ci] as usize;
            let attrs =
                &self.attr_words[self.attr_off[vd] as usize..self.attr_off[vd + 1] as usize];
            let Some(chunk) = candidate.get(at..at + 1 + attrs.len()) else {
                return false;
            };
            if chunk[0] != self.rank_flat[base + ci] || chunk[1..] != *attrs {
                return false;
            }
            at += 1 + attrs.len();
        }
        if candidate.get(at) != Some(&(c.edges.len() as u64)) {
            return false;
        }
        at += 1;
        candidate.len() == at + c.edges.len() && candidate[at..] == *c.edges
    }

    /// Serializes center `bit`'s canonical key at its current radius into
    /// its reusable word buffer (read it back with [`ShellEngine::words`])
    /// and returns the class pre-fingerprint. Only the miss path pays this;
    /// hits are confirmed by [`ShellEngine::confirm`] instead.
    pub(crate) fn key_center(&mut self, bit: usize) -> u64 {
        let base = self.mem_base[bit] as usize;
        let ShellEngine {
            attr_off,
            attr_words,
            mem_flat,
            rank_flat,
            centers,
            ..
        } = self;
        let c = &mut centers[bit];
        let m = c.m as usize;
        let words = &mut c.words;
        words.clear();
        words.push(m as u64);
        words.push(c.radius as u64);
        // The center is the unique distance-0 node, hence canonical index 0.
        words.push(0);
        for ci in 0..m {
            words.push(rank_flat[base + ci]);
            let vd = mem_flat[base + ci] as usize;
            words.extend_from_slice(&attr_words[attr_off[vd] as usize..attr_off[vd + 1] as usize]);
        }
        words.push(c.edges.len() as u64);
        words.extend_from_slice(&c.edges);
        c.fp
    }

    /// The key words the last [`ShellEngine::key_center`] for `bit` emitted.
    #[cfg(test)]
    pub(crate) fn words(&self, bit: usize) -> &[u64] {
        &self.centers[bit].words
    }

    /// Materializes center `bit`'s key as an owned [`CanonicalKey`] — only
    /// paid when a class is first inserted into a memo (or reported in a
    /// [`crate::NotOrderInvariant`]).
    pub(crate) fn canonical_key(&mut self, bit: usize) -> CanonicalKey {
        self.key_center(bit);
        CanonicalKey::from_word_slice(&self.centers[bit].words)
    }

    /// Materializes center `bit`'s ball at its current radius from the
    /// canonical membership (distances nondecreasing, center at local 0).
    /// Used on memo misses and verification probes; node numbering is the
    /// canonical order rather than BFS discovery order, which is invisible
    /// to an order-invariant step (and any step that *can* see the
    /// difference is exactly what the executor's safety nets reject).
    pub(crate) fn build_ball<In: Clone>(&mut self, net: &Network<In>, bit: usize) -> Ball<In> {
        let base = self.mem_base[bit] as usize;
        let m = self.centers[bit].m as usize;
        let u = self.stride;
        let ShellEngine {
            frontier,
            canon_p,
            mem_flat,
            rank_flat,
            centers,
            members_buf,
            pairs,
            ..
        } = self;
        members_buf.clear();
        for ci in 0..m {
            let w = rank_flat[base + ci];
            members_buf.push((
                frontier.touched()[mem_flat[base + ci] as usize],
                (w >> 32) as usize,
            ));
        }
        let cp = &canon_p[bit * u..(bit + 1) * u];
        build_from_members(
            net,
            members_buf,
            centers[bit].radius,
            |nb| {
                // Sparse-set membership: a stale plane entry cannot point
                // back at its own dense index from inside the member list.
                let dn = frontier.dense_index(nb)?;
                let c = cp[dn] as usize;
                (c < m && mem_flat[base + c] as usize == dn).then_some(NodeId(c as u32))
            },
            pairs,
        )
    }

    /// The radius center `bit`'s state is complete to.
    #[cfg(test)]
    pub(crate) fn radius_of(&self, bit: usize) -> usize {
        self.centers[bit].radius
    }
}

/// The canonical key and class pre-fingerprint of each center's radius-
/// `radius` ball under the shared shell-indexed gather. Centers must be
/// distinct; they are processed in tiles of [`TILE_WIDTH`].
///
/// This is the differential-test surface for the memo executor's gather
/// path: the keys must be word-identical to canonicalizing each
/// materialized ball, and equal keys must carry equal fingerprints
/// (`crates/runtime/tests/shell_gather.rs` pins both).
pub fn shell_class_keys<In: Clone>(
    net: &Network<In>,
    centers: &[NodeId],
    radius: usize,
    input_tag: impl Fn(&In, &mut Vec<u64>),
) -> Vec<(CanonicalKey, u64)> {
    shell_class_keys_at_radii(net, centers, &[radius], input_tag)
        .into_iter()
        .map(|mut ladder| ladder.pop().expect("one radius requested"))
        .collect()
}

/// [`shell_class_keys`] along a strictly increasing radius ladder,
/// exercising the incremental Expand path: `result[i][j]` is `centers[i]`'s
/// key and fingerprint at `radii[j]`, where each rung reuses the previous
/// rung's sweep (shells already swept are never re-relaxed) and rebuilds
/// the derived tables, exactly as the memo executor's ladder does.
///
/// # Panics
///
/// Panics if `radii` is not strictly increasing or a tile repeats a center.
pub fn shell_class_keys_at_radii<In: Clone>(
    net: &Network<In>,
    centers: &[NodeId],
    radii: &[usize],
    input_tag: impl Fn(&In, &mut Vec<u64>),
) -> Vec<Vec<(CanonicalKey, u64)>> {
    assert!(
        radii.windows(2).all(|w| w[0] < w[1]),
        "radii must strictly increase"
    );
    let mut engine = ShellEngine::new(net, &input_tag);
    let mut out: Vec<Vec<(CanonicalKey, u64)>> = Vec::with_capacity(centers.len());
    for tile in centers.chunks(TILE_WIDTH) {
        engine.start_tile(net, tile);
        let base = out.len();
        out.extend(tile.iter().map(|_| Vec::with_capacity(radii.len())));
        let bits: Vec<usize> = (0..tile.len()).collect();
        for &r in radii {
            engine.extend_centers(net, &bits, r, &input_tag);
            for bit in 0..tile.len() {
                let fp = engine.key_center(bit);
                out[base + bit].push((engine.canonical_key(bit), fp));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{canonicalize_tagged_with, CanonScratch};
    use lad_graph::generators;

    fn tag(x: &u8, words: &mut Vec<u64>) {
        words.push(*x as u64);
    }

    #[test]
    fn keys_match_per_ball_canonicalization() {
        let base = Network::with_identity_ids(generators::grid2d(5, 6, true));
        let n = base.graph().n();
        let inputs: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let net = base.with_inputs(inputs);
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let mut cs = CanonScratch::new();
        for radius in 0..4 {
            let keys = shell_class_keys(&net, &centers, radius, tag);
            for (&c, (key, _)) in centers.iter().zip(&keys) {
                let ball = Ball::collect(&net, c, radius);
                let expect = canonicalize_tagged_with(&ball, tag, &mut cs);
                assert_eq!(key, &expect, "center {c:?} radius {radius}");
            }
        }
    }

    #[test]
    fn incremental_ladder_matches_fresh_keys() {
        let net = Network::with_identity_ids(generators::random_tree(40, 7));
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let unit = |_: &(), _: &mut Vec<u64>| {};
        let ladder = shell_class_keys_at_radii(&net, &centers, &[0, 2, 3, 5], unit);
        for (j, &r) in [0usize, 2, 3, 5].iter().enumerate() {
            let fresh = shell_class_keys(&net, &centers, r, unit);
            for (i, &c) in centers.iter().enumerate() {
                assert_eq!(ladder[i][j], fresh[i], "center {c:?} radius {r}");
            }
        }
    }

    #[test]
    fn equal_keys_have_equal_fingerprints() {
        let net = Network::with_identity_ids(generators::cycle(30));
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let keys = shell_class_keys(&net, &centers, 3, |_: &(), _| {});
        // Soundness: the fingerprint is a function of the key. (The deep
        // interior of a long identity-id cycle collapses to one class, so
        // this exercises real repeats, not just the trivial direction.)
        let mut by_key: std::collections::HashMap<&CanonicalKey, u64> =
            std::collections::HashMap::new();
        let mut repeats = 0;
        for (key, fp) in &keys {
            if let Some(&prev) = by_key.get(key) {
                assert_eq!(prev, *fp, "equal keys must fingerprint equally");
                repeats += 1;
            } else {
                by_key.insert(key, *fp);
            }
        }
        assert!(repeats > 10, "expected repeated interior classes");
    }

    #[test]
    fn engine_reuse_across_tiles_is_clean() {
        // More centers than one tile, forcing table reuse; disconnected
        // pieces force empty shells and unreached nodes.
        let g = generators::disjoint_union(&[
            generators::grid2d(7, 7, false),
            generators::path(30),
            generators::complete(3),
        ]);
        let net = Network::with_identity_ids(g);
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        assert!(centers.len() > TILE_WIDTH);
        let mut cs = CanonScratch::new();
        let keys = shell_class_keys(&net, &centers, 4, |_: &(), _| {});
        for (&c, (key, _)) in centers.iter().zip(&keys) {
            let ball = Ball::collect(&net, c, 4);
            let expect = canonicalize_tagged_with(&ball, |_: &(), _| {}, &mut cs);
            assert_eq!(key, &expect, "center {c:?}");
        }
    }

    #[test]
    fn confirm_streams_exactly_the_emitted_words() {
        let base = Network::with_identity_ids(generators::grid2d(4, 5, true));
        let n = base.graph().n();
        let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let net = base.with_inputs(inputs);
        let centers: Vec<NodeId> = net.graph().nodes().take(6).collect();
        let mut engine = ShellEngine::new(&net, &tag);
        engine.start_tile(&net, &centers);
        let bits: Vec<usize> = (0..centers.len()).collect();
        engine.extend_centers(&net, &bits, 2, &tag);
        let own: Vec<Vec<u64>> = bits
            .iter()
            .map(|&bit| {
                engine.key_center(bit);
                engine.words(bit).to_vec()
            })
            .collect();
        for &bit in &bits {
            for (other, words) in own.iter().enumerate() {
                assert_eq!(
                    engine.confirm(bit, words),
                    own[bit] == *words,
                    "bit {bit} vs words of {other}"
                );
            }
            // Truncations and extensions must not confirm.
            let w = &own[bit];
            assert!(!engine.confirm(bit, &w[..w.len() - 1]));
            let mut long = w.clone();
            long.push(0);
            assert!(!engine.confirm(bit, &long));
        }
    }

    #[test]
    fn built_ball_matches_canonical_structure() {
        let net = Network::with_identity_ids(generators::grid2d(4, 4, true));
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let unit = |_: &(), _: &mut Vec<u64>| {};
        let mut engine = ShellEngine::new(&net, &unit);
        let mut cs = CanonScratch::new();
        engine.start_tile(&net, &centers[..4]);
        for (bit, &center) in centers.iter().enumerate().take(4) {
            engine.extend_center(&net, bit, 2, &unit);
            engine.key_center(bit);
            assert_eq!(engine.radius_of(bit), 2);
            let ball = engine.build_ball(&net, bit);
            // The built ball re-keys to the emitted words: same view.
            let rekey = canonicalize_tagged_with(&ball, unit, &mut cs);
            assert_eq!(rekey.words(), engine.words(bit), "center bit {bit}");
            assert_eq!(ball.center(), NodeId(0));
            assert_eq!(ball.global_node(NodeId(0)), center);
        }
    }
}
