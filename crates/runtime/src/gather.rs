//! Ball views reconstructed over the *explicit* message-passing simulator.
//!
//! The ball-view executor ([`crate::run_local`]) materializes radius-`r`
//! views directly from the graph — fast, but an abstraction. This module
//! grounds that abstraction: nodes flood their local records
//! (identifier, degree, neighbor identifiers, input) for `r` synchronous
//! rounds over [`crate::messaging`], and each node *assembles* its view
//! from what it actually heard. [`run_gathered`] then applies any
//! ball-function to the assembled views.
//!
//! The integration tests assert that the assembled views are canonically
//! identical to [`Ball::collect`]'s — the equivalence "`T`-round LOCAL
//! algorithm = function of the radius-`T` view" made executable.

use crate::ball::Ball;
use crate::messaging::{run_rounds, LocalInfo, RoundAlgorithm, RoundLimitExceeded};
use crate::network::Network;
use lad_graph::{GraphBuilder, NodeId};
use std::collections::BTreeMap;

/// What every node announces about itself.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord<In> {
    /// The node's unique identifier.
    pub uid: u64,
    /// Its true degree.
    pub degree: usize,
    /// Its neighbors' identifiers (sorted).
    pub neighbors: Vec<u64>,
    /// Its input.
    pub input: In,
}

/// Per-node gathering state: every record heard so far, with the round it
/// was first heard in (= its distance from this node).
struct GatherState<In> {
    records: BTreeMap<u64, (NodeRecord<In>, usize)>,
    rounds_done: usize,
    target: usize,
}

/// The flooding algorithm: each round, send everything you know.
struct GatherAlgorithm<In> {
    radius: usize,
    _marker: std::marker::PhantomData<In>,
}

impl<In: Clone> RoundAlgorithm<(In, Vec<u64>)> for GatherAlgorithm<In> {
    type State = GatherState<In>;
    type Msg = Vec<NodeRecord<In>>;
    type Out = GatherState<In>;

    fn init(&self, info: &LocalInfo<(In, Vec<u64>)>) -> GatherState<In> {
        let (input, neighbors) = info.input.clone();
        let mut records = BTreeMap::new();
        records.insert(
            info.uid,
            (
                NodeRecord {
                    uid: info.uid,
                    degree: info.degree,
                    neighbors,
                    input,
                },
                0,
            ),
        );
        GatherState {
            records,
            rounds_done: 0,
            target: self.radius,
        }
    }

    fn send(
        &self,
        st: &GatherState<In>,
        info: &LocalInfo<(In, Vec<u64>)>,
    ) -> Vec<Vec<NodeRecord<In>>> {
        let all: Vec<NodeRecord<In>> = st.records.values().map(|(r, _)| r.clone()).collect();
        vec![all; info.degree]
    }

    fn receive(
        &self,
        st: &mut GatherState<In>,
        _info: &LocalInfo<(In, Vec<u64>)>,
        inbox: &[Vec<NodeRecord<In>>],
    ) {
        st.rounds_done += 1;
        let round = st.rounds_done;
        for msgs in inbox {
            for rec in msgs {
                st.records
                    .entry(rec.uid)
                    .or_insert_with(|| (rec.clone(), round));
            }
        }
    }

    fn output(&self, st: &GatherState<In>) -> Option<GatherState<In>> {
        (st.rounds_done >= st.target).then(|| GatherState {
            records: st.records.clone(),
            rounds_done: st.rounds_done,
            target: st.target,
        })
    }
}

/// Assembles a [`Ball`] from a gather state, reproducing
/// [`Ball::collect`]'s semantics exactly: nodes at distance ≤ `r` (their
/// distance = the round their record first arrived), edges only where one
/// endpoint is at distance < `r`.
fn assemble<In: Clone>(st: &GatherState<In>, center_uid: u64) -> Ball<In> {
    let r = st.target;
    // Local indexing: BFS-like order (distance, uid) with the center first.
    let mut members: Vec<(&NodeRecord<In>, usize)> = st
        .records
        .values()
        .filter(|(_, d)| *d <= r)
        .map(|(rec, d)| (rec, *d))
        .collect();
    members.sort_by_key(|(rec, d)| (*d, rec.uid));
    debug_assert_eq!(members[0].0.uid, center_uid);
    let index_of: BTreeMap<u64, usize> = members
        .iter()
        .enumerate()
        .map(|(i, (rec, _))| (rec.uid, i))
        .collect();
    let mut b = GraphBuilder::new(members.len());
    for (rec, d) in &members {
        if *d >= r {
            continue; // frontier edges are not known yet
        }
        let li = index_of[&rec.uid];
        for nb in &rec.neighbors {
            if let Some(&lj) = index_of.get(nb) {
                b.add_edge(NodeId::from_index(li), NodeId::from_index(lj));
            }
        }
    }
    let graph = b.build();
    Ball::assemble(
        graph,
        r,
        members.iter().map(|(_, d)| *d).collect(),
        members.iter().map(|(rec, _)| rec.uid).collect(),
        members.iter().map(|(rec, _)| rec.input.clone()).collect(),
        members.iter().map(|(rec, _)| rec.degree).collect(),
    )
}

/// Runs `f` on radius-`radius` views assembled over real message passing.
/// Returns the per-node outputs and the number of rounds executed
/// (= `radius`).
///
/// # Errors
///
/// Propagates the simulator's round limit (cannot trigger for
/// `radius ≥ 0` budgets, but kept honest).
pub fn run_gathered<In: Clone, Out>(
    net: &Network<In>,
    radius: usize,
    f: impl Fn(&Ball<In>) -> Out,
) -> Result<(Vec<Out>, usize), RoundLimitExceeded> {
    let g = net.graph();
    // Package each node's static record pieces as its input.
    let inputs: Vec<(In, Vec<u64>)> = g
        .nodes()
        .map(|v| {
            let mut nbrs: Vec<u64> = g.neighbors(v).iter().map(|&u| net.uid(u)).collect();
            nbrs.sort_unstable();
            (net.input(v).clone(), nbrs)
        })
        .collect();
    let msg_net = Network::new(g.clone(), net.ids().clone(), inputs);
    let algo = GatherAlgorithm {
        radius,
        _marker: std::marker::PhantomData,
    };
    let (states, rounds) = run_rounds(&msg_net, &algo, radius)?;
    let outs = g
        .nodes()
        .zip(states)
        .map(|(v, st)| f(&assemble(&st, net.uid(v))))
        .collect();
    Ok((outs, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::executor::run_local;
    use lad_graph::{generators, IdAssignment};

    #[test]
    fn gathered_views_match_collected_views() {
        for (g, r) in [
            (generators::cycle(14), 3),
            (generators::grid2d(5, 5, false), 2),
            (generators::star(6), 1),
            (generators::random_bounded_degree(30, 5, 60, 1), 2),
        ] {
            let n = g.n();
            let net = Network::with_ids(g, IdAssignment::random_permutation(n, 9));
            let (gathered, rounds) =
                run_gathered(&net, r, |ball| canonicalize(ball, |_| 0)).unwrap();
            assert_eq!(rounds, r);
            let (collected, _) = run_local(&net, |ctx| canonicalize(&ctx.ball(r), |_| 0));
            assert_eq!(gathered, collected, "radius {r}");
        }
    }

    #[test]
    fn gathered_views_carry_inputs() {
        let g = generators::path(6);
        let net = Network::with_identity_ids(g).with_inputs(vec![10, 20, 30, 40, 50, 60]);
        let (sums, _) = run_gathered(&net, 1, |ball| {
            ball.graph().nodes().map(|v| *ball.input(v)).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sums[0], 30); // self + one neighbor
        assert_eq!(sums[2], 90); // 20 + 30 + 40
    }

    #[test]
    fn radius_zero_gather() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let (outs, rounds) = run_gathered(&net, 0, |ball| ball.n()).unwrap();
        assert_eq!(rounds, 0);
        assert!(outs.iter().all(|&k| k == 1));
    }
}
