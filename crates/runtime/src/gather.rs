//! Ball views reconstructed over the *explicit* message-passing simulator.
//!
//! The ball-view executor ([`crate::run_local`]) materializes radius-`r`
//! views directly from the graph — fast, but an abstraction. This module
//! grounds that abstraction: nodes flood their local records
//! (identifier, degree, neighbor identifiers, input) for `r` synchronous
//! rounds over [`crate::messaging`], and each node *assembles* its view
//! from what it actually heard. [`run_gathered`] then applies any
//! ball-function to the assembled views.
//!
//! The integration tests assert that the assembled views are canonically
//! identical to [`Ball::collect`]'s — the equivalence "`T`-round LOCAL
//! algorithm = function of the radius-`T` view" made executable.

//!
//! [`run_gathered`] assumes perfect delivery. [`run_gathered_robust`] is
//! the fault-tolerant variant: the same flooding runs over an arbitrary
//! [`Transport`] with a retry budget of extra rounds (flooding re-announces
//! *everything* every round, so dropped records are healed by later
//! rounds), each node *validates* what it heard before assembling a view,
//! and irrecoverable executions degrade to a typed [`GatherError`] instead
//! of a silently wrong ball.

use crate::ball::Ball;
use crate::messaging::{
    run_rounds, run_rounds_on, LocalInfo, LossyRoundAlgorithm, RoundAlgorithm, RoundLimitExceeded,
};
use crate::network::Network;
use crate::transport::{Corruptible, FaultStats, Transport};
use lad_graph::{GraphBuilder, NodeId};
use std::collections::BTreeMap;

/// What every node announces about itself.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord<In> {
    /// The node's unique identifier.
    pub uid: u64,
    /// Its true degree.
    pub degree: usize,
    /// Its neighbors' identifiers (sorted).
    pub neighbors: Vec<u64>,
    /// Its input.
    pub input: In,
}

/// Per-node gathering state: every record heard so far, with the round it
/// was first heard in (= its distance from this node).
struct GatherState<In> {
    records: BTreeMap<u64, (NodeRecord<In>, usize)>,
    rounds_done: usize,
    target: usize,
}

/// The flooding algorithm: each round, send everything you know.
struct GatherAlgorithm<In> {
    radius: usize,
    _marker: std::marker::PhantomData<In>,
}

impl<In: Clone> RoundAlgorithm<(In, Vec<u64>)> for GatherAlgorithm<In> {
    type State = GatherState<In>;
    type Msg = Vec<NodeRecord<In>>;
    type Out = GatherState<In>;

    fn init(&self, info: &LocalInfo<(In, Vec<u64>)>) -> GatherState<In> {
        let (input, neighbors) = info.input.clone();
        let mut records = BTreeMap::new();
        records.insert(
            info.uid,
            (
                NodeRecord {
                    uid: info.uid,
                    degree: info.degree,
                    neighbors,
                    input,
                },
                0,
            ),
        );
        GatherState {
            records,
            rounds_done: 0,
            target: self.radius,
        }
    }

    fn send(
        &self,
        st: &GatherState<In>,
        info: &LocalInfo<(In, Vec<u64>)>,
    ) -> Vec<Vec<NodeRecord<In>>> {
        let all: Vec<NodeRecord<In>> = st.records.values().map(|(r, _)| r.clone()).collect();
        vec![all; info.degree]
    }

    fn receive(
        &self,
        st: &mut GatherState<In>,
        _info: &LocalInfo<(In, Vec<u64>)>,
        inbox: &[Vec<NodeRecord<In>>],
    ) {
        st.rounds_done += 1;
        let round = st.rounds_done;
        for msgs in inbox {
            for rec in msgs {
                st.records
                    .entry(rec.uid)
                    .or_insert_with(|| (rec.clone(), round));
            }
        }
    }

    fn output(&self, st: &GatherState<In>) -> Option<GatherState<In>> {
        (st.rounds_done >= st.target).then(|| GatherState {
            records: st.records.clone(),
            rounds_done: st.rounds_done,
            target: st.target,
        })
    }
}

/// Assembles a [`Ball`] from a gather state, reproducing
/// [`Ball::collect`]'s semantics exactly: nodes at distance ≤ `r` (their
/// distance = the round their record first arrived), edges only where one
/// endpoint is at distance < `r`.
fn assemble<In: Clone>(st: &GatherState<In>, center_uid: u64) -> Ball<In> {
    let r = st.target;
    // Local indexing: BFS-like order (distance, uid) with the center first.
    let mut members: Vec<(&NodeRecord<In>, usize)> = st
        .records
        .values()
        .filter(|(_, d)| *d <= r)
        .map(|(rec, d)| (rec, *d))
        .collect();
    members.sort_by_key(|(rec, d)| (*d, rec.uid));
    debug_assert_eq!(members[0].0.uid, center_uid);
    build_ball(&members, r)
}

/// Shared ball constructor: `members` are `(record, distance)` pairs sorted
/// by `(distance, uid)` with the center first. Reproduces
/// [`Ball::collect`]'s semantics exactly: edges only where one endpoint is
/// at distance < `r`.
fn build_ball<In: Clone>(members: &[(&NodeRecord<In>, usize)], r: usize) -> Ball<In> {
    let index_of: BTreeMap<u64, usize> = members
        .iter()
        .enumerate()
        .map(|(i, (rec, _))| (rec.uid, i))
        .collect();
    let mut b = GraphBuilder::new(members.len());
    for (rec, d) in members {
        if *d >= r {
            continue; // frontier edges are not known yet
        }
        let li = index_of[&rec.uid];
        for nb in &rec.neighbors {
            if let Some(&lj) = index_of.get(nb) {
                b.add_edge(NodeId::from_index(li), NodeId::from_index(lj));
            }
        }
    }
    let graph = b.build();
    Ball::assemble(
        graph,
        r,
        members.iter().map(|(_, d)| *d).collect(),
        members.iter().map(|(rec, _)| rec.uid).collect(),
        members.iter().map(|(rec, _)| rec.input.clone()).collect(),
        members.iter().map(|(rec, _)| rec.degree).collect(),
    )
}

/// Runs `f` on radius-`radius` views assembled over real message passing.
/// Returns the per-node outputs and the number of rounds executed
/// (= `radius`).
///
/// # Errors
///
/// Propagates the simulator's round limit (cannot trigger for
/// `radius ≥ 0` budgets, but kept honest).
pub fn run_gathered<In: Clone, Out>(
    net: &Network<In>,
    radius: usize,
    f: impl Fn(&Ball<In>) -> Out,
) -> Result<(Vec<Out>, usize), RoundLimitExceeded> {
    let g = net.graph();
    // Package each node's static record pieces as its input.
    let inputs: Vec<(In, Vec<u64>)> = g
        .nodes()
        .map(|v| {
            let mut nbrs: Vec<u64> = g.neighbors(v).iter().map(|&u| net.uid(u)).collect();
            nbrs.sort_unstable();
            (net.input(v).clone(), nbrs)
        })
        .collect();
    let msg_net = Network::new(g.clone(), net.ids().clone(), inputs);
    let algo = GatherAlgorithm {
        radius,
        _marker: std::marker::PhantomData,
    };
    let (states, rounds) = run_rounds(&msg_net, &algo, radius)?;
    let outs = g
        .nodes()
        .zip(states)
        .map(|(v, st)| f(&assemble(&st, net.uid(v))))
        .collect();
    Ok((outs, rounds))
}

// ---------------------------------------------------------------------------
// Fault-tolerant gathering.
// ---------------------------------------------------------------------------

impl<In: Corruptible> Corruptible for NodeRecord<In> {
    /// Garbles one field: the degree claim, one neighbor identifier, the
    /// input, or the record's own identifier (a "who am I" lie).
    fn corrupt(&mut self, entropy: u64) {
        match entropy % 4 {
            0 => self.degree.corrupt(entropy >> 2),
            1 => self.neighbors.corrupt(entropy >> 2),
            2 => self.input.corrupt(entropy >> 2),
            _ => self.uid.corrupt(entropy >> 2),
        }
    }
}

/// Why a node could not (yet) assemble a trustworthy view.
#[derive(Debug)]
enum ViewDefect {
    /// A record the view needs has not arrived — recoverable: flooding
    /// re-announces everything, so later rounds may heal it. The uid is
    /// diagnostic (asserted on in tests); the runner only needs "not yet".
    Missing(#[allow(dead_code)] u64),
    /// A record in the view is internally or mutually inconsistent —
    /// unrecoverable: first-arrival-wins merging pins the bad record.
    Corrupt {
        /// The offending record's claimed identifier.
        uid: u64,
        /// What was wrong with it.
        reason: String,
    },
}

/// Structural sanity of a single record: the degree claim must match the
/// neighbor list, which must be strictly sorted (no duplicates) and free
/// of self-loops.
fn check_record<In>(rec: &NodeRecord<In>) -> Result<(), String> {
    if rec.degree != rec.neighbors.len() {
        return Err(format!(
            "claims degree {} but lists {} neighbors",
            rec.degree,
            rec.neighbors.len()
        ));
    }
    if rec.neighbors.windows(2).any(|w| w[0] >= w[1]) {
        return Err("neighbor list is not strictly sorted".into());
    }
    if rec.neighbors.binary_search(&rec.uid).is_ok() {
        return Err("neighbor list contains a self-loop".into());
    }
    Ok(())
}

/// Determines the radius-`r` view membership around `center` from gathered
/// records — by BFS over the *announced* adjacency, not by arrival timing
/// (under duplication and delays, "round first heard" is no longer the
/// distance; the announced edges are the ground truth the checks defend).
///
/// Validates every member record structurally and checks adjacency
/// symmetry (an edge announced by an interior member must be confirmed by
/// the other endpoint's record). Returns `(uid, distance)` pairs sorted by
/// `(distance, uid)` — exactly the member order [`Ball::collect`] uses.
fn resolve_members<In>(
    records: &BTreeMap<u64, NodeRecord<In>>,
    center: u64,
    r: usize,
) -> Result<Vec<(u64, usize)>, ViewDefect> {
    let mut dist: BTreeMap<u64, usize> = BTreeMap::new();
    dist.insert(center, 0);
    let mut level = vec![center];
    for d in 0..r {
        let mut next = Vec::new();
        for &u in &level {
            let rec = records.get(&u).ok_or(ViewDefect::Missing(u))?;
            check_record(rec).map_err(|reason| ViewDefect::Corrupt { uid: u, reason })?;
            for &nb in &rec.neighbors {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(nb) {
                    e.insert(d + 1);
                    next.push(nb);
                }
            }
        }
        level = next;
    }
    // Frontier records carry the view's uid/degree/input claims for
    // distance-r members; they must exist and be sane too.
    for &u in &level {
        let rec = records.get(&u).ok_or(ViewDefect::Missing(u))?;
        check_record(rec).map_err(|reason| ViewDefect::Corrupt { uid: u, reason })?;
    }
    // Mutual consistency: every edge announced by an interior member must
    // be confirmed by the other endpoint (whose record is a member too).
    for (&u, &du) in &dist {
        if du >= r {
            continue;
        }
        for &nb in &records[&u].neighbors {
            if records[&nb].neighbors.binary_search(&u).is_err() {
                return Err(ViewDefect::Corrupt {
                    uid: u,
                    reason: format!("announces an edge to {nb} that {nb} does not confirm"),
                });
            }
        }
    }
    let mut members: Vec<(u64, usize)> = dist.into_iter().collect();
    members.sort_by_key(|&(u, d)| (d, u));
    Ok(members)
}

/// Per-node robust gathering state. Unlike [`GatherState`], arrival rounds
/// are *not* trusted as distances.
struct RobustGatherState<In> {
    records: BTreeMap<u64, NodeRecord<In>>,
    center: u64,
    rounds_done: usize,
}

/// Flooding against the lossy interface: re-announce everything every
/// round, merge first-arrival-wins, and only emit a view once it is
/// complete *and* passes validation.
struct RobustGatherAlgorithm<In> {
    radius: usize,
    _marker: std::marker::PhantomData<In>,
}

impl<In: Clone> LossyRoundAlgorithm<(In, Vec<u64>)> for RobustGatherAlgorithm<In> {
    type State = RobustGatherState<In>;
    type Msg = Vec<NodeRecord<In>>;
    /// `Ok`: the validated members with their distances; `Err`: an
    /// unrecoverable corruption `(offending uid, reason)`.
    type Out = Result<Vec<(NodeRecord<In>, usize)>, (u64, String)>;

    fn init(&self, info: &LocalInfo<(In, Vec<u64>)>) -> RobustGatherState<In> {
        let (input, neighbors) = info.input.clone();
        let mut records = BTreeMap::new();
        records.insert(
            info.uid,
            NodeRecord {
                uid: info.uid,
                degree: info.degree,
                neighbors,
                input,
            },
        );
        RobustGatherState {
            records,
            center: info.uid,
            rounds_done: 0,
        }
    }

    fn send(
        &self,
        st: &RobustGatherState<In>,
        info: &LocalInfo<(In, Vec<u64>)>,
    ) -> Vec<Vec<NodeRecord<In>>> {
        let all: Vec<NodeRecord<In>> = st.records.values().cloned().collect();
        vec![all; info.degree]
    }

    fn receive(
        &self,
        st: &mut RobustGatherState<In>,
        _info: &LocalInfo<(In, Vec<u64>)>,
        inbox: Vec<Vec<Vec<NodeRecord<In>>>>,
    ) {
        st.rounds_done += 1;
        for port in inbox {
            for msgs in port {
                for rec in msgs {
                    st.records.entry(rec.uid).or_insert(rec);
                }
            }
        }
    }

    fn output(
        &self,
        st: &RobustGatherState<In>,
    ) -> Option<Result<Vec<(NodeRecord<In>, usize)>, (u64, String)>> {
        // Never before round `radius`: even on a small graph where the view
        // completes early, a LOCAL node cannot *know* it has (there could
        // always be more graph beyond the silence) — and this keeps the
        // fault-free round count bit-identical to `run_gathered`.
        if st.rounds_done < self.radius {
            return None;
        }
        match resolve_members(&st.records, st.center, self.radius) {
            Ok(members) => Some(Ok(members
                .into_iter()
                .map(|(u, d)| (st.records[&u].clone(), d))
                .collect())),
            // Incomplete: keep listening, later rounds may heal it.
            Err(ViewDefect::Missing(_)) => None,
            // Corrupt: pinned forever by first-arrival-wins; fail loudly.
            Err(ViewDefect::Corrupt { uid, reason }) => Some(Err((uid, reason))),
        }
    }
}

/// Robust gathering failed; no outputs are produced.
///
/// "Failed" is always *typed*: the caller can tell an incomplete execution
/// (retry with a bigger budget, or accept the loss) from a poisoned one
/// (the transport tampered with payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatherError {
    /// The round budget ran out with some nodes still missing records
    /// (sustained drops, crashed nodes, or copies still in flight).
    PartialView {
        /// Identifiers of the nodes whose views stayed incomplete.
        missing: Vec<u64>,
        /// Rounds actually executed (= the budget).
        rounds_used: usize,
    },
    /// A node's gathered records failed validation — the transport
    /// corrupted a payload in a way the structure itself exposes.
    CorruptView {
        /// The offending record's claimed identifier.
        node: u64,
        /// What was inconsistent.
        reason: String,
        /// Rounds executed before the run was abandoned.
        rounds_used: usize,
    },
}

impl std::fmt::Display for GatherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatherError::PartialView {
                missing,
                rounds_used,
            } => write!(
                f,
                "{} node(s) still had incomplete views after {rounds_used} rounds",
                missing.len()
            ),
            GatherError::CorruptView {
                node,
                reason,
                rounds_used,
            } => write!(
                f,
                "corrupt record for node {node} detected after {rounds_used} rounds: {reason}"
            ),
        }
    }
}

impl std::error::Error for GatherError {}

/// What a successful robust gather cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherReport {
    /// Rounds executed; equals the radius on a fault-free transport, and
    /// never exceeds the budget.
    pub rounds_used: usize,
    /// The transport's fault counters for the run.
    pub faults: FaultStats,
}

/// Fault-tolerant [`run_gathered`]: floods for up to `budget ≥ radius`
/// rounds over an arbitrary transport, validates every view before
/// assembly, and degrades to a typed [`GatherError`] instead of returning
/// a silently wrong ball.
///
/// Flooding is self-healing under message loss — every round re-announces
/// every known record, so a record dropped once is re-offered as long as
/// rounds remain — which is why a finite extra budget recovers from
/// sustained random drops.
///
/// # Errors
///
/// [`GatherError::PartialView`] when the budget ran out with incomplete
/// views (the price of drops too heavy for the budget, or of crashed
/// nodes); [`GatherError::CorruptView`] when validation caught a tampered
/// record.
///
/// # Panics
///
/// Panics if `budget < radius` — the budget includes the `radius` rounds
/// any fault-free execution needs.
pub fn run_gathered_robust<In: Clone, Out>(
    net: &Network<In>,
    radius: usize,
    budget: usize,
    transport: &mut impl Transport<Vec<NodeRecord<In>>>,
    f: impl Fn(&Ball<In>) -> Out,
) -> Result<(Vec<Out>, GatherReport), GatherError> {
    assert!(
        budget >= radius,
        "budget ({budget}) must cover the fault-free round count ({radius})"
    );
    let g = net.graph();
    let inputs: Vec<(In, Vec<u64>)> = g
        .nodes()
        .map(|v| {
            let mut nbrs: Vec<u64> = g.neighbors(v).iter().map(|&u| net.uid(u)).collect();
            nbrs.sort_unstable();
            (net.input(v).clone(), nbrs)
        })
        .collect();
    let msg_net = Network::new(g.clone(), net.ids().clone(), inputs);
    let algo = RobustGatherAlgorithm {
        radius,
        _marker: std::marker::PhantomData,
    };
    let outcome = run_rounds_on(&msg_net, &algo, budget, transport);
    let report = GatherReport {
        rounds_used: outcome.rounds,
        faults: outcome.faults,
    };
    let mut missing = Vec::new();
    let mut views = Vec::with_capacity(g.n());
    for (v, out) in g.nodes().zip(outcome.outputs) {
        match out {
            Some(Ok(members)) => views.push(members),
            Some(Err((uid, reason))) => {
                return Err(GatherError::CorruptView {
                    node: uid,
                    reason: format!("in the view of node {}: {reason}", net.uid(v)),
                    rounds_used: report.rounds_used,
                })
            }
            None => missing.push(net.uid(v)),
        }
    }
    if !missing.is_empty() {
        return Err(GatherError::PartialView {
            missing,
            rounds_used: report.rounds_used,
        });
    }
    let outs = views
        .into_iter()
        .map(|members| {
            let refs: Vec<(&NodeRecord<In>, usize)> =
                members.iter().map(|(rec, d)| (rec, *d)).collect();
            f(&build_ball(&refs, radius))
        })
        .collect();
    Ok((outs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::executor::run_local;
    use lad_graph::{generators, IdAssignment};

    #[test]
    fn gathered_views_match_collected_views() {
        for (g, r) in [
            (generators::cycle(14), 3),
            (generators::grid2d(5, 5, false), 2),
            (generators::star(6), 1),
            (generators::random_bounded_degree(30, 5, 60, 1), 2),
        ] {
            let n = g.n();
            let net = Network::with_ids(g, IdAssignment::random_permutation(n, 9));
            let (gathered, rounds) =
                run_gathered(&net, r, |ball| canonicalize(ball, |_| 0)).unwrap();
            assert_eq!(rounds, r);
            let (collected, _) = run_local(&net, |ctx| canonicalize(&ctx.ball(r), |_| 0));
            assert_eq!(gathered, collected, "radius {r}");
        }
    }

    #[test]
    fn gathered_views_carry_inputs() {
        let g = generators::path(6);
        let net = Network::with_identity_ids(g).with_inputs(vec![10, 20, 30, 40, 50, 60]);
        let (sums, _) = run_gathered(&net, 1, |ball| {
            ball.graph().nodes().map(|v| *ball.input(v)).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sums[0], 30); // self + one neighbor
        assert_eq!(sums[2], 90); // 20 + 30 + 40
    }

    #[test]
    fn radius_zero_gather() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let (outs, rounds) = run_gathered(&net, 0, |ball| ball.n()).unwrap();
        assert_eq!(rounds, 0);
        assert!(outs.iter().all(|&k| k == 1));
    }

    // -- robust path ------------------------------------------------------

    use crate::transport::{FaultPlan, PerfectLink};

    #[test]
    fn robust_gather_on_perfect_link_matches_run_gathered_exactly() {
        for (g, r) in [
            (generators::cycle(14), 3),
            (generators::grid2d(5, 5, false), 2),
            (generators::star(6), 1),
            (generators::random_bounded_degree(30, 5, 60, 1), 2),
        ] {
            let n = g.n();
            let net = Network::with_ids(g, IdAssignment::random_permutation(n, 9));
            let (plain, rounds) = run_gathered(&net, r, |ball| canonicalize(ball, |_| 0)).unwrap();
            let (robust, report) = run_gathered_robust(&net, r, r + 5, &mut PerfectLink, |ball| {
                canonicalize(ball, |_| 0)
            })
            .unwrap();
            assert_eq!(robust, plain, "radius {r}");
            assert_eq!(report.rounds_used, rounds, "no faults, no extra rounds");
            assert_eq!(report.faults.total_faults(), 0);
        }
    }

    #[test]
    fn robust_gather_radius_zero() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let (outs, report) =
            run_gathered_robust(&net, 0, 0, &mut PerfectLink, |ball| ball.n()).unwrap();
        assert_eq!(report.rounds_used, 0);
        assert!(outs.iter().all(|&k| k == 1));
    }

    #[test]
    fn drops_heal_within_budget() {
        let g = generators::cycle(12);
        let net = Network::with_identity_ids(g);
        let truth = run_gathered(&net, 2, |ball| canonicalize(ball, |_| 0))
            .unwrap()
            .0;
        let plan = FaultPlan::new(21).drop_rate(0.3);
        let (outs, report) = run_gathered_robust(&net, 2, 40, &mut plan.start(), |ball| {
            canonicalize(ball, |_| 0)
        })
        .expect("30% drops must heal within a 40-round budget");
        assert_eq!(outs, truth, "healed views are bit-identical");
        assert!(report.rounds_used >= 2 && report.rounds_used <= 40);
        assert!(
            report.faults.dropped > 0,
            "the plan really dropped messages"
        );
    }

    #[test]
    fn blackout_degrades_to_partial_view() {
        let net = Network::with_identity_ids(generators::cycle(8));
        let plan = FaultPlan::new(3).drop_rate(1.0);
        let err = run_gathered_robust(&net, 2, 6, &mut plan.start(), |ball| ball.n()).unwrap_err();
        match err {
            GatherError::PartialView {
                missing,
                rounds_used,
            } => {
                assert_eq!(missing.len(), 8, "nobody hears anything");
                assert_eq!(rounds_used, 6, "the whole budget was spent");
            }
            other => panic!("expected PartialView, got {other}"),
        }
    }

    #[test]
    fn crashed_node_leaves_neighbors_short() {
        let g = generators::path(6);
        let net = Network::with_identity_ids(g);
        // Node 3 crashes immediately: nodes needing its record (or records
        // only it can relay) never complete.
        let plan = FaultPlan::new(0).crash(NodeId(3), 0);
        let err = run_gathered_robust(&net, 2, 10, &mut plan.start(), |ball| ball.n()).unwrap_err();
        match err {
            GatherError::PartialView { missing, .. } => {
                // The crashed node itself and everyone within radius 2 of it
                // (who needs a record it must send or relay) are starved.
                assert!(missing.contains(&4), "uid of the crashed node");
                assert!(missing.len() >= 3);
            }
            other => panic!("expected PartialView, got {other}"),
        }
    }

    #[test]
    fn resolve_members_checks_structure() {
        let rec = |uid: u64, nbrs: &[u64]| NodeRecord {
            uid,
            degree: nbrs.len(),
            neighbors: nbrs.to_vec(),
            input: (),
        };
        // Sound 3-path 1–2–3.
        let mut records = BTreeMap::new();
        records.insert(1, rec(1, &[2]));
        records.insert(2, rec(2, &[1, 3]));
        records.insert(3, rec(3, &[2]));
        let members = resolve_members(&records, 2, 1).unwrap();
        assert_eq!(members, vec![(2, 0), (1, 1), (3, 1)]);

        // Missing record -> recoverable defect.
        let mut partial = records.clone();
        partial.remove(&3);
        assert!(matches!(
            resolve_members(&partial, 2, 1),
            Err(ViewDefect::Missing(3))
        ));

        // Degree lie -> corrupt.
        let mut lying = records.clone();
        lying.get_mut(&2).unwrap().degree = 5;
        assert!(matches!(
            resolve_members(&lying, 2, 1),
            Err(ViewDefect::Corrupt { uid: 2, .. })
        ));

        // Unsorted neighbor list -> corrupt.
        let mut unsorted = records.clone();
        unsorted.get_mut(&2).unwrap().neighbors = vec![3, 1];
        assert!(matches!(
            resolve_members(&unsorted, 2, 1),
            Err(ViewDefect::Corrupt { uid: 2, .. })
        ));

        // Asymmetric adjacency (2 lists 4; 4 exists but denies) -> corrupt.
        let mut asym = records.clone();
        asym.get_mut(&2).unwrap().neighbors = vec![1, 4];
        asym.insert(4, rec(4, &[5]));
        asym.insert(5, rec(5, &[4]));
        assert!(matches!(
            resolve_members(&asym, 2, 1),
            Err(ViewDefect::Corrupt { uid: 2, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn robust_gather_rejects_budget_below_radius() {
        let net = Network::with_identity_ids(generators::cycle(5));
        let _ = run_gathered_robust(&net, 3, 2, &mut PerfectLink, |ball| ball.n());
    }
}
