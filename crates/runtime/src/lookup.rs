//! Lookup-table (order-invariant) local algorithms.
//!
//! A `T`-round order-invariant algorithm on bounded-degree graphs is a
//! finite map from canonical radius-`T` views to outputs. [`LookupTable`]
//! materializes such a map by *observing* a black-box algorithm on training
//! networks; conflicting observations (the same canonical view producing
//! different outputs) prove the base algorithm is **not** order-invariant.
//!
//! This is the constructive counterpart of the paper's Ramsey-based
//! order-invariance reduction (Section 8): once an algorithm is a table,
//! simulating it at one node costs a dictionary lookup — the ingredient
//! that makes the brute-force-over-advice ETH argument go through.

use crate::ball::Ball;
use crate::canonical::{canonicalize, canonicalize_with, CanonScratch, CanonicalKey};
use crate::executor::{effective_parallelism, par_map_with};
use crate::network::Network;
use lad_graph::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A conflict discovered while training: one canonical view, two outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotOrderInvariant {
    /// The offending canonical view.
    pub key: CanonicalKey,
}

impl fmt::Display for NotOrderInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "base algorithm is not order-invariant: one canonical view produced two outputs"
        )
    }
}

impl std::error::Error for NotOrderInvariant {}

/// A finite table from canonical radius-`r` views to outputs.
#[derive(Debug, Clone)]
pub struct LookupTable<Out> {
    radius: usize,
    table: HashMap<CanonicalKey, Out>,
}

impl<Out: Clone + PartialEq> LookupTable<Out> {
    /// An empty table for views of the given radius.
    pub fn new(radius: usize) -> Self {
        LookupTable {
            radius,
            table: HashMap::new(),
        }
    }

    /// The view radius the table answers for.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of distinct canonical views stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates all `(canonical view, output)` pairs (unspecified order) —
    /// how the persistent class store ([`crate::store`]) drains a trained
    /// table for serialization.
    pub fn entries(&self) -> impl Iterator<Item = (&CanonicalKey, &Out)> {
        self.table.iter()
    }

    /// Rebuilds a table from stored `(view, output)` pairs, under the same
    /// conflict discipline as [`LookupTable::observe`].
    ///
    /// # Errors
    ///
    /// Returns [`NotOrderInvariant`] if two pairs map one view to
    /// different outputs.
    pub fn from_entries(
        radius: usize,
        entries: impl IntoIterator<Item = (CanonicalKey, Out)>,
    ) -> Result<Self, NotOrderInvariant> {
        let mut t = LookupTable::new(radius);
        for (key, out) in entries {
            t.observe(key, out)?;
        }
        Ok(t)
    }

    /// Records an observation.
    ///
    /// # Errors
    ///
    /// Returns [`NotOrderInvariant`] if the key is already mapped to a
    /// different output.
    pub fn observe(&mut self, key: CanonicalKey, out: Out) -> Result<(), NotOrderInvariant> {
        match self.table.get(&key) {
            Some(existing) if *existing != out => Err(NotOrderInvariant { key }),
            Some(_) => Ok(()),
            None => {
                self.table.insert(key, out);
                Ok(())
            }
        }
    }

    /// Trains a table by running `algo` (restricted to radius-`radius`
    /// views) on each training network. Observation gathering fans out
    /// *across networks* via [`crate::par_map_with`] (training sets are
    /// many small witness networks), or across contiguous node ranges for
    /// a single large network; each worker keys every view through one
    /// explicit [`CanonScratch`], reused across its whole chunk.
    /// Observations are *recorded* sequentially in network × node order,
    /// so which conflict is reported is deterministic.
    ///
    /// `algo` is evaluated **once per canonical class per worker chunk**,
    /// not once per node — the same discipline the memo executor applies
    /// to decoding: repeat encounters reuse the class's stored output, and
    /// every encounter whose per-class hit count reaches a power of two
    /// re-evaluates `algo` fresh as a safety net. A non-order-invariant
    /// `algo` whose conflicting outputs all fall between verification
    /// points of every chunk can evade detection (detection was exhaustive
    /// when every node was evaluated); on success the table is unchanged —
    /// each class maps to the output of its first evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`NotOrderInvariant`] on any conflicting observation.
    pub fn train<In: Clone + Send + Sync>(
        radius: usize,
        training: &[Network<In>],
        input_tag: impl Fn(&In) -> u64 + Copy + Sync,
        algo: impl Fn(&Ball<In>) -> Out + Sync,
    ) -> Result<Self, NotOrderInvariant>
    where
        Out: Send,
    {
        let observe = |scratch: &mut CanonScratch,
                       net: &Network<In>,
                       nodes: std::ops::Range<usize>|
         -> Vec<(CanonicalKey, Out)> {
            let mut memo: HashMap<CanonicalKey, (Out, u64)> = HashMap::new();
            nodes
                .map(|i| {
                    let ball = Ball::collect(net, NodeId::from_index(i), radius);
                    let key = canonicalize_with(&ball, input_tag, scratch);
                    let out = match memo.get_mut(&key) {
                        Some((stored, hits)) => {
                            *hits += 1;
                            if hits.is_power_of_two() {
                                // Safety-net re-evaluation: recorded as-is,
                                // so a disagreement surfaces as a conflict
                                // in the sequential observe pass below.
                                algo(&ball)
                            } else {
                                stored.clone()
                            }
                        }
                        None => {
                            let out = algo(&ball);
                            memo.insert(key.clone(), (out.clone(), 0));
                            out
                        }
                    };
                    (key, out)
                })
                .collect()
        };
        let per_chunk: Vec<Vec<(CanonicalKey, Out)>> = if training.len() > 1 {
            par_map_with(training, CanonScratch::new, |scratch, _, net| {
                observe(scratch, net, 0..net.graph().n())
            })
        } else if let Some(net) = training.first() {
            // One network: fan out across contiguous node ranges instead.
            let n = net.graph().n();
            let chunk = n.div_ceil(effective_parallelism(n).max(1)).max(1);
            let ranges: Vec<std::ops::Range<usize>> = (0..n)
                .step_by(chunk)
                .map(|s| s..(s + chunk).min(n))
                .collect();
            par_map_with(&ranges, CanonScratch::new, |scratch, _, range| {
                observe(scratch, net, range.clone())
            })
        } else {
            Vec::new()
        };
        let mut t = LookupTable::new(radius);
        for pairs in per_chunk {
            for (key, out) in pairs {
                t.observe(key, out)?;
            }
        }
        Ok(t)
    }

    /// Evaluates the table on a view; `None` when the view was never seen
    /// in training.
    pub fn eval<In>(&self, ball: &Ball<In>, input_tag: impl Fn(&In) -> u64) -> Option<Out> {
        self.table.get(&canonicalize(ball, input_tag)).cloned()
    }

    /// [`LookupTable::eval`] with a caller-provided keying workspace — for
    /// callers evaluating many views in a loop, where the thread-local
    /// fallback inside [`canonicalize`] would hide the reuse.
    pub fn eval_with<In>(
        &self,
        ball: &Ball<In>,
        input_tag: impl Fn(&In) -> u64,
        scratch: &mut CanonScratch,
    ) -> Option<Out> {
        self.table
            .get(&canonicalize_with(ball, input_tag, scratch))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::{generators, IdAssignment, NodeId};

    /// An order-invariant toy algorithm: "am I a local minimum among the
    /// uids in my radius-1 view?"
    fn local_min(ball: &Ball) -> bool {
        let me = ball.uid(ball.center());
        ball.graph().nodes().all(|v| ball.uid(v) >= me)
    }

    fn nets(seed0: u64, count: u64) -> Vec<Network> {
        (0..count)
            .map(|s| {
                Network::with_ids(
                    generators::cycle(12),
                    IdAssignment::random_permutation(12, seed0 + s),
                )
            })
            .collect()
    }

    #[test]
    fn train_and_eval_order_invariant_algo() {
        let training = nets(1, 10);
        let table = LookupTable::train(1, &training, |_| 0, local_min).unwrap();
        assert!(!table.is_empty());
        // Evaluate on a fresh network: table must agree with the algorithm
        // wherever it answers.
        let test = Network::with_ids(
            generators::cycle(12),
            IdAssignment::random_permutation(12, 999),
        );
        let mut answered = 0;
        for v in test.graph().nodes() {
            let ball = Ball::collect(&test, v, 1);
            if let Some(ans) = table.eval(&ball, |_| 0) {
                assert_eq!(ans, local_min(&ball));
                answered += 1;
            }
        }
        assert!(answered > 0);
    }

    #[test]
    fn detects_non_order_invariance() {
        // "Is my uid even?" depends on numerical values, not order.
        let training = nets(50, 10);
        let res = LookupTable::train(
            1,
            &training,
            |_| 0,
            |ball: &Ball| ball.uid(ball.center()) % 2 == 0,
        );
        assert!(res.is_err());
    }

    #[test]
    fn table_size_is_bounded_by_structure() {
        // On a cycle with radius 1 there are finitely many canonical views:
        // center rank among 3 uids (3 orderings of distinct ranks with the
        // center in any position) -> at most 3.
        let training = nets(100, 30);
        let table = LookupTable::train(1, &training, |_| 0, local_min).unwrap();
        assert!(table.len() <= 3, "got {}", table.len());
    }

    #[test]
    fn eval_unknown_view_is_none() {
        let table: LookupTable<bool> = LookupTable::new(1);
        let net = Network::with_identity_ids(generators::path(3));
        let ball = Ball::collect(&net, NodeId(0), 1);
        assert_eq!(table.eval(&ball, |_| 0), None);
    }
}

/// All permutations of `0..n` (Heap's algorithm; intended for tiny `n`).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

impl<Out: Clone + PartialEq> LookupTable<Out> {
    /// Exhaustively trains a radius-`radius` table that is *total* on
    /// graphs of maximum degree ≤ 2 (disjoint unions of paths and
    /// cycles): every canonical view arising in any such network is
    /// realized — as a path segment of ≤ `2·radius + 1` nodes or a full
    /// cycle of ≤ `2·radius + 1` nodes — on a concrete witness network
    /// with every possible identifier ordering, and the black-box
    /// algorithm is observed on all of them.
    ///
    /// This is the constructive heart of the paper's Section-8 claim that
    /// order-invariant algorithms on bounded-degree graphs are finite
    /// lookup tables: the table below has size `f(radius)`, independent of
    /// any particular input graph.
    ///
    /// # Errors
    ///
    /// [`NotOrderInvariant`] if the observed algorithm is not
    /// order-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `radius > 3` (the witness count grows factorially).
    pub fn train_exhaustive_deg2(
        radius: usize,
        algo: impl Fn(&Ball<()>) -> Out + Copy + Sync,
    ) -> Result<Self, NotOrderInvariant>
    where
        Out: Send,
    {
        assert!(
            radius <= 3,
            "witness enumeration is factorial in the radius"
        );
        let mut witnesses: Vec<lad_graph::Graph> = Vec::new();
        for n in 1..=(2 * radius + 2) {
            if n >= 2 {
                witnesses.push(lad_graph::generators::path(n));
            } else {
                witnesses.push(lad_graph::GraphBuilder::new(1).build());
            }
        }
        for n in 3..=(2 * radius + 1).max(3) {
            witnesses.push(lad_graph::generators::cycle(n));
        }
        let mut training = Vec::new();
        for g in &witnesses {
            for perm in permutations(g.n()) {
                let uids: Vec<u64> = perm.iter().map(|&p| p as u64 + 1).collect();
                training.push(Network::with_ids(
                    g.clone(),
                    lad_graph::IdAssignment::from_uids(uids),
                ));
            }
        }
        Self::train(radius, &training, |_| 0, algo)
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use lad_graph::{generators, IdAssignment, NodeId};

    fn local_min(ball: &Ball<()>) -> bool {
        let me = ball.uid(ball.center());
        ball.graph().nodes().all(|v| ball.uid(v) >= me)
    }

    #[test]
    fn exhaustive_table_is_total_on_deg2_networks() {
        let table = LookupTable::train_exhaustive_deg2(1, local_min).unwrap();
        // Evaluate on fresh networks with sparse random identifiers:
        // every view must be answered, and answered correctly.
        for seed in 0..5 {
            for g in [
                generators::cycle(40),
                generators::path(23),
                generators::disjoint_union(&[generators::cycle(5), generators::path(9)]),
            ] {
                let n = g.n();
                let net = Network::with_ids(g, IdAssignment::random_sparse(n, 10_000, seed));
                for v in net.graph().nodes() {
                    let ball = Ball::collect(&net, v, 1);
                    let ans = table
                        .eval(&ball, |_| 0)
                        .expect("exhaustive table must be total");
                    assert_eq!(ans, local_min(&ball));
                }
            }
        }
    }

    #[test]
    fn exhaustive_table_size_is_a_constant() {
        let t1 = LookupTable::train_exhaustive_deg2(1, local_min).unwrap();
        let t2 = LookupTable::train_exhaustive_deg2(2, local_min).unwrap();
        // f(radius), certainly not a function of any n we later run on.
        assert!(t1.len() < t2.len());
        assert!(t2.len() < 1000, "table stays small: {}", t2.len());
    }

    #[test]
    fn permutations_count() {
        assert_eq!(super::permutations(1).len(), 1);
        assert_eq!(super::permutations(3).len(), 6);
        assert_eq!(super::permutations(4).len(), 24);
        // All distinct.
        let mut p = super::permutations(4);
        p.sort();
        p.dedup();
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn radius_zero_single_node() {
        let table = LookupTable::train_exhaustive_deg2(0, |ball: &Ball<()>| ball.n()).unwrap();
        let net = Network::with_identity_ids(generators::cycle(9));
        let ball = Ball::collect(&net, NodeId(4), 0);
        assert_eq!(table.eval(&ball, |_| 0), Some(1));
    }
}
