//! Incremental execution under edge churn.
//!
//! A LOCAL algorithm's output at `v` is a pure function of `v`'s
//! radius-`T` view, so an edge edit can change outputs only within
//! distance `T` of its endpoints — `O(Δ^T)` nodes, independent of `n`.
//! The sessions here exploit that: run once from scratch, then after each
//! edit batch recompute **only** the nodes
//! [`MutableGraph::dirty_within`]`(T)` reports, keeping everything else
//! (outputs, cached balls, memoized classes) warm.
//!
//! Two sessions, mirroring the two executor families:
//!
//! * [`ChurnLocal`] — the plain path. Keeps a [`ViewCache`]; a batch
//!   evicts exactly the dirty slots ([`ViewCache::invalidate`]) and
//!   re-runs the per-node algorithm there. Clean nodes' cached balls stay
//!   valid across the rebuild because a ball at radius `≤ T` of a
//!   non-dirty node is — by the same locality argument — identical in the
//!   old and new graphs.
//! * [`ChurnMemoLocal`] — the memoized path. Keeps a persistent class
//!   memo with **per-class membership counts**: every node logs the chain
//!   of classes it confirmed (each `Expand` rung plus its final verdict),
//!   a batch releases the dirty nodes' chains, classes that lose their
//!   last member are retired, and the dirty nodes re-probe through a
//!   fresh `ShellEngine` tile sweep — paying canonical re-keying for
//!   `O(dirty)` centers, not `n`. Classes are keyed by canonical ball
//!   structure, which is graph-independent, so surviving classes serve
//!   the mutated graph unchanged (and stay under the same geometric
//!   re-verification schedule as in the one-shot executors).
//!
//! Both sessions are pinned by the churn differential harness
//! (`crates/runtime/tests/churn.rs`): after every batch, their outputs
//! must be **bit-identical** to a from-scratch [`run_local`] /
//! [`run_local_memo`] on the mutated graph.
//!
//! One scoping caveat: the contract covers outputs determined by the
//! LOCAL-model view — structure, distances, identifiers, inputs, global
//! degrees. Global [`EdgeId`]s are *not* view information (the model has
//! no edge identifiers; ours index the CSR's lex-sorted edge list and
//! renumber wholesale on any edit), so an algorithm that copies
//! [`crate::Ball::global_edge`] values into its output is not a function
//! of its view and falls outside the repair guarantee — a clean node's
//! ball is identical across an edit in every respect *except* that
//! table.
//!
//! [`EdgeId`]: lad_graph::EdgeId
//!
//! [`run_local`]: crate::run_local
//! [`run_local_memo`]: crate::run_local_memo

use crate::ball::Scratch;
use crate::cache::{CacheStats, ViewCache};
use crate::canonical::CanonScratch;
use crate::ctx::NodeCtx;
use crate::executor::{
    bfs_visit_order, flush_memo_stats, memo_first_error, memo_run_tile, ClassMemo, ClassRef,
    MemoStats, MemoStep, RoundStats,
};
use crate::lookup::NotOrderInvariant;
use crate::network::Network;
use crate::shell::{ShellEngine, TILE_WIDTH};
use lad_graph::mutate::{Edit, MutableGraph};
use lad_graph::NodeId;
use std::cell::RefCell;

/// What one [`ChurnLocal::apply`] / [`ChurnMemoLocal::apply`] batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Edits that changed the edge set.
    pub applied: usize,
    /// No-op edits (inserting a present edge, removing an absent one).
    pub skipped: usize,
    /// Nodes invalidated and recomputed this batch.
    pub repaired: usize,
    /// Repaired nodes whose output actually changed.
    pub changed: usize,
    /// Memo classes retired because the batch released their last member
    /// (always 0 for [`ChurnLocal`], which has no memo).
    pub retired_classes: usize,
}

/// Incremental plain-executor session: outputs kept current under edge
/// churn by recomputing only invalidated nodes, against a warm
/// [`ViewCache`].
///
/// `radius` is the algorithm's locality bound `T`: the session asserts
/// that no node ever requests a view beyond it (the invalidation argument
/// is unsound past the bound, so this is a hard contract, not a hint).
pub struct ChurnLocal<In, Out, A> {
    mg: MutableGraph,
    net: Network<In>,
    cache: ViewCache<In>,
    algo: A,
    radius: usize,
    outs: Vec<Out>,
    per_node: Vec<usize>,
}

impl<In: Clone, Out: PartialEq, A: Fn(&NodeCtx<In>) -> Out> ChurnLocal<In, Out, A> {
    /// Runs `algo` at every node of `net` (exactly like
    /// [`crate::run_local_cached`] over a fresh cache) and opens a churn
    /// session over the result.
    ///
    /// # Panics
    ///
    /// Panics if any node requests a view of radius greater than `radius`.
    pub fn new(net: Network<In>, radius: usize, algo: A) -> Self {
        let n = net.graph().n();
        let mg = MutableGraph::new(net.graph().clone());
        let cache = ViewCache::for_network(&net);
        let mut session = ChurnLocal {
            mg,
            net,
            cache,
            algo,
            radius,
            outs: Vec::with_capacity(n),
            per_node: Vec::with_capacity(n),
        };
        let scratch = RefCell::new(Scratch::new(n));
        for v in session.net.graph().nodes() {
            let ctx = NodeCtx::with_cache(&session.net, v, &session.cache, &scratch);
            let out = (session.algo)(&ctx);
            session.check_radius(v, ctx.rounds_used());
            session.outs.push(out);
            session.per_node.push(ctx.rounds_used());
        }
        session
    }

    fn check_radius(&self, v: NodeId, used: usize) {
        assert!(
            used <= self.radius,
            "locality bound violated: node {v:?} used radius {used} > {} — \
             incremental repair would be unsound",
            self.radius
        );
    }

    /// Applies an edit batch, repairs every invalidated node, and returns
    /// what changed. After this call [`Self::outputs`] is bit-identical to
    /// a from-scratch run on the mutated graph.
    pub fn apply(&mut self, edits: &[Edit]) -> RepairReport {
        let edit_report = self.mg.apply(edits);
        let dirty = self.mg.dirty_within(self.radius);
        // Same node set, new adjacency; uids and inputs carry over.
        self.net = Network::new(
            self.mg.graph().clone(),
            self.net.ids().clone(),
            self.net.inputs().to_vec(),
        );
        self.cache.invalidate(&dirty);
        let scratch = RefCell::new(Scratch::new(self.net.graph().n()));
        let mut changed = 0usize;
        for &v in &dirty {
            let ctx = NodeCtx::with_cache(&self.net, v, &self.cache, &scratch);
            let out = (self.algo)(&ctx);
            self.check_radius(v, ctx.rounds_used());
            self.per_node[v.index()] = ctx.rounds_used();
            if self.outs[v.index()] != out {
                self.outs[v.index()] = out;
                changed += 1;
            }
        }
        self.mg.clear_dirty();
        RepairReport {
            applied: edit_report.applied,
            skipped: edit_report.skipped,
            repaired: dirty.len(),
            changed,
            retired_classes: 0,
        }
    }

    /// The current per-node outputs (always consistent with
    /// [`Self::network`]).
    pub fn outputs(&self) -> &[Out] {
        &self.outs
    }

    /// The current network.
    pub fn network(&self) -> &Network<In> {
        &self.net
    }

    /// Per-node view radii of the current outputs.
    pub fn round_stats(&self) -> RoundStats {
        RoundStats::from_per_node(self.per_node.clone())
    }

    /// The session cache's counters — `invalidations` tracks evicted warm
    /// slots across batches.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Incremental memoized session: like [`ChurnLocal`] but decoding once
/// per canonical class, with the class store kept alive across batches.
///
/// `initial_radius`/`step` follow the [`crate::run_local_memo`] ladder
/// contract ([`MemoStep::Done`] / [`MemoStep::Expand`]); `max_radius`
/// bounds every rung the ladder may reach and doubles as the invalidation
/// radius. Errors follow [`crate::run_local_memo_fallible`]: the
/// first-in-node-order per-node error, or [`NotOrderInvariant`] if the
/// step is not class-determined. Only dirty nodes can *start* failing
/// after a batch, so the smallest-index dirty failure is the global
/// first error. A batch that errors poisons the session (its partial
/// state is unreleased); every later call panics.
pub struct ChurnMemoLocal<In, Out, Tag, Step> {
    mg: MutableGraph,
    net: Network<In>,
    input_tag: Tag,
    step: Step,
    initial_radius: usize,
    max_radius: usize,
    memo: ClassMemo<Out>,
    /// Per node: the chain of classes it currently pins (one per ladder
    /// rung, final verdict last). Released on invalidation.
    assign: Vec<Vec<ClassRef>>,
    outs: Vec<Option<Out>>,
    per_node: Vec<usize>,
    poisoned: bool,
}

impl<In, Out, Tag, Step> ChurnMemoLocal<In, Out, Tag, Step>
where
    In: Clone,
    Out: Clone + PartialEq,
    Tag: Fn(&In, &mut Vec<u64>),
{
    /// Decodes every node of `net` through a fresh class memo and opens a
    /// churn session over the result.
    pub fn new<E>(
        net: Network<In>,
        initial_radius: usize,
        max_radius: usize,
        input_tag: Tag,
        step: Step,
    ) -> Result<Self, E>
    where
        E: From<NotOrderInvariant>,
        Step: Fn(&crate::Ball<In>) -> Result<MemoStep<Out>, E>,
    {
        assert!(initial_radius <= max_radius);
        let n = net.graph().n();
        let mut session = ChurnMemoLocal {
            mg: MutableGraph::new(net.graph().clone()),
            net,
            input_tag,
            step,
            initial_radius,
            max_radius,
            memo: ClassMemo::default(),
            assign: vec![Vec::new(); n],
            outs: std::iter::repeat_with(|| None).take(n).collect(),
            per_node: vec![0; n],
            poisoned: false,
        };
        let order = bfs_visit_order(session.net.graph());
        session.repair(&order)?;
        Ok(session)
    }

    /// Re-decodes `centers` against the persistent memo through one fresh
    /// tile sweep. Every confirmed/created class is appended to the
    /// centers' assignment chains (the caller must have released the old
    /// chains first).
    fn repair<E>(&mut self, centers: &[NodeId]) -> Result<(), E>
    where
        E: From<NotOrderInvariant>,
        Step: Fn(&crate::Ball<In>) -> Result<MemoStep<Out>, E>,
    {
        let n = self.net.graph().n();
        let mut stats = MemoStats::default();
        // The engine is per-network (the graph changed), but its cost is
        // O(1) setup plus the swept shells — the persistent state that
        // matters across batches is the memo, not the engine.
        let mut engine = ShellEngine::new(&self.net, &self.input_tag);
        let mut failed: Vec<usize> = Vec::new();
        let mut conflict = None;
        for tile in centers.chunks(TILE_WIDTH) {
            if let Err(c) = memo_run_tile(
                &self.net,
                tile,
                0,
                self.initial_radius,
                &self.input_tag,
                &self.step,
                &mut self.memo,
                &mut engine,
                &mut stats,
                &mut failed,
                &mut self.outs,
                &mut self.per_node,
                Some(&mut self.assign),
            ) {
                conflict = Some(c);
                break;
            }
        }
        flush_memo_stats(&stats);
        if let Some(c) = conflict {
            self.poisoned = true;
            return Err(c.into());
        }
        if let Some(&i) = failed.iter().min() {
            self.poisoned = true;
            let mut scratch = Scratch::new(n);
            let mut cscratch = CanonScratch::new();
            return Err(memo_first_error(
                &self.net,
                NodeId::from_index(i),
                self.initial_radius,
                &self.input_tag,
                &self.step,
                &mut scratch,
                &mut cscratch,
            ));
        }
        for &v in centers {
            assert!(
                self.per_node[v.index()] <= self.max_radius,
                "locality bound violated: node {v:?} reached radius {} > {} — \
                 incremental repair would be unsound",
                self.per_node[v.index()],
                self.max_radius
            );
        }
        Ok(())
    }

    /// Applies an edit batch: releases the dirty nodes' class memberships
    /// (retiring classes at zero members), re-probes exactly those nodes,
    /// and returns what changed. After an `Ok`, [`Self::outputs`] is
    /// bit-identical to a from-scratch memoized run on the mutated graph.
    ///
    /// # Panics
    ///
    /// Panics if a previous batch returned an error (the session is
    /// poisoned).
    pub fn apply<E>(&mut self, edits: &[Edit]) -> Result<RepairReport, E>
    where
        E: From<NotOrderInvariant>,
        Step: Fn(&crate::Ball<In>) -> Result<MemoStep<Out>, E>,
    {
        assert!(
            !self.poisoned,
            "churn session poisoned by an earlier error; rebuild it"
        );
        let edit_report = self.mg.apply(edits);
        let dirty = self.mg.dirty_within(self.max_radius);
        self.net = Network::new(
            self.mg.graph().clone(),
            self.net.ids().clone(),
            self.net.inputs().to_vec(),
        );
        let mut retired = 0usize;
        let old: Vec<Option<Out>> = dirty
            .iter()
            .map(|v| {
                for class in std::mem::take(&mut self.assign[v.index()]) {
                    if self.memo.release(class) {
                        retired += 1;
                    }
                }
                self.outs[v.index()].take()
            })
            .collect();
        self.repair(&dirty)?;
        let changed = dirty
            .iter()
            .zip(&old)
            .filter(|(v, old)| old.as_ref() != self.outs[v.index()].as_ref())
            .count();
        self.mg.clear_dirty();
        Ok(RepairReport {
            applied: edit_report.applied,
            skipped: edit_report.skipped,
            repaired: dirty.len(),
            changed,
            retired_classes: retired,
        })
    }

    /// The current per-node outputs.
    ///
    /// # Panics
    ///
    /// Panics if the session is poisoned.
    pub fn outputs(&self) -> Vec<Out> {
        assert!(!self.poisoned, "churn session poisoned");
        self.outs
            .iter()
            .map(|o| o.clone().expect("healthy session fills every node"))
            .collect()
    }

    /// The current network.
    pub fn network(&self) -> &Network<In> {
        &self.net
    }

    /// Per-node view radii of the current outputs.
    pub fn round_stats(&self) -> RoundStats {
        RoundStats::from_per_node(self.per_node.clone())
    }

    /// Live classes in the persistent memo.
    pub fn class_count(&self) -> usize {
        self.memo.class_count()
    }

    /// Total class memberships — equals the summed length of all
    /// assignment chains (one membership per confirmed ladder rung per
    /// node); an invariant the churn tests check across batches.
    pub fn member_count(&self) -> usize {
        self.memo.member_count()
    }
}

/// A churn session whose executor family is chosen by the adaptive
/// planner ([`crate::plan_decode`]) at open time.
///
/// The caller supplies *both* formulations of the same algorithm — the
/// per-node closure the plain session runs and the
/// tag/[`MemoStep`]-ladder the memoized session runs — and the planner's
/// instance probe decides which one carries the session. The churn
/// differential harness pins both sessions bit-identical to a
/// from-scratch run, so the choice is pure speed: a class-heavy instance
/// (cycles, uniform inputs) keeps its persistent memo warm across
/// batches, while a class-sparse one (small tori, distinct advice) skips
/// canonical keying entirely.
pub enum PlannedChurnLocal<In, Out, A, Tag, Step> {
    /// The planner chose the plain cached session.
    Plain(ChurnLocal<In, Out, A>),
    /// The planner chose the persistent class-memo session.
    Memo(ChurnMemoLocal<In, Out, Tag, Step>),
}

impl<In, Out, A, Tag, Step> PlannedChurnLocal<In, Out, A, Tag, Step>
where
    In: Clone,
    Out: Clone + PartialEq,
    A: Fn(&NodeCtx<In>) -> Out,
    Tag: Fn(&In, &mut Vec<u64>),
{
    /// Probes `net` and opens the session the planner picked, returning
    /// it together with the decision (probe evidence included). `algo`
    /// and the `input_tag`/`step` ladder must compute the same per-node
    /// output; `schema` selects the planner's calibration prior.
    ///
    /// # Errors
    ///
    /// Exactly [`ChurnMemoLocal::new`]'s contract when the memoized
    /// session is chosen; the plain session is infallible to open.
    ///
    /// # Panics
    ///
    /// Panics if `initial_radius > max_radius`, or (plain leg) if a node
    /// requests a view beyond `max_radius`.
    pub fn open<E>(
        net: Network<In>,
        initial_radius: usize,
        max_radius: usize,
        schema: &str,
        algo: A,
        input_tag: Tag,
        step: Step,
    ) -> Result<(Self, crate::plan::PlanDecision), E>
    where
        E: From<NotOrderInvariant>,
        Step: Fn(&crate::Ball<In>) -> Result<MemoStep<Out>, E>,
    {
        assert!(initial_radius <= max_radius);
        let plan = crate::plan::plan_decode(&net, initial_radius, &input_tag, schema, None);
        let session = match plan.path {
            crate::plan::ExecPath::Plain => {
                PlannedChurnLocal::Plain(ChurnLocal::new(net, max_radius, algo))
            }
            crate::plan::ExecPath::Memo => PlannedChurnLocal::Memo(ChurnMemoLocal::new(
                net,
                initial_radius,
                max_radius,
                input_tag,
                step,
            )?),
        };
        Ok((session, plan))
    }

    /// Which family carries this session.
    pub fn path(&self) -> crate::plan::ExecPath {
        match self {
            PlannedChurnLocal::Plain(_) => crate::plan::ExecPath::Plain,
            PlannedChurnLocal::Memo(_) => crate::plan::ExecPath::Memo,
        }
    }

    /// Applies an edit batch through whichever session is live. See
    /// [`ChurnLocal::apply`] / [`ChurnMemoLocal::apply`].
    ///
    /// # Errors
    ///
    /// Only the memoized leg can fail (first-in-node-order step error or
    /// [`NotOrderInvariant`]); the plain leg always succeeds.
    ///
    /// # Panics
    ///
    /// Panics if the memoized leg was poisoned by an earlier error.
    pub fn apply<E>(&mut self, edits: &[Edit]) -> Result<RepairReport, E>
    where
        E: From<NotOrderInvariant>,
        Step: Fn(&crate::Ball<In>) -> Result<MemoStep<Out>, E>,
    {
        match self {
            PlannedChurnLocal::Plain(s) => Ok(s.apply(edits)),
            PlannedChurnLocal::Memo(s) => s.apply(edits),
        }
    }

    /// The current per-node outputs.
    ///
    /// # Panics
    ///
    /// Panics if the memoized leg is poisoned.
    pub fn outputs(&self) -> Vec<Out> {
        match self {
            PlannedChurnLocal::Plain(s) => s.outputs().to_vec(),
            PlannedChurnLocal::Memo(s) => s.outputs(),
        }
    }

    /// The current network.
    pub fn network(&self) -> &Network<In> {
        match self {
            PlannedChurnLocal::Plain(s) => s.network(),
            PlannedChurnLocal::Memo(s) => s.network(),
        }
    }

    /// Per-node view radii of the current outputs.
    pub fn round_stats(&self) -> RoundStats {
        match self {
            PlannedChurnLocal::Plain(s) => s.round_stats(),
            PlannedChurnLocal::Memo(s) => s.round_stats(),
        }
    }
}
