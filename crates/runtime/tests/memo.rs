//! Differential harness for the memoized executor: `run_local_memo*` must
//! compute the *same function* as [`run_local`] whenever the step is
//! order-invariant, and must *refuse* (never silently mis-share) when it
//! is not.
//!
//! Coverage mirrors `equivalence.rs`:
//! * the deterministic generator grid × three step shapes (fixed radius,
//!   adaptive Expand ladders, fallible with order-invariant failure sets)
//!   × thread counts {1, 2, 3, 8};
//! * proptest-driven random shapes, radii, and thread counts;
//! * deliberately order-*sensitive* steps, which every memo entry point
//!   must reject with [`NotOrderInvariant`] instead of returning answers;
//! * first-error choice on fallible steps, which must match
//!   [`run_local_fallible`]'s smallest-failing-node-index semantics, with
//!   the error value regenerated exactly (node-specific payloads included).
//!
//! Everything here runs under both feature configurations: with
//! `--no-default-features` the `*_par*` entry points degrade to the
//! sequential path, and the assertions are unchanged.

use lad_graph::{builder::GraphBuilder, generators, Graph};
use lad_runtime::{
    run_local, run_local_fallible, run_local_memo, run_local_memo_fallible,
    run_local_memo_fallible_par_with, run_local_memo_par_with, Ball, MemoStep, Network, NodeCtx,
    NotOrderInvariant, RoundStats,
};
use proptest::prelude::*;

const THREAD_GRID: [usize; 4] = [1, 2, 3, 8];

/// Same deterministic generator grid as `equivalence.rs`.
fn generator_grid() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(24)),
        ("star", generators::star(6)),
        ("complete", generators::complete(7)),
        ("balanced-tree", generators::balanced_tree(2, 4)),
        ("caterpillar", generators::caterpillar(8, 2)),
        ("random-tree", generators::random_tree(30, 3)),
        ("grid", generators::grid2d(6, 5, false)),
        ("torus", generators::grid2d(5, 5, true)),
        ("hypercube", generators::hypercube(4)),
        ("ladder", generators::ladder(6)),
        ("random-regular", generators::random_regular(24, 3, 5)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(40, 4, 60, 9),
        ),
        (
            "subexp-torus-patch",
            generators::random_torus_patch(8, 8, 0.85, 4),
        ),
        (
            "disconnected",
            generators::disjoint_union(&[
                generators::cycle(5),
                generators::path(4),
                GraphBuilder::new(2).build(), // isolated nodes
            ]),
        ),
    ]
}

/// Nontrivial identifiers and inputs, as in `equivalence.rs`: memoization
/// must survive scrambled uids, because keys depend on uid *order* only.
fn network_for(g: &Graph) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = lad_graph::IdAssignment::random_permutation(g.n(), 0xC0FFEE);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

fn tag(input: &u32, words: &mut Vec<u64>) {
    words.push(u64::from(*input));
}

/// An order-invariant digest of a ball: structure, inputs, distances, and
/// the center's *rank* among ball uids (order information is fine — the
/// numerical uid values are not).
fn oi_digest(ball: &Ball<u32>) -> (usize, usize, u64, usize) {
    let c = ball.center();
    let center_rank = ball.uids().iter().filter(|&&u| u < ball.uid(c)).count();
    let weighted: u64 = (0..ball.n())
        .map(|i| {
            let v = lad_graph::NodeId(i as u32);
            u64::from(*ball.input(v)) * (ball.dist(v) as u64 + 1)
        })
        .sum();
    (ball.n(), ball.graph().m(), weighted, center_rank)
}

/// Asserts the memo entry points reproduce `run_local`'s outputs and
/// per-node round statistics exactly, across the thread grid.
fn assert_memo_equals_reference<Out>(
    tag_: &str,
    net: &Network<u32>,
    initial_radius: usize,
    step: impl Fn(&Ball<u32>) -> MemoStep<Out> + Sync,
    reference: impl Fn(&NodeCtx<u32>) -> Out + Sync,
) where
    Out: Clone + PartialEq + std::fmt::Debug + Send,
{
    let expected: (Vec<Out>, RoundStats) = run_local(net, &reference);
    let seq = run_local_memo(net, initial_radius, tag, &step)
        .unwrap_or_else(|e| panic!("{tag_}: memo refused an order-invariant step: {e}"));
    assert_eq!(seq, expected, "{tag_}: memo seq");
    for threads in THREAD_GRID {
        let par = run_local_memo_par_with(net, threads, initial_radius, tag, &step)
            .unwrap_or_else(|e| panic!("{tag_}: memo par refused ({threads} threads): {e}"));
        assert_eq!(par, expected, "{tag_}: memo par, {threads} threads");
    }
}

#[test]
fn fixed_radius_digests_identical_everywhere() {
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        for radius in 0..=3 {
            assert_memo_equals_reference(
                &format!("{tag_}/r{radius}"),
                &net,
                radius,
                |ball| MemoStep::Done(oi_digest(ball)),
                |ctx| oi_digest(&ctx.ball(radius)),
            );
        }
    }
}

#[test]
fn adaptive_expand_ladders_identical_everywhere() {
    // Expand until the ball covers ≥ 12 nodes or radius 6 is reached: the
    // memo walks the same radius ladder `run_local`'s loop walks, so the
    // per-node `RoundStats` must agree too.
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        assert_memo_equals_reference(
            tag_,
            &net,
            0,
            |ball| {
                let r = ball.radius();
                if ball.n() >= 12 || r >= 6 {
                    MemoStep::Done((r, oi_digest(ball)))
                } else {
                    MemoStep::Expand(r + 1)
                }
            },
            |ctx| {
                let mut r = 0;
                loop {
                    let ball = ctx.ball(r);
                    if ball.n() >= 12 || r >= 6 {
                        return (r, oi_digest(&ball));
                    }
                    r += 1;
                }
            },
        );
    }
}

/// Test error carrying a node-specific payload; the memo path must
/// reproduce it exactly by replaying the failing node, never by sharing a
/// stored error across a class.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TestErr {
    Algo(String),
    Oi(NotOrderInvariant),
}

impl From<NotOrderInvariant> for TestErr {
    fn from(e: NotOrderInvariant) -> Self {
        TestErr::Oi(e)
    }
}

#[test]
fn fallible_first_error_choice_matches_sequential() {
    // Which nodes fail is order-invariant (a property of the labeled
    // ball); the error *payload* names the concrete failing node.
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        for radius in 0..=2 {
            let fails = |ball: &Ball<u32>| *ball.input(ball.center()) % 5 == 3;
            let step = |ball: &Ball<u32>| -> Result<MemoStep<(usize, usize, u64, usize)>, TestErr> {
                if fails(ball) {
                    Err(TestErr::Algo(format!(
                        "uid {} refused",
                        ball.uid(ball.center())
                    )))
                } else {
                    Ok(MemoStep::Done(oi_digest(ball)))
                }
            };
            let reference = run_local_fallible(&net, |ctx: &NodeCtx<u32>| -> Result<_, TestErr> {
                let ball = ctx.ball(radius);
                if fails(&ball) {
                    Err(TestErr::Algo(format!(
                        "uid {} refused",
                        ball.uid(ball.center())
                    )))
                } else {
                    Ok(oi_digest(&ball))
                }
            });
            let seq = run_local_memo_fallible(&net, radius, tag, step);
            assert_eq!(seq, reference, "{tag_}/r{radius}: fallible memo seq");
            for threads in THREAD_GRID {
                let par = run_local_memo_fallible_par_with(&net, threads, radius, tag, step);
                assert_eq!(
                    par, reference,
                    "{tag_}/r{radius}: fallible memo par, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn order_sensitive_step_is_refused_not_mis_shared() {
    // Raw uid values are order-*sensitive*: nodes of the same canonical
    // class return different answers. Every memo entry point must detect
    // this (via verify-on-reuse or shard merging) and refuse. A cycle with
    // constant inputs puts every node in one class, so detection is
    // guaranteed at the first reuse.
    let net = Network::with_ids(
        generators::cycle(24),
        lad_graph::IdAssignment::random_permutation(24, 7),
    )
    .with_inputs(vec![0u32; 24]);
    let step = |ball: &Ball<u32>| MemoStep::Done(ball.uid(ball.center()));
    assert!(
        run_local_memo(&net, 1, tag, step).is_err(),
        "sequential memo accepted an order-sensitive step"
    );
    for threads in THREAD_GRID {
        assert!(
            run_local_memo_par_with(&net, threads, 1, tag, step).is_err(),
            "parallel memo ({threads} threads) accepted an order-sensitive step"
        );
    }
    let fallible = |ball: &Ball<u32>| -> Result<MemoStep<u64>, TestErr> {
        Ok(MemoStep::Done(ball.uid(ball.center())))
    };
    assert!(matches!(
        run_local_memo_fallible(&net, 1, tag, fallible),
        Err(TestErr::Oi(_))
    ));
    for threads in THREAD_GRID {
        assert!(matches!(
            run_local_memo_fallible_par_with(&net, threads, 1, tag, fallible),
            Err(TestErr::Oi(_))
        ));
    }
}

#[test]
fn order_sensitive_expand_ladder_is_refused() {
    // Order sensitivity hiding in the *ladder shape* (how far a node
    // expands depends on its uid value) must be caught as well.
    let net = Network::with_ids(
        generators::cycle(24),
        lad_graph::IdAssignment::random_permutation(24, 11),
    )
    .with_inputs(vec![0u32; 24]);
    let step = |ball: &Ball<u32>| {
        let r = ball.radius();
        if r > (ball.uid(ball.center()) % 3) as usize {
            MemoStep::Done(ball.n())
        } else {
            MemoStep::Expand(r + 1)
        }
    };
    assert!(
        run_local_memo(&net, 0, tag, step).is_err(),
        "memo accepted a uid-dependent expansion ladder"
    );
}

/// Builds the `family`-th random graph family at size `n` with `seed`
/// (same grid as `equivalence.rs`).
fn arb_family(family: usize, n: usize, seed: u64) -> Graph {
    match family {
        0 => generators::path(n.max(2)),
        1 => generators::cycle(n.max(3)),
        2 => generators::random_tree(n.max(2), seed),
        3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
        4 => {
            let side = (n / 2).max(2);
            generators::random_bipartite_regular(side, 2, seed)
        }
        5 => generators::random_regular(
            if n.is_multiple_of(2) {
                n.max(4)
            } else {
                n.max(4) + 1
            },
            3,
            seed,
        ),
        6 => {
            let w = (n as f64).sqrt().ceil() as usize;
            generators::grid2d(w.max(2), w.max(2), seed.is_multiple_of(2))
        }
        _ => generators::random_torus_patch(6, 6, 0.7 + (seed % 3) as f64 * 0.1, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memo_equals_sequential_on_random_shapes(
        family in 0usize..8,
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 1usize..10,
        radius in 0usize..4,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let expected = run_local(&net, |ctx: &NodeCtx<u32>| oi_digest(&ctx.ball(radius)));
        let step = |ball: &Ball<u32>| MemoStep::Done(oi_digest(ball));
        prop_assert_eq!(
            run_local_memo(&net, radius, tag, step).expect("order-invariant"),
            expected.clone()
        );
        prop_assert_eq!(
            run_local_memo_par_with(&net, threads, radius, tag, step).expect("order-invariant"),
            expected
        );
    }

    #[test]
    fn memo_error_choice_matches_sequential_on_random_failure_sets(
        family in 0usize..8,
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 2usize..10,
        modulus in 2u32..7,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let fails = move |ball: &Ball<u32>| (*ball.input(ball.center())).is_multiple_of(modulus);
        let reference = run_local_fallible(&net, |ctx: &NodeCtx<u32>| -> Result<_, TestErr> {
            let ball = ctx.ball(1);
            if fails(&ball) {
                Err(TestErr::Algo(format!("uid {}", ball.uid(ball.center()))))
            } else {
                Ok(oi_digest(&ball))
            }
        });
        let step = |ball: &Ball<u32>| -> Result<MemoStep<(usize, usize, u64, usize)>, TestErr> {
            if fails(ball) {
                Err(TestErr::Algo(format!("uid {}", ball.uid(ball.center()))))
            } else {
                Ok(MemoStep::Done(oi_digest(ball)))
            }
        };
        prop_assert_eq!(run_local_memo_fallible(&net, 1, tag, step), reference.clone());
        prop_assert_eq!(
            run_local_memo_fallible_par_with(&net, threads, 1, tag, step),
            reference
        );
    }
}
