//! Differential harness for the shared shell-indexed gather.
//!
//! The memo executor no longer materializes one ball per node: a tile of
//! up to 64 centers shares a single bitset frontier sweep, and each
//! center's [`CanonicalKey`] is serialized incrementally shell by shell.
//! That path is only allowed to exist because it is *word-identical* to
//! the per-ball oracle — this file pins the equivalence from three sides:
//!
//! * `shell_class_keys` versus [`canonicalize_tagged_with`] on a
//!   materialized [`Ball::collect`], across the full deterministic
//!   generator grid × radii × scrambled identifiers;
//! * `run_local_memo*` (which ride the shell path) versus [`run_local`]
//!   outputs, [`RoundStats`], and first-error choice, across the thread
//!   grid — under both feature configurations;
//! * proptests: the class pre-fingerprint is *sound* (equal keys ⇒ equal
//!   fingerprints, so bucketing can only split classes, never merge
//!   them), and the incremental Expand re-keying equals keys rebuilt
//!   from scratch at every rung.

use lad_graph::{builder::GraphBuilder, generators, Graph, NodeId};
use lad_runtime::{
    canonicalize_tagged_with, run_local, run_local_fallible, run_local_memo,
    run_local_memo_fallible, run_local_memo_fallible_par_with, run_local_memo_par_with,
    shell_class_keys, shell_class_keys_at_radii, Ball, CanonScratch, MemoStep, Network, NodeCtx,
    NotOrderInvariant, RoundStats,
};
use proptest::prelude::*;

const THREAD_GRID: [usize; 4] = [1, 2, 3, 8];

/// Same deterministic generator grid as `memo.rs` / `equivalence.rs`.
fn generator_grid() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(24)),
        ("star", generators::star(6)),
        ("complete", generators::complete(7)),
        ("balanced-tree", generators::balanced_tree(2, 4)),
        ("caterpillar", generators::caterpillar(8, 2)),
        ("random-tree", generators::random_tree(30, 3)),
        ("grid", generators::grid2d(6, 5, false)),
        ("torus", generators::grid2d(5, 5, true)),
        ("hypercube", generators::hypercube(4)),
        ("ladder", generators::ladder(6)),
        ("random-regular", generators::random_regular(24, 3, 5)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(40, 4, 60, 9),
        ),
        (
            "subexp-torus-patch",
            generators::random_torus_patch(8, 8, 0.85, 4),
        ),
        (
            "disconnected",
            generators::disjoint_union(&[
                generators::cycle(5),
                generators::path(4),
                GraphBuilder::new(2).build(), // isolated nodes
            ]),
        ),
    ]
}

/// Scrambled identifiers and nontrivial inputs: the shell path reproduces
/// uid-*order* canonicalization, so it must survive arbitrary uid values.
fn network_for(g: &Graph) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = lad_graph::IdAssignment::random_permutation(g.n(), 0xC0FFEE);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

fn tag(input: &u32, words: &mut Vec<u64>) {
    words.push(u64::from(*input));
}

/// Fallible-step error able to absorb the memo's refusal (as in `memo.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum TestErr {
    Algo(String),
    Refused(NotOrderInvariant),
}

impl From<NotOrderInvariant> for TestErr {
    fn from(e: NotOrderInvariant) -> Self {
        TestErr::Refused(e)
    }
}

/// An order-invariant digest of a ball (as in `memo.rs`).
fn oi_digest(ball: &Ball<u32>) -> (usize, usize, u64, usize) {
    let c = ball.center();
    let center_rank = ball.uids().iter().filter(|&&u| u < ball.uid(c)).count();
    let weighted: u64 = (0..ball.n())
        .map(|i| {
            let v = NodeId(i as u32);
            u64::from(*ball.input(v)) * (ball.dist(v) as u64 + 1)
        })
        .sum();
    (ball.n(), ball.graph().m(), weighted, center_rank)
}

/// Tentpole equivalence: for every generator, radius, and center, the
/// shared-sweep key is *word-identical* to canonicalizing a freshly
/// materialized ball. Any divergence here would let the memo share
/// outputs across non-isomorphic views.
#[test]
fn shell_keys_match_per_ball_oracle_on_generator_grid() {
    let mut cs = CanonScratch::new();
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        for radius in 0..=3 {
            let keys = shell_class_keys(&net, &centers, radius, tag);
            assert_eq!(keys.len(), centers.len(), "{tag_}: one key per center");
            for (&c, (key, _)) in centers.iter().zip(&keys) {
                let ball = Ball::collect(&net, c, radius);
                let oracle = canonicalize_tagged_with(&ball, tag, &mut cs);
                assert_eq!(
                    key, &oracle,
                    "{tag_}: center {c:?} radius {radius}: shell key diverged"
                );
            }
        }
    }
}

/// The memo executors (now riding the shared sweep) still compute the
/// same function as `run_local`, bit for bit, on an adaptive Expand
/// ladder — sequential and across the thread grid.
#[test]
fn memo_over_shell_gather_equals_run_local() {
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        // Expand 0 -> 1 -> 3, then report the digest: exercises the
        // incremental shell appends at every rung.
        let step = |ball: &Ball<u32>| match ball.radius() {
            0 => MemoStep::Expand(1),
            1 => MemoStep::Expand(3),
            _ => MemoStep::Done(oi_digest(ball)),
        };
        let reference = |ctx: &NodeCtx<u32>| {
            ctx.ball(0);
            ctx.ball(1);
            oi_digest(&ctx.ball(3))
        };
        let expected: (Vec<_>, RoundStats) = run_local(&net, reference);
        let seq = run_local_memo(&net, 0, tag, step)
            .unwrap_or_else(|e| panic!("{tag_}: refused order-invariant step: {e}"));
        assert_eq!(seq, expected, "{tag_}: memo seq vs run_local");
        for threads in THREAD_GRID {
            let par = run_local_memo_par_with(&net, threads, 0, tag, step)
                .unwrap_or_else(|e| panic!("{tag_}: refused ({threads} threads): {e}"));
            assert_eq!(par, expected, "{tag_}: memo par, {threads} threads");
        }
    }
}

/// First-error choice on fallible ladders is unchanged by the shared
/// sweep: smallest failing node index, error value regenerated exactly.
#[test]
fn memo_first_error_choice_survives_shell_gather() {
    for (tag_, g) in generator_grid() {
        let net = network_for(&g);
        let fails = |ball: &Ball<u32>| (*ball.input(ball.center())).is_multiple_of(3);
        let reference = run_local_fallible(&net, |ctx: &NodeCtx<u32>| -> Result<_, TestErr> {
            let ball = ctx.ball(1);
            if fails(&ball) {
                Err(TestErr::Algo(format!("uid {}", ball.uid(ball.center()))))
            } else {
                Ok(oi_digest(&ball))
            }
        });
        let step = |ball: &Ball<u32>| -> Result<MemoStep<(usize, usize, u64, usize)>, TestErr> {
            if fails(ball) {
                Err(TestErr::Algo(format!("uid {}", ball.uid(ball.center()))))
            } else {
                Ok(MemoStep::Done(oi_digest(ball)))
            }
        };
        assert_eq!(
            run_local_memo_fallible(&net, 1, tag, step),
            reference,
            "{tag_}: seq first error"
        );
        for threads in THREAD_GRID {
            assert_eq!(
                run_local_memo_fallible_par_with(&net, threads, 1, tag, step),
                reference,
                "{tag_}: par first error, {threads} threads"
            );
        }
    }
}

/// Order-*sensitive* steps must still be refused, not silently shared:
/// the shell path changed how classes are found, not what is checked.
#[test]
fn order_sensitive_step_still_refused() {
    // Constant inputs put every cycle node in one class, so detection is
    // guaranteed at the first reuse (as in `memo.rs`).
    let net = Network::with_ids(
        generators::cycle(24),
        lad_graph::IdAssignment::random_permutation(24, 7),
    )
    .with_inputs(vec![0u32; 24]);
    // Raw uid values are not order-invariant.
    let step = |ball: &Ball<u32>| MemoStep::Done(ball.uid(ball.center()));
    let err = run_local_memo(&net, 1, tag, step);
    assert!(
        matches!(err, Err(NotOrderInvariant { .. })),
        "uid-leaking step must be refused"
    );
    for threads in THREAD_GRID {
        let err = run_local_memo_par_with(&net, threads, 1, tag, step);
        assert!(
            matches!(err, Err(NotOrderInvariant { .. })),
            "uid-leaking step must be refused at {threads} threads"
        );
    }
}

/// Builds the `family`-th random graph family at size `n` with `seed`
/// (same grid as `memo.rs` / `equivalence.rs`).
fn arb_family(family: usize, n: usize, seed: u64) -> Graph {
    match family {
        0 => generators::path(n.max(2)),
        1 => generators::cycle(n.max(3)),
        2 => generators::random_tree(n.max(2), seed),
        3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
        4 => {
            let side = (n / 2).max(2);
            generators::random_bipartite_regular(side, 2, seed)
        }
        5 => generators::random_regular(
            if n.is_multiple_of(2) {
                n.max(4)
            } else {
                n.max(4) + 1
            },
            3,
            seed,
        ),
        6 => {
            let w = (n as f64).sqrt().ceil() as usize;
            generators::grid2d(w.max(2), w.max(2), seed.is_multiple_of(2))
        }
        _ => generators::random_torus_patch(6, 6, 0.7 + (seed % 3) as f64 * 0.1, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pre-fingerprint soundness: the fingerprint is a function of the
    /// exact key, so equal keys always carry equal fingerprints — the
    /// fingerprint bucketing can split a class across buckets only if
    /// the keys differ, never merge distinct classes. (Collisions the
    /// other way are allowed and cost only a word compare.)
    #[test]
    fn fingerprint_is_sound_for_key_equality(
        family in 0usize..8,
        n in 8usize..48,
        seed in 0u64..1_000,
        radius in 0usize..4,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let keys = shell_class_keys(&net, &centers, radius, tag);
        let mut fp_of = std::collections::HashMap::new();
        let mut repeats = 0usize;
        for (key, fp) in &keys {
            match fp_of.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(*fp);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    repeats += 1;
                    prop_assert_eq!(
                        slot.get(), fp,
                        "equal keys must have equal fingerprints"
                    );
                }
            }
        }
        // The families are heavily class-collapsing; make sure the
        // assertion above is actually exercised for most shapes.
        if n > 16 && family != 2 {
            prop_assert!(repeats > 0 || fp_of.len() == keys.len());
        }
    }

    /// Incremental Expand re-keying: walking a strictly increasing
    /// radius ladder by extending the previous rung's shells yields the
    /// same keys (and fingerprints) as keying each radius from scratch.
    #[test]
    fn incremental_rekeying_matches_scratch(
        family in 0usize..8,
        n in 8usize..40,
        seed in 0u64..1_000,
        ladder_seed in 0usize..8,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let centers: Vec<NodeId> = net.graph().nodes().collect();
        let radii: Vec<usize> = match ladder_seed % 4 {
            0 => vec![0, 1, 2, 3],
            1 => vec![1, 3],
            2 => vec![0, 2, 5],
            _ => vec![2, 3, 4],
        };
        let incremental = shell_class_keys_at_radii(&net, &centers, &radii, tag);
        for (j, &r) in radii.iter().enumerate() {
            let scratch: Vec<_> = shell_class_keys(&net, &centers, r, tag);
            for (i, ladder) in incremental.iter().enumerate() {
                prop_assert_eq!(
                    &ladder[j], &scratch[i],
                    "center {} radius {}: incremental key diverged", i, r
                );
            }
        }
    }
}
