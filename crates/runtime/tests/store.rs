//! Persistent class store: round-trip fidelity and corruption hardening.
//!
//! Three contracts, each enforced differentially:
//!
//! * **Round trip.** A store built from a *live* sealed memo table
//!   (produced by the real sharded memo runner over a generator grid)
//!   answers every query identically after save + reload, and
//!   re-serializing the reloaded store reproduces the file byte for byte
//!   (serialization is deterministic: entries are written in canonical
//!   key order).
//! * **Corruption.** Every single-byte flip and every truncation of a
//!   valid store file — and of a valid `LADSPILL` scratch file — yields a
//!   typed error. Exhaustive sweeps cover every byte position; proptest
//!   adds random multi-byte corruptions. Nothing panics, nothing is
//!   silently accepted.
//! * **Format drift.** A golden store file is committed under
//!   `tests/data/`; it must open cleanly and re-serialize bit-identically.
//!   Any layout change fails this loudly, forcing a [`STORE_VERSION`]
//!   bump (regenerate with `LAD_REGEN_GOLDEN=1 cargo test golden`).

use lad_graph::{generators, IdAssignment};
use lad_runtime::store::{ClassStore, ClassVerdict, SchemaId, StoreError};
use lad_runtime::{
    run_shard_memo_fallible, Ball, HaloExceeded, MemoStep, Network, NotOrderInvariant, SpillKind,
    SpillStore,
};
use proptest::prelude::*;

#[derive(Debug, PartialEq)]
enum TestError {
    Conflict(NotOrderInvariant),
    Halo(HaloExceeded),
}

impl From<NotOrderInvariant> for TestError {
    fn from(c: NotOrderInvariant) -> Self {
        TestError::Conflict(c)
    }
}

impl From<HaloExceeded> for TestError {
    fn from(h: HaloExceeded) -> Self {
        TestError::Halo(h)
    }
}

fn tag(x: &u32, words: &mut Vec<u64>) {
    words.push(u64::from(*x));
}

/// An order-invariant ladder step: views whose center input is divisible
/// by three escalate once before answering, so trained tables contain
/// `Done` entries at two radii plus `Expand` entries — every verdict
/// variant the store serializes.
fn step(ball: &Ball<u32>) -> Result<MemoStep<usize>, TestError> {
    if ball.input(ball.center()).is_multiple_of(3) && ball.radius() < 2 {
        return Ok(MemoStep::Expand(2));
    }
    Ok(MemoStep::Done(
        ball.n() + *ball.input(ball.center()) as usize,
    ))
}

fn net(g: lad_graph::Graph, seed: u64) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = IdAssignment::random_permutation(g.n(), seed);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

fn schema() -> SchemaId {
    SchemaId::new("store-test-step", 3)
}

/// Trains a store from live sealed memo tables across a small generator
/// grid (cached — the corruption sweeps and proptest cases reuse one
/// training run).
fn trained_store() -> &'static ClassStore<usize> {
    static STORE: std::sync::OnceLock<ClassStore<usize>> = std::sync::OnceLock::new();
    STORE.get_or_init(train)
}

fn train() -> ClassStore<usize> {
    let mut store = ClassStore::new(schema(), 1);
    for g in [
        generators::cycle(24),
        generators::path(17),
        generators::grid2d(5, 6, false),
        generators::complete(5),
    ] {
        let network = net(g, 0xC0FFEE);
        let interior = vec![true; network.graph().n()];
        let (_, memo) = run_shard_memo_fallible(&network, &interior, 0, None, 1, &tag, &step)
            .expect("live memo run succeeds");
        store
            .absorb_shard_memo(memo)
            .expect("no cross-graph conflicts");
    }
    assert!(store.len() > 4, "grid should produce a non-trivial table");
    store
}

#[test]
fn live_memo_round_trips_bit_identically() {
    let store = trained_store();
    let bytes = store.to_bytes();
    let back: ClassStore<usize> =
        ClassStore::from_bytes(&bytes, Some(store.schema())).expect("valid bytes parse");
    // Every live verdict answers identically through the round trip.
    assert_eq!(back.len(), store.len());
    assert_eq!(back.radius(), store.radius());
    for (key, verdict) in store.iter() {
        assert_eq!(back.get(key), Some(verdict), "verdict drifted for {key:?}");
    }
    // Deterministic serialization: the reloaded store reproduces the
    // file byte for byte, and so does a freshly retrained one.
    assert_eq!(back.to_bytes(), bytes);
    assert_eq!(train().to_bytes(), bytes);
}

#[test]
fn store_survives_save_load_through_the_filesystem() {
    let dir = std::env::temp_dir().join(format!("lad-store-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("trained.lads");
    let store = trained_store();
    store.save(&path).expect("save");
    let back: ClassStore<usize> = ClassStore::open(&path, Some(&schema())).expect("open");
    for (key, verdict) in store.iter() {
        assert_eq!(back.get(key), Some(verdict));
    }
    // Absent file is Io(NotFound) — distinguishable from corruption.
    match ClassStore::<usize>::open(dir.join("absent.lads"), Some(&schema())) {
        Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Corruption sweeps
// ---------------------------------------------------------------------------

/// A compact trained store for the exhaustive sweeps: same format, every
/// verdict variant, but few enough bytes that flipping each one (and
/// re-parsing the whole file three times per position) stays fast.
fn small_store_bytes() -> Vec<u8> {
    let mut store = ClassStore::new(schema(), 1);
    for g in [generators::cycle(12), generators::path(7)] {
        let network = net(g, 0xBEEF);
        let interior = vec![true; network.graph().n()];
        let (_, memo) = run_shard_memo_fallible(&network, &interior, 0, None, 1, &tag, &step)
            .expect("live memo run succeeds");
        store.absorb_shard_memo(memo).expect("no conflicts");
    }
    store.to_bytes()
}

/// Every single-byte flip of a valid store file must yield a typed error:
/// the format's claim is that every byte is covered by some checksum.
#[test]
fn every_byte_flip_of_a_store_file_is_rejected() {
    let bytes = small_store_bytes();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            match ClassStore::<usize>::from_bytes(&corrupt, Some(&schema())) {
                Err(_) => {}
                Ok(_) => panic!("byte {i} flipped by {flip:#04x} was silently accepted"),
            }
        }
    }
}

/// Every truncation (and every word-misaligned length) must be rejected.
#[test]
fn every_truncation_of_a_store_file_is_rejected() {
    let bytes = small_store_bytes();
    for len in 0..bytes.len() {
        match ClassStore::<usize>::from_bytes(&bytes[..len], Some(&schema())) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} bytes was silently accepted"),
        }
    }
}

/// Same sweep for the `LADSPILL` scratch format: flips and truncations of
/// every byte position come back as typed `InvalidData` errors, never a
/// panic — in particular flips of the untrusted count word, which used to
/// overflow `32 + 8 * count` in release builds.
#[test]
fn every_byte_flip_and_truncation_of_a_spill_file_is_rejected() {
    let spill = SpillStore::temp().expect("temp spill dir");
    spill
        .save(SpillKind::Memo, 7, &[3, 9, 1, u64::MAX, 0, 42])
        .expect("save");
    let path = spill.dir().join("memo-7.lsp");
    let bytes = std::fs::read(&path).expect("read raw");
    spill.load(SpillKind::Memo, 7).expect("pristine file loads");
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= flip;
            std::fs::write(&path, &corrupt).expect("write corrupt");
            let err = spill
                .load(SpillKind::Memo, 7)
                .expect_err("corrupt spill file accepted");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "byte {i}");
        }
    }
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).expect("write truncated");
        let err = spill
            .load(SpillKind::Memo, 7)
            .expect_err("truncated spill file accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-byte corruptions: any number of scattered xors plus an
    /// optional truncation must yield a typed error (or, if every xor is a
    /// no-op and nothing was truncated, parse back identically).
    #[test]
    fn random_corruptions_never_panic_or_lie(
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        cut in any::<u16>(),
    ) {
        static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
        let store = trained_store();
        let pristine = BYTES.get_or_init(|| store.to_bytes());
        let mut bytes = pristine.clone();
        let mut changed = false;
        for (pos, x) in &edits {
            let i = *pos as usize % bytes.len();
            bytes[i] ^= x;
            changed |= *x != 0;
        }
        let cut = cut as usize % (bytes.len() + 1);
        if cut < bytes.len() {
            bytes.truncate(cut);
            changed = true;
        }
        match ClassStore::<usize>::from_bytes(&bytes, Some(&schema())) {
            Err(_) => prop_assert!(changed, "pristine bytes failed to parse"),
            Ok(back) => {
                prop_assert!(!changed, "corrupt bytes were silently accepted");
                prop_assert_eq!(back.len(), store.len());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden file: format drift detection
// ---------------------------------------------------------------------------

/// The committed golden store must open cleanly and re-serialize
/// bit-identically. If a (deliberate) format change lands, bump
/// [`lad_runtime::STORE_VERSION`] and regenerate with
/// `LAD_REGEN_GOLDEN=1 cargo test -p lad-runtime --test store golden`.
#[test]
fn golden_store_file_round_trips_bit_identically() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden-store.lads");
    // The golden dictionary: the local-min table on identifier-permuted
    // 12-cycles, fixed seeds — deterministic content, deterministic bytes.
    let training: Vec<Network> = (0..4)
        .map(|s| {
            Network::with_ids(
                generators::cycle(12),
                IdAssignment::random_permutation(12, 7 + s),
            )
        })
        .collect();
    let mut expected = ClassStore::new(SchemaId::new("golden-local-min", 0), 1);
    for network in &training {
        for v in network.graph().nodes() {
            let ball = Ball::collect(network, v, 1);
            let me = ball.uid(ball.center());
            let key = lad_runtime::canonicalize(&ball, |_: &()| 0);
            let is_min = ball.graph().nodes().all(|u| ball.uid(u) >= me);
            expected
                .insert(key, ClassVerdict::Done(is_min))
                .expect("local-min is order-invariant");
        }
    }
    if std::env::var_os("LAD_REGEN_GOLDEN").is_some() {
        expected.save(path).expect("regenerate golden file");
    }
    let bytes = std::fs::read(path).expect(
        "golden store missing: run LAD_REGEN_GOLDEN=1 cargo test -p lad-runtime --test store golden",
    );
    let golden: ClassStore<bool> =
        ClassStore::from_bytes(&bytes, Some(expected.schema())).expect("golden file is valid");
    assert_eq!(golden.len(), expected.len());
    for (key, verdict) in expected.iter() {
        assert_eq!(golden.get(key), Some(verdict));
    }
    assert_eq!(
        golden.to_bytes(),
        bytes,
        "store serialization drifted from the committed golden file — \
         bump STORE_VERSION and regenerate"
    );
    assert_eq!(expected.to_bytes(), bytes);
}

/// A truncated write can never impersonate a finished store: saves are
/// temp-file + rename, so a crash leaves the previous file intact.
#[test]
fn interrupted_save_leaves_previous_store_intact() {
    let dir = std::env::temp_dir().join(format!("lad-store-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("dict.lads");
    let store = trained_store();
    store.save(&path).expect("first save");
    let before = std::fs::read(&path).expect("read");
    // A save into an unwritable location fails without touching `path`.
    let bogus = dir.join("no-such-subdir").join("dict.lads");
    assert!(matches!(store.save(&bogus), Err(StoreError::Io(_))));
    assert_eq!(std::fs::read(&path).expect("reread"), before);
    let _ = std::fs::remove_dir_all(&dir);
}
