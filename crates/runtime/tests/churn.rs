//! Churn differential harness: incremental repair is indistinguishable
//! from recomputation.
//!
//! [`ChurnLocal`] and [`ChurnMemoLocal`] promise that after every edit
//! batch their outputs are **bit-identical** to a from-scratch run on the
//! mutated graph. This harness pins that promise:
//!
//! * deterministic edit scripts (interleaved inserts, deletes, mixed
//!   batches, no-ops) over the same generator grid as `equivalence.rs`,
//!   × radii, × the thread grid for the scratch reference;
//! * [`MutableGraph::dirty_within`] soundness by brute force: every node
//!   the tracker calls clean must have an identical radius-`r` ball in the
//!   old and new graphs (balls compare structure, uids, inputs, degrees);
//! * memo-session bookkeeping invariants: one membership per confirmed
//!   ladder rung per node, classes retired exactly when their last member
//!   is released;
//! * first-error choice after churn must match the from-scratch fallible
//!   run (smallest failing node index, payload regenerated exactly);
//! * proptest-driven random families and random edit scripts, so failures
//!   shrink to a minimal script.
//!
//! Everything here runs under both feature configurations: with
//! `--no-default-features` the `*_par*` reference paths degrade to the
//! sequential executor and the assertions are unchanged.

use lad_graph::mutate::{Edit, MutableGraph};
use lad_graph::{builder::GraphBuilder, generators, Graph, NodeId};
use lad_runtime::{
    run_local, run_local_fallible, run_local_par_with, set_force_path, Ball, ChurnLocal,
    ChurnMemoLocal, ExecPath, MemoStep, Network, NodeCtx, NotOrderInvariant, PlannedChurnLocal,
};
use proptest::prelude::*;

const THREAD_GRID: [usize; 4] = [1, 2, 3, 8];

/// Same deterministic generator grid as `equivalence.rs`.
fn generator_grid() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(24)),
        ("star", generators::star(6)),
        ("complete", generators::complete(7)),
        ("balanced-tree", generators::balanced_tree(2, 4)),
        ("caterpillar", generators::caterpillar(8, 2)),
        ("random-tree", generators::random_tree(30, 3)),
        ("grid", generators::grid2d(6, 5, false)),
        ("torus", generators::grid2d(5, 5, true)),
        ("hypercube", generators::hypercube(4)),
        ("ladder", generators::ladder(6)),
        ("random-regular", generators::random_regular(24, 3, 5)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(40, 4, 60, 9),
        ),
        (
            "subexp-torus-patch",
            generators::random_torus_patch(8, 8, 0.85, 4),
        ),
        (
            "disconnected",
            generators::disjoint_union(&[
                generators::cycle(5),
                generators::path(4),
                GraphBuilder::new(2).build(), // isolated nodes
            ]),
        ),
    ]
}

/// Nontrivial identifiers and inputs, as in `equivalence.rs`.
fn network_for(g: &Graph) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = lad_graph::IdAssignment::random_permutation(g.n(), 0xC0FFEE);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

fn tag(input: &u32, words: &mut Vec<u64>) {
    words.push(u64::from(*input));
}

/// Order-invariant ball digest, as in `memo.rs`.
fn oi_digest(ball: &Ball<u32>) -> (usize, usize, u64, usize) {
    let c = ball.center();
    let center_rank = ball.uids().iter().filter(|&&u| u < ball.uid(c)).count();
    let weighted: u64 = (0..ball.n())
        .map(|i| {
            let v = NodeId(i as u32);
            u64::from(*ball.input(v)) * (ball.dist(v) as u64 + 1)
        })
        .sum();
    (ball.n(), ball.graph().m(), weighted, center_rank)
}

/// Everything a LOCAL algorithm may legitimately depend on: the view
/// subgraph and, per ball-local node, its global name, distance, global
/// degree, identifier, and input. Deliberately excludes the ball's
/// global *edge*-id table: edge ids are a CSR artifact that renumbers
/// wholesale on any edit, not LOCAL-model information, and the churn
/// sessions' bit-identity contract is scoped to view-determined outputs
/// (see `lad_runtime::churn` docs).
type NodeFields = Vec<(NodeId, usize, usize, u64, u32)>;
type ViewFingerprint = (Graph, NodeId, usize, NodeFields);

fn view_fingerprint(ball: &Ball<u32>) -> ViewFingerprint {
    let per_node = (0..ball.n())
        .map(|i| {
            let v = NodeId(i as u32);
            (
                ball.global_node(v),
                ball.dist(v),
                ball.global_degree(v),
                ball.uid(v),
                *ball.input(v),
            )
        })
        .collect();
    (ball.graph().clone(), ball.center(), ball.radius(), per_node)
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A deterministic edit script: `batches` batches of up to `per_batch`
/// edits each — random inserts and removes, including no-ops and
/// within-batch cancelling pairs, the messiest realistic shape.
fn script_for(n: usize, mut seed: u64, batches: usize, per_batch: usize) -> Vec<Vec<Edit>> {
    seed |= 1;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .filter_map(|_| {
                    let u = (xorshift(&mut seed) % n as u64) as u32;
                    let v = (xorshift(&mut seed) % n as u64) as u32;
                    if u == v {
                        return None;
                    }
                    Some(if xorshift(&mut seed).is_multiple_of(2) {
                        Edit::Insert(NodeId(u), NodeId(v))
                    } else {
                        Edit::Remove(NodeId(u), NodeId(v))
                    })
                })
                .collect()
        })
        .collect()
}

#[test]
fn churn_local_matches_scratch_on_generator_grid() {
    for (idx, (tag_, g)) in generator_grid().into_iter().enumerate() {
        let n = g.n();
        for radius in 0..=2 {
            let algo = |ctx: &NodeCtx<u32>| view_fingerprint(&ctx.ball(radius));
            let mut session = ChurnLocal::new(network_for(&g), radius, algo);
            for (b, batch) in script_for(n, 0xAB5E * (idx as u64 + 1), 4, 3)
                .into_iter()
                .enumerate()
            {
                let report = session.apply(&batch);
                assert_eq!(
                    report.applied + report.skipped,
                    batch.len(),
                    "{tag_}/r{radius}/batch{b}: edits unaccounted for"
                );
                let expected = run_local(session.network(), algo);
                assert_eq!(
                    session.outputs(),
                    &expected.0[..],
                    "{tag_}/r{radius}/batch{b}: outputs diverged from scratch"
                );
                assert_eq!(
                    session.round_stats(),
                    expected.1,
                    "{tag_}/r{radius}/batch{b}: round stats diverged"
                );
                for threads in THREAD_GRID {
                    assert_eq!(
                        run_local_par_with(session.network(), threads, algo),
                        expected,
                        "{tag_}/r{radius}/batch{b}: par reference, {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn dirty_within_is_sound_by_brute_force_ball_diff() {
    for (idx, (tag_, g)) in generator_grid().into_iter().enumerate() {
        let n = g.n();
        let old_net = network_for(&g);
        let mut mg = MutableGraph::new(g.clone());
        for batch in script_for(n, 0xD1FF * (idx as u64 + 1), 3, 4) {
            mg.apply(&batch);
        }
        let new_net = Network::with_ids(mg.graph().clone(), old_net.ids().clone())
            .with_inputs(old_net.inputs().to_vec());
        for radius in 0..=3 {
            let dirty = mg.dirty_within(radius);
            for v in g.nodes() {
                if dirty.binary_search(&v).is_ok() {
                    continue;
                }
                assert_eq!(
                    view_fingerprint(&Ball::collect(&old_net, v, radius)),
                    view_fingerprint(&Ball::collect(&new_net, v, radius)),
                    "{tag_}/r{radius}: node {v:?} is clean but its ball changed"
                );
            }
        }
    }
}

#[test]
fn churn_memo_matches_scratch_and_keeps_membership_invariant() {
    // Adaptive ladder: expand until the ball covers >= 10 nodes or radius
    // 3; the output carries the final radius so the membership invariant
    // (one class per confirmed rung per node) is checkable from outside.
    type LadderOut = (usize, (usize, usize, u64, usize));
    let step = |ball: &Ball<u32>| -> Result<MemoStep<LadderOut>, NotOrderInvariant> {
        let r = ball.radius();
        if ball.n() >= 10 || r >= 3 {
            Ok(MemoStep::Done((r, oi_digest(ball))))
        } else {
            Ok(MemoStep::Expand(r + 1))
        }
    };
    let reference = |ctx: &NodeCtx<u32>| {
        let mut r = 0;
        loop {
            let ball = ctx.ball(r);
            if ball.n() >= 10 || r >= 3 {
                return (r, oi_digest(&ball));
            }
            r += 1;
        }
    };
    for (idx, (tag_, g)) in generator_grid().into_iter().enumerate() {
        let n = g.n();
        let mut session = ChurnMemoLocal::new(network_for(&g), 0, 3, tag, step).unwrap();
        for (b, batch) in script_for(n, 0x31E0 * (idx as u64 + 1), 4, 3)
            .into_iter()
            .enumerate()
        {
            let report = session.apply(&batch).unwrap();
            assert_eq!(
                report.applied + report.skipped,
                batch.len(),
                "{tag_}/batch{b}: edits unaccounted for"
            );
            let expected = run_local(session.network(), reference);
            let outs = session.outputs();
            assert_eq!(
                outs, expected.0,
                "{tag_}/batch{b}: memo outputs diverged from scratch"
            );
            assert_eq!(
                session.round_stats(),
                expected.1,
                "{tag_}/batch{b}: memo round stats diverged"
            );
            // One membership per confirmed rung: a node finishing at
            // radius r walked rungs 0..=r, so the memo's total member
            // count is exactly n plus the summed final radii.
            let rung_sum: usize = outs.iter().map(|&(r, _)| r).sum();
            assert_eq!(
                session.member_count(),
                n + rung_sum,
                "{tag_}/batch{b}: membership bookkeeping leaked"
            );
            assert!(
                session.class_count() <= session.member_count(),
                "{tag_}/batch{b}: more classes than members"
            );
        }
    }
}

/// Node-specific error payload, as in `memo.rs`: the memo path must
/// regenerate it by replaying the failing node, never share it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TestErr {
    Algo(String),
    Oi(NotOrderInvariant),
}

impl From<NotOrderInvariant> for TestErr {
    fn from(e: NotOrderInvariant) -> Self {
        TestErr::Oi(e)
    }
}

#[test]
fn churn_memo_first_error_after_churn_matches_scratch() {
    // On the pristine 2d grid no node exceeds degree 4, so nothing fails;
    // an edit batch then pushes several nodes over the threshold at once,
    // and the session must report the same first-in-node-order error a
    // from-scratch fallible run reports.
    let g = generators::grid2d(5, 4, false);
    let net = network_for(&g);
    let fails = |ball: &Ball<u32>| ball.graph().degree(ball.center()) >= 5;
    let step = |ball: &Ball<u32>| -> Result<MemoStep<usize>, TestErr> {
        if fails(ball) {
            Err(TestErr::Algo(format!(
                "uid {} overloaded",
                ball.uid(ball.center())
            )))
        } else {
            Ok(MemoStep::Done(ball.n()))
        }
    };
    let mut session = ChurnMemoLocal::new(net.clone(), 1, 1, tag, step).unwrap();
    // Overload nodes 7 and 12 in one batch (both have degree 4 initially).
    let batch = vec![
        Edit::Insert(NodeId(7), NodeId(19)),
        Edit::Insert(NodeId(12), NodeId(0)),
    ];
    let err = session.apply(&batch).unwrap_err();
    let mut mg = MutableGraph::new(g);
    mg.apply(&batch);
    let scratch_net =
        Network::with_ids(mg.graph().clone(), net.ids().clone()).with_inputs(net.inputs().to_vec());
    let expected = run_local_fallible(
        &scratch_net,
        |ctx: &NodeCtx<u32>| -> Result<usize, TestErr> {
            let ball = ctx.ball(1);
            if fails(&ball) {
                Err(TestErr::Algo(format!(
                    "uid {} overloaded",
                    ball.uid(ball.center())
                )))
            } else {
                Ok(ball.n())
            }
        },
    )
    .unwrap_err();
    assert_eq!(err, expected, "first-error choice diverged after churn");
}

#[test]
fn planned_churn_matches_scratch_under_every_forced_path() {
    // The planner picks the session family per instance; whichever leg it
    // (or the operator, via `set_force_path`) lands on, every batch must
    // leave outputs and round stats bit-identical to a from-scratch run,
    // and the three legs must agree with each other.
    type LadderOut = (usize, (usize, usize, u64, usize));
    let algo = |ctx: &NodeCtx<u32>| {
        let mut r = 0;
        loop {
            let ball = ctx.ball(r);
            if ball.n() >= 10 || r >= 3 {
                return (r, oi_digest(&ball));
            }
            r += 1;
        }
    };
    let step = |ball: &Ball<u32>| -> Result<MemoStep<LadderOut>, NotOrderInvariant> {
        let r = ball.radius();
        if ball.n() >= 10 || r >= 3 {
            Ok(MemoStep::Done((r, oi_digest(ball))))
        } else {
            Ok(MemoStep::Expand(r + 1))
        }
    };
    for (idx, (tag_, g)) in generator_grid().into_iter().enumerate() {
        let n = g.n();
        let mut final_outputs: Vec<Vec<LadderOut>> = Vec::new();
        for force in [None, Some(ExecPath::Plain), Some(ExecPath::Memo)] {
            set_force_path(force);
            let opened =
                PlannedChurnLocal::open(network_for(&g), 0, 3, "delta-coloring", algo, tag, step);
            set_force_path(None);
            let (mut session, plan) = opened.unwrap();
            assert_eq!(
                session.path(),
                plan.path,
                "{tag_}: session family disagrees with the recorded plan"
            );
            if let Some(forced) = force {
                assert_eq!(plan.path, forced, "{tag_}: forced path was ignored");
            }
            for (b, batch) in script_for(n, 0x91AD * (idx as u64 + 1), 3, 3)
                .into_iter()
                .enumerate()
            {
                let report = session.apply(&batch).unwrap();
                assert_eq!(
                    report.applied + report.skipped,
                    batch.len(),
                    "{tag_}/batch{b} [{:?}]: edits unaccounted for",
                    plan.path
                );
                let expected = run_local(session.network(), algo);
                assert_eq!(
                    session.outputs(),
                    expected.0,
                    "{tag_}/batch{b} [{:?}]: planned outputs diverged from scratch",
                    plan.path
                );
                assert_eq!(
                    session.round_stats(),
                    expected.1,
                    "{tag_}/batch{b} [{:?}]: planned round stats diverged",
                    plan.path
                );
            }
            final_outputs.push(session.outputs());
        }
        assert!(
            final_outputs.windows(2).all(|w| w[0] == w[1]),
            "{tag_}: forced legs disagree after identical edit scripts"
        );
    }
}

/// Builds the `family`-th random graph family, as in `equivalence.rs`.
fn arb_family(family: usize, n: usize, seed: u64) -> Graph {
    match family {
        0 => generators::path(n.max(2)),
        1 => generators::cycle(n.max(3)),
        2 => generators::random_tree(n.max(2), seed),
        3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
        4 => {
            let side = (n / 2).max(2);
            generators::random_bipartite_regular(side, 2, seed)
        }
        5 => generators::random_regular(
            if n.is_multiple_of(2) {
                n.max(4)
            } else {
                n.max(4) + 1
            },
            3,
            seed,
        ),
        6 => {
            let w = (n as f64).sqrt().ceil() as usize;
            generators::grid2d(w.max(2), w.max(2), seed.is_multiple_of(2))
        }
        _ => generators::random_torus_patch(6, 6, 0.7 + (seed % 3) as f64 * 0.1, seed),
    }
}

/// Decodes a proptest-generated raw script into edit batches over `n`
/// nodes, dropping self-loops.
fn decode_script(raw: Vec<Vec<(u32, u32, bool)>>, n: usize) -> Vec<Vec<Edit>> {
    raw.into_iter()
        .map(|batch| {
            batch
                .into_iter()
                .filter_map(|(u, v, insert)| {
                    let (u, v) = (u as usize % n, v as usize % n);
                    if u == v {
                        return None;
                    }
                    let (u, v) = (NodeId(u as u32), NodeId(v as u32));
                    Some(if insert {
                        Edit::Insert(u, v)
                    } else {
                        Edit::Remove(u, v)
                    })
                })
                .collect()
        })
        .collect()
}

fn arb_script() -> impl Strategy<Value = Vec<Vec<(u32, u32, bool)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..6),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn churn_local_matches_scratch_on_random_scripts(
        family in 0usize..8,
        n in 8usize..32,
        seed in 0u64..1_000,
        radius in 0usize..3,
        raw in arb_script(),
    ) {
        let g = arb_family(family, n, seed);
        let algo = |ctx: &NodeCtx<u32>| view_fingerprint(&ctx.ball(radius));
        let mut session = ChurnLocal::new(network_for(&g), radius, algo);
        for batch in decode_script(raw, g.n()) {
            session.apply(&batch);
            let expected = run_local(session.network(), algo);
            prop_assert_eq!(session.outputs(), &expected.0[..]);
            prop_assert_eq!(session.round_stats(), expected.1);
        }
    }

    #[test]
    fn dirty_within_sound_on_random_scripts(
        family in 0usize..8,
        n in 8usize..32,
        seed in 0u64..1_000,
        radius in 0usize..3,
        raw in arb_script(),
    ) {
        let g = arb_family(family, n, seed);
        let old_net = network_for(&g);
        let mut mg = MutableGraph::new(g.clone());
        for batch in decode_script(raw, g.n()) {
            mg.apply(&batch);
        }
        let new_net = Network::with_ids(mg.graph().clone(), old_net.ids().clone())
            .with_inputs(old_net.inputs().to_vec());
        let dirty = mg.dirty_within(radius);
        for v in g.nodes() {
            if dirty.binary_search(&v).is_err() {
                prop_assert_eq!(
                    view_fingerprint(&Ball::collect(&old_net, v, radius)),
                    view_fingerprint(&Ball::collect(&new_net, v, radius))
                );
            }
        }
    }

    #[test]
    fn churn_memo_matches_scratch_on_random_scripts(
        family in 0usize..8,
        n in 8usize..32,
        seed in 0u64..1_000,
        radius in 0usize..3,
        raw in arb_script(),
    ) {
        let g = arb_family(family, n, seed);
        let step = move |ball: &Ball<u32>| -> Result<MemoStep<(usize, usize, u64, usize)>, NotOrderInvariant> {
            Ok(MemoStep::Done(oi_digest(ball)))
        };
        let reference = move |ctx: &NodeCtx<u32>| oi_digest(&ctx.ball(radius));
        let mut session = ChurnMemoLocal::new(network_for(&g), radius, radius, tag, step).unwrap();
        for batch in decode_script(raw, g.n()) {
            session.apply(&batch).unwrap();
            let expected = run_local(session.network(), reference);
            prop_assert_eq!(session.outputs(), expected.0);
            prop_assert_eq!(session.round_stats(), expected.1);
            prop_assert_eq!(session.member_count(), g.n());
        }
    }
}
