//! The fault matrix, part 1: robust gathering is never silently wrong.
//!
//! A seeded grid of fault plans (drop rates × delay bounds × duplication ×
//! corruption × crash sets) is crossed with graph generators and radii, and
//! three invariants are pinned for every cell:
//!
//! 1. **Fault-free ⇒ bit-identical.** On a fault-free transport,
//!    [`run_gathered_robust`] matches both [`run_gathered`] and the direct
//!    executor ([`run_local`] + ball collection) — outputs *and* round
//!    counts — with a zero fault tally.
//! 2. **Recoverable ⇒ heals exactly.** Under content-preserving plans
//!    (drops, duplication, delays — no corruption, no crashes) with enough
//!    round budget, the output is still bit-identical and
//!    `rounds_used ≤ budget`.
//! 3. **Unrecoverable ⇒ loud.** Under corrupting or crashing plans, every
//!    run either returns the *correct* views or a typed [`GatherError`] —
//!    an `Ok` that differs from the truth never escapes.
//!
//! Every cell is additionally replayed: the same seed and plan must
//! reproduce identical outputs/errors and an identical [`FaultStats`]
//! tally, regardless of the `parallel` feature (CI runs this file under
//! both).
//!
//! Part 2 (`tests/fault_schemas.rs` at the workspace root) runs the same
//! discipline through the advice-schema decoders and their checkers.

use lad_graph::{generators, Graph, IdAssignment, NodeId};
use lad_runtime::canonical::canonicalize;
use lad_runtime::{
    run_gathered, run_gathered_robust, run_local, CanonicalKey, FaultPlan, FaultStats, GatherError,
    Network, PerfectLink,
};

/// The graph × radius grid every plan is run against.
fn arenas() -> Vec<(&'static str, Graph, usize)> {
    vec![
        ("cycle", generators::cycle(18), 3),
        ("grid", generators::grid2d(5, 4, false), 2),
        ("star", generators::star(7), 1),
        ("sparse", generators::random_bounded_degree(28, 5, 56, 3), 2),
        ("tree", generators::balanced_tree(3, 3), 2),
    ]
}

fn network(g: &Graph, seed: u64) -> Network {
    Network::with_ids(g.clone(), IdAssignment::random_permutation(g.n(), seed))
}

/// Ground truth for a network: canonical keys of every node's true ball.
fn truth(net: &Network, radius: usize) -> Vec<CanonicalKey> {
    let (keys, _) = run_local(net, |ctx| canonicalize(&ctx.ball(radius), |_| 0));
    keys
}

/// Runs the robust gather under `plan`, returning the canonical outputs or
/// the typed error, plus the transport's fault tally.
fn run_cell(
    net: &Network,
    radius: usize,
    budget: usize,
    plan: &FaultPlan,
) -> (Result<(Vec<CanonicalKey>, usize), GatherError>, FaultStats) {
    let mut transport = plan.start();
    let res = run_gathered_robust(net, radius, budget, &mut transport, |ball| {
        canonicalize(ball, |_| 0)
    })
    .map(|(outs, report)| (outs, report.rounds_used));
    (res, lad_runtime::Transport::fault_stats(&transport))
}

// ---------------------------------------------------------------------------
// Invariant 1: fault-free runs are bit-identical to the perfect paths.
// ---------------------------------------------------------------------------

#[test]
fn invariant1_fault_free_matrix_is_bit_identical() {
    for (name, g, radius) in arenas() {
        let net = network(&g, 11);
        let expected = truth(&net, radius);
        let (plain, plain_rounds) =
            run_gathered(&net, radius, |ball| canonicalize(ball, |_| 0)).unwrap();
        assert_eq!(plain, expected, "{name}: run_gathered vs executor");

        // A fault-free FaultRun and a bare PerfectLink must both match.
        for seed in [0u64, 7, 99] {
            let plan = FaultPlan::new(seed);
            assert!(plan.is_fault_free());
            let (res, stats) = run_cell(&net, radius, radius + 5, &plan);
            let (outs, rounds_used) = res.expect("fault-free plan cannot fail");
            assert_eq!(outs, expected, "{name} seed {seed}");
            assert_eq!(rounds_used, plain_rounds, "{name}: extra rounds spent");
            assert_eq!(stats.total_faults(), 0, "{name}: phantom faults");
        }
        let (robust, report) =
            run_gathered_robust(&net, radius, radius + 5, &mut PerfectLink, |ball| {
                canonicalize(ball, |_| 0)
            })
            .unwrap();
        assert_eq!(robust, expected, "{name}: PerfectLink");
        assert_eq!(report.rounds_used, plain_rounds);
    }
}

// ---------------------------------------------------------------------------
// Invariant 2: content-preserving plans heal within the budget.
// ---------------------------------------------------------------------------

/// Drop × delay × duplication grid, all content-preserving.
fn recoverable_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop10", FaultPlan::new(seed).drop_rate(0.10)),
        ("drop30", FaultPlan::new(seed).drop_rate(0.30)),
        ("delay2", FaultPlan::new(seed).delay(0.5, 2)),
        ("dup20", FaultPlan::new(seed).duplicate_rate(0.20)),
        (
            "drop+delay",
            FaultPlan::new(seed).drop_rate(0.15).delay(0.3, 2),
        ),
        (
            "drop+dup+delay",
            FaultPlan::new(seed)
                .drop_rate(0.20)
                .duplicate_rate(0.20)
                .delay(0.25, 3),
        ),
    ]
}

#[test]
fn invariant2_recoverable_plans_heal_bit_identically() {
    for (name, g, radius) in arenas() {
        let net = network(&g, 13);
        let expected = truth(&net, radius);
        let budget = radius + 40; // generous: flooding re-sends everything every round
        for seed in [21u64, 22, 23] {
            for (plan_name, plan) in recoverable_plans(seed) {
                assert!(plan.is_content_preserving());
                let (res, stats) = run_cell(&net, radius, budget, &plan);
                let (outs, rounds_used) = res.unwrap_or_else(|e| {
                    panic!("{name}/{plan_name} seed {seed}: did not heal: {e}")
                });
                assert_eq!(outs, expected, "{name}/{plan_name} seed {seed}");
                assert!(
                    rounds_used <= budget,
                    "{name}/{plan_name}: {rounds_used} > {budget}"
                );
                // The plan really did something (drop30 etc. at these sizes
                // always fires at least once).
                if plan_name != "delay2" && plan_name != "dup20" {
                    assert!(stats.dropped > 0, "{name}/{plan_name}: inert plan");
                }
            }
        }
    }
}

#[test]
fn recovery_spends_extra_rounds_only_when_needed() {
    // With drops, healing may take longer than the fault-free radius; the
    // report must say so honestly.
    let g = generators::cycle(16);
    let net = network(&g, 5);
    let radius = 3;
    let mut saw_extra = false;
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed).drop_rate(0.35);
        let (res, _) = run_cell(&net, radius, radius + 40, &plan);
        let (_, rounds_used) = res.expect("budget is generous");
        assert!(rounds_used >= radius);
        saw_extra |= rounds_used > radius;
    }
    assert!(saw_extra, "35% drops never cost a single extra round");
}

// ---------------------------------------------------------------------------
// Invariant 3: corrupting / crashing plans are loud, never silently wrong.
// ---------------------------------------------------------------------------

/// Plans that may corrupt payloads or crash nodes — the unrecoverable grid.
fn hostile_plans(seed: u64, g: &Graph) -> Vec<(&'static str, FaultPlan)> {
    let last = NodeId(g.n() as u32 - 1);
    vec![
        ("corrupt5", FaultPlan::new(seed).corrupt_rate(0.05)),
        ("corrupt20", FaultPlan::new(seed).corrupt_rate(0.20)),
        (
            "corrupt+drop",
            FaultPlan::new(seed).corrupt_rate(0.05).drop_rate(0.15),
        ),
        ("crash-early", FaultPlan::new(seed).crash(NodeId(0), 0)),
        (
            "crash-two",
            FaultPlan::new(seed).crash(NodeId(1), 1).crash(last, 2),
        ),
        (
            "crash+corrupt",
            FaultPlan::new(seed).crash(NodeId(0), 1).corrupt_rate(0.10),
        ),
    ]
}

#[test]
fn invariant3_hostile_plans_never_return_silently_wrong_views() {
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for (name, g, radius) in arenas() {
        let net = network(&g, 17);
        let expected = truth(&net, radius);
        let budget = radius + 12;
        for seed in [31u64, 32, 33, 34] {
            for (plan_name, plan) in hostile_plans(seed, &g) {
                let (res, _) = run_cell(&net, radius, budget, &plan);
                match res {
                    Ok((outs, _)) => {
                        // Acceptance is only sound if the views are the
                        // true ones — this is the "never silently wrong"
                        // assertion.
                        assert_eq!(
                            outs, expected,
                            "{name}/{plan_name} seed {seed}: accepted wrong views"
                        );
                        accepted += 1;
                    }
                    Err(GatherError::PartialView {
                        missing,
                        rounds_used,
                    }) => {
                        assert!(!missing.is_empty());
                        assert_eq!(rounds_used, budget, "gave up before the budget");
                        rejected += 1;
                    }
                    Err(GatherError::CorruptView { reason, .. }) => {
                        assert!(!reason.is_empty());
                        rejected += 1;
                    }
                }
            }
        }
    }
    // The grid must exercise both outcomes, or the matrix proves nothing.
    assert!(accepted > 0, "no hostile cell ever recovered");
    assert!(rejected > 0, "no hostile cell was ever rejected");
}

#[test]
fn blackout_reports_every_view_as_partial() {
    let g = generators::grid2d(4, 4, false);
    let net = network(&g, 19);
    let plan = FaultPlan::new(40).drop_rate(1.0);
    let (res, stats) = run_cell(&net, 2, 8, &plan);
    match res {
        Err(GatherError::PartialView {
            missing,
            rounds_used,
        }) => {
            assert_eq!(missing.len(), g.n(), "every node is starved");
            assert_eq!(rounds_used, 8);
        }
        other => panic!("expected PartialView, got {other:?}"),
    }
    assert_eq!(stats.delivered, 0);
    assert!(stats.dropped > 0);
}

#[test]
fn crashed_center_is_reported_missing_by_its_neighborhood() {
    // Crash node 0 before it can ever announce itself: every node within
    // the radius of node 0 must end in PartialView listing node 0's uid.
    let g = generators::cycle(10);
    let net = network(&g, 23);
    let crashed_uid = net.uid(NodeId(0));
    let plan = FaultPlan::new(50).crash(NodeId(0), 0);
    let (res, _) = run_cell(&net, 2, 10, &plan);
    match res {
        Err(GatherError::PartialView { missing, .. }) => {
            assert!(
                missing.contains(&crashed_uid),
                "crashed node's uid must be among the missing: {missing:?}"
            );
        }
        other => panic!("expected PartialView, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Reproducibility: the whole matrix is a pure function of (seed, plan).
// ---------------------------------------------------------------------------

#[test]
fn every_cell_replays_identically() {
    for (name, g, radius) in arenas() {
        let net = network(&g, 29);
        let budget = radius + 10;
        let mut plans = recoverable_plans(77);
        plans.extend(hostile_plans(77, &g));
        plans.push(("fault-free", FaultPlan::new(77)));
        for (plan_name, plan) in plans {
            let (res_a, stats_a) = run_cell(&net, radius, budget, &plan);
            let (res_b, stats_b) = run_cell(&net, radius, budget, &plan);
            assert_eq!(
                format!("{res_a:?}"),
                format!("{res_b:?}"),
                "{name}/{plan_name}: outcome not reproducible"
            );
            assert_eq!(stats_a, stats_b, "{name}/{plan_name}: stats drifted");
        }
    }
}

#[test]
fn different_seeds_produce_different_fault_patterns() {
    // Sanity check that the seed actually steers the plan: across many
    // seeds the tallies cannot all coincide.
    let g = generators::grid2d(5, 4, false);
    let net = network(&g, 31);
    let tallies: Vec<FaultStats> = (0..6u64)
        .map(|seed| {
            let plan = FaultPlan::new(seed).drop_rate(0.3);
            run_cell(&net, 2, 12, &plan).1
        })
        .collect();
    assert!(
        tallies.windows(2).any(|w| w[0] != w[1]),
        "six seeds, one tally: the seed is ignored"
    );
}
