//! Property-based invariants of [`RoundStats`] and the ball cache.
//!
//! * Sequential composition of round statistics is associative and has
//!   [`RoundStats::zero`] as identity, `rounds()` is the max of the
//!   per-node radii, and `mean_rounds()` is bracketed by the min and max.
//! * A cached ball equals a fresh BFS ball at every radius, regardless of
//!   the order radii are requested in (expansion and prefix paths).
//! * Targeted invalidation ([`ViewCache::invalidate`]) evicts exactly the
//!   named slots, counts only slots that actually held content, leaves
//!   warm neighbors serving hits, and recomputes evicted slots correctly
//!   against a re-keyed (mutated) network.

use lad_graph::mutate::{Edit, MutableGraph};
use lad_graph::{generators, NodeId};
use lad_runtime::{Ball, Network, RoundStats, ViewCache};
use proptest::prelude::*;

/// A ball's LOCAL-view content: structure, center, distances, global
/// names, degrees, uids. Excludes the global edge-id table, which is a
/// CSR artifact that renumbers on any edit and is outside the cache
/// invalidation contract (see `lad_runtime::churn` docs).
type ViewFields = (
    lad_graph::Graph,
    NodeId,
    usize,
    Vec<(NodeId, usize, usize, u64)>,
);

fn view_fields(b: &Ball<()>) -> ViewFields {
    let per_node = (0..b.n())
        .map(|i| {
            let v = NodeId(i as u32);
            (b.global_node(v), b.dist(v), b.global_degree(v), b.uid(v))
        })
        .collect();
    (b.graph().clone(), b.center(), b.radius(), per_node)
}

fn arb_stats(n: usize) -> impl Strategy<Value = RoundStats> {
    proptest::collection::vec(0usize..12, n..=n).prop_map(RoundStats::from_per_node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_is_associative_with_zero_identity(
        (a, b, c) in (2usize..30).prop_flat_map(|n| (arb_stats(n), arb_stats(n), arb_stats(n))),
    ) {
        let n = a.n();
        prop_assert_eq!(a.sequential(&RoundStats::zero(n)), a.clone());
        prop_assert_eq!(RoundStats::zero(n).sequential(&a), a.clone());
        prop_assert_eq!(
            a.sequential(&b).sequential(&c),
            a.sequential(&b.sequential(&c))
        );
        // Composition in the model is also commutative (radii add per node).
        prop_assert_eq!(a.sequential(&b), b.sequential(&a));
    }

    #[test]
    fn rounds_is_max_and_mean_is_bracketed(stats in (1usize..40).prop_flat_map(arb_stats)) {
        let per_node = stats.per_node();
        let max = per_node.iter().copied().max().unwrap_or(0);
        let min = per_node.iter().copied().min().unwrap_or(0);
        prop_assert_eq!(stats.rounds(), max);
        for (i, &r) in per_node.iter().enumerate() {
            prop_assert_eq!(stats.rounds_at(NodeId::from_index(i)), r);
        }
        let mean = stats.mean_rounds();
        prop_assert!(mean >= min as f64 - 1e-12, "mean {mean} below min {min}");
        prop_assert!(mean <= max as f64 + 1e-12, "mean {mean} above max {max}");
        // Sequential composition adds means exactly (same node count).
        let doubled = stats.sequential(&stats);
        prop_assert!((doubled.mean_rounds() - 2.0 * mean).abs() < 1e-9);
    }

    #[test]
    fn cached_ball_equals_fresh_bfs_at_every_radius(
        family in 0usize..5,
        n in 4usize..28,
        seed in 0u64..500,
        // Radii requested in arbitrary (possibly repeating, non-monotone)
        // order at a random center.
        radii in proptest::collection::vec(0usize..5, 1..8),
        center_pick in 0usize..1000,
    ) {
        let g = match family {
            0 => generators::path(n.max(2)),
            1 => generators::cycle(n.max(3)),
            2 => generators::random_tree(n.max(2), seed),
            3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
            _ => {
                let w = (n as f64).sqrt().ceil() as usize;
                generators::grid2d(w.max(2), w.max(2), seed % 2 == 0)
            }
        };
        let inputs: Vec<u16> = (0..g.n()).map(|i| (i % 7) as u16).collect();
        let net = Network::with_identity_ids(g).with_inputs(inputs);
        let cache = ViewCache::for_network(&net);
        let center = NodeId::from_index(center_pick % net.graph().n());
        for &r in &radii {
            let cached = cache.ball(&net, center, r);
            let fresh = Ball::collect(&net, center, r);
            prop_assert_eq!(&*cached, &fresh, "center {:?} radius {}", center, r);
        }
        // Every request was served, one miss at most.
        let stats = cache.stats();
        prop_assert_eq!(stats.requests(), radii.len() as u64);
        prop_assert!(stats.misses <= 1);
    }

    #[test]
    fn invalidated_slots_recompute_correctly_against_mutated_network(
        n in 6usize..24,
        seed in 0u64..200,
        radius in 0usize..4,
        edit_pick in 0usize..1000,
    ) {
        // Warm a cache on graph A, apply an edit, evict the dirty slots,
        // then serve every node against the mutated network: evicted
        // slots re-gather on the new graph, warm slots answer from the
        // old materialization — and everything must equal a fresh BFS on
        // the new graph (clean balls are provably identical, which is the
        // whole invalidation argument).
        let g = generators::random_bounded_degree(n, 4, 2 * n, seed);
        let net_a = Network::with_identity_ids(g.clone());
        let cache = ViewCache::for_network(&net_a);
        for v in net_a.graph().nodes() {
            cache.ball(&net_a, v, radius);
        }
        let mut mg = MutableGraph::new(g);
        let u = NodeId::from_index(edit_pick % n);
        let w = NodeId::from_index((edit_pick / n + 1 + u.index()) % n);
        prop_assume!(u != w);
        let edit = if mg.graph().has_edge(u, w) {
            Edit::Remove(u, w)
        } else {
            Edit::Insert(u, w)
        };
        mg.apply(&[edit]);
        let dirty = mg.dirty_within(radius);
        cache.invalidate(&dirty);
        prop_assert_eq!(cache.stats().invalidations, dirty.len() as u64);
        let net_b = Network::with_identity_ids(mg.graph().clone());
        let before = cache.stats();
        for v in net_b.graph().nodes() {
            let served = cache.ball(&net_b, v, radius);
            prop_assert_eq!(
                view_fields(&served),
                view_fields(&Ball::collect(&net_b, v, radius))
            );
        }
        let after = cache.stats();
        // Exactly the evicted slots missed; every clean slot answered warm.
        prop_assert_eq!(after.misses - before.misses, dirty.len() as u64);
        prop_assert_eq!(after.hits - before.hits, (n - dirty.len()) as u64);
    }

    #[test]
    fn cache_consistent_across_all_nodes_after_mixed_traffic(
        n in 3usize..20,
        seed in 0u64..200,
    ) {
        // Hammer one cache with every (node, radius) pair twice, in two
        // different orders, then verify everything against fresh BFS.
        let g = generators::random_bounded_degree(n, 3, 2 * n, seed);
        let net = Network::with_identity_ids(g);
        let cache = ViewCache::for_network(&net);
        for v in net.graph().nodes() {
            for r in (0..4).rev() {
                cache.ball(&net, v, r);
            }
        }
        for r in 0..4 {
            for v in net.graph().nodes() {
                let cached = cache.ball(&net, v, r);
                prop_assert_eq!(&*cached, &Ball::collect(&net, v, r));
            }
        }
    }
}

#[test]
fn invalidating_cold_slots_is_free_and_uncounted() {
    let net = Network::with_identity_ids(generators::cycle(10));
    let cache = ViewCache::for_network(&net);
    // Nothing materialized: eviction is a no-op and counts nothing.
    cache.invalidate(&[NodeId(0), NodeId(3), NodeId(7)]);
    assert_eq!(cache.stats().invalidations, 0);
    // Warm two of the three, evict all three: only the warm pair counts.
    cache.ball(&net, NodeId(0), 1);
    cache.ball(&net, NodeId(3), 1);
    cache.invalidate(&[NodeId(0), NodeId(3), NodeId(7)]);
    assert_eq!(cache.stats().invalidations, 2);
    // Double-evicting an already-cold slot stays uncounted.
    cache.invalidate(&[NodeId(0)]);
    assert_eq!(cache.stats().invalidations, 2);
    // `requests()` is traffic only; invalidations never inflate it.
    assert_eq!(cache.stats().requests(), 2);
}

#[test]
fn warm_hit_ratio_is_exact_across_evict_cycles() {
    let n = 12;
    let net = Network::with_identity_ids(generators::cycle(n));
    let cache = ViewCache::for_network(&net);
    let evict: Vec<NodeId> = (0..n / 2).map(NodeId::from_index).collect();
    let mut expected = lad_runtime::CacheStats::default();
    // First sweep: all cold.
    for v in net.graph().nodes() {
        cache.ball(&net, v, 2);
    }
    expected.misses += n as u64;
    assert_eq!(cache.stats(), expected);
    for cycle in 0..3 {
        cache.invalidate(&evict);
        expected.invalidations += evict.len() as u64;
        for v in net.graph().nodes() {
            cache.ball(&net, v, 2);
        }
        expected.misses += evict.len() as u64;
        expected.hits += (n - evict.len()) as u64;
        assert_eq!(cache.stats(), expected, "cycle {cycle}");
    }
}
