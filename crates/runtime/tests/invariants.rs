//! Property-based invariants of [`RoundStats`] and the ball cache.
//!
//! * Sequential composition of round statistics is associative and has
//!   [`RoundStats::zero`] as identity, `rounds()` is the max of the
//!   per-node radii, and `mean_rounds()` is bracketed by the min and max.
//! * A cached ball equals a fresh BFS ball at every radius, regardless of
//!   the order radii are requested in (expansion and prefix paths).

use lad_graph::{generators, NodeId};
use lad_runtime::{Ball, Network, RoundStats, ViewCache};
use proptest::prelude::*;

fn arb_stats(n: usize) -> impl Strategy<Value = RoundStats> {
    proptest::collection::vec(0usize..12, n..=n).prop_map(RoundStats::from_per_node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_is_associative_with_zero_identity(
        (a, b, c) in (2usize..30).prop_flat_map(|n| (arb_stats(n), arb_stats(n), arb_stats(n))),
    ) {
        let n = a.n();
        prop_assert_eq!(a.sequential(&RoundStats::zero(n)), a.clone());
        prop_assert_eq!(RoundStats::zero(n).sequential(&a), a.clone());
        prop_assert_eq!(
            a.sequential(&b).sequential(&c),
            a.sequential(&b.sequential(&c))
        );
        // Composition in the model is also commutative (radii add per node).
        prop_assert_eq!(a.sequential(&b), b.sequential(&a));
    }

    #[test]
    fn rounds_is_max_and_mean_is_bracketed(stats in (1usize..40).prop_flat_map(arb_stats)) {
        let per_node = stats.per_node();
        let max = per_node.iter().copied().max().unwrap_or(0);
        let min = per_node.iter().copied().min().unwrap_or(0);
        prop_assert_eq!(stats.rounds(), max);
        for (i, &r) in per_node.iter().enumerate() {
            prop_assert_eq!(stats.rounds_at(NodeId::from_index(i)), r);
        }
        let mean = stats.mean_rounds();
        prop_assert!(mean >= min as f64 - 1e-12, "mean {mean} below min {min}");
        prop_assert!(mean <= max as f64 + 1e-12, "mean {mean} above max {max}");
        // Sequential composition adds means exactly (same node count).
        let doubled = stats.sequential(&stats);
        prop_assert!((doubled.mean_rounds() - 2.0 * mean).abs() < 1e-9);
    }

    #[test]
    fn cached_ball_equals_fresh_bfs_at_every_radius(
        family in 0usize..5,
        n in 4usize..28,
        seed in 0u64..500,
        // Radii requested in arbitrary (possibly repeating, non-monotone)
        // order at a random center.
        radii in proptest::collection::vec(0usize..5, 1..8),
        center_pick in 0usize..1000,
    ) {
        let g = match family {
            0 => generators::path(n.max(2)),
            1 => generators::cycle(n.max(3)),
            2 => generators::random_tree(n.max(2), seed),
            3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
            _ => {
                let w = (n as f64).sqrt().ceil() as usize;
                generators::grid2d(w.max(2), w.max(2), seed % 2 == 0)
            }
        };
        let inputs: Vec<u16> = (0..g.n()).map(|i| (i % 7) as u16).collect();
        let net = Network::with_identity_ids(g).with_inputs(inputs);
        let cache = ViewCache::for_network(&net);
        let center = NodeId::from_index(center_pick % net.graph().n());
        for &r in &radii {
            let cached = cache.ball(&net, center, r);
            let fresh = Ball::collect(&net, center, r);
            prop_assert_eq!(&*cached, &fresh, "center {:?} radius {}", center, r);
        }
        // Every request was served, one miss at most.
        let stats = cache.stats();
        prop_assert_eq!(stats.requests(), radii.len() as u64);
        prop_assert!(stats.misses <= 1);
    }

    #[test]
    fn cache_consistent_across_all_nodes_after_mixed_traffic(
        n in 3usize..20,
        seed in 0u64..200,
    ) {
        // Hammer one cache with every (node, radius) pair twice, in two
        // different orders, then verify everything against fresh BFS.
        let g = generators::random_bounded_degree(n, 3, 2 * n, seed);
        let net = Network::with_identity_ids(g);
        let cache = ViewCache::for_network(&net);
        for v in net.graph().nodes() {
            for r in (0..4).rev() {
                cache.ball(&net, v, r);
            }
        }
        for r in 0..4 {
            for v in net.graph().nodes() {
                let cached = cache.ball(&net, v, r);
                prop_assert_eq!(&*cached, &Ball::collect(&net, v, r));
            }
        }
    }
}
