//! Differential harness: every executor path computes the *same function*.
//!
//! The sequential reference [`run_local`] defines the LOCAL semantics. The
//! parallel, cached, and parallel-cached entry points must reproduce its
//! outputs and [`RoundStats`] **bit for bit** on every graph family and
//! every thread count — algorithms here return entire [`Ball`] values so
//! the comparison covers view subgraphs, identifier/input/degree tables,
//! and global-name maps, not just summaries.
//!
//! Coverage:
//! * a deterministic generator grid (paths, cycles, trees, grids, random
//!   regular, random bounded-degree, subexponential-growth torus patches,
//!   disconnected unions, …) × four algorithm shapes (fixed radius,
//!   adaptive radius growth, uid-dependent mixed radii, non-monotone radius
//!   sequences) × thread counts {1, 2, 3, 8};
//! * proptest-driven random graph shapes, radii, and thread counts;
//! * fallible executions, including proptest-driven simultaneous failures,
//!   which must report the same first-in-node-order error everywhere.

use lad_graph::{builder::GraphBuilder, generators, Graph};
use lad_runtime::{
    run_local, run_local_cached, run_local_fallible, run_local_fallible_cached,
    run_local_fallible_par_cached, run_local_fallible_par_with, run_local_par_cached,
    run_local_par_with, Ball, Network, NodeCtx,
};
use proptest::prelude::*;

const THREAD_GRID: [usize; 4] = [1, 2, 3, 8];

/// The deterministic generator grid. Names are for failure messages.
fn generator_grid() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(24)),
        ("star", generators::star(6)),
        ("complete", generators::complete(7)),
        ("balanced-tree", generators::balanced_tree(2, 4)),
        ("caterpillar", generators::caterpillar(8, 2)),
        ("random-tree", generators::random_tree(30, 3)),
        ("grid", generators::grid2d(6, 5, false)),
        ("torus", generators::grid2d(5, 5, true)),
        ("hypercube", generators::hypercube(4)),
        ("ladder", generators::ladder(6)),
        ("random-regular", generators::random_regular(24, 3, 5)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(40, 4, 60, 9),
        ),
        // Subexponential growth: a torus patch grows polynomially in r.
        (
            "subexp-torus-patch",
            generators::random_torus_patch(8, 8, 0.85, 4),
        ),
        (
            "disconnected",
            generators::disjoint_union(&[
                generators::cycle(5),
                generators::path(4),
                GraphBuilder::new(2).build(), // isolated nodes
            ]),
        ),
    ]
}

/// Wraps a graph with nontrivial identifiers and inputs so differences in
/// any ball table would show up.
fn network_for(g: &Graph) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = lad_graph::IdAssignment::random_permutation(g.n(), 0xC0FFEE);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

/// Asserts that every executor path reproduces `run_local`'s outputs and
/// round statistics exactly, across the thread grid, with cold and warm
/// caches.
fn assert_all_paths_equal<Out>(
    tag: &str,
    net: &Network<u32>,
    algo: impl Fn(&NodeCtx<u32>) -> Out + Sync,
) where
    Out: PartialEq + std::fmt::Debug + Send,
{
    let reference = run_local(net, &algo);
    for threads in THREAD_GRID {
        assert_eq!(
            run_local_par_with(net, threads, &algo),
            reference,
            "{tag}: par, {threads} threads"
        );
        let cold = net.view_cache();
        assert_eq!(
            run_local_par_cached(net, &cold, threads, &algo),
            reference,
            "{tag}: par cold cache, {threads} threads"
        );
        // Warm pass over the same cache: answered from hits, still equal.
        assert_eq!(
            run_local_par_cached(net, &cold, threads, &algo),
            reference,
            "{tag}: par warm cache, {threads} threads"
        );
    }
    let cache = net.view_cache();
    assert_eq!(
        run_local_cached(net, &cache, &algo),
        reference,
        "{tag}: seq cache"
    );
    assert_eq!(
        run_local_cached(net, &cache, &algo),
        reference,
        "{tag}: seq warm cache"
    );
}

#[test]
fn fixed_radius_balls_identical_everywhere() {
    for (tag, g) in generator_grid() {
        let net = network_for(&g);
        for radius in 0..=3 {
            assert_all_paths_equal(&format!("{tag}/r{radius}"), &net, |ctx: &NodeCtx<u32>| {
                ctx.ball(radius)
            });
        }
    }
}

#[test]
fn adaptive_radius_growth_identical_everywhere() {
    // Grow until the ball covers ≥ 12 nodes or stops growing: exercises
    // incremental expansion of the per-node membership memo.
    for (tag, g) in generator_grid() {
        let net = network_for(&g);
        assert_all_paths_equal(tag, &net, |ctx: &NodeCtx<u32>| -> (usize, Ball<u32>) {
            let mut r = 0;
            let mut ball = ctx.ball(0);
            loop {
                let bigger = ctx.ball(r + 1);
                if bigger.n() >= 12 || bigger.n() == ball.n() {
                    return (r + 1, bigger);
                }
                r += 1;
                ball = bigger;
            }
        });
    }
}

#[test]
fn mixed_radii_identical_everywhere() {
    // Different nodes request different radii (uid-dependent), so cache
    // slots are materialized at heterogeneous radii and prefix reuse kicks
    // in when a smaller radius is requested after a larger one.
    for (tag, g) in generator_grid() {
        let net = network_for(&g);
        assert_all_paths_equal(tag, &net, |ctx: &NodeCtx<u32>| {
            ctx.ball((ctx.uid() % 4) as usize)
        });
    }
}

#[test]
fn non_monotone_radius_sequences_identical_everywhere() {
    // One context asking 1, then 3, then 2, then 0: memo expansion followed
    // by prefix slicing, plus shared-Arc views.
    for (tag, g) in generator_grid() {
        let net = network_for(&g);
        assert_all_paths_equal(tag, &net, |ctx: &NodeCtx<u32>| {
            let a = ctx.ball(1);
            let b = ctx.ball(3);
            let c = ctx.ball(2);
            let d = ctx.ball(0);
            let v = ctx.view(3);
            assert_eq!(*v, b);
            (a, b, c, d)
        });
    }
}

#[test]
fn fallible_success_and_failure_identical_everywhere() {
    for (tag, g) in generator_grid() {
        let net = network_for(&g);
        // uid % 5 == 0 fails; others return their radius-2 ball.
        let algo = |ctx: &NodeCtx<u32>| -> Result<Ball<u32>, String> {
            if ctx.uid().is_multiple_of(5) {
                Err(format!("uid {} refused", ctx.uid()))
            } else {
                Ok(ctx.ball(2))
            }
        };
        let reference = run_local_fallible(&net, algo);
        for threads in THREAD_GRID {
            assert_eq!(
                run_local_fallible_par_with(&net, threads, algo),
                reference,
                "{tag}: fallible par, {threads} threads"
            );
            let cache = net.view_cache();
            assert_eq!(
                run_local_fallible_par_cached(&net, &cache, threads, algo),
                reference,
                "{tag}: fallible par cached, {threads} threads"
            );
        }
        let cache = net.view_cache();
        assert_eq!(
            run_local_fallible_cached(&net, &cache, algo),
            reference,
            "{tag}: fallible seq cached"
        );
    }
}

/// Deterministic regression: many nodes fail at once, scattered across
/// chunk boundaries for every thread count in the grid; all paths must
/// report the error of the smallest failing node index.
#[test]
fn simultaneous_failures_report_first_in_node_order() {
    let net = network_for(&generators::cycle(64));
    let failing = [5usize, 6, 17, 31, 32, 33, 63];
    let algo = |ctx: &NodeCtx<u32>| -> Result<usize, String> {
        let idx = ctx.node().index();
        if failing.contains(&idx) {
            Err(format!("node {idx} failed"))
        } else {
            Ok(ctx.ball(1).n())
        }
    };
    let expected = "node 5 failed".to_string();
    assert_eq!(run_local_fallible(&net, algo).unwrap_err(), expected);
    for threads in [1, 2, 3, 4, 8, 16, 64] {
        assert_eq!(
            run_local_fallible_par_with(&net, threads, algo).unwrap_err(),
            expected,
            "threads = {threads}"
        );
        let cache = net.view_cache();
        assert_eq!(
            run_local_fallible_par_cached(&net, &cache, threads, algo).unwrap_err(),
            expected,
            "cached, threads = {threads}"
        );
    }
}

/// Builds the `family`-th random graph family at size `n` with `seed`.
fn arb_family(family: usize, n: usize, seed: u64) -> Graph {
    match family {
        0 => generators::path(n.max(2)),
        1 => generators::cycle(n.max(3)),
        2 => generators::random_tree(n.max(2), seed),
        3 => generators::random_bounded_degree(n, 4, 2 * n, seed),
        4 => {
            let side = (n / 2).max(2);
            generators::random_bipartite_regular(side, 2, seed)
        }
        5 => generators::random_regular(
            if n.is_multiple_of(2) {
                n.max(4)
            } else {
                n.max(4) + 1
            },
            3,
            seed,
        ),
        6 => {
            let w = (n as f64).sqrt().ceil() as usize;
            generators::grid2d(w.max(2), w.max(2), seed.is_multiple_of(2))
        }
        _ => generators::random_torus_patch(6, 6, 0.7 + (seed % 3) as f64 * 0.1, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_equals_sequential_on_random_shapes(
        family in 0usize..8,
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 1usize..10,
        radius in 0usize..4,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let algo = |ctx: &NodeCtx<u32>| ctx.ball(radius);
        let reference = run_local(&net, algo);
        prop_assert_eq!(&run_local_par_with(&net, threads, algo), &reference);
        let cache = net.view_cache();
        prop_assert_eq!(&run_local_par_cached(&net, &cache, threads, algo), &reference);
        prop_assert_eq!(&run_local_cached(&net, &cache, algo), &reference);
    }

    #[test]
    fn parallel_error_choice_matches_sequential_on_random_failure_sets(
        family in 0usize..8,
        n in 8usize..40,
        seed in 0u64..1_000,
        threads in 2usize..10,
        modulus in 2u64..7,
    ) {
        let net = network_for(&arb_family(family, n, seed));
        let algo = |ctx: &NodeCtx<u32>| -> Result<usize, u64> {
            if ctx.uid().is_multiple_of(modulus) {
                Err(ctx.uid())
            } else {
                Ok(ctx.ball(1).n())
            }
        };
        let reference = run_local_fallible(&net, algo);
        prop_assert_eq!(run_local_fallible_par_with(&net, threads, algo), reference);
    }
}
