//! Differential harness for the sharded drivers: shard-at-a-time
//! execution computes the *same function* as the monolithic executors.
//!
//! Coverage:
//! * the full deterministic generator grid × shard counts {1, 2, 3, 5, 8}
//!   × partition shapes (contiguous, BFS-grown) × schedules (forward,
//!   reverse, interleaved) × residency bounds {1, 2, ∞}: outputs and
//!   [`RoundStats`] must match `run_local_memo_fallible` (and the plain
//!   sharded driver must match the memoized one) **bit for bit**;
//! * the provider-based streaming driver against the partition-based one
//!   on the same grid;
//! * first-error identity: a failing step reports the same
//!   first-in-node-order error payload sharded as monolithic, for every
//!   shard count and schedule;
//! * fault plans × [`ShardedTransport`]: fault-free sharded delivery is
//!   bit-identical to [`PerfectLink`], recoverable plans heal to the same
//!   outputs through shard mailboxes, and replays are deterministic
//!   across schedules.

use lad_graph::{builder::GraphBuilder, generators, BitFrontier, Graph, Partition, ShardView};
use lad_runtime::{
    run_gathered_robust, run_local_memo_fallible, run_sharded_fallible, run_sharded_memo_fallible,
    run_sharded_stream_memo_fallible, Ball, FaultPlan, HaloExceeded, Network, NodeCtx,
    NotOrderInvariant, PerfectLink, RoundStats, ShardOpts, ShardSlice, ShardedTransport,
};

/// The deterministic generator grid (mirrors `equivalence.rs`).
fn generator_grid() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(17)),
        ("cycle", generators::cycle(24)),
        ("star", generators::star(6)),
        ("complete", generators::complete(7)),
        ("balanced-tree", generators::balanced_tree(2, 4)),
        ("caterpillar", generators::caterpillar(8, 2)),
        ("random-tree", generators::random_tree(30, 3)),
        ("grid", generators::grid2d(6, 5, false)),
        ("torus", generators::grid2d(5, 5, true)),
        ("hypercube", generators::hypercube(4)),
        ("ladder", generators::ladder(6)),
        ("random-regular", generators::random_regular(24, 3, 5)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(40, 4, 60, 9),
        ),
        (
            "subexp-torus-patch",
            generators::random_torus_patch(8, 8, 0.85, 4),
        ),
        (
            "disconnected",
            generators::disjoint_union(&[
                generators::cycle(5),
                generators::path(4),
                GraphBuilder::new(2).build(),
            ]),
        ),
    ]
}

fn network_for(g: &Graph) -> Network<u32> {
    let inputs: Vec<u32> = (0..g.n())
        .map(|i| (i as u32).wrapping_mul(7) % 13)
        .collect();
    let ids = lad_graph::IdAssignment::random_permutation(g.n(), 0xC0FFEE);
    Network::with_ids(g.clone(), ids).with_inputs(inputs)
}

#[derive(Debug, PartialEq)]
enum TestError {
    Conflict(NotOrderInvariant),
    Halo(HaloExceeded),
    Step(u64),
}

impl From<NotOrderInvariant> for TestError {
    fn from(c: NotOrderInvariant) -> Self {
        TestError::Conflict(c)
    }
}

impl From<HaloExceeded> for TestError {
    fn from(h: HaloExceeded) -> Self {
        TestError::Halo(h)
    }
}

fn tag(x: &u32, words: &mut Vec<u64>) {
    words.push(u64::from(*x));
}

/// An order-invariant statistic of the ball's canonical content: sizes,
/// degrees, and inputs weighted by distance from the center.
fn ball_stat(ball: &Ball<u32>) -> u64 {
    let mut acc = ball.n() as u64;
    for i in 0..ball.n() {
        let v = lad_graph::NodeId::from_index(i);
        acc +=
            u64::from(*ball.input(v)) * 31 + ball.global_degree(v) as u64 * 7 + ball.dist(v) as u64;
    }
    acc
}

/// Adaptive order-invariant step: expand 1 → 2 → 4, then output.
fn adaptive_step(ball: &Ball<u32>) -> Result<lad_runtime::MemoStep<u64>, TestError> {
    let r = ball.radius();
    if r < 2 {
        return Ok(lad_runtime::MemoStep::Expand(2));
    }
    if r < 4 && (ball.n() as u64).is_multiple_of(5) {
        return Ok(lad_runtime::MemoStep::Expand(4));
    }
    Ok(lad_runtime::MemoStep::Done(ball_stat(ball)))
}

/// Like [`adaptive_step`] but fails (with a class-invariant payload) on
/// balls whose statistic is divisible by 3 — exercising first-error
/// resolution.
fn failing_step(ball: &Ball<u32>) -> Result<lad_runtime::MemoStep<u64>, TestError> {
    let r = ball.radius();
    if r < 2 {
        return Ok(lad_runtime::MemoStep::Expand(2));
    }
    let s = ball_stat(ball);
    if s.is_multiple_of(3) {
        return Err(TestError::Step(s));
    }
    Ok(lad_runtime::MemoStep::Done(s))
}

fn schedules(k: usize) -> Vec<Vec<usize>> {
    let forward: Vec<usize> = (0..k).collect();
    let reverse: Vec<usize> = (0..k).rev().collect();
    // Evens first, then odds.
    let interleaved: Vec<usize> = (0..k).step_by(2).chain((1..k).step_by(2)).collect();
    vec![forward, reverse, interleaved]
}

fn partitions(g: &Graph, k: usize) -> Vec<(&'static str, Partition)> {
    vec![
        ("contiguous", Partition::contiguous(g.n(), k)),
        ("bfs-grown", Partition::bfs_grown(g, k)),
    ]
}

#[test]
fn sharded_matches_monolithic_across_grid() {
    for (name, g) in generator_grid() {
        let net = network_for(&g);
        let reference =
            run_local_memo_fallible(&net, 1, tag, adaptive_step).expect("reference decodes");
        let halo = reference.1.rounds() + 1;
        for k in [1usize, 2, 3, 5, 8] {
            let k = k.min(g.n().max(1));
            for (pname, part) in partitions(&g, k) {
                for schedule in schedules(k) {
                    for resident in [1usize, 2, usize::MAX] {
                        let opts = ShardOpts::new(halo)
                            .schedule(schedule.clone())
                            .resident(resident);
                        let got =
                            run_sharded_memo_fallible(&net, &part, &opts, 1, tag, adaptive_step)
                                .unwrap_or_else(|e| {
                                    panic!("{name} {pname} k={k} {schedule:?} r={resident}: {e:?}")
                                });
                        assert_eq!(
                            got, reference,
                            "{name} {pname} k={k} sched={schedule:?} resident={resident}"
                        );
                        let plain = run_sharded_fallible(&net, &part, &opts, 1, adaptive_step)
                            .expect("plain sharded decodes");
                        assert_eq!(
                            plain, reference,
                            "plain: {name} {pname} k={k} sched={schedule:?} resident={resident}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn stream_driver_matches_monolithic_across_grid() {
    for (name, g) in generator_grid() {
        let net = network_for(&g);
        let reference =
            run_local_memo_fallible(&net, 1, tag, adaptive_step).expect("reference decodes");
        let halo = reference.1.rounds() + 1;
        for k in [1usize, 3, 5] {
            let k = k.min(g.n().max(1));
            let part = Partition::contiguous(g.n(), k);
            for resident in [1usize, usize::MAX] {
                let opts = ShardOpts::new(halo).resident(resident);
                let mut frontier = BitFrontier::new(g.n());
                let mut slices: Vec<Option<ShardSlice<u32>>> = (0..k)
                    .map(|s| {
                        let view = ShardView::build(&g, &part, s, halo, &mut frontier);
                        Some(ShardSlice::from_view(&net, &view))
                    })
                    .collect();
                let got = run_sharded_stream_memo_fallible(
                    g.n(),
                    k,
                    &opts,
                    1,
                    |s| slices[s].take().expect("each shard requested once"),
                    || net.clone(),
                    tag,
                    adaptive_step,
                )
                .expect("stream decodes");
                assert_eq!(got, reference, "{name} k={k} resident={resident}");
            }
        }
    }
}

#[test]
fn first_error_is_identical_to_monolithic() {
    let mut failing_cases = 0usize;
    for (name, g) in generator_grid() {
        let net = network_for(&g);
        let reference = run_local_memo_fallible(&net, 1, tag, failing_step);
        let halo = match &reference {
            Ok((_, stats)) => stats.rounds() + 1,
            // Deep enough for the deepest rung the failing ladder can reach.
            Err(_) => 5,
        };
        if reference.is_err() {
            failing_cases += 1;
        }
        for k in [1usize, 2, 5] {
            let k = k.min(g.n().max(1));
            for schedule in schedules(k) {
                let part = Partition::contiguous(g.n(), k);
                let opts = ShardOpts::new(halo).schedule(schedule.clone()).resident(1);
                let got = run_sharded_memo_fallible(&net, &part, &opts, 1, tag, failing_step);
                assert_eq!(got, reference, "{name} k={k} sched={schedule:?}");
            }
        }
    }
    assert!(
        failing_cases >= 3,
        "the failing step must actually fail somewhere ({failing_cases} cases)"
    );
}

// ---------------------------------------------------------------------------
// ShardedTransport × fault plans (gathered execution)
// ---------------------------------------------------------------------------

fn gather_truth(net: &Network<u32>, radius: usize) -> (Vec<u64>, RoundStats) {
    lad_runtime::run_local(net, |ctx: &NodeCtx<u32>| ball_stat(&ctx.ball(radius)))
}

#[test]
fn fault_free_sharded_transport_equals_perfect_link() {
    for (name, g) in generator_grid() {
        if g.n() == 0 {
            continue;
        }
        let net = network_for(&g);
        let radius = 2;
        let expected = gather_truth(&net, radius).0;
        let (bare, bare_report) =
            run_gathered_robust(&net, radius, radius + 5, &mut PerfectLink, |ball| {
                ball_stat(ball)
            })
            .expect("perfect link gathers");
        assert_eq!(bare, expected, "{name}: PerfectLink");
        for k in [2usize, 3] {
            let k = k.min(g.n());
            let part = Partition::contiguous(g.n(), k);
            let mut transport = ShardedTransport::new(PerfectLink, part);
            let (outs, report) =
                run_gathered_robust(&net, radius, radius + 5, &mut transport, |ball| {
                    ball_stat(ball)
                })
                .expect("sharded perfect link gathers");
            assert_eq!(outs, expected, "{name} k={k}: sharded PerfectLink");
            assert_eq!(
                report.rounds_used, bare_report.rounds_used,
                "{name} k={k}: extra rounds spent through mailboxes"
            );
            assert!(
                transport.traffic().intra_messages + transport.traffic().cross_messages > 0,
                "{name} k={k}: transport saw no traffic"
            );
        }
    }
}

#[test]
fn recoverable_fault_plans_heal_through_shard_mailboxes() {
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("drop20", FaultPlan::new(31).drop_rate(0.20)),
        ("dup20", FaultPlan::new(32).duplicate_rate(0.20)),
        ("delay2", FaultPlan::new(33).delay(0.4, 2)),
        (
            "drop+dup+delay",
            FaultPlan::new(34)
                .drop_rate(0.15)
                .duplicate_rate(0.15)
                .delay(0.2, 2),
        ),
    ];
    for (name, g) in [
        ("cycle", generators::cycle(18)),
        ("grid", generators::grid2d(5, 4, false)),
        (
            "random-bounded-degree",
            generators::random_bounded_degree(24, 4, 40, 5),
        ),
    ] {
        let net = network_for(&g);
        let radius = 2;
        let expected = gather_truth(&net, radius).0;
        let budget = radius + 40;
        for (pname, plan) in &plans {
            assert!(plan.is_content_preserving(), "{pname} must be recoverable");
            for k in [2usize, 3] {
                let part = Partition::contiguous(g.n(), k);
                let mut transport = ShardedTransport::new(plan.start::<_>(), part);
                let (outs, _) = run_gathered_robust(&net, radius, budget, &mut transport, |ball| {
                    ball_stat(ball)
                })
                .unwrap_or_else(|e| panic!("{name} {pname} k={k}: failed to heal: {e:?}"));
                assert_eq!(outs, expected, "{name} {pname} k={k}");
            }
        }
    }
}

#[test]
fn sharded_fault_replay_is_deterministic_across_schedules() {
    let g = generators::grid2d(6, 4, false);
    let net = network_for(&g);
    let radius = 2;
    let plan = FaultPlan::new(55).drop_rate(0.25).delay(0.3, 2);
    let part = Partition::contiguous(g.n(), 3);
    let run = |schedule: Vec<usize>| {
        let mut transport =
            ShardedTransport::with_schedule(plan.start::<_>(), part.clone(), schedule);
        run_gathered_robust(&net, radius, radius + 40, &mut transport, |ball| {
            ball_stat(ball)
        })
        .map(|(outs, report)| (outs, report.rounds_used))
        .expect("recoverable plan heals")
    };
    let a = run(vec![0, 1, 2]);
    let b = run(vec![0, 1, 2]);
    assert_eq!(a, b, "same schedule must replay bit-identically");
    let c = run(vec![2, 0, 1]);
    assert_eq!(
        a.0, c.0,
        "outputs are schedule-invariant (mailbox routing is a permutation)"
    );
}
