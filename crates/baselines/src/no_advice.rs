//! No-advice distributed algorithms for inherently global problems.
//!
//! A consistent cycle orientation, a 2-coloring of a bipartite graph, or a
//! balanced orientation all require `Ω(n)` rounds without advice on a
//! cycle: a node must see far enough to break the symmetry consistently
//! with everyone else. These baselines implement the natural
//! gather-everything algorithms and *measure* that cost, which experiment
//! E10 contrasts with the `T(Δ)`-round advice decoders.

use lad_graph::{coloring, EulerPartition, Graph, InducedSubgraph, NodeId, Orientation};
use lad_runtime::{run_local, run_local_fallible, Ball, Network, RoundStats};

/// Expands the view until the whole connected component of the center is
/// visible; returns the final ball.
fn gather_component<'n>(ctx: &lad_runtime::NodeCtx<'n, ()>) -> Ball<()> {
    let mut r = 1;
    loop {
        let ball = ctx.ball(r);
        // The component is fully visible once no member sits at the
        // frontier with unseen edges.
        let complete = ball
            .graph()
            .nodes()
            .all(|v| ball.dist(v) < r || ball.graph().degree(v) == ball.global_degree(v));
        if complete {
            return ball;
        }
        r += r.max(1); // exponential growth keeps the probe count low
    }
}

/// 2-colors each (bipartite) connected component without advice: every
/// node gathers its whole component and applies the canonical rule (the
/// smallest-UID member gets color 0). Rounds = Θ(component eccentricity).
///
/// # Errors
///
/// Returns the odd-cycle witness node if some component is not bipartite.
pub fn two_coloring_no_advice(net: &Network) -> Result<(Vec<u8>, RoundStats), NodeId> {
    run_local_fallible(net, |ctx| {
        let ball = gather_component(ctx);
        let g = ball.graph();
        let Some(colors) = coloring::bipartition(g) else {
            return Err(ball.global_node(ball.center()));
        };
        // Canonicalize: smallest-uid node gets 0.
        let s = g
            .nodes()
            .min_by_key(|&v| ball.uid(v))
            .expect("component nonempty");
        let flip = colors[s.index()];
        Ok(colors[ball.center().index()] ^ flip)
    })
}

/// Computes an almost-balanced orientation without advice by gathering the
/// whole component and orienting its Euler trails canonically. Rounds =
/// Θ(component eccentricity) — the `Ω(n)` bound the paper cites for
/// cycles.
pub fn balanced_orientation_no_advice(net: &Network) -> (Orientation, RoundStats) {
    let g = net.graph();
    let (claims, stats) = run_local(net, |ctx| {
        let ball = gather_component(ctx);
        let bg = ball.graph();
        // Canonical orientation of the visible component: Euler partition
        // under the ball's uids, trails oriented by the same canonical
        // rules the schema uses (via orient_all_forward on a canonical
        // relabeling: here the whole component is visible, so the
        // extraction itself is deterministic given uids — but extraction
        // starts from node order, which is ball-local. Canonicalize by
        // re-indexing nodes in uid order first).
        let mut order: Vec<NodeId> = bg.nodes().collect();
        order.sort_by_key(|&v| ball.uid(v));
        let relabeled = InducedSubgraph::new(bg, &order);
        let rg = relabeled.graph();
        let r_uids: Vec<u64> = rg
            .nodes()
            .map(|v| ball.uid(relabeled.to_original(v)))
            .collect();
        let o = EulerPartition::new(rg, &r_uids).orient_all_forward(rg);
        // Report the orientation of the center's incident edges.
        let c = ball.center();
        let rc = relabeled.to_local(c).expect("center visible");
        let mut out = Vec::new();
        for &re in rg.incident_edges(rc) {
            let r_other = rg.other_endpoint(re, rc);
            let b_other = relabeled.to_original(r_other);
            let be = bg
                .edge_between(c, b_other)
                .expect("edge exists in the ball");
            out.push((ball.global_edge(be), o.is_outgoing(rg, re, rc)));
        }
        out
    });
    let mut o = Orientation::new(g.m());
    for (v, list) in g.nodes().zip(&claims) {
        for &(e, out_of_v) in list {
            let u = g.other_endpoint(e, v);
            if out_of_v {
                o.set(g, e, v, u);
            } else {
                o.set(g, e, u, v);
            }
        }
    }
    (o, stats)
}

/// The eccentricity-style lower-bound witness: the number of rounds the
/// gather-component step costs at each node (for tables).
pub fn gather_rounds(net: &Network) -> RoundStats {
    run_local(net, |ctx| {
        gather_component(ctx);
    })
    .1
}

/// Reference: the exact maximum eccentricity (what any no-advice algorithm
/// for a globally-rigid problem on this graph must approach).
pub fn max_eccentricity(g: &Graph) -> usize {
    lad_graph::traversal::diameter(g).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn two_coloring_even_cycle_costs_omega_n() {
        let net = Network::with_identity_ids(generators::cycle(64));
        let (colors, stats) = two_coloring_no_advice(&net).unwrap();
        for (_, (u, v)) in net.graph().edges() {
            assert_ne!(colors[u.index()], colors[v.index()]);
        }
        // Gathering the whole cycle costs at least the radius.
        assert!(stats.rounds() >= 32);
    }

    #[test]
    fn two_coloring_rejects_odd_cycle() {
        let net = Network::with_identity_ids(generators::cycle(9));
        assert!(two_coloring_no_advice(&net).is_err());
    }

    #[test]
    fn balanced_orientation_without_advice_works_but_globally() {
        let net = Network::with_identity_ids(generators::cycle(80));
        let (o, stats) = balanced_orientation_no_advice(&net);
        assert!(o.is_almost_balanced(net.graph()));
        assert!(stats.rounds() >= 40, "rounds {}", stats.rounds());
    }

    #[test]
    fn balanced_orientation_on_random_graph() {
        let g = generators::random_bounded_degree(50, 5, 90, 4);
        let net = Network::with_identity_ids(g);
        let (o, _) = balanced_orientation_no_advice(&net);
        assert!(o.is_almost_balanced(net.graph()));
    }

    #[test]
    fn gather_rounds_tracks_eccentricity() {
        let net = Network::with_identity_ids(generators::path(33));
        let stats = gather_rounds(&net);
        let diam = max_eccentricity(net.graph());
        assert!(stats.rounds() >= diam / 2);
        assert!(stats.rounds() <= 4 * diam.max(1));
    }
}

/// A distributed greedy `(Δ+1)`-coloring without advice, via the classic
/// "local UID maxima color first" schedule, run on the explicit
/// message-passing simulator. Terminates in `O(n)` rounds in the worst
/// case (a UID-sorted path), `O(Δ log n)`-ish typically — either way *not*
/// `f(Δ)`, which is the point of comparison with the advice schemas.
#[derive(Debug, Clone, Default)]
pub struct GreedyColoring;

/// State for [`GreedyColoring`].
#[derive(Debug, Clone)]
pub struct GreedyState {
    color: Option<usize>,
    /// Last received (uid, color) per port.
    nbrs: Vec<(u64, Option<usize>)>,
}

impl lad_runtime::messaging::RoundAlgorithm<()> for GreedyColoring {
    type State = GreedyState;
    type Msg = (u64, Option<usize>);
    type Out = usize;

    fn init(&self, info: &lad_runtime::messaging::LocalInfo<()>) -> GreedyState {
        GreedyState {
            color: None,
            nbrs: vec![(0, None); info.degree],
        }
    }

    fn send(
        &self,
        st: &GreedyState,
        info: &lad_runtime::messaging::LocalInfo<()>,
    ) -> Vec<(u64, Option<usize>)> {
        vec![(info.uid, st.color); info.degree]
    }

    fn receive(
        &self,
        st: &mut GreedyState,
        info: &lad_runtime::messaging::LocalInfo<()>,
        inbox: &[(u64, Option<usize>)],
    ) {
        st.nbrs.copy_from_slice(inbox);
        if st.color.is_some() {
            return;
        }
        // Color now iff every uncolored neighbor has a smaller uid.
        let is_max = st
            .nbrs
            .iter()
            .all(|&(uid, color)| color.is_some() || uid < info.uid);
        if is_max {
            let used: Vec<usize> = st.nbrs.iter().filter_map(|&(_, c)| c).collect();
            let c = (0..).find(|c| !used.contains(c)).expect("some color free");
            st.color = Some(c);
        }
    }

    fn output(&self, st: &GreedyState) -> Option<usize> {
        st.color
    }
}

/// Runs the distributed greedy coloring; returns `(colors, rounds)`.
///
/// # Errors
///
/// Propagates a round-limit overflow (bounded by `2n + 2`, which always
/// suffices: at least one node colors per two rounds).
pub fn greedy_coloring_no_advice(
    net: &Network,
) -> Result<(Vec<usize>, usize), lad_runtime::messaging::RoundLimitExceeded> {
    let budget = 2 * net.graph().n() + 2;
    lad_runtime::messaging::run_rounds(net, &GreedyColoring, budget)
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use lad_graph::{coloring, generators, IdAssignment};

    #[test]
    fn greedy_coloring_is_proper_and_bounded() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(80, 6, 170, seed);
            let delta = g.max_degree();
            let n = g.n();
            let net = Network::with_ids(g, IdAssignment::random_permutation(n, seed));
            let (colors, rounds) = greedy_coloring_no_advice(&net).unwrap();
            assert!(coloring::is_proper_k_coloring(
                net.graph(),
                &colors,
                delta + 1
            ));
            assert!(rounds <= 2 * n + 2);
        }
    }

    #[test]
    fn greedy_coloring_worst_case_is_linear() {
        // A uid-sorted path serializes completely: rounds ≈ n.
        let n = 60;
        let net = Network::with_ids(generators::path(n), IdAssignment::identity(n));
        let (colors, rounds) = greedy_coloring_no_advice(&net).unwrap();
        assert!(coloring::is_proper_k_coloring(net.graph(), &colors, 3));
        assert!(rounds >= n - 2, "rounds {rounds} not linear");
    }
}
