#![warn(missing_docs)]

//! Comparison baselines: trivial advice schemas and no-advice distributed
//! algorithms.
//!
//! The paper positions its schemas against two obvious alternatives:
//!
//! - **Trivial advice** ([`trivial`]): directly encode the solution —
//!   `⌈log₂ k⌉` bits per node for a `k`-coloring (the paper's "trivial to
//!   solve with β = 2" remark for 3-coloring), or `d` bits per node for an
//!   arbitrary edge subset. Decoding is instant, but the advice is larger
//!   than the schemas' 1 bit per node.
//! - **No advice** ([`no_advice`]): global problems such as consistently
//!   orienting a cycle or 2-coloring a bipartite graph require `Ω(n)`
//!   rounds without advice (each node must see a full symmetry-breaking
//!   landmark); with advice the paper's decoders run in `T(Δ)` rounds.
//!   Experiment E10 plots exactly this separation.

pub mod linial;
pub mod no_advice;
pub mod trivial;
