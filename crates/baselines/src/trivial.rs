//! Trivial advice schemas: encode the whole solution directly.

use lad_core::advice::AdviceMap;
use lad_core::bits::{bit_width, BitReader, BitString};
use lad_core::error::{DecodeError, EncodeError};
use lad_core::schema::AdviceSchema;
use lad_graph::orientation::sorted_incident_by_uid;
use lad_graph::{EulerPartition, Orientation};
use lad_lcl::witness::proper_coloring_witness;
use lad_runtime::{run_local_fallible, Network, RoundStats};

/// The trivial `k`-coloring schema: every node stores its own color in
/// `⌈log₂ k⌉` bits; decoding reads the node's own advice (0 rounds).
///
/// For `k = 3` this is the paper's introductory "β = 2 bits suffice
/// trivially" baseline.
///
/// # Example
///
/// ```
/// use lad_baselines::trivial::TrivialColoringSchema;
/// use lad_core::schema::AdviceSchema;
/// use lad_graph::{coloring, generators};
/// use lad_runtime::Network;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::with_identity_ids(generators::cycle(12));
/// let schema = TrivialColoringSchema::new(3, 100_000);
/// let advice = schema.encode(&net)?;
/// assert_eq!(advice.max_bits(), 2);
/// let (colors, stats) = schema.decode(&net, &advice)?;
/// assert!(coloring::is_proper_k_coloring(net.graph(), &colors, 3));
/// assert_eq!(stats.rounds(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrivialColoringSchema {
    k: usize,
    witness_cap: u64,
}

impl TrivialColoringSchema {
    /// A schema for `k` colors with a witness search budget.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, witness_cap: u64) -> Self {
        assert!(k > 0);
        TrivialColoringSchema { k, witness_cap }
    }

    /// Bits per node.
    pub fn beta(&self) -> usize {
        bit_width(self.k)
    }
}

impl AdviceSchema for TrivialColoringSchema {
    type Output = Vec<usize>;

    fn name(&self) -> String {
        format!("trivial {}-coloring", self.k)
    }

    fn encode(&self, net: &Network) -> Result<AdviceMap, EncodeError> {
        let g = net.graph();
        let colors = proper_coloring_witness(g, net.uids(), self.k, self.witness_cap).map_err(
            |e| match e {
                lad_lcl::brute::CompleteError::NoSolution => {
                    EncodeError::SolutionDoesNotExist(format!("graph is not {}-colorable", self.k))
                }
                lad_lcl::brute::CompleteError::CapExceeded { cap } => {
                    EncodeError::SearchBudgetExceeded(format!("witness cap {cap}"))
                }
            },
        )?;
        let width = self.beta();
        let mut advice = AdviceMap::empty(g.n());
        for v in g.nodes() {
            let mut bits = BitString::new();
            bits.push_uint(colors[v.index()] as u64, width);
            advice.set(v, bits);
        }
        Ok(advice)
    }

    fn decode(
        &self,
        net: &Network,
        advice: &AdviceMap,
    ) -> Result<(Vec<usize>, RoundStats), DecodeError> {
        let width = self.beta();
        let k = self.k;
        let advised = net.with_inputs(advice.strings().to_vec());
        let (colors, stats) = run_local_fallible(&advised, |ctx| {
            let bits = ctx.input().clone();
            if bits.len() != width {
                return Err(DecodeError::malformed(ctx.node(), "wrong advice width"));
            }
            let c = BitReader::new(&bits).read_uint(width).expect("width") as usize;
            if c >= k {
                return Err(DecodeError::malformed(ctx.node(), "color out of range"));
            }
            Ok(c)
        })?;
        Ok((colors, stats))
    }
}

/// The trivial edge-subset encoding: every node stores one membership bit
/// per *incident* edge (in UID order) — `d` bits at a degree-`d` node,
/// twice the information-theoretic need. The Contribution-4 codec halves
/// this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialEdgeSubsetCodec;

impl TrivialEdgeSubsetCodec {
    /// Compresses a subset at `d` bits per node.
    ///
    /// # Panics
    ///
    /// Panics if `subset.len()` differs from the edge count.
    pub fn compress(&self, net: &Network, subset: &[bool]) -> AdviceMap {
        let g = net.graph();
        assert_eq!(subset.len(), g.m());
        let uids = net.uids();
        let mut advice = AdviceMap::empty(g.n());
        for v in g.nodes() {
            let mut bits = BitString::new();
            for e in sorted_incident_by_uid(g, uids, v) {
                bits.push(subset[e.index()]);
            }
            advice.set(v, bits);
        }
        advice
    }

    /// Decompresses (0 rounds: every node knows its incident memberships).
    ///
    /// # Errors
    ///
    /// Rejects advice of the wrong per-node length or with endpoints
    /// disagreeing about an edge.
    pub fn decompress(&self, net: &Network, advice: &AdviceMap) -> Result<Vec<bool>, DecodeError> {
        let g = net.graph();
        let uids = net.uids();
        let mut out: Vec<Option<bool>> = vec![None; g.m()];
        for v in g.nodes() {
            let bits = advice.get(v);
            let incident = sorted_incident_by_uid(g, uids, v);
            if bits.len() != incident.len() {
                return Err(DecodeError::malformed(v, "wrong advice length"));
            }
            for (i, e) in incident.into_iter().enumerate() {
                let b = bits.get(i);
                match out[e.index()] {
                    None => out[e.index()] = Some(b),
                    Some(prev) if prev == b => {}
                    Some(_) => {
                        return Err(DecodeError::Inconsistent(format!(
                            "endpoints of {e:?} disagree"
                        )))
                    }
                }
            }
        }
        Ok(out.into_iter().map(|b| b.unwrap_or(false)).collect())
    }
}

/// The trivial orientation advice: every node stores one bit per incident
/// edge ("is it outgoing?") — `d` bits per node versus the schema's 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialOrientationSchema;

impl AdviceSchema for TrivialOrientationSchema {
    type Output = Orientation;

    fn name(&self) -> String {
        "trivial orientation (d bits/node)".into()
    }

    fn encode(&self, net: &Network) -> Result<AdviceMap, EncodeError> {
        let g = net.graph();
        let uids = net.uids();
        let o = EulerPartition::new(g, uids).orient_all_forward(g);
        let mut advice = AdviceMap::empty(g.n());
        for v in g.nodes() {
            let mut bits = BitString::new();
            for e in sorted_incident_by_uid(g, uids, v) {
                bits.push(o.is_outgoing(g, e, v));
            }
            advice.set(v, bits);
        }
        Ok(advice)
    }

    fn decode(
        &self,
        net: &Network,
        advice: &AdviceMap,
    ) -> Result<(Orientation, RoundStats), DecodeError> {
        let g = net.graph();
        let uids = net.uids();
        let mut o = Orientation::new(g.m());
        let mut seen: Vec<Option<bool>> = vec![None; g.m()];
        for v in g.nodes() {
            let bits = advice.get(v);
            let incident = sorted_incident_by_uid(g, uids, v);
            if bits.len() != incident.len() {
                return Err(DecodeError::malformed(v, "wrong advice length"));
            }
            for (i, e) in incident.into_iter().enumerate() {
                let out_of_v = bits.get(i);
                let (lo, hi) = g.endpoints(e);
                let toward_higher = if v == lo { out_of_v } else { !out_of_v };
                match seen[e.index()] {
                    None => {
                        seen[e.index()] = Some(toward_higher);
                        if toward_higher {
                            o.set(g, e, lo, hi);
                        } else {
                            o.set(g, e, hi, lo);
                        }
                    }
                    Some(prev) if prev == toward_higher => {}
                    Some(_) => {
                        return Err(DecodeError::Inconsistent(format!(
                            "endpoints of {e:?} disagree"
                        )))
                    }
                }
            }
        }
        // 0 rounds: nothing was gathered.
        let (_, stats) = lad_runtime::run_local(net, |_| ());
        Ok((o, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    #[test]
    fn trivial_coloring_roundtrip() {
        let net = Network::with_identity_ids(generators::cycle(15));
        let schema = TrivialColoringSchema::new(3, 1_000_000);
        let advice = schema.encode(&net).unwrap();
        assert_eq!(advice.max_bits(), 2);
        let (colors, stats) = schema.decode(&net, &advice).unwrap();
        assert!(lad_graph::coloring::is_proper_k_coloring(
            net.graph(),
            &colors,
            3
        ));
        assert_eq!(stats.rounds(), 0);
    }

    #[test]
    fn trivial_coloring_rejects_garbage() {
        let net = Network::with_identity_ids(generators::cycle(6));
        let schema = TrivialColoringSchema::new(3, 1000);
        let mut advice = schema.encode(&net).unwrap();
        advice.set(lad_graph::NodeId(0), BitString::parse("11")); // color 3
        assert!(schema.decode(&net, &advice).is_err());
    }

    #[test]
    fn trivial_subset_roundtrip_costs_d_bits() {
        let g = generators::grid2d(5, 5, true);
        let m = g.m();
        let net = Network::with_identity_ids(g);
        let subset: Vec<bool> = (0..m).map(|i| i % 2 == 0).collect();
        let codec = TrivialEdgeSubsetCodec;
        let advice = codec.compress(&net, &subset);
        for v in net.graph().nodes() {
            assert_eq!(advice.get(v).len(), net.graph().degree(v));
        }
        assert_eq!(codec.decompress(&net, &advice).unwrap(), subset);
    }

    #[test]
    fn trivial_orientation_zero_rounds() {
        let net = Network::with_identity_ids(generators::random_bounded_degree(40, 6, 80, 1));
        let schema = TrivialOrientationSchema;
        let advice = schema.encode(&net).unwrap();
        let (o, stats) = schema.decode(&net, &advice).unwrap();
        assert!(o.is_almost_balanced(net.graph()));
        assert_eq!(stats.rounds(), 0);
        // d bits per node.
        for v in net.graph().nodes() {
            assert_eq!(advice.get(v).len(), net.graph().degree(v));
        }
    }
}
