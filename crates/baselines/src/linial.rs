//! Linial's color reduction — the classic one-round palette shrink the
//! paper cites for the `O(Δ²) → Δ+1` stage of Contribution 5.
//!
//! One [`linial_step`] maps a proper `c`-coloring to a proper coloring
//! with roughly `(dΔ)²` colors where `d = ⌈log c / log q⌉`, via the
//! polynomial cover-free construction: color `i` becomes a degree-`d`
//! polynomial `p_i` over `F_q`; a node with color `i` picks an evaluation
//! point `x` where `p_i` disagrees with all of its neighbors' polynomials
//! (two distinct degree-`d` polynomials agree on at most `d` points, and
//! `q > dΔ` guarantees a free point) and outputs `(x, p_i(x))`. Iterating
//! [`linial_to_delta_squared`] reaches `O(Δ²)` colors in `O(log* c)`
//! rounds.
//!
//! Everything runs as an honest 1-round LOCAL algorithm (each node reads
//! only its neighbors' current colors).

use lad_graph::coloring;
use lad_runtime::{run_local, Network, RoundStats};

/// The smallest prime `≥ x` (trial division; fine for palette-sized
/// inputs).
pub fn next_prime(x: u64) -> u64 {
    let mut n = x.max(2);
    loop {
        if is_prime(n) {
            return n;
        }
        n += 1;
    }
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The digits of `i` in base `q`, least significant first, padded to
/// `d + 1` coefficients — the polynomial representing color `i`.
fn poly_of(i: u64, q: u64, d: usize) -> Vec<u64> {
    let mut coeffs = Vec::with_capacity(d + 1);
    let mut rest = i;
    for _ in 0..=d {
        coeffs.push(rest % q);
        rest /= q;
    }
    debug_assert_eq!(rest, 0, "color does not fit in q^(d+1)");
    coeffs
}

/// Evaluates a polynomial at `x` over `F_q` (Horner).
fn eval(coeffs: &[u64], x: u64, q: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = (acc * x + c) % q;
    }
    acc
}

/// Parameters of one Linial step for `c` colors and maximum degree `delta`:
/// `(q, d)` with `q` prime, `q > d·delta`, and `q^(d+1) ≥ c`.
pub fn linial_parameters(c: usize, delta: usize) -> (u64, usize) {
    // Choose the degree first: d ≈ log c / log q is self-referential, so
    // search the smallest d whose induced q gives q^(d+1) ≥ c.
    for d in 1..64 {
        let q = next_prime((d as u64 * delta as u64).max(2) + 1);
        // q^(d+1) ≥ c? (checked arithmetic to avoid overflow)
        let mut cap: u128 = 1;
        for _ in 0..=d {
            cap = cap.saturating_mul(q as u128);
        }
        if cap >= c as u128 {
            return (q, d);
        }
    }
    unreachable!("c fits in q^64 for any q ≥ 2");
}

/// One Linial step: proper `c`-coloring in, proper `q²`-coloring out
/// (colors are `x·q + p(x) < q²`), in exactly one round.
///
/// # Panics
///
/// Panics if `colors` is not a proper coloring with values `< c`.
pub fn linial_step(net: &Network, colors: &[usize], c: usize) -> (Vec<usize>, usize, RoundStats) {
    let g = net.graph();
    assert!(
        coloring::is_proper_k_coloring(g, colors, c),
        "input coloring invalid"
    );
    let delta = g.max_degree().max(1);
    let (q, d) = linial_parameters(c, delta);
    let (out, stats) = run_local(net, |ctx| {
        let ball = ctx.ball(1);
        let me = ball.center();
        let my_poly = poly_of(colors[ball.global_node(me).index()] as u64, q, d);
        let nbr_polys: Vec<Vec<u64>> = ball
            .graph()
            .neighbors(me)
            .iter()
            .map(|&u| poly_of(colors[ball.global_node(u).index()] as u64, q, d))
            .collect();
        // A point where my polynomial differs from every neighbor's: at
        // most d·Δ < q points are blocked.
        let x = (0..q)
            .find(|&x| {
                nbr_polys
                    .iter()
                    .all(|p| eval(p, x, q) != eval(&my_poly, x, q))
            })
            .expect("q > dΔ guarantees a free evaluation point");
        (x * q + eval(&my_poly, x, q)) as usize
    });
    let new_c = (q * q) as usize;
    debug_assert!(coloring::is_proper_k_coloring(g, &out, new_c));
    (out, new_c, stats)
}

/// Iterates Linial steps until the palette stops shrinking — `O(Δ²)`
/// colors after `O(log* c)` rounds. Returns `(colors, palette size,
/// rounds)`.
pub fn linial_to_delta_squared(
    net: &Network,
    colors: Vec<usize>,
    c: usize,
) -> (Vec<usize>, usize, RoundStats) {
    let mut colors = colors;
    let mut c = c;
    let mut total: Option<RoundStats> = None;
    loop {
        let (next, next_c, stats) = linial_step(net, &colors, c);
        total = Some(match total {
            None => stats,
            Some(t) => t.sequential(&stats),
        });
        if next_c >= c {
            // No further progress; keep the smaller palette.
            return (colors, c, total.expect("at least one step ran"));
        }
        colors = next;
        c = next_c;
    }
}

/// Sequential palette reduction `c → Δ+1`: `c − Δ − 1` rounds, each
/// eliminating the top color class (its members are local maxima of the
/// schedule, so they can greedily recolor simultaneously).
pub fn reduce_to_delta_plus_one(
    net: &Network,
    colors: Vec<usize>,
    c: usize,
) -> (Vec<usize>, RoundStats) {
    let g = net.graph();
    let delta = g.max_degree();
    let mut colors = colors;
    let mut total: Option<RoundStats> = None;
    for top in ((delta + 1)..c).rev() {
        let snapshot = colors.clone();
        let (next, stats) = run_local(net, |ctx| {
            let ball = ctx.ball(1);
            let me = ball.center();
            let mine = snapshot[ball.global_node(me).index()];
            if mine != top {
                return mine;
            }
            // The top class is independent (proper coloring): all its
            // members recolor greedily at once.
            let used: Vec<usize> = ball
                .graph()
                .neighbors(me)
                .iter()
                .map(|&u| snapshot[ball.global_node(u).index()])
                .collect();
            (0..=delta).find(|x| !used.contains(x)).expect("Δ+1 colors")
        });
        colors = next;
        total = Some(match total {
            None => stats,
            Some(t) => t.sequential(&stats),
        });
    }
    let stats = total.unwrap_or_else(|| run_local(net, |_| ()).1);
    debug_assert!(coloring::is_proper_k_coloring(g, &colors, delta + 1));
    (colors, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::{generators, IdAssignment};

    #[test]
    fn primes() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(13), 13);
        assert_eq!(next_prime(90), 97);
    }

    #[test]
    fn parameters_satisfy_invariants() {
        for (c, delta) in [(1000usize, 4usize), (50, 2), (1 << 20, 8), (10, 10)] {
            let (q, d) = linial_parameters(c, delta);
            assert!(q > (d * delta) as u64, "q > dΔ for ({c}, {delta})");
            let mut cap: u128 = 1;
            for _ in 0..=d {
                cap *= q as u128;
            }
            assert!(cap >= c as u128);
        }
    }

    #[test]
    fn one_step_shrinks_a_big_palette() {
        let g = generators::random_bounded_degree(1000, 5, 2300, 3);
        let n = g.n();
        let net = Network::with_ids(g, IdAssignment::random_permutation(n, 5));
        // Start from the trivial n-coloring by identifier.
        let colors: Vec<usize> = net.uids().iter().map(|&u| (u - 1) as usize).collect();
        let (next, new_c, stats) = linial_step(&net, &colors, n);
        assert!(coloring::is_proper_k_coloring(net.graph(), &next, new_c));
        assert!(new_c < n, "palette must shrink: {new_c} < {n}");
        assert_eq!(stats.rounds(), 1);
    }

    #[test]
    fn iterated_reduction_reaches_delta_squared_scale() {
        let g = generators::random_bounded_degree(300, 4, 580, 7);
        let n = g.n();
        let delta = g.max_degree();
        let net = Network::with_ids(g, IdAssignment::random_permutation(n, 9));
        let colors: Vec<usize> = net.uids().iter().map(|&u| (u - 1) as usize).collect();
        let (colors, c, stats) = linial_to_delta_squared(&net, colors, n);
        assert!(coloring::is_proper_k_coloring(net.graph(), &colors, c));
        // O(Δ²)-ish: q² with q = O(Δ log Δ)-ish at the fixpoint.
        assert!(
            c <= 40 * delta * delta,
            "palette {c} too large for Δ={delta}"
        );
        // log* rounds: tiny.
        assert!(stats.rounds() <= 6, "rounds {}", stats.rounds());
    }

    #[test]
    fn full_pipeline_to_delta_plus_one() {
        let g = generators::random_bounded_degree(150, 5, 330, 11);
        let n = g.n();
        let delta = g.max_degree();
        let net = Network::with_ids(g, IdAssignment::random_permutation(n, 13));
        let colors: Vec<usize> = net.uids().iter().map(|&u| (u - 1) as usize).collect();
        let (colors, c, s1) = linial_to_delta_squared(&net, colors, n);
        let (colors, s2) = reduce_to_delta_plus_one(&net, colors, c);
        assert!(coloring::is_proper_k_coloring(
            net.graph(),
            &colors,
            delta + 1
        ));
        // The whole no-advice pipeline is f(Δ) + log* n rounds.
        let total = s1.sequential(&s2).rounds();
        assert!(total < c + 10);
    }

    #[test]
    fn cycle_reduction() {
        let net = Network::with_identity_ids(generators::cycle(64));
        let colors: Vec<usize> = (0..64).collect();
        let (colors, c, _) = linial_to_delta_squared(&net, colors, 64);
        assert!(coloring::is_proper_k_coloring(net.graph(), &colors, c));
        assert!(c <= 49); // q = 7 fixpoint for Δ = 2
    }
}
