//! Lemma-2 of the composability framework (Section 9): converting a sparse
//! variable-length schema into a **uniform 1-bit-per-node** schema.
//!
//! The paper's conversion writes each bit-holding node's payload along a
//! path near it, using the self-delimiting code of Section 4
//! (`11110110` marker, `0 → 110`, `1 → 1110`, terminator `0`): since the
//! code never contains four consecutive `1`s after the marker, path starts
//! are recognizable.
//!
//! Here the path is the **deterministic greedy induced walk** from the
//! holder: repeatedly step to the smallest-UID neighbor that is not yet
//! visited and not adjacent to any earlier walk node (so the walk induces
//! a chordless path). The walk depends only on the topology and the
//! identifiers — never on the advice bits — so the decoder recomputes it
//! exactly.
//!
//! Two embedded paths may touch or even share nodes, as long as shared
//! nodes need the same bit; the encoder verifies *decodability* as a
//! whole — it runs the decoder's detection rule centrally and rejects the
//! encoding (rare in practice) if any non-holder would falsely decode as a
//! holder. This check replaces the paper's LLL-style separation argument
//! with an explicit certificate.

use crate::advice::AdviceMap;
use crate::bits::{decode_path_code, encode_path_code, path_code_len, BitString};
use crate::error::{DecodeError, EncodeError};
use crate::schema::AdviceSchema;
use lad_graph::{Graph, NodeId};
use lad_runtime::{run_local_par, Ball, Network, RoundStats};

/// A fixed 64-bit mixer (SplitMix64 finalizer) — shared by encoder and
/// decoder to pick walk steps pseudo-randomly but deterministically.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic greedy induced walk from `start`, up to `len` *nodes*
/// (including `start`). Returns fewer nodes if the walk gets stuck.
///
/// Rule: from the current node, step to the unvisited neighbor that is not
/// adjacent to any earlier walk node (keeping the walk an induced path)
/// and minimizes `mix(uid(start), uid(candidate))`. The salt makes walks
/// from different holders diverge instead of all gravitating toward the
/// globally smallest identifiers; the rule still depends only on topology
/// and identifiers, so the decoder recomputes it exactly.
///
/// A greedy walk can get stuck early (e.g., it runs into a path endpoint);
/// this function therefore tries up to eight salted *variants* and returns
/// the first one reaching `len` nodes — a purely structural ladder the
/// decoder replays identically. If every variant is stuck, the longest
/// variant-0 walk is returned (callers detect the short length).
pub fn greedy_induced_walk(g: &Graph, uids: &[u64], start: NodeId, len: usize) -> Vec<NodeId> {
    let mut first = None;
    for variant in 0..8u64 {
        let walk = greedy_induced_walk_variant(g, uids, start, len, variant);
        if walk.len() >= len {
            return walk;
        }
        if first.is_none() {
            first = Some(walk);
        }
    }
    first.expect("variant 0 always produces a walk")
}

/// One salted variant of the greedy induced walk (see
/// [`greedy_induced_walk`]).
pub fn greedy_induced_walk_variant(
    g: &Graph,
    uids: &[u64],
    start: NodeId,
    len: usize,
    variant: u64,
) -> Vec<NodeId> {
    let salt = mix(uids[start.index()], 0x5a17 ^ variant);
    let mut walk = vec![start];
    let mut on_walk = vec![false; g.n()];
    on_walk[start.index()] = true;
    while walk.len() < len {
        let cur = *walk.last().expect("walk is nonempty");
        let mut best: Option<(u64, NodeId)> = None;
        for &u in g.neighbors(cur) {
            if on_walk[u.index()] {
                continue;
            }
            // u must not be adjacent to any walk node except `cur` — that
            // would create a chord.
            let chord = g
                .neighbors(u)
                .iter()
                .any(|&w| on_walk[w.index()] && w != cur);
            if chord {
                continue;
            }
            let key = mix(salt, uids[u.index()]);
            if best.is_none_or(|(bk, _)| key < bk) {
                best = Some((key, u));
            }
        }
        match best {
            Some((_, u)) => {
                on_walk[u.index()] = true;
                walk.push(u);
            }
            None => break,
        }
    }
    walk
}

/// Uniform 1-bit advice produced by [`to_one_bit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneBitAdvice {
    /// One bit per node.
    pub bits: Vec<bool>,
    /// The code length every decoder walk uses (a schema constant: the
    /// converter pads all codes to this length conceptually by trailing
    /// zeros on the walk).
    pub code_len: usize,
}

impl OneBitAdvice {
    /// The sparsity ratio `n₁ / n` of Definition 3.5.
    pub fn ones_ratio(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }

    /// As an [`AdviceMap`] (uniform 1-bit kind).
    pub fn as_advice_map(&self) -> AdviceMap {
        AdviceMap::from_one_bit(&self.bits)
    }
}

/// Converts sparse variable-length advice into uniform 1-bit advice whose
/// decoder walk length is `path_code_len(max_payload_bits)`.
///
/// A *sufficient* condition for success is that bit-holding nodes are
/// pairwise further than `2 × path_code_len(max_payload_bits)` apart (their
/// walks then cannot meet) — the quantitative form of the paper's
/// "arbitrarily sparse" requirement. Closer holders often still embed; the
/// final decodability check is authoritative either way.
///
/// # Errors
///
/// - [`EncodeError::Unsupported`] if some payload exceeds
///   `max_payload_bits`.
/// - [`EncodeError::PlacementFailed`] if a walk is too short to carry its
///   code, two walks demand different bits of a shared node, or the
///   central decodability check finds a false-positive holder.
pub fn to_one_bit(
    net: &Network,
    advice: &AdviceMap,
    max_payload_bits: usize,
) -> Result<OneBitAdvice, EncodeError> {
    let g = net.graph();
    let uids = net.uids();
    let code_len = path_code_len(max_payload_bits);
    let mut bits: Vec<Option<bool>> = vec![None; g.n()];
    for v in advice.holders() {
        let payload = advice.get(v);
        if payload.len() > max_payload_bits {
            return Err(EncodeError::Unsupported(format!(
                "payload of {v} has {} bits > max {max_payload_bits}",
                payload.len()
            )));
        }
        let code = encode_path_code(&payload);
        let walk = greedy_induced_walk(g, uids, v, code.len());
        if walk.len() < code.len() {
            return Err(EncodeError::PlacementFailed(format!(
                "walk from {v} stuck after {} of {} nodes",
                walk.len(),
                code.len()
            )));
        }
        for (i, &w) in walk.iter().enumerate() {
            let bit = code.get(i);
            match bits[w.index()] {
                None => bits[w.index()] = Some(bit),
                Some(existing) if existing == bit => {}
                Some(_) => {
                    return Err(EncodeError::PlacementFailed(format!(
                        "walks overlap at {w} with conflicting bits"
                    )))
                }
            }
        }
    }
    let bits: Vec<bool> = bits.into_iter().map(|b| b.unwrap_or(false)).collect();
    let out = OneBitAdvice { bits, code_len };
    // Central decodability certificate: detection must recover exactly the
    // original holders and payloads.
    let mut recovered = AdviceMap::empty(g.n());
    for v in g.nodes() {
        if let Some(p) = detect_holder_global(g, uids, &out.bits, v, code_len) {
            recovered.set(v, p);
        }
    }
    if &recovered != advice {
        return Err(EncodeError::PlacementFailed(
            "decodability check failed: detection does not invert the embedding".into(),
        ));
    }
    Ok(out)
}

/// Holder detection on the full graph (encoder-side check).
fn detect_holder_global(
    g: &Graph,
    uids: &[u64],
    bits: &[bool],
    v: NodeId,
    code_len: usize,
) -> Option<BitString> {
    if !bits[v.index()] {
        return None;
    }
    let walk = greedy_induced_walk(g, uids, v, code_len);
    let read: BitString = walk.iter().map(|&w| bits[w.index()]).collect();
    decode_path_code(&read)
}

/// Holder detection inside a ball view (decoder side). The ball must have
/// radius at least `code_len + 1`.
fn detect_holder_local(ball: &Ball<bool>, code_len: usize) -> Option<BitString> {
    let c = ball.center();
    if !ball.input(c) {
        return None;
    }
    let walk = greedy_induced_walk(ball.graph(), ball.uids(), c, code_len);
    let read: BitString = walk.iter().map(|&w| *ball.input(w)).collect();
    decode_path_code(&read)
}

/// Reconstructs the variable-length advice from uniform 1-bit advice: each
/// node determines whether it is a holder and, if so, its payload. Runs in
/// `code_len + 1` rounds.
///
/// This direction cannot fail (detection simply yields no holders on
/// garbage input); downstream schema decoders are responsible for
/// rejecting wrong payloads.
pub fn from_one_bit(net: &Network, one_bit: &OneBitAdvice) -> (AdviceMap, RoundStats) {
    let g = net.graph();
    let advised = net.with_inputs(one_bit.bits.clone());
    let radius = one_bit.code_len + 1;
    let (payloads, stats) = run_local_par(&advised, |ctx| {
        let ball = ctx.ball(radius);
        detect_holder_local(&ball, one_bit.code_len)
    });
    let mut advice = AdviceMap::empty(g.n());
    for (v, p) in g.nodes().zip(payloads) {
        if let Some(p) = p {
            advice.set(v, p);
        }
    }
    (advice, stats)
}

/// A schema wrapper applying the Lemma-2 conversion to any base schema:
/// the base schema's variable-length advice is embedded as uniform 1-bit
/// advice; decoding first reconstructs the variable-length advice, then
/// runs the base decoder.
#[derive(Debug, Clone)]
pub struct OneBitSchema<S> {
    /// The underlying variable-length schema.
    pub base: S,
    /// The maximum payload (in bits) any node of the base schema may hold;
    /// fixes the decoder's walk length.
    pub max_payload_bits: usize,
}

impl<S> OneBitSchema<S> {
    /// Wraps `base` with a payload bound.
    pub fn new(base: S, max_payload_bits: usize) -> Self {
        OneBitSchema {
            base,
            max_payload_bits,
        }
    }

    /// The walk/code length of the embedded encoding.
    pub fn code_len(&self) -> usize {
        path_code_len(self.max_payload_bits)
    }
}

impl<S: AdviceSchema> AdviceSchema for OneBitSchema<S> {
    type Output = S::Output;

    fn name(&self) -> String {
        format!("one-bit({})", self.base.name())
    }

    fn encode(&self, net: &Network) -> Result<AdviceMap, EncodeError> {
        let var = self.base.encode(net)?;
        let one = to_one_bit(net, &var, self.max_payload_bits)?;
        Ok(one.as_advice_map())
    }

    fn decode(
        &self,
        net: &Network,
        advice: &AdviceMap,
    ) -> Result<(Self::Output, RoundStats), DecodeError> {
        let n = net.graph().n();
        if advice.n() != n {
            return Err(DecodeError::Inconsistent(
                "advice covers a different node count".into(),
            ));
        }
        let mut bits = Vec::with_capacity(n);
        for v in net.graph().nodes() {
            let s = advice.get(v);
            if s.len() != 1 {
                return Err(DecodeError::malformed(v, "expected exactly one bit"));
            }
            bits.push(s.get(0));
        }
        let one = OneBitAdvice {
            bits,
            code_len: self.code_len(),
        };
        let (var, stats1) = from_one_bit(net, &one);
        let (out, stats2) = self.base.decode(net, &var)?;
        Ok((out, stats1.sequential(&stats2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balanced::BalancedOrientationSchema;
    use lad_graph::generators;

    #[test]
    fn walk_on_cycle_follows_the_cycle() {
        let g = generators::cycle(12);
        let uids: Vec<u64> = (1..=12).collect();
        let walk = greedy_induced_walk(&g, &uids, NodeId(5), 5);
        assert_eq!(walk.len(), 5);
        assert_eq!(walk[0], NodeId(5));
        for w in walk.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        // Deterministic.
        assert_eq!(walk, greedy_induced_walk(&g, &uids, NodeId(5), 5));
    }

    #[test]
    fn walk_is_induced() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(100, 6, 250, seed);
            let uids: Vec<u64> = (1..=100).collect();
            let walk = greedy_induced_walk(&g, &uids, NodeId(0), 20);
            for i in 0..walk.len() {
                for j in i + 2..walk.len() {
                    assert!(
                        !g.has_edge(walk[i], walk[j]),
                        "chord {:?}-{:?} in walk",
                        walk[i],
                        walk[j]
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrip_single_holder() {
        let g = generators::cycle(80);
        let net = Network::with_identity_ids(g);
        let mut advice = AdviceMap::empty(80);
        advice.set(NodeId(30), BitString::parse("10110"));
        let one = to_one_bit(&net, &advice, 6).unwrap();
        let (recovered, stats) = from_one_bit(&net, &one);
        assert_eq!(recovered, advice);
        assert_eq!(stats.rounds(), one.code_len + 1);
    }

    #[test]
    fn roundtrip_multiple_holders() {
        // Holders pairwise further apart than 2 × code length: their walks
        // cannot meet, so the embedding is guaranteed to succeed.
        let g = generators::cycle(240);
        let net = Network::with_identity_ids(g);
        let mut advice = AdviceMap::empty(240);
        advice.set(NodeId(5), BitString::parse("1"));
        advice.set(NodeId(80), BitString::parse("0011"));
        advice.set(NodeId(160), BitString::parse("11"));
        let one = to_one_bit(&net, &advice, 4).unwrap();
        let (recovered, _) = from_one_bit(&net, &one);
        assert_eq!(recovered, advice);
        assert!(one.ones_ratio() < 0.2);
    }

    #[test]
    fn grid_holders_far_apart() {
        let g = generators::grid2d(20, 20, false);
        let net = Network::with_identity_ids(g);
        let mut advice = AdviceMap::empty(400);
        advice.set(NodeId(0), BitString::parse("1")); // corner (0,0)
        advice.set(NodeId(399), BitString::parse("0")); // corner (19,19)
        let one = to_one_bit(&net, &advice, 1).unwrap();
        let (recovered, _) = from_one_bit(&net, &one);
        assert_eq!(recovered, advice);
    }

    #[test]
    fn payload_too_long_rejected() {
        let g = generators::cycle(40);
        let net = Network::with_identity_ids(g);
        let mut advice = AdviceMap::empty(40);
        advice.set(NodeId(0), BitString::parse("10101"));
        let err = to_one_bit(&net, &advice, 3).unwrap_err();
        assert!(matches!(err, EncodeError::Unsupported(_)));
    }

    #[test]
    fn walk_too_short_rejected() {
        // A tiny path cannot carry a long code.
        let g = generators::path(5);
        let net = Network::with_identity_ids(g);
        let mut advice = AdviceMap::empty(5);
        advice.set(NodeId(0), BitString::parse("1111"));
        let err = to_one_bit(&net, &advice, 4).unwrap_err();
        assert!(matches!(err, EncodeError::PlacementFailed(_)));
    }

    #[test]
    fn one_bit_balanced_orientation_end_to_end() {
        // The composed schema: balanced orientation -> 1 bit per node.
        let net = Network::with_identity_ids(generators::cycle(240));
        let base = BalancedOrientationSchema::new(16, 60);
        // Anchors every 60 on the single long cycle: payload is one
        // 2-bit record (slot width 1 + direction 1).
        let schema = OneBitSchema::new(base, 2);
        let advice = schema.encode(&net).unwrap();
        assert_eq!(
            advice.kind(),
            crate::advice::AdviceKind::UniformFixedLength { bits: 1 }
        );
        let (o, stats) = schema.decode(&net, &advice).unwrap();
        assert!(o.is_almost_balanced(net.graph()));
        assert!(stats.rounds() < 240 / 2);
        // Sparse: each anchor's code is ~17 bits of which ~60% are ones.
        let ratio = advice.one_ratio().unwrap();
        assert!(ratio < 0.25, "ones ratio {ratio}");
    }

    #[test]
    fn sparsity_improves_with_spacing() {
        let net = Network::with_identity_ids(generators::cycle(600));
        let tight = OneBitSchema::new(BalancedOrientationSchema::new(16, 30), 2);
        let loose = OneBitSchema::new(BalancedOrientationSchema::new(16, 120), 2);
        let r_tight = tight.encode(&net).unwrap().one_ratio().unwrap();
        let r_loose = loose.encode(&net).unwrap().one_ratio().unwrap();
        assert!(r_loose < r_tight);
    }

    #[test]
    fn empty_advice_converts_to_all_zeros() {
        let net = Network::with_identity_ids(generators::cycle(30));
        let advice = AdviceMap::empty(30);
        let one = to_one_bit(&net, &advice, 4).unwrap();
        assert_eq!(one.ones_ratio(), 0.0);
        let (recovered, _) = from_one_bit(&net, &one);
        assert_eq!(recovered, advice);
    }
}
