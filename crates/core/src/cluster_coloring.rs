//! Contribution 5, stages 1–2 (Section 6.1): a proper `(Δ+1)`-coloring
//! from sparse cluster advice.
//!
//! The paper first computes an `O(Δ²)`-coloring via a ruling-set
//! clustering whose *cluster colors* are written into the advice, then
//! reduces to `Δ+1` colors with a standard distributed algorithm. We fuse
//! the two stages: with cluster colors in hand, the coloring
//!
//! > greedy over the global order `(color of own cluster, UID)`
//!
//! is simultaneously proper, uses at most `Δ+1` colors, and is *locally
//! simulatable*: the greedy dependency chain from a node descends through
//! strictly lower cluster colors every time it leaves a cluster, so it
//! spans at most `(#cluster colors) × (cluster diameter + 1)` hops — a
//! function of `Δ` and the schema parameters only, never of `n`.
//!
//! Advice: each cluster center holds its cluster color
//! (`⌈log₂ max_cluster_colors⌉` bits); everyone else holds nothing. The
//! decoder identifies centers by their non-empty advice, reconstructs the
//! Voronoi clustering (nearest center, ties by center UID), and expands
//! its view adaptively until its own greedy color is determined.

use crate::advice::AdviceMap;
use crate::bits::{bit_width, BitReader, BitString};
use crate::error::{DecodeError, EncodeError};
use crate::schema::AdviceSchema;
use lad_graph::{coloring, ruling, Graph, NodeId};
use lad_runtime::{
    par_map, run_local_fallible_par, run_local_memo_fallible_par, Ball, MemoStep, Network,
    RoundStats,
};

/// The fused cluster-coloring schema producing a proper `(Δ+1)`-coloring.
///
/// # Example
///
/// ```
/// use lad_core::cluster_coloring::ClusterColoringSchema;
/// use lad_core::schema::AdviceSchema;
/// use lad_graph::{coloring, generators};
/// use lad_runtime::Network;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::random_bounded_degree(120, 4, 220, 7);
/// let delta = g.max_degree();
/// let net = Network::with_identity_ids(g);
/// let schema = ClusterColoringSchema::default();
/// let advice = schema.encode(&net)?;
/// let (colors, _) = schema.decode(&net, &advice)?;
/// assert!(coloring::is_proper_k_coloring(net.graph(), &colors, delta + 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterColoringSchema {
    /// Ruling-set spacing: cluster radius is below this, and centers are
    /// pairwise at least this far apart.
    pub cluster_spacing: usize,
    /// Upper bound on cluster colors the encoder may use (fixes the advice
    /// width and the decoder's worst-case radius).
    pub max_cluster_colors: usize,
}

impl Default for ClusterColoringSchema {
    fn default() -> Self {
        ClusterColoringSchema {
            cluster_spacing: 4,
            max_cluster_colors: 64,
        }
    }
}

impl ClusterColoringSchema {
    /// A schema with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(cluster_spacing: usize, max_cluster_colors: usize) -> Self {
        assert!(cluster_spacing >= 1 && max_cluster_colors >= 1);
        ClusterColoringSchema {
            cluster_spacing,
            max_cluster_colors,
        }
    }

    /// Advice width at a center.
    pub fn color_width(&self) -> usize {
        bit_width(self.max_cluster_colors)
    }

    /// The decoder's worst-case view radius.
    pub fn max_radius(&self) -> usize {
        (self.max_cluster_colors + 2) * (2 * self.cluster_spacing + 2)
    }

    /// The decode ladder's initial radius and per-`Expand` increment.
    pub fn step_radius(&self) -> usize {
        2 * self.cluster_spacing + 2
    }

    /// One rung of the decode ladder as a [`MemoStep`] — the exact step
    /// both [`AdviceSchema::decode`] and the sharded drivers run, factored
    /// out so the two paths cannot drift.
    pub(crate) fn memo_step(&self, ball: &Ball<BitString>) -> Result<MemoStep<usize>, DecodeError> {
        let r = ball.radius();
        let max_radius = self.max_radius();
        match simulate_greedy(
            ball,
            self.cluster_spacing,
            self.color_width(),
            self.max_cluster_colors,
        )? {
            Some(color) => Ok(MemoStep::Done(color)),
            None if r >= max_radius => Err(DecodeError::malformed(
                ball.global_node(ball.center()),
                "greedy color undetermined at the maximum radius",
            )),
            None => Ok(MemoStep::Expand((r + self.step_radius()).min(max_radius))),
        }
    }

    /// The Voronoi clustering induced by `centers`: for each node, the
    /// `(distance, uid)`-nearest center.
    ///
    /// `centers` is a `spacing`-ruling set, so every node has a center
    /// within `spacing − 1` — a strictly smaller distance always wins the
    /// `(distance, uid)` comparison, so centers farther than `spacing − 1`
    /// can never claim a node. Each center therefore runs a BFS *bounded
    /// to radius `spacing − 1`* over an epoch-stamped visited array
    /// (ball-sized work per center instead of `O(n)`), and centers fan out
    /// across workers whose claim arrays merge by the same deterministic
    /// minimum. Result is identical to the full all-centers Voronoi.
    pub(crate) fn assign_clusters(
        g: &Graph,
        uids: &[u64],
        centers: &[NodeId],
        spacing: usize,
    ) -> Vec<NodeId> {
        let threads = lad_runtime::effective_parallelism(g.n()).max(1);
        let chunk_len = centers.len().div_ceil(threads).max(1);
        let chunks: Vec<&[NodeId]> = centers.chunks(chunk_len).collect();
        let claims: Vec<Vec<Option<(usize, u64, NodeId)>>> = par_map(&chunks, |_, chunk| {
            let mut best: Vec<Option<(usize, u64, NodeId)>> = vec![None; g.n()];
            let mut stamp = vec![0u32; g.n()];
            let mut epoch = 0u32;
            let mut queue: Vec<(NodeId, usize)> = Vec::new();
            for &c in *chunk {
                epoch += 1;
                queue.clear();
                queue.push((c, 0));
                stamp[c.index()] = epoch;
                let mut head = 0;
                while head < queue.len() {
                    let (v, d) = queue[head];
                    head += 1;
                    let cand = (d, uids[c.index()], c);
                    if best[v.index()].is_none_or(|(bd, bu, _)| (cand.0, cand.1) < (bd, bu)) {
                        best[v.index()] = Some(cand);
                    }
                    if d + 1 < spacing {
                        for &u in g.neighbors(v) {
                            if stamp[u.index()] != epoch {
                                stamp[u.index()] = epoch;
                                queue.push((u, d + 1));
                            }
                        }
                    }
                }
            }
            best
        });
        let mut best: Vec<Option<(usize, u64, NodeId)>> = vec![None; g.n()];
        for chunk_best in claims {
            for (i, cand) in chunk_best.into_iter().enumerate() {
                if let Some(c) = cand {
                    if best[i].is_none_or(|(bd, bu, _)| (c.0, c.1) < (bd, bu)) {
                        best[i] = Some(c);
                    }
                }
            }
        }
        best.into_iter()
            .map(|b| b.expect("ruling set dominates every node").2)
            .collect()
    }

    /// The encode tail shared by the monolithic and sharded encoders:
    /// colors the cluster graph greedily (by center uid order) and packs
    /// each center's cluster color into the advice arena. Both encoders
    /// produce the same `(centers, cluster_of)` inputs, so sharing this
    /// tail is what makes their advice bit-identical.
    pub(crate) fn advice_from_clusters(
        &self,
        g: &Graph,
        uids: &[u64],
        centers: &[NodeId],
        cluster_of: &[NodeId],
    ) -> Result<AdviceMap, EncodeError> {
        let mut center_index = vec![usize::MAX; g.n()];
        for (i, &c) in centers.iter().enumerate() {
            center_index[c.index()] = i;
        }
        let mut cb = lad_graph::GraphBuilder::new(centers.len());
        for (_, (u, v)) in g.edges() {
            let cu = center_index[cluster_of[u.index()].index()];
            let cv = center_index[cluster_of[v.index()].index()];
            if cu != cv {
                cb.add_edge(NodeId::from_index(cu), NodeId::from_index(cv));
            }
        }
        let cluster_graph = cb.build();
        let mut order: Vec<NodeId> = cluster_graph.nodes().collect();
        order.sort_by_key(|&i| uids[centers[i.index()].index()]);
        let cluster_colors = coloring::greedy_coloring(&cluster_graph, &order);
        let used = cluster_colors.iter().max().map_or(0, |&c| c + 1);
        if used > self.max_cluster_colors {
            return Err(EncodeError::PlacementFailed(format!(
                "cluster graph needs {used} colors > configured max {}",
                self.max_cluster_colors
            )));
        }
        let width = self.color_width();
        // Packed once via `from_strings` (per-center `set` calls would
        // shift the arena tail, quadratic in the center count).
        let mut strings = vec![BitString::new(); g.n()];
        for (i, &c) in centers.iter().enumerate() {
            let mut bits = BitString::new();
            bits.push_uint(cluster_colors[i] as u64, width);
            strings[c.index()] = bits;
        }
        Ok(AdviceMap::from_strings(strings))
    }
}

impl AdviceSchema for ClusterColoringSchema {
    type Output = Vec<usize>;

    fn name(&self) -> String {
        format!(
            "cluster-coloring(spacing={}, colors<={})",
            self.cluster_spacing, self.max_cluster_colors
        )
    }

    fn encode(&self, net: &Network) -> Result<AdviceMap, EncodeError> {
        let g = net.graph();
        let uids = net.uids();
        let centers = ruling::ruling_set(g, self.cluster_spacing);
        let cluster_of = Self::assign_clusters(g, uids, &centers, self.cluster_spacing);
        self.advice_from_clusters(g, uids, &centers, &cluster_of)
    }

    fn decode(
        &self,
        net: &Network,
        advice: &AdviceMap,
    ) -> Result<(Vec<usize>, RoundStats), DecodeError> {
        let g = net.graph();
        if advice.n() != g.n() {
            return Err(DecodeError::Inconsistent(
                "advice covers a different node count".into(),
            ));
        }
        let advised = net.with_inputs(advice.strings().to_vec());
        let spacing = self.cluster_spacing;
        let width = self.color_width();
        let max_colors = self.max_cluster_colors;
        let max_radius = self.max_radius();
        // `simulate_greedy` is a pure, order-invariant function of the
        // advice-labeled ball, so the memo is *sound* here; whether it is
        // *fast* depends on the instance's class structure, which the
        // planner probes before committing either way.
        let use_memo = self.decoder_order_invariant() && {
            let plan = lad_runtime::plan_decode(
                &advised,
                2 * spacing + 2,
                |bits: &BitString, words: &mut Vec<u64>| bits.push_key_words(words),
                &self.name(),
                None,
            );
            plan.path == lad_runtime::ExecPath::Memo
        };
        let (colors, stats) = if use_memo {
            // Memoized path: the ladder runs once per canonical class and
            // is shared across every node in it.
            run_local_memo_fallible_par(
                &advised,
                self.step_radius(),
                |bits: &BitString, words: &mut Vec<u64>| bits.push_key_words(words),
                |ball| self.memo_step(ball),
            )?
        } else {
            run_local_fallible_par(&advised, |ctx| {
                let mut r = 2 * spacing + 2;
                loop {
                    let ball = ctx.ball(r);
                    match simulate_greedy(&ball, spacing, width, max_colors)? {
                        Some(color) => return Ok(color),
                        None => {
                            if r >= max_radius {
                                return Err(DecodeError::malformed(
                                    ball.global_node(ball.center()),
                                    "greedy color undetermined at the maximum radius",
                                ));
                            }
                            r = (r + 2 * spacing + 2).min(max_radius);
                        }
                    }
                }
            })?
        };
        // Validate output properness like a checker would.
        if !coloring::is_proper_coloring(g, &colors) {
            return Err(DecodeError::InvalidOutput(
                "decoded cluster coloring is improper".into(),
            ));
        }
        Ok((colors, stats))
    }

    fn decoder_order_invariant(&self) -> bool {
        // `simulate_greedy` reads identifiers only through order
        // comparisons (nearest-center tie-breaks, greedy order), so its
        // result is a function of the canonical advice-labeled view.
        true
    }
}

impl ClusterColoringSchema {
    /// Per-node oracle decode over the *reference* executor
    /// ([`lad_runtime::run_local_fallible`], fresh un-shared BFS per view
    /// request): the differential baseline the memoized
    /// [`AdviceSchema::decode`] path is pinned against in tests.
    ///
    /// # Errors
    ///
    /// Same contract as [`AdviceSchema::decode`].
    pub fn decode_reference(
        &self,
        net: &Network,
        advice: &AdviceMap,
    ) -> Result<(Vec<usize>, RoundStats), DecodeError> {
        let g = net.graph();
        if advice.n() != g.n() {
            return Err(DecodeError::Inconsistent(
                "advice covers a different node count".into(),
            ));
        }
        let advised = net.with_inputs(advice.strings().to_vec());
        let spacing = self.cluster_spacing;
        let width = self.color_width();
        let max_colors = self.max_cluster_colors;
        let max_radius = self.max_radius();
        let (colors, stats) = lad_runtime::run_local_fallible(&advised, |ctx| {
            let mut r = 2 * spacing + 2;
            loop {
                let ball = ctx.ball(r);
                match simulate_greedy(&ball, spacing, width, max_colors)? {
                    Some(color) => return Ok(color),
                    None => {
                        if r >= max_radius {
                            return Err(DecodeError::malformed(
                                ball.global_node(ball.center()),
                                "greedy color undetermined at the maximum radius",
                            ));
                        }
                        r = (r + 2 * spacing + 2).min(max_radius);
                    }
                }
            }
        })?;
        if !coloring::is_proper_coloring(g, &colors) {
            return Err(DecodeError::InvalidOutput(
                "decoded cluster coloring is improper".into(),
            ));
        }
        Ok((colors, stats))
    }
}

/// One adaptive step: simulate the `(cluster color, uid)`-greedy coloring
/// inside the ball; `Ok(Some(color))` once the center's color is forced.
fn simulate_greedy(
    ball: &Ball<BitString>,
    spacing: usize,
    width: usize,
    max_colors: usize,
) -> Result<Option<usize>, DecodeError> {
    let g = ball.graph();
    let r = ball.radius();
    // 1. Centers: nodes with non-empty advice.
    let mut centers = Vec::new();
    for w in g.nodes() {
        let bits = ball.input(w);
        if bits.is_empty() {
            continue;
        }
        if bits.len() != width {
            return Err(DecodeError::malformed(
                ball.global_node(w),
                "cluster-color advice has the wrong width",
            ));
        }
        let mut reader = BitReader::new(bits);
        let color = reader.read_uint(width).expect("width checked") as usize;
        if color >= max_colors {
            return Err(DecodeError::malformed(
                ball.global_node(w),
                "cluster color out of range",
            ));
        }
        centers.push((w, color));
    }
    // 2. Trusted membership: nodes at ball-distance ≤ r − spacing whose
    // nearest in-ball center is within spacing − 1.
    //
    // One level-synchronous multi-source BFS computes every node's
    // `(dist, uid)`-minimal center in O(ball) instead of one BFS per
    // center: a node first reached at level d + 1 inherits the minimal
    // candidate among its level-d neighbors, and that minimum equals the
    // per-center minimum of (distance, center uid) — any nearest center
    // of w routes through a neighbor it is also nearest to.
    let mut nearest: Vec<Option<(usize, u64, usize)>> = vec![None; g.n()]; // (dist, center uid, cluster color)
    let mut frontier: Vec<NodeId> = Vec::with_capacity(centers.len());
    for &(c, color) in &centers {
        nearest[c.index()] = Some((0, ball.uid(c), color));
        frontier.push(c);
    }
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        for &u in &frontier {
            let (d, bu, bc) = nearest[u.index()].expect("frontier nodes are reached");
            let cand = (d + 1, bu, bc);
            for &w in g.neighbors(u) {
                match &mut nearest[w.index()] {
                    slot @ None => {
                        *slot = Some(cand);
                        next.push(w);
                    }
                    Some((bd, bw, bcol)) => {
                        if (cand.0, cand.1) < (*bd, *bw) {
                            (*bd, *bw, *bcol) = cand;
                        }
                    }
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    let trusted = |w: NodeId| -> Option<(usize, u64)> {
        if ball.dist(w) + spacing > r || !ball.knows_all_edges_of(w) {
            return None;
        }
        match nearest[w.index()] {
            Some((d, _, color)) if d < spacing => Some((color, ball.uid(w))),
            _ => None,
        }
    };
    // 3. Greedy colors in dependency order: a trusted node takes the mex
    // of its lower-order neighbors' colors once all of them are decided.
    // An untrusted neighbor's order is unknowable — only a center-distance
    // argument could exclude it — so it is treated as potentially lower
    // and blocks its neighbors forever. The assignment is the unique
    // bottom-up fixpoint, so propagating readiness counts (each edge
    // visited O(1) times) colors exactly the nodes the round-based
    // fixpoint scan would, with the same colors.
    let order: Vec<Option<(usize, u64)>> = g.nodes().map(trusted).collect();
    let mut colors: Vec<Option<usize>> = vec![None; g.n()];
    const BLOCKED: u32 = u32::MAX;
    let mut pending: Vec<u32> = vec![BLOCKED; g.n()];
    let mut ready: Vec<NodeId> = Vec::new();
    for w in g.nodes() {
        let Some(my_order) = order[w.index()] else {
            continue;
        };
        let mut lower_undecided = 0u32;
        let mut blocked = false;
        for &u in g.neighbors(w) {
            match order[u.index()] {
                None => {
                    blocked = true;
                    break;
                }
                Some(o) if o < my_order => lower_undecided += 1,
                Some(_) => {}
            }
        }
        if blocked {
            continue;
        }
        pending[w.index()] = lower_undecided;
        if lower_undecided == 0 {
            ready.push(w);
        }
    }
    let mut used = Vec::new();
    while let Some(w) = ready.pop() {
        let my_order = order[w.index()].expect("ready nodes are trusted");
        used.clear();
        for &u in g.neighbors(w) {
            if order[u.index()].is_some_and(|o| o < my_order) {
                used.push(colors[u.index()].expect("lower neighbors are colored"));
            }
        }
        used.sort_unstable();
        used.dedup();
        let mut c = 0;
        for &u in used.iter() {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        colors[w.index()] = Some(c);
        for &u in g.neighbors(w) {
            if pending[u.index()] != BLOCKED && order[u.index()].is_some_and(|o| o > my_order) {
                pending[u.index()] -= 1;
                if pending[u.index()] == 0 {
                    ready.push(u);
                }
            }
        }
    }
    Ok(colors[ball.center().index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_graph::generators;

    fn check(net: &Network, schema: &ClusterColoringSchema) -> (Vec<usize>, RoundStats) {
        let advice = schema.encode(net).expect("encode");
        let (colors, stats) = schema.decode(net, &advice).expect("decode");
        let delta = net.graph().max_degree();
        assert!(
            coloring::is_proper_k_coloring(net.graph(), &colors, delta + 1),
            "not a proper (Δ+1)-coloring"
        );
        (colors, stats)
    }

    #[test]
    fn cycle_gets_three_colors() {
        let net = Network::with_identity_ids(generators::cycle(120));
        check(&net, &ClusterColoringSchema::default());
    }

    #[test]
    fn random_graphs() {
        for seed in 0..5 {
            let g = generators::random_bounded_degree(100, 5, 200, seed);
            let net = Network::with_identity_ids(g);
            check(&net, &ClusterColoringSchema::default());
        }
    }

    #[test]
    fn grid() {
        let net = Network::with_identity_ids(generators::grid2d(10, 10, false));
        check(&net, &ClusterColoringSchema::default());
    }

    #[test]
    fn advice_only_at_centers() {
        let net = Network::with_identity_ids(generators::cycle(90));
        let schema = ClusterColoringSchema::default();
        let advice = schema.encode(&net).unwrap();
        // Roughly one center per spacing-ball.
        let holders = advice.holders().count();
        assert!(holders <= 90 / schema.cluster_spacing + 1);
        assert!(holders >= 90 / (2 * schema.cluster_spacing + 1));
        // Fixed width at each holder.
        for h in advice.holders() {
            assert_eq!(advice.get(h).len(), schema.color_width());
        }
    }

    #[test]
    fn rounds_do_not_grow_with_n() {
        let schema = ClusterColoringSchema::default();
        let mut rounds = Vec::new();
        for n in [100usize, 300] {
            let net = Network::with_identity_ids(generators::cycle(n));
            let (_, stats) = check(&net, &schema);
            rounds.push(stats.rounds());
        }
        // Adaptive radius depends on local cluster-color structure, not n.
        assert!(rounds[1] <= rounds[0] + 2 * schema.cluster_spacing + 2);
    }

    #[test]
    fn tampered_cluster_color_detected() {
        let net = Network::with_identity_ids(generators::cycle(80));
        let schema = ClusterColoringSchema::default();
        let mut advice = schema.encode(&net).unwrap();
        // Overwrite one center's color with an out-of-range value... the
        // width makes that impossible; instead corrupt the width itself.
        let holder = advice.holders().next().unwrap();
        advice.set(holder, BitString::parse("1"));
        assert!(schema.decode(&net, &advice).is_err());
    }

    #[test]
    fn equal_colors_give_proper_coloring_anyway() {
        // Decoded output is validated; a maliciously *consistent* but
        // wrong advice can at worst inflate colors, never break properness
        // silently.
        let net = Network::with_identity_ids(generators::cycle(50));
        let schema = ClusterColoringSchema::default();
        let advice = schema.encode(&net).unwrap();
        match schema.decode(&net, &advice) {
            Ok((colors, _)) => assert!(coloring::is_proper_coloring(net.graph(), &colors)),
            Err(_) => panic!("honest advice must decode"),
        }
    }
}
