//! Error types shared by all schemas.

use lad_graph::NodeId;
use std::fmt;

/// Why an encoder could not produce advice for a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The problem has no solution on this graph (e.g., asking for a
    /// Δ-coloring of a non-Δ-colorable graph).
    SolutionDoesNotExist(String),
    /// A placement step (anchor shifting, group selection, path embedding)
    /// failed even after Moser–Tardos retries.
    PlacementFailed(String),
    /// A centralized search exceeded its configured budget.
    SearchBudgetExceeded(String),
    /// The graph violates a precondition of the schema (e.g., odd degrees
    /// for the even-degree balanced-orientation schema).
    Unsupported(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::SolutionDoesNotExist(m) => write!(f, "no solution exists: {m}"),
            EncodeError::PlacementFailed(m) => write!(f, "advice placement failed: {m}"),
            EncodeError::SearchBudgetExceeded(m) => {
                write!(f, "centralized search budget exceeded: {m}")
            }
            EncodeError::Unsupported(m) => write!(f, "unsupported input: {m}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why a decoder rejected its advice.
///
/// Decoders are *verifiers* in the locally-checkable-proof reading of the
/// paper (Section 1.2): on tampered advice they must be able to reject, so
/// these errors are part of the contract, not just diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A node found its advice (or the advice in its view) inconsistent.
    MalformedAdvice {
        /// The rejecting node.
        node: NodeId,
        /// What was wrong.
        reason: String,
    },
    /// Two nodes decoded contradictory values for a shared object.
    Inconsistent(String),
    /// The decoded output failed final validation.
    InvalidOutput(String),
    /// The memoized decode path observed one canonical view producing two
    /// different step results — the decoder is not order-invariant, so its
    /// [`crate::AdviceSchema::decoder_order_invariant`] declaration is
    /// wrong. Decoding refuses rather than share outputs across a class
    /// that is not actually uniform.
    NotOrderInvariant(lad_runtime::NotOrderInvariant),
}

impl DecodeError {
    /// Convenience constructor for [`DecodeError::MalformedAdvice`].
    pub fn malformed(node: NodeId, reason: impl Into<String>) -> Self {
        DecodeError::MalformedAdvice {
            node,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::MalformedAdvice { node, reason } => {
                write!(f, "malformed advice at {node}: {reason}")
            }
            DecodeError::Inconsistent(m) => write!(f, "inconsistent decoding: {m}"),
            DecodeError::InvalidOutput(m) => write!(f, "decoded output invalid: {m}"),
            DecodeError::NotOrderInvariant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<lad_runtime::NotOrderInvariant> for DecodeError {
    fn from(e: lad_runtime::NotOrderInvariant) -> Self {
        DecodeError::NotOrderInvariant(e)
    }
}

impl From<lad_runtime::HaloExceeded> for DecodeError {
    fn from(e: lad_runtime::HaloExceeded) -> Self {
        // A too-shallow halo is an inconsistency between the shard
        // configuration and the decoder's radius demand, not bad advice:
        // the caller should rebuild views with a deeper halo and rerun.
        DecodeError::Inconsistent(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EncodeError::Unsupported("odd degree".into());
        assert!(e.to_string().contains("odd degree"));
        let d = DecodeError::malformed(NodeId(3), "bad marker");
        assert!(d.to_string().contains("v3"));
        assert!(d.to_string().contains("bad marker"));
    }
}
